package dbstream

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func twoBlobStream(n int, rate float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}}
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % 2
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			Label:  k,
			Time:   float64(i) / rate,
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Radius: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Radius: -1},
		{Radius: 1, Alpha: 2},
		{Radius: 1, LearningRate: 1.5},
		{Radius: 1, Decay: stream.Decay{A: 0, Lambda: 1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ stream.Clusterer = (*DBStream)(nil)
}

func TestTwoBlobClustering(t *testing.T) {
	d, err := New(Config{Radius: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DBSTREAM" {
		t.Errorf("Name = %q", d.Name())
	}
	pts := twoBlobStream(4000, 1000, 1)
	for _, p := range pts {
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumMicroClusters() == 0 {
		t.Fatal("no micro-clusters were formed")
	}
	clusters := d.Clusters(pts[len(pts)-1].Time)
	if len(clusters) < 2 {
		t.Fatalf("found %d clusters, want at least the two blobs", len(clusters))
	}
	// The two blobs must not be merged: no cluster may contain centers
	// from both blobs.
	for _, c := range clusters {
		var near0, near10 bool
		for _, center := range c.Centers {
			if distance.Euclid(center, []float64{0, 0}) < 3 {
				near0 = true
			}
			if distance.Euclid(center, []float64{10, 10}) < 3 {
				near10 = true
			}
		}
		if near0 && near10 {
			t.Errorf("a single macro cluster spans both blobs")
		}
	}
	// Both blobs are covered by some cluster.
	covered0, covered10 := false, false
	for _, c := range clusters {
		for _, center := range c.Centers {
			if distance.Euclid(center, []float64{0, 0}) < 3 {
				covered0 = true
			}
			if distance.Euclid(center, []float64{10, 10}) < 3 {
				covered10 = true
			}
		}
	}
	if !covered0 || !covered10 {
		t.Errorf("clusters do not cover both blobs")
	}
}

func TestSharedDensityMergesOverlappingBlobs(t *testing.T) {
	// Two heavily overlapping blobs must end up density-connected into
	// one macro cluster through the shared-density graph.
	d, err := New(Config{Radius: 1.5, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		ts := float64(i) / 1000
		base := 0.0
		if i%2 == 1 {
			base = 1.0 // centers only 1.0 apart with radius 1.5
		}
		p := stream.Point{ID: int64(i), Vector: []float64{base + rng.NormFloat64()*0.4, rng.NormFloat64() * 0.4}, Time: ts}
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	clusters := d.Clusters(4.0)
	if len(clusters) != 1 {
		t.Errorf("overlapping blobs should form one cluster, got %d", len(clusters))
	}
}

func TestWeakMicroClustersCleanedUp(t *testing.T) {
	d, err := New(Config{Radius: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// A burst of scattered points followed by a long quiet dense phase:
	// the scattered micro-clusters must be cleaned up.
	for i := 0; i < 6000; i++ {
		ts := float64(i) / 1000
		var vec []float64
		if ts < 0.5 {
			vec = []float64{rng.Float64() * 100, rng.Float64() * 100}
		} else {
			vec = []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		}
		if err := d.Insert(stream.Point{ID: int64(i), Vector: vec, Time: ts}); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.NumMicroClusters(); n > 200 {
		t.Errorf("weak micro-clusters not cleaned up: %d remain", n)
	}
}

func TestInsertErrors(t *testing.T) {
	d, _ := New(Config{Radius: 1})
	if err := d.Insert(stream.Point{}); err == nil {
		t.Error("invalid point accepted")
	}
	if err := d.Insert(stream.Point{Tokens: distance.NewTokenSet("a")}); err == nil {
		t.Error("text point accepted")
	}
}

func TestClustersOnEmptyState(t *testing.T) {
	d, _ := New(Config{Radius: 1})
	if got := d.Clusters(0); got != nil {
		t.Errorf("empty DBSTREAM should report no clusters, got %v", got)
	}
}
