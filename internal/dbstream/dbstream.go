// Package dbstream implements the DBSTREAM baseline (Hahsler & Bolaños
// — IEEE TKDE 2016) used for comparison in the paper's evaluation:
// micro-clusters of fixed radius whose centers adapt toward absorbed
// points, a shared-density graph between neighbouring micro-clusters
// maintained online, and an offline phase that forms macro-clusters as
// the connected components of the shared-density graph above an
// intersection-factor threshold.
package dbstream

import (
	"fmt"
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes DBSTREAM.
type Config struct {
	// Radius is the micro-cluster radius r. Required.
	Radius float64
	// Alpha is the intersection factor threshold in (0,1] above which
	// two micro-clusters are considered connected (default 0.3).
	Alpha float64
	// Lambda is unused directly; decay is taken from Decay. Kept for
	// documentation parity with the original algorithm's parameter
	// list.
	Lambda float64
	// Decay is the freshness decay model (default a=0.998, λ=1000).
	Decay stream.Decay
	// MinWeight is the minimum decayed weight for a micro-cluster to
	// participate in the offline clustering (default 3).
	MinWeight float64
	// CleanupInterval is the stream-time interval between removal
	// passes over weak micro-clusters and stale shared densities
	// (default 1.0 seconds).
	CleanupInterval float64
	// LearningRate moves a micro-cluster center toward an absorbed
	// point by this fraction of the distance (default 0.1).
	LearningRate float64
}

func (c *Config) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Decay == (stream.Decay{}) {
		c.Decay = stream.Decay{A: 0.998, Lambda: 1000}
	}
	if c.MinWeight == 0 {
		c.MinWeight = 3
	}
	if c.CleanupInterval == 0 {
		c.CleanupInterval = 1.0
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c
	d.defaults()
	if d.Radius <= 0 {
		return fmt.Errorf("dbstream: radius must be positive, got %v", c.Radius)
	}
	if d.Alpha <= 0 || d.Alpha > 1 {
		return fmt.Errorf("dbstream: α must be in (0,1], got %v", c.Alpha)
	}
	if d.LearningRate <= 0 || d.LearningRate > 1 {
		return fmt.Errorf("dbstream: learning rate must be in (0,1], got %v", c.LearningRate)
	}
	return d.Decay.Validate()
}

// mc is a DBSTREAM micro-cluster: a moving center with decayed weight.
type mc struct {
	id         int64
	center     []float64
	weight     float64
	lastUpdate float64
}

func (m *mc) weightAt(now float64, d stream.Decay) float64 {
	return m.weight * d.Freshness(now, m.lastUpdate)
}

func (m *mc) distance(p stream.Point) float64 {
	var s float64
	for i := range m.center {
		diff := m.center[i] - p.Vector[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

type pairKey struct{ a, b int64 }

func newPairKey(a, b int64) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// sharedDensity is the decayed weight of points observed in the overlap
// of two micro-clusters.
type sharedDensity struct {
	weight     float64
	lastUpdate float64
}

// DBStream is the algorithm state. It implements stream.Clusterer.
type DBStream struct {
	cfg         Config
	mcs         map[int64]*mc
	shared      map[pairKey]*sharedDensity
	nextID      int64
	now         float64
	lastCleanup float64
}

// New creates a DBSTREAM instance.
func New(cfg Config) (*DBStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	return &DBStream{cfg: cfg, mcs: map[int64]*mc{}, shared: map[pairKey]*sharedDensity{}}, nil
}

// Name implements stream.Clusterer.
func (d *DBStream) Name() string { return "DBSTREAM" }

// NumMicroClusters returns the number of micro-clusters maintained.
func (d *DBStream) NumMicroClusters() int { return len(d.mcs) }

// Insert implements stream.Clusterer.
func (d *DBStream) Insert(p stream.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.IsText() {
		return fmt.Errorf("dbstream: text points are not supported")
	}
	if p.Time > d.now {
		d.now = p.Time
	}
	now := d.now

	// All micro-clusters within radius of the point absorb it; every
	// pair of them shares the point, increasing their shared density.
	var hits []*mc
	for _, m := range d.mcs {
		if m.distance(p) <= d.cfg.Radius {
			hits = append(hits, m)
		}
	}
	if len(hits) == 0 {
		m := &mc{id: d.nextID, center: append([]float64(nil), p.Vector...), weight: 1, lastUpdate: now}
		d.nextID++
		d.mcs[m.id] = m
	} else {
		for _, m := range hits {
			m.weight = m.weightAt(now, d.cfg.Decay) + 1
			m.lastUpdate = now
			// Move the center toward the point (competitive learning).
			for i := range m.center {
				m.center[i] += d.cfg.LearningRate * (p.Vector[i] - m.center[i])
			}
		}
		for i := 0; i < len(hits); i++ {
			for j := i + 1; j < len(hits); j++ {
				key := newPairKey(hits[i].id, hits[j].id)
				s, ok := d.shared[key]
				if !ok {
					s = &sharedDensity{}
					d.shared[key] = s
				}
				s.weight = s.weight*d.cfg.Decay.Freshness(now, s.lastUpdate) + 1
				s.lastUpdate = now
			}
		}
	}

	if now-d.lastCleanup >= d.cfg.CleanupInterval {
		d.cleanup(now)
		d.lastCleanup = now
	}
	return nil
}

// cleanup removes weak micro-clusters and stale shared densities.
func (d *DBStream) cleanup(now float64) {
	for id, m := range d.mcs {
		if m.weightAt(now, d.cfg.Decay) < 0.5 {
			delete(d.mcs, id)
		}
	}
	for key, s := range d.shared {
		_, okA := d.mcs[key.a]
		_, okB := d.mcs[key.b]
		if !okA || !okB || s.weight*d.cfg.Decay.Freshness(now, s.lastUpdate) < 0.25 {
			delete(d.shared, key)
		}
	}
}

// Clusters implements stream.Clusterer: the offline phase connects
// micro-clusters whose shared density relative to the lighter
// micro-cluster exceeds α and reports the connected components.
func (d *DBStream) Clusters(now float64) []stream.MacroCluster {
	if now > d.now {
		d.now = now
	}
	now = d.now
	// Strong micro-clusters participate in the clustering.
	var ids []int64
	for id, m := range d.mcs {
		if m.weightAt(now, d.cfg.Decay) >= d.cfg.MinWeight {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	index := map[int64]int{}
	for i, id := range ids {
		index[id] = i
	}
	// Union-find over the connectivity graph.
	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for key, s := range d.shared {
		ia, okA := index[key.a]
		ib, okB := index[key.b]
		if !okA || !okB {
			continue
		}
		sw := s.weight * d.cfg.Decay.Freshness(now, s.lastUpdate)
		wa := d.mcs[key.a].weightAt(now, d.cfg.Decay)
		wb := d.mcs[key.b].weightAt(now, d.cfg.Decay)
		minW := math.Min(wa, wb)
		if minW > 0 && sw/minW >= d.cfg.Alpha {
			union(ia, ib)
		}
	}

	byRoot := map[int]*stream.MacroCluster{}
	clusterID := 1
	rootToID := map[int]int{}
	for i, id := range ids {
		root := find(i)
		cid, ok := rootToID[root]
		if !ok {
			cid = clusterID
			clusterID++
			rootToID[root] = cid
			byRoot[root] = &stream.MacroCluster{ID: cid}
		}
		m := d.mcs[id]
		byRoot[root].Centers = append(byRoot[root].Centers, append([]float64(nil), m.center...))
		byRoot[root].Weight += m.weightAt(now, d.cfg.Decay)
	}
	out := make([]stream.MacroCluster, 0, len(byRoot))
	for _, mc := range byRoot {
		out = append(out, *mc)
	}
	stream.SortClusters(out)
	return out
}
