package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// compressiblePayload is a checkpoint body with enough redundancy that
// gzip visibly shrinks it.
func compressiblePayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i / 64)
	}
	return p
}

// ckptFile returns the path of the single checkpoint file in dir.
func ckptFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var found string
	for _, ent := range entries {
		if _, ok := ParseCheckpointFileName(ent.Name()); ok {
			if found != "" {
				t.Fatalf("more than one checkpoint file: %s and %s", found, ent.Name())
			}
			found = ent.Name()
		}
	}
	if found == "" {
		t.Fatal("no checkpoint file found")
	}
	return filepath.Join(dir, found)
}

// TestCompressedCheckpointRoundTrip proves the gzip checkpoint variant
// is transparent: a reader WITHOUT the option restores it bit-for-bit,
// and the on-disk file is smaller than the uncompressed payload.
func TestCompressedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(15)
	state := compressiblePayload(8 << 10)

	l, err := Open(Options{Dir: dir, CompressCheckpoints: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs[:10])
	if err := l.SaveCheckpoint(state); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	appendAll(t, l, recs[10:])
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	raw, err := os.ReadFile(ckptFile(t, dir))
	if err != nil {
		t.Fatalf("reading checkpoint file: %v", err)
	}
	if !bytes.Equal(raw[:8], ckptMagicGz[:]) {
		t.Fatalf("checkpoint magic = %q, want %q", raw[:8], ckptMagicGz[:])
	}
	if len(raw) >= ckptHeaderLen+len(state) {
		t.Fatalf("compressed checkpoint is %d bytes, not smaller than the %d-byte payload", len(raw), len(state))
	}

	// The reopening log does NOT set CompressCheckpoints: the format is
	// self-describing via the magic, not an option handshake.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !re.Info().HasCheckpoint {
		t.Fatalf("compressed checkpoint not loaded: %+v", re.Info())
	}
	if !bytes.Equal(re.Checkpoint(), state) {
		t.Fatal("restored checkpoint payload differs from the saved one")
	}
	_, tail := collect(t, re)
	if len(tail) != 5 {
		t.Fatalf("replayed %d tail records, want 5", len(tail))
	}
	for i, p := range tail {
		if !bytes.Equal(p, recs[10+i]) {
			t.Fatalf("tail record %d differs", i)
		}
	}
}

// TestCompressedCheckpointCorruption proves a damaged gzip body is
// rejected exactly like damage to a plain checkpoint: the file is
// skipped and removed, and recovery falls back to replaying the log.
func TestCompressedCheckpointCorruption(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(15)

	l, err := Open(Options{Dir: dir, CompressCheckpoints: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs[:10])
	if err := l.SaveCheckpoint(compressiblePayload(8 << 10)); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	appendAll(t, l, recs[10:])
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ckpt := ckptFile(t, dir)
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	raw[ckptHeaderLen+len(raw[ckptHeaderLen:])/2] ^= 0x40
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatalf("writing corruption: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen over corruption: %v", err)
	}
	defer re.Close()
	info := re.Info()
	if info.HasCheckpoint || info.CheckpointsSkipped != 1 {
		t.Fatalf("corrupt compressed checkpoint not skipped: %+v", info)
	}
	// The open segment was never pruned, so the full stream replays.
	_, got := collect(t, re)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records after checkpoint loss, want %d", len(got), len(recs))
	}
}

// TestSealAndCheckpointCallbacks pins the shipper hooks: every rotation
// reports the sealed segment's name and coverage, and a checkpoint save
// reports the published file once it is durable.
func TestSealAndCheckpointCallbacks(t *testing.T) {
	dir := t.TempDir()
	type event struct {
		name    string
		through uint64
	}
	var sealed, saved []event

	l, err := Open(Options{
		Dir:          dir,
		SegmentBytes: 1 << 10,
		OnSegmentSealed: func(name string, through uint64) {
			sealed = append(sealed, event{name, through})
		},
		OnCheckpointSaved: func(name string, nextSeq uint64) {
			saved = append(saved, event{name, nextSeq})
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := payloads(200)
	appendAll(t, l, recs)
	if len(sealed) == 0 {
		t.Fatal("no seal callbacks despite forced rotation")
	}
	var prev uint64
	for i, ev := range sealed {
		seq, ok := ParseSegmentFileName(ev.name)
		if !ok {
			t.Fatalf("seal %d reported unparseable name %q", i, ev.name)
		}
		if ev.through <= seq || ev.through <= prev || ev.through > uint64(len(recs))+1 {
			t.Fatalf("seal %d (%q) has implausible coverage %d (segment first %d, previous %d)", i, ev.name, ev.through, seq, prev)
		}
		prev = ev.through
	}

	if err := l.SaveCheckpoint([]byte("state")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if len(saved) != 1 {
		t.Fatalf("%d checkpoint callbacks, want 1", len(saved))
	}
	// Sequence numbers are 1-based: after 200 appends the first
	// uncovered sequence is 201.
	next := uint64(len(recs)) + 1
	if want := ckptName(next); saved[0].name != want || saved[0].through != next {
		t.Fatalf("checkpoint callback = %+v, want name %s through %d", saved[0], want, next)
	}
	if _, err := os.Stat(filepath.Join(dir, saved[0].name)); err != nil {
		t.Fatalf("callback fired for a checkpoint that is not on disk: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestParseFileNames pins the exported name parsers the archive layer
// keys its remote layout on.
func TestParseFileNames(t *testing.T) {
	if seq, ok := ParseSegmentFileName(segName(0xabcd)); !ok || seq != 0xabcd {
		t.Fatalf("ParseSegmentFileName(segName(0xabcd)) = %d, %v", seq, ok)
	}
	if seq, ok := ParseCheckpointFileName(ckptName(7)); !ok || seq != 7 {
		t.Fatalf("ParseCheckpointFileName(ckptName(7)) = %d, %v", seq, ok)
	}
	for _, bad := range []string{
		"", "wal-.log", "wal-zz.log", "ckpt-0000000000000007.log",
		"wal-0000000000000007.ckpt", segName(1) + ".tmp", "x" + segName(1),
	} {
		if _, ok := ParseSegmentFileName(bad); ok {
			t.Fatalf("ParseSegmentFileName(%q) accepted", bad)
		}
		if _, ok := ParseCheckpointFileName(bad); ok {
			t.Fatalf("ParseCheckpointFileName(%q) accepted", bad)
		}
	}
}

// unsortedFS inverts the listing order, modeling a filesystem whose
// directory enumeration has no ordering guarantee.
type unsortedFS struct{ OSFS }

func (unsortedFS) ReadDir(name string) ([]os.DirEntry, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	return entries, nil
}

// TestReadDirSorted pins the FS contract recovery depends on: both the
// OS filesystem and the fault wrapper return name-sorted entries, even
// when the wrapped filesystem does not.
func TestReadDirSorted(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"c.log", "a.log", "b.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	check := func(label string, fs FS) {
		t.Helper()
		entries, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s.ReadDir: %v", label, err)
		}
		for i := 1; i < len(entries); i++ {
			if entries[i-1].Name() > entries[i].Name() {
				t.Fatalf("%s.ReadDir out of order: %s before %s", label, entries[i-1].Name(), entries[i].Name())
			}
		}
		if len(entries) != 3 {
			t.Fatalf("%s.ReadDir returned %d entries, want 3", label, len(entries))
		}
	}
	check("OSFS", OSFS{})
	check("FaultFS(unsorted)", NewFaultFS(unsortedFS{}))
}
