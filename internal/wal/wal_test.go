package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// payloads generates n distinct record payloads of varying sizes.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 20+i%50)
		for j := range p {
			p[j] = byte(i + j)
		}
		out[i] = p
	}
	return out
}

// appendAll appends every payload and syncs after each one.
func appendAll(t *testing.T, l *Log, recs [][]byte) {
	t.Helper()
	for i, p := range recs {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("Append(record %d): %v", i, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync(record %d): %v", i, err)
		}
	}
}

// collect replays the log tail into a slice.
func collect(t *testing.T, l *Log) (seqs []uint64, recs [][]byte) {
	t.Helper()
	err := l.Replay(func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		recs = append(recs, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return seqs, recs
}

// lastSegment returns the path of the live segment with the highest
// first-sequence number.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var last string
	for _, ent := range entries {
		name := ent.Name()
		if len(name) > len(segPrefix)+len(segExt) && name[:len(segPrefix)] == segPrefix && filepath.Ext(name) == segExt {
			if last == "" || name > last {
				last = name
			}
		}
	}
	if last == "" {
		t.Fatal("no segment files found")
	}
	return filepath.Join(dir, last)
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(200)

	// A small rotation threshold forces the stream across many
	// segments, exercising header continuity on recovery.
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Info()
	if info.HasCheckpoint || info.RecordsReplayable != len(recs) || info.DroppedBytes != 0 || info.TruncatedSegment != "" {
		t.Fatalf("unexpected recovery info for a clean log: %+v", info)
	}
	seqs, got := collect(t, re)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, seqs[i], i+1)
		}
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d payload differs", i)
		}
	}

	// Appends continue the sequence; a third open sees the new tail.
	if seq, err := re.Append([]byte("more")); err != nil || seq != uint64(len(recs)+1) {
		t.Fatalf("Append after reopen = (%d, %v), want seq %d", seq, err, len(recs)+1)
	}
	if err := re.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	re.Close()
	third, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer third.Close()
	if n := third.Info().RecordsReplayable; n != len(recs)+1 {
		t.Fatalf("third open replays %d records, want %d", n, len(recs)+1)
	}
}

func TestCheckpointCoversTailAndPrunes(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(120)

	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs[:80])
	state := []byte("engine state at record 80")
	if err := l.SaveCheckpoint(state); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	pruned := l.Stats().Segments
	appendAll(t, l, recs[80:])
	l.Close()

	re, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Info()
	if !info.HasCheckpoint || info.CheckpointSeq != 81 {
		t.Fatalf("recovery info %+v, want checkpoint covering through seq 80", info)
	}
	if !bytes.Equal(re.Checkpoint(), state) {
		t.Fatalf("checkpoint payload %q, want %q", re.Checkpoint(), state)
	}
	seqs, got := collect(t, re)
	if len(got) != 40 || seqs[0] != 81 || seqs[len(seqs)-1] != 120 {
		t.Fatalf("replayed %d records spanning [%d,%d], want 40 spanning [81,120]",
			len(got), seqs[0], seqs[len(seqs)-1])
	}
	for i, p := range got {
		if !bytes.Equal(p, recs[80+i]) {
			t.Fatalf("replayed record %d differs", i)
		}
	}
	if info.SegmentsScanned > pruned+3 {
		t.Fatalf("checkpoint did not prune: %d segments survive, %d at checkpoint time",
			info.SegmentsScanned, pruned)
	}

	// A second checkpoint removes the first.
	if err := re.SaveCheckpoint([]byte("state at 120")); err != nil {
		t.Fatalf("second SaveCheckpoint: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	ckpts := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ckptExt {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoint files after the second checkpoint, want 1", ckpts)
	}
}

// TestTornTailTruncated is the core crash model: the process dies
// mid-write, leaving a partial record. Recovery must keep exactly the
// acknowledged prefix, truncate the torn bytes, and the log must keep
// working — including across yet another reopen.
func TestTornTailTruncated(t *testing.T) {
	for _, torn := range []int{1, 3, 11, 15} {
		t.Run(fmt.Sprintf("torn%d", torn), func(t *testing.T) {
			dir := t.TempDir()
			recs := payloads(30)
			l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			appendAll(t, l, recs)
			l.Close()

			// Simulate the crash: append a partial record image by hand.
			seg := lastSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatalf("opening segment: %v", err)
			}
			junk := make([]byte, torn)
			for i := range junk {
				junk[i] = 0x5a
			}
			if _, err := f.Write(junk); err != nil {
				t.Fatalf("writing torn tail: %v", err)
			}
			f.Close()

			re, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			info := re.Info()
			if info.RecordsReplayable != len(recs) {
				t.Fatalf("recovered %d records, want %d (info %+v)", info.RecordsReplayable, len(recs), info)
			}
			if info.DroppedBytes != int64(torn) || info.TruncatedSegment == "" {
				t.Fatalf("expected %d dropped bytes and a truncated segment, got %+v", torn, info)
			}
			seqs, _ := collect(t, re)
			if seqs[len(seqs)-1] != uint64(len(recs)) {
				t.Fatalf("last recovered seq %d, want %d", seqs[len(seqs)-1], len(recs))
			}
			// The log keeps accepting appends after the repair...
			if seq, err := re.Append([]byte("after repair")); err != nil || seq != uint64(len(recs)+1) {
				t.Fatalf("Append after repair = (%d, %v)", seq, err)
			}
			if err := re.Sync(); err != nil {
				t.Fatalf("Sync after repair: %v", err)
			}
			re.Close()
			// ...and the repaired file is clean on the next recovery.
			again, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer again.Close()
			if info := again.Info(); info.DroppedBytes != 0 || info.RecordsReplayable != len(recs)+1 {
				t.Fatalf("repaired log still dirty: %+v", info)
			}
		})
	}
}

// TestTruncationSweep cuts the tail segment at EVERY byte offset in its
// final records and asserts recovery never panics, never invents data,
// and always recovers a strict prefix of the appended records.
func TestTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(10)
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs)
	l.Close()

	seg := lastSegment(t, dir)
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	for cut := len(pristine) - 1; cut >= 0; cut-- {
		if err := os.WriteFile(seg, pristine[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		re, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		seqs, got := collect(t, re)
		for i := range got {
			if seqs[i] != uint64(i+1) || !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut %d: record %d is not the appended record", cut, i)
			}
		}
		re.Close()
		// Restore the file (recovery may have truncated or removed it).
		if err := os.WriteFile(seg, pristine, 0o644); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
	}
}

// TestBitFlipDropsTail asserts a corrupted byte anywhere in a record
// invalidates that record and everything after it (a mid-log record
// cannot be skipped: replay order is the correctness contract).
func TestBitFlipDropsTail(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(20)
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs)
	l.Close()

	seg := lastSegment(t, dir)
	pristine, _ := os.ReadFile(seg)
	for _, at := range []float64{0.3, 0.6, 0.95} {
		off := segHeaderLen + int(float64(len(pristine)-segHeaderLen)*at)
		corrupt := append([]byte(nil), pristine...)
		corrupt[off] ^= 0x08
		if err := os.WriteFile(seg, corrupt, 0o644); err != nil {
			t.Fatalf("writing corruption: %v", err)
		}
		re, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open over corruption at %d: %v", off, err)
		}
		info := re.Info()
		if info.DroppedBytes == 0 {
			t.Fatalf("corruption at byte %d went undetected", off)
		}
		seqs, got := collect(t, re)
		if len(got) >= len(recs) {
			t.Fatalf("corruption at byte %d: %d records recovered, want fewer than %d", off, len(got), len(recs))
		}
		for i := range got {
			if seqs[i] != uint64(i+1) || !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("corruption at byte %d: surviving record %d differs", off, i)
			}
		}
		re.Close()
		if err := os.WriteFile(seg, pristine, 0o644); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
}

// TestCorruptCheckpointFallback damages checkpoints in turn: recovery
// must fall back to an older valid checkpoint, or to a full replay,
// and report how many it skipped.
func TestCorruptCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(60)
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs[:40])
	if err := l.SaveCheckpoint([]byte("good state at 40")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	appendAll(t, l, recs[40:])
	l.Close()

	// A newer checkpoint file full of garbage: recovery skips it and
	// loads the valid one underneath.
	bogus := filepath.Join(dir, ckptName(1000))
	if err := os.WriteFile(bogus, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatalf("writing bogus checkpoint: %v", err)
	}
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	info := re.Info()
	if !info.HasCheckpoint || info.CheckpointSeq != 41 || info.CheckpointsSkipped != 1 {
		t.Fatalf("recovery info %+v, want fallback to the seq-41 checkpoint with 1 skipped", info)
	}
	if string(re.Checkpoint()) != "good state at 40" {
		t.Fatalf("wrong checkpoint payload %q", re.Checkpoint())
	}
	seqs, _ := collect(t, re)
	if len(seqs) != 20 || seqs[0] != 41 {
		t.Fatalf("replay after fallback: %d records from seq %d, want 20 from 41", len(seqs), seqs[0])
	}
	re.Close()
	if _, err := os.Stat(bogus); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt checkpoint file was not removed: %v", err)
	}

	// Now corrupt the real checkpoint too: recovery falls back to a
	// full replay from the oldest surviving record.
	good := filepath.Join(dir, ckptName(41))
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatalf("corrupting checkpoint: %v", err)
	}
	re2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen without valid checkpoint: %v", err)
	}
	defer re2.Close()
	info = re2.Info()
	if info.HasCheckpoint || info.CheckpointsSkipped != 1 {
		t.Fatalf("recovery info %+v, want no checkpoint and 1 skipped", info)
	}
	if re2.Checkpoint() != nil {
		t.Fatal("Checkpoint() should be nil when every checkpoint is damaged")
	}
	seqs, got := collect(t, re2)
	if len(got) != len(recs) || seqs[0] != 1 {
		t.Fatalf("full replay recovered %d records from seq %d, want %d from 1", len(got), seqs[0], len(recs))
	}

	// Truncated checkpoints (every prefix of the header) are equally
	// rejected — regression guard for the length/magic validation.
	re2.Close()
	full, _ := os.ReadFile(filepath.Join(dir, ckptName(41)))
	for _, cut := range []int{0, 7, 15, 23, 27} {
		if cut > len(full) {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, ckptName(41)), full[:cut], 0o644); err != nil {
			t.Fatalf("truncating checkpoint to %d: %v", cut, err)
		}
		re3, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("open over checkpoint truncated to %d: %v", cut, err)
		}
		if re3.Info().HasCheckpoint {
			t.Fatalf("checkpoint truncated to %d bytes was accepted", cut)
		}
		re3.Close()
	}
}

// TestMissingMiddleSegment deletes a middle segment: the records after
// the gap cannot be replayed (order is the contract), so recovery must
// keep only the contiguous prefix and remove the unreachable segments.
func TestMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(200)
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, recs)
	if l.Stats().Segments < 4 {
		t.Fatalf("need at least 4 segments, got %d", l.Stats().Segments)
	}
	segs := append([]segMeta(nil), l.segments...)
	l.Close()

	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatalf("removing middle segment: %v", err)
	}
	prefixLen := int(segs[1].firstSeq - 1)

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Info()
	if info.DroppedSegments != len(segs)-2 {
		t.Fatalf("dropped %d segments, want %d (info %+v)", info.DroppedSegments, len(segs)-2, info)
	}
	seqs, got := collect(t, re)
	if len(got) != prefixLen {
		t.Fatalf("recovered %d records, want the %d-record contiguous prefix", len(got), prefixLen)
	}
	for i := range got {
		if seqs[i] != uint64(i+1) || !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("prefix record %d differs", i)
		}
	}
}

// TestFaultInjectedTornWrite drives the torn-write crash through the
// FaultFS harness: the append fails mid-write, the log wedges, and a
// clean reopen of the same directory recovers every record that was
// acknowledged before the fault.
func TestFaultInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(Options{Dir: dir, FS: ffs, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := payloads(25)
	appendAll(t, l, recs[:20])

	ffs.Inject(Fault{Op: "write", Torn: 7})
	if _, err := l.Append(recs[20]); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append under write fault = %v, want ErrInjected", err)
	}
	if !ffs.Fired() {
		t.Fatal("fault did not fire")
	}
	// The log is wedged: the tail holds a torn record only recovery
	// can repair.
	if _, err := l.Append(recs[21]); err == nil {
		t.Fatal("Append succeeded on a wedged log")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded on a wedged log")
	}
	if err := l.SaveCheckpoint([]byte("x")); err == nil {
		t.Fatal("SaveCheckpoint succeeded on a wedged log")
	}
	l.Close()

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Info()
	if info.RecordsReplayable != 20 {
		t.Fatalf("recovered %d records, want the 20 acknowledged ones (info %+v)", info.RecordsReplayable, info)
	}
	if info.DroppedBytes != 7 {
		t.Fatalf("dropped %d bytes, want the 7 torn ones", info.DroppedBytes)
	}
	seqs, got := collect(t, re)
	for i := range got {
		if seqs[i] != uint64(i+1) || !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("recovered record %d differs", i)
		}
	}
}

// TestFaultInjectedSyncError asserts a failed fsync surfaces to the
// caller — the coalescer turns it into a failed acknowledgement, so a
// client never gets a 200 for data that may not be durable.
func TestFaultInjectedSyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.Inject(Fault{Op: "sync"})
	if err := l.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync under fault = %v, want ErrInjected", err)
	}
	ffs.Clear()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after clearing fault: %v", err)
	}
}

// TestFaultInjectedCheckpointRename asserts a checkpoint whose rename
// fails leaves no trace: the old checkpoint (or none) stays in effect
// and the temporary file does not survive the next open.
func TestFaultInjectedCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, payloads(10))
	ffs.Inject(Fault{Op: "rename"})
	if err := l.SaveCheckpoint([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("SaveCheckpoint under rename fault = %v, want ErrInjected", err)
	}
	ffs.Clear()
	l.Close()

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Info().HasCheckpoint {
		t.Fatal("a failed checkpoint became visible")
	}
	if re.Info().RecordsReplayable != 10 {
		t.Fatalf("recovered %d records, want 10", re.Info().RecordsReplayable)
	}
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == tmpExt {
			t.Fatalf("temporary checkpoint file %s survived recovery", ent.Name())
		}
	}
}

// TestCheckpointNewerThanRecords models losing the unsynced tail in
// NoSync mode: the checkpoint covers sequence numbers no surviving
// record reaches. Appends must restart at the checkpoint boundary in a
// fresh segment — never leave a sequence gap inside one.
func TestCheckpointNewerThanRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, payloads(10))
	if err := l.SaveCheckpoint([]byte("state at 10")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	segName := l.segments[0].name
	l.Close()
	// The crash eats the whole segment (it was never synced).
	if err := os.Remove(filepath.Join(dir, segName)); err != nil {
		t.Fatalf("removing segment: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	info := re.Info()
	if !info.HasCheckpoint || info.CheckpointSeq != 11 || info.RecordsReplayable != 0 {
		t.Fatalf("recovery info %+v, want checkpoint at 11 and nothing to replay", info)
	}
	seq, err := re.Append([]byte("continues"))
	if err != nil || seq != 11 {
		t.Fatalf("Append = (%d, %v), want seq 11", seq, err)
	}
	if err := re.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	re.Close()

	again, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer again.Close()
	seqs, got := collect(t, again)
	if len(got) != 1 || seqs[0] != 11 || string(got[0]) != "continues" {
		t.Fatalf("replay after gap = (%v, %q)", seqs, got)
	}
}

// TestCheckpointBridgesTruncatedTail is the double-crash regression:
// a torn tail truncated BELOW the checkpoint boundary leaves the stale
// pre-checkpoint segment on disk while appends restart in a fresh
// segment at ckptNext. The second recovery sees a sequence gap between
// the two segments and must treat the checkpoint as bridging it —
// never drop the fresh segment's acknowledged, fsynced records.
func TestCheckpointBridgesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, l, payloads(10))
	if err := l.SaveCheckpoint([]byte("state at 10")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	segName := l.segments[0].name
	l.Close()

	// Crash one: tear the tail mid-record so recovery truncates the
	// segment back below the checkpoint boundary (seq 11).
	segPath := filepath.Join(dir, segName)
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(segPath, fi.Size()-5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	info := re.Info()
	if !info.HasCheckpoint || info.CheckpointSeq != 11 || info.TruncatedSegment == "" || info.RecordsReplayable != 0 {
		t.Fatalf("first recovery info %+v, want truncated tail under checkpoint 11", info)
	}
	// The truncated tail cannot host seq 11 (there would be a gap
	// inside it), so this lands in a fresh segment — while the stale
	// one stays behind until the next prune.
	seq, err := re.Append([]byte("survivor"))
	if err != nil || seq != 11 {
		t.Fatalf("Append = (%d, %v), want seq 11", seq, err)
	}
	if err := re.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	re.Close()

	// Crash two: recovery over [stale 1..9][fresh 11..] must keep the
	// fresh segment — the checkpoint covers the gap.
	again, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	info = again.Info()
	if info.DroppedSegments != 0 {
		t.Fatalf("second recovery dropped %d segment(s): %+v", info.DroppedSegments, info)
	}
	seqs, got := collect(t, again)
	if len(got) != 1 || seqs[0] != 11 || string(got[0]) != "survivor" {
		t.Fatalf("second recovery replay = (%v, %q), want seq 11 %q", seqs, got, "survivor")
	}
	// The sequence keeps extending past the bridge, and a checkpoint
	// finally prunes the stale pre-checkpoint segment away.
	if seq, err := again.Append([]byte("onward")); err != nil || seq != 12 {
		t.Fatalf("Append after bridge = (%d, %v), want seq 12", seq, err)
	}
	if err := again.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := again.SaveCheckpoint([]byte("state at 12")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("stale pre-checkpoint segment survived the prune (err %v)", err)
	}
	again.Close()

	final, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("third recovery: %v", err)
	}
	defer final.Close()
	if info := final.Info(); info.DroppedSegments != 0 || info.RecordsReplayable != 0 || info.CheckpointSeq != 13 {
		t.Fatalf("third recovery info %+v, want clean log under checkpoint 13", info)
	}
}

// TestParseRecordLengthBound pins the corruption guard at exactly
// maxRecordBytes: a hostile length prefix at or past the bound must be
// rejected before any int conversion can overflow on 32-bit platforms.
func TestParseRecordLengthBound(t *testing.T) {
	for _, n := range []uint64{maxRecordBytes, maxRecordBytes - 1, 1<<32 - 1} {
		data := make([]byte, 64)
		data[0] = byte(n)
		data[1] = byte(n >> 8)
		data[2] = byte(n >> 16)
		data[3] = byte(n >> 24)
		if _, _, ok := parseRecord(data, 1); ok {
			t.Fatalf("parseRecord accepted a record claiming %d bytes", n)
		}
	}
}

func TestNoSyncMode(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(Options{Dir: dir, FS: ffs, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// With NoSync, a sync fault can never fire through Sync().
	ffs.Inject(Fault{Op: "sync", Sticky: true})
	appendAll(t, l, payloads(15))
	if ffs.Fired() {
		t.Fatal("NoSync mode issued an fsync on the append path")
	}
	if l.Stats().Syncs != 0 {
		t.Fatalf("Stats counted %d syncs under NoSync", l.Stats().Syncs)
	}
	// Checkpoints still sync: durability of the checkpoint file itself
	// is never traded away.
	ffs.Clear()
	if err := l.SaveCheckpoint([]byte("ck")); err != nil {
		t.Fatalf("SaveCheckpoint under NoSync: %v", err)
	}
	l.Close()

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !re.Info().HasCheckpoint {
		t.Fatal("checkpoint written under NoSync did not survive")
	}
}

func TestEmptyAndFreshDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open on a fresh nested dir: %v", err)
	}
	info := l.Info()
	if info.HasCheckpoint || info.RecordsReplayable != 0 || info.SegmentsScanned != 0 {
		t.Fatalf("fresh dir recovery info %+v", info)
	}
	if seqs, _ := collect(t, l); len(seqs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(seqs))
	}
	seq, err := l.Append([]byte("first"))
	if err != nil || seq != 1 {
		t.Fatalf("first Append = (%d, %v), want seq 1", seq, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.Segments != 1 || st.AppendedRecords != 1 || st.NextSeq != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	l.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log = %v, want ErrClosed", err)
	}
}
