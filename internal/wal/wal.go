package wal

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix  = "wal-"
	segExt     = ".log"
	ckptPrefix = "ckpt-"
	ckptExt    = ".ckpt"
	tmpExt     = ".tmp"

	segHeaderLen  = 16 // magic(8) + first record sequence number(8)
	recHeaderLen  = 4  // payload length prefix
	recTrailerLen = 4  // CRC-32 of seq+payload
	recSeqLen     = 8

	ckptHeaderLen = 28 // magic(8) + nextSeq(8) + payload length(8) + CRC-32(4)

	// defaultSegmentBytes is the rotation threshold: 64 MiB keeps
	// recovery scans and prune deletions bounded without churning
	// files.
	defaultSegmentBytes = 64 << 20

	// maxRecordBytes bounds a record length a reader will believe;
	// anything larger is treated as corruption, not an allocation
	// request.
	maxRecordBytes = 1 << 31
)

var (
	segMagic  = [8]byte{'E', 'D', 'M', 'W', 'A', 'L', '0', '1'}
	ckptMagic = [8]byte{'E', 'D', 'M', 'W', 'C', 'K', '0', '1'}
	// ckptMagicGz marks the compressed checkpoint variant: the header
	// keeps the UNCOMPRESSED payload length and CRC, the body is the
	// gzipped payload. Readers accept both variants regardless of the
	// CompressCheckpoints option, so the flag can be toggled mid-life.
	ckptMagicGz = [8]byte{'E', 'D', 'M', 'W', 'C', 'K', 'G', 'Z'}

	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log is closed")
)

// Options configures a Log.
type Options struct {
	// Dir is the WAL directory. Required; created if missing.
	Dir string
	// SegmentBytes is the size at which a segment is rotated. Zero
	// means the default 64 MiB.
	SegmentBytes int64
	// NoSync disables fsync on Append/Sync and segment rotation: the
	// throughput mode where an acknowledgement only promises the data
	// reached the kernel. Checkpoints are always synced — they are
	// rare and written atomically.
	NoSync bool
	// FS is the filesystem to run on; nil means the real one. Tests
	// inject FaultFS here.
	FS FS
	// CompressCheckpoints writes checkpoints gzip-compressed (the
	// header CRC still covers the uncompressed payload, so corruption
	// detection is unchanged). Either variant is always readable.
	CompressCheckpoints bool
	// OnSegmentSealed, when non-nil, is called on the owner goroutine
	// after a segment is finished by rotation, with the segment's file
	// name and the first sequence number NOT in it. The archive
	// shipper hangs its upload queue here; the hook must not block.
	OnSegmentSealed func(name string, through uint64)
	// OnCheckpointSaved, when non-nil, is called on the owner goroutine
	// after a checkpoint is durably published, with its file name and
	// the first sequence number it does not cover.
	OnCheckpointSaved func(name string, nextSeq uint64)
}

// RecoveryInfo reports what Open found, recovered and dropped. The
// serving daemon logs it and exports it through /v1/stats so an
// operator can see exactly what a crash cost.
type RecoveryInfo struct {
	// HasCheckpoint reports whether a valid checkpoint was loaded.
	HasCheckpoint bool
	// CheckpointSeq is the first record sequence number NOT covered by
	// the loaded checkpoint (meaningful when HasCheckpoint).
	CheckpointSeq uint64
	// CheckpointsSkipped counts newer checkpoint files that failed
	// validation and were bypassed (and removed).
	CheckpointsSkipped int
	// SegmentsScanned counts the log segments examined.
	SegmentsScanned int
	// RecordsReplayable counts the valid records past the checkpoint
	// (the tail Replay will deliver).
	RecordsReplayable int
	// RecordsSkipped counts valid records already covered by the
	// checkpoint.
	RecordsSkipped int
	// TruncatedSegment names the segment whose torn/corrupt tail was
	// cut back to the last valid record ("" when the log was clean).
	TruncatedSegment string
	// DroppedBytes is the total size of invalid data discarded: the
	// truncated tail plus any unreachable later segments.
	DroppedBytes int64
	// DroppedSegments counts whole segments discarded because they sat
	// past a corruption boundary.
	DroppedSegments int
}

// String renders the recovery outcome in one log line.
func (r RecoveryInfo) String() string {
	ck := "no checkpoint"
	if r.HasCheckpoint {
		ck = fmt.Sprintf("checkpoint through seq %d", r.CheckpointSeq-1)
	}
	s := fmt.Sprintf("wal: %s, %d segment(s), %d record(s) to replay", ck, r.SegmentsScanned, r.RecordsReplayable)
	if r.CheckpointsSkipped > 0 {
		s += fmt.Sprintf(", %d corrupt checkpoint(s) skipped", r.CheckpointsSkipped)
	}
	if r.DroppedBytes > 0 || r.DroppedSegments > 0 {
		s += fmt.Sprintf(", dropped %d invalid byte(s)", r.DroppedBytes)
		if r.TruncatedSegment != "" {
			s += " (truncated " + r.TruncatedSegment + ")"
		}
		if r.DroppedSegments > 0 {
			s += fmt.Sprintf(" and %d unreachable segment(s)", r.DroppedSegments)
		}
	}
	return s
}

// Stats is the log's operational telemetry, read by the owner
// goroutine and exported through internal/obs.
type Stats struct {
	// Segments is the number of live segment files.
	Segments int
	// OpenSegmentBytes is the size of the segment being appended to.
	OpenSegmentBytes int64
	// AppendedRecords and AppendedBytes count Append calls and their
	// payload bytes since Open.
	AppendedRecords uint64
	AppendedBytes   uint64
	// Syncs counts fsyncs issued on the open segment.
	Syncs uint64
	// CheckpointSeq is the first sequence number not covered by the
	// newest checkpoint (0 when none exists).
	CheckpointSeq uint64
	// NextSeq is the sequence number the next Append will get.
	NextSeq uint64
}

type segMeta struct {
	firstSeq uint64
	name     string
}

type replayRec struct {
	seq     uint64
	payload []byte
}

// Log is a segmented write-ahead log with checkpoints. Records are
// framed [len u32][seq u64][payload][crc32(seq+payload) u32] inside
// segments that open with a magic header naming their first sequence
// number; sequence numbers are contiguous across segments, so recovery
// can prove it saw every acknowledged record.
//
// All methods must be called from a single owner goroutine (the
// serving daemon's coalescer writer); none of them block on anything
// but the filesystem.
type Log struct {
	fs      FS
	dir     string
	segSize int64
	noSync  bool

	// Append state. cur is nil until the first append after Open (or
	// after a rotation); tail describes the segment appends may
	// continue into.
	cur      File
	curName  string
	curSize  int64
	curDirty bool
	tailOK   bool
	tailName string
	tailSize int64

	nextSeq  uint64
	ckptNext uint64
	ckptBuf  []byte

	segments  []segMeta
	ckptFiles []segMeta // firstSeq field holds the checkpoint's nextSeq

	replay   []replayRec
	replayed bool

	info   RecoveryInfo
	closed bool
	// wedged is set by a failed record write: the on-disk tail is in an
	// unknown state (possibly torn), so every further mutation fails
	// until the log is reopened and recovery repairs the tail.
	wedged error

	appended      uint64
	appendedBytes uint64
	syncs         uint64

	compressCkpt bool
	onSealed     func(name string, through uint64)
	onCkptSaved  func(name string, nextSeq uint64)

	buf []byte
}

// Open scans the WAL directory, loads the newest valid checkpoint
// (falling back across corrupt ones), validates every segment record,
// truncates a torn tail back to the last valid record and removes
// unreachable later segments. It never fails on corruption — damage is
// repaired and reported through RecoveryInfo — only on filesystem
// errors. After Open, read the checkpoint with Checkpoint, stream the
// tail with Replay, then append.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	l := &Log{
		fs:           opts.FS,
		dir:          opts.Dir,
		segSize:      opts.SegmentBytes,
		noSync:       opts.NoSync,
		nextSeq:      1,
		ckptNext:     1,
		compressCkpt: opts.CompressCheckpoints,
		onSealed:     opts.OnSegmentSealed,
		onCkptSaved:  opts.OnCheckpointSaved,
	}
	if l.fs == nil {
		l.fs = OSFS{}
	}
	if l.segSize <= 0 {
		l.segSize = defaultSegmentBytes
	}
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}

	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing directory: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, tmpExt):
			// An interrupted checkpoint write; the rename never
			// happened, so it holds nothing durable.
			_ = l.fs.Remove(filepath.Join(l.dir, name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segExt):
			seq, perr := parseSeq(name, segPrefix, segExt)
			if perr != nil {
				continue
			}
			l.segments = append(l.segments, segMeta{firstSeq: seq, name: name})
		case strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptExt):
			seq, perr := parseSeq(name, ckptPrefix, ckptExt)
			if perr != nil {
				continue
			}
			l.ckptFiles = append(l.ckptFiles, segMeta{firstSeq: seq, name: name})
		}
	}
	sort.Slice(l.segments, func(a, b int) bool { return l.segments[a].firstSeq < l.segments[b].firstSeq })
	sort.Slice(l.ckptFiles, func(a, b int) bool { return l.ckptFiles[a].firstSeq < l.ckptFiles[b].firstSeq })

	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	return l, nil
}

func parseSeq(name, prefix, ext string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext), 16, 64)
}

func segName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segExt) }
func ckptName(seq uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptExt) }

// ParseSegmentFileName reports whether name is a WAL segment file and,
// if so, the sequence number of its first record. Exported for the
// archive layer, which mirrors the directory's naming remotely.
func ParseSegmentFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segExt) {
		return 0, false
	}
	seq, err := parseSeq(name, segPrefix, segExt)
	return seq, err == nil
}

// ParseCheckpointFileName reports whether name is a checkpoint file
// and, if so, the first sequence number it does not cover.
func ParseCheckpointFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt) {
		return 0, false
	}
	seq, err := parseSeq(name, ckptPrefix, ckptExt)
	return seq, err == nil
}

// loadCheckpoint tries checkpoint files newest-first, keeping the
// first that validates and removing the corrupt ones it bypassed.
func (l *Log) loadCheckpoint() error {
	for i := len(l.ckptFiles) - 1; i >= 0; i-- {
		meta := l.ckptFiles[i]
		payload, err := l.readCheckpointFile(meta)
		if err != nil {
			l.info.CheckpointsSkipped++
			_ = l.fs.Remove(filepath.Join(l.dir, meta.name))
			l.ckptFiles = append(l.ckptFiles[:i], l.ckptFiles[i+1:]...)
			continue
		}
		l.ckptBuf = payload
		l.ckptNext = meta.firstSeq
		l.nextSeq = meta.firstSeq
		l.info.HasCheckpoint = true
		l.info.CheckpointSeq = meta.firstSeq
		return nil
	}
	return nil
}

func (l *Log) readCheckpointFile(meta segMeta) ([]byte, error) {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, meta.name), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if len(data) < ckptHeaderLen {
		return nil, fmt.Errorf("wal: checkpoint %s is truncated at %d bytes", meta.name, len(data))
	}
	compressed := false
	switch string(data[:8]) {
	case string(ckptMagic[:]):
	case string(ckptMagicGz[:]):
		compressed = true
	default:
		return nil, fmt.Errorf("wal: checkpoint %s has bad magic", meta.name)
	}
	nextSeq := binary.LittleEndian.Uint64(data[8:16])
	if nextSeq != meta.firstSeq {
		return nil, fmt.Errorf("wal: checkpoint %s names seq %d but holds %d", meta.name, meta.firstSeq, nextSeq)
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("wal: checkpoint %s claims an absurd payload length %d", meta.name, n)
	}
	sum := binary.LittleEndian.Uint32(data[24:28])
	payload := data[ckptHeaderLen:]
	if compressed {
		// The header describes the UNCOMPRESSED payload; a truncated or
		// corrupt gzip body fails here and the checkpoint is skipped
		// like any other damage.
		zr, zerr := gzip.NewReader(bytes.NewReader(payload))
		if zerr != nil {
			return nil, fmt.Errorf("wal: checkpoint %s gzip header: %w", meta.name, zerr)
		}
		plain, rerr := io.ReadAll(io.LimitReader(zr, maxRecordBytes+1))
		if cerr := zr.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return nil, fmt.Errorf("wal: checkpoint %s decompressing: %w", meta.name, rerr)
		}
		payload = plain
	}
	if int64(n) != int64(len(payload)) {
		return nil, fmt.Errorf("wal: checkpoint %s has payload length %d but %d bytes", meta.name, n, len(payload))
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("wal: checkpoint %s CRC mismatch (stored %08x, computed %08x)", meta.name, sum, got)
	}
	return payload, nil
}

// scanSegments validates every record of every segment in order,
// collects the tail past the checkpoint for Replay, truncates at the
// first invalid record and drops everything beyond it.
func (l *Log) scanSegments() error {
	valid := true // records so far form a contiguous valid prefix
	var expect uint64
	for i := 0; i < len(l.segments); i++ {
		meta := l.segments[i]
		if !valid {
			// Past a corruption boundary: these records may be missing
			// predecessors, so they cannot be replayed.
			l.dropSegment(i)
			i--
			continue
		}
		l.info.SegmentsScanned++
		path := filepath.Join(l.dir, meta.name)
		f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return fmt.Errorf("wal: opening segment %s: %w", meta.name, err)
		}
		data, err := io.ReadAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("wal: reading segment %s: %w", meta.name, err)
		}

		headerOK := len(data) >= segHeaderLen && string(data[:8]) == string(segMagic[:]) &&
			binary.LittleEndian.Uint64(data[8:16]) == meta.firstSeq
		if headerOK && expect != 0 && meta.firstSeq != expect {
			// A sequence gap between segments normally proves the later
			// one unreachable — unless the checkpoint covers the gap
			// entirely. That state is left behind when a torn tail is
			// truncated below the checkpoint boundary: appends restart in
			// a fresh segment at ckptNext while the stale pre-checkpoint
			// tail stays on disk until the next prune, and a second crash
			// must not cost the fresh segment's acknowledged records.
			if expect <= l.ckptNext && meta.firstSeq == l.ckptNext {
				expect = meta.firstSeq
			} else {
				headerOK = false
			}
		}
		if !headerOK {
			// Bad or discontiguous header: nothing in this segment is
			// provably part of the acknowledged prefix.
			valid = false
			l.dropSegment(i)
			i--
			continue
		}
		if expect == 0 {
			expect = meta.firstSeq
		}

		off := segHeaderLen
		for off < len(data) {
			rec, n, ok := parseRecord(data[off:], expect)
			if !ok {
				valid = false
				break
			}
			if expect >= l.ckptNext {
				l.replay = append(l.replay, replayRec{seq: expect, payload: append([]byte(nil), rec...)})
				l.info.RecordsReplayable++
			} else {
				l.info.RecordsSkipped++
			}
			expect++
			off += n
		}
		if !valid {
			// Torn or corrupt tail: cut the segment back to its valid
			// prefix and keep appending there.
			l.info.TruncatedSegment = meta.name
			l.info.DroppedBytes += int64(len(data) - off)
			if err := l.fs.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("wal: truncating %s to %d bytes: %w", meta.name, off, err)
			}
			l.tailOK, l.tailName, l.tailSize = true, meta.name, int64(off)
		} else if i == len(l.segments)-1 {
			l.tailOK, l.tailName, l.tailSize = true, meta.name, int64(len(data))
		}
	}

	if expect > l.nextSeq {
		l.nextSeq = expect
	}
	// A checkpoint newer than every surviving record: appends restart
	// at the checkpoint's sequence number, which cannot continue the
	// tail segment (there would be a gap inside it).
	if l.tailOK && expect != 0 && expect < l.nextSeq {
		l.tailOK = false
	}
	return nil
}

// dropSegment removes segment i from disk and the live list.
func (l *Log) dropSegment(i int) {
	meta := l.segments[i]
	path := filepath.Join(l.dir, meta.name)
	if f, err := l.fs.OpenFile(path, os.O_RDONLY, 0); err == nil {
		if data, rerr := io.ReadAll(f); rerr == nil {
			l.info.DroppedBytes += int64(len(data))
		}
		_ = f.Close()
	}
	_ = l.fs.Remove(path)
	l.info.DroppedSegments++
	l.segments = append(l.segments[:i], l.segments[i+1:]...)
}

// parseRecord validates one record at the head of data, expecting the
// given sequence number. It returns the payload view, the total
// framed size and whether the record is valid.
func parseRecord(data []byte, expectSeq uint64) ([]byte, int, bool) {
	if len(data) < recHeaderLen {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[:recHeaderLen])
	if n < recSeqLen || int64(n) >= maxRecordBytes {
		return nil, 0, false
	}
	// Framing arithmetic stays in int64: on 32-bit platforms a hostile
	// length near the bound would overflow int into a negative slice
	// index, and recovery must never panic on corrupt input.
	total64 := int64(recHeaderLen) + int64(n) + int64(recTrailerLen)
	if int64(len(data)) < total64 {
		return nil, 0, false
	}
	total := int(total64)
	body := data[recHeaderLen : recHeaderLen+int(n)]
	sum := binary.LittleEndian.Uint32(data[recHeaderLen+int(n):])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint64(body[:recSeqLen]) != expectSeq {
		return nil, 0, false
	}
	return body[recSeqLen:], total, true
}

// Info returns what recovery found.
func (l *Log) Info() RecoveryInfo { return l.info }

// Checkpoint returns the newest valid checkpoint payload, or nil when
// none exists. The slice is owned by the log; treat it as read-only.
func (l *Log) Checkpoint() []byte { return l.ckptBuf }

// Replay streams the valid records past the checkpoint, in sequence
// order, to fn. It must run (once) before the first Append; fn's
// error aborts the replay and is returned.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	if l.closed {
		return ErrClosed
	}
	for _, rec := range l.replay {
		if err := fn(rec.seq, rec.payload); err != nil {
			return err
		}
	}
	l.replay = nil
	l.replayed = true
	return nil
}

// Append writes one record and returns its sequence number. The
// record is in the page cache when Append returns; call Sync before
// acknowledging it as durable.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged != nil {
		return 0, l.wedged
	}
	recSize := int64(recHeaderLen + recSeqLen + len(payload) + recTrailerLen)
	if l.cur != nil && l.curSize+recSize > l.segSize && l.curSize > segHeaderLen {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	if l.cur == nil {
		if err := l.openForAppend(); err != nil {
			return 0, err
		}
	}

	n := recSeqLen + len(payload)
	need := recHeaderLen + n + recTrailerLen
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need*2)
	}
	buf := l.buf[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))
	binary.LittleEndian.PutUint64(buf[4:12], l.nextSeq)
	copy(buf[12:], payload)
	binary.LittleEndian.PutUint32(buf[12+len(payload):], crc32.ChecksumIEEE(buf[4:12+len(payload)]))

	if _, err := l.cur.Write(buf); err != nil {
		// The write may have landed partially (a torn record): the
		// file is no longer in a state this writer can reason about.
		// Recovery truncates it; this handle is done.
		l.closeCur()
		l.wedged = fmt.Errorf("wal: appending record %d: %w", l.nextSeq, err)
		return 0, l.wedged
	}
	l.curSize += recSize
	l.curDirty = true
	seq := l.nextSeq
	l.nextSeq++
	l.appended++
	l.appendedBytes += uint64(len(payload))
	return seq, nil
}

// Sync makes every appended record durable (no-op under NoSync, and
// when nothing was written since the last sync).
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedged
	}
	if l.noSync || !l.curDirty || l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment %s: %w", l.curName, err)
	}
	l.curDirty = false
	l.syncs++
	return nil
}

// SyncTail fsyncs the segment the next append would continue, even
// when this handle has not written to it yet. The resilient wrapper
// calls it after a reopen when a previous handle appended a record but
// failed the fsync: recovery proved the record is intact in the tail,
// it just is not provably durable. No-op under NoSync or when no tail
// segment exists.
func (l *Log) SyncTail() error {
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedged
	}
	if l.noSync {
		return nil
	}
	if l.cur == nil {
		if !l.tailOK {
			return nil
		}
		if err := l.openForAppend(); err != nil {
			return err
		}
		l.curDirty = true
	}
	return l.Sync()
}

// openForAppend opens the segment the next record belongs in: the
// surviving tail segment when the sequence numbers continue it, a
// fresh segment otherwise.
func (l *Log) openForAppend() error {
	if l.tailOK {
		f, err := l.fs.OpenFile(filepath.Join(l.dir, l.tailName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopening segment %s: %w", l.tailName, err)
		}
		l.cur, l.curName, l.curSize = f, l.tailName, l.tailSize
		l.tailOK = false
		return nil
	}
	name := segName(l.nextSeq)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	var header [segHeaderLen]byte
	copy(header[:8], segMagic[:])
	binary.LittleEndian.PutUint64(header[8:16], l.nextSeq)
	if _, err := f.Write(header[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: writing segment header %s: %w", name, err)
	}
	if !l.noSync {
		if err := l.fs.SyncDir(l.dir); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: syncing directory after creating %s: %w", name, err)
		}
	}
	l.cur, l.curName, l.curSize = f, name, segHeaderLen
	l.curDirty = true
	l.segments = append(l.segments, segMeta{firstSeq: l.nextSeq, name: name})
	return nil
}

// rotate finishes the open segment (synced unless NoSync) so the next
// append starts a new one, then notifies the seal hook: the segment's
// contents are final from here on (only a checkpoint prune removes it).
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	sealed := l.curName
	if err := l.closeCur(); err != nil {
		return err
	}
	if l.onSealed != nil && sealed != "" {
		l.onSealed(sealed, l.nextSeq)
	}
	return nil
}

func (l *Log) closeCur() error {
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	l.curDirty = false
	if err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", l.curName, err)
	}
	return nil
}

// SaveCheckpoint atomically persists a checkpoint covering every
// record appended so far (write to a temporary file, fsync, rename,
// fsync the directory — always synced, even under NoSync), then prunes
// the segments and older checkpoints it supersedes. After a crash,
// recovery loads this checkpoint and replays only records appended
// after this call.
func (l *Log) SaveCheckpoint(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return l.wedged
	}
	covered := l.nextSeq
	final := ckptName(covered)
	tmp := final + tmpExt
	tmpPath := filepath.Join(l.dir, tmp)

	f, err := l.fs.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint %s: %w", tmp, err)
	}
	// The length and CRC always describe the uncompressed payload, so
	// the corruption checks are identical across both variants.
	magic := ckptMagic
	body := payload
	if l.compressCkpt {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, zerr := zw.Write(payload); zerr == nil && zw.Close() == nil {
			magic = ckptMagicGz
			body = zbuf.Bytes()
		}
	}
	var header [ckptHeaderLen]byte
	copy(header[:8], magic[:])
	binary.LittleEndian.PutUint64(header[8:16], covered)
	binary.LittleEndian.PutUint64(header[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[24:28], crc32.ChecksumIEEE(payload))
	_, err = f.Write(header[:])
	if err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = l.fs.Remove(tmpPath)
		return fmt.Errorf("wal: writing checkpoint %s: %w", tmp, err)
	}
	if err := l.fs.Rename(tmpPath, filepath.Join(l.dir, final)); err != nil {
		_ = l.fs.Remove(tmpPath)
		return fmt.Errorf("wal: publishing checkpoint %s: %w", final, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: syncing directory after checkpoint %s: %w", final, err)
	}

	l.ckptNext = covered
	l.ckptFiles = append(l.ckptFiles, segMeta{firstSeq: covered, name: final})
	l.prune()
	if l.onCkptSaved != nil {
		l.onCkptSaved(final, covered)
	}
	return nil
}

// prune removes checkpoints older than the newest and segments whose
// records are all covered by it. Failures are ignored — a leftover
// file costs disk space, not correctness, and the next checkpoint
// retries.
func (l *Log) prune() {
	for len(l.ckptFiles) > 1 {
		old := l.ckptFiles[0]
		if old.firstSeq >= l.ckptNext {
			break
		}
		_ = l.fs.Remove(filepath.Join(l.dir, old.name))
		l.ckptFiles = l.ckptFiles[1:]
	}
	// A segment is removable when the NEXT segment starts at or below
	// the checkpoint boundary (so every record here is covered) — the
	// open segment never is.
	for len(l.segments) > 1 && l.segments[1].firstSeq <= l.ckptNext {
		seg := l.segments[0]
		if seg.name == l.curName && l.cur != nil {
			break
		}
		if l.tailOK && seg.name == l.tailName {
			break
		}
		_ = l.fs.Remove(filepath.Join(l.dir, seg.name))
		l.segments = l.segments[1:]
	}
}

// Stats returns the log's operational counters.
func (l *Log) Stats() Stats {
	return Stats{
		Segments:         len(l.segments),
		OpenSegmentBytes: l.curSize,
		AppendedRecords:  l.appended,
		AppendedBytes:    l.appendedBytes,
		Syncs:            l.syncs,
		CheckpointSeq:    l.ckptNext,
		NextSeq:          l.nextSeq,
	}
}

// Close syncs (unless NoSync) and closes the open segment. The log is
// unusable afterwards. A clean close also fires the seal hook for the
// final segment — it will never grow again, so the archive shipper can
// replace any stale tail copy with the complete one.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil && l.curDirty && !l.noSync {
		if serr := l.cur.Sync(); serr != nil {
			err = fmt.Errorf("wal: syncing segment %s on close: %w", l.curName, serr)
		}
	}
	sealed := ""
	if l.cur != nil {
		sealed = l.curName
	}
	if cerr := l.closeCur(); err == nil {
		err = cerr
	}
	if err == nil && l.onSealed != nil && sealed != "" {
		l.onSealed(sealed, l.nextSeq)
	}
	return err
}
