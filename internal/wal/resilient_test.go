package wal

import (
	"errors"
	"testing"
	"time"
)

// openResilientT opens a ResilientLog over a FaultFS with instant
// backoff, failing the test on error.
func openResilientT(t *testing.T, dir string, ffs *FaultFS, policy RetryPolicy) *ResilientLog {
	t.Helper()
	r, err := OpenResilient(Options{Dir: dir, FS: ffs}, policy)
	if err != nil {
		t.Fatalf("OpenResilient: %v", err)
	}
	r.sleep = func(time.Duration) {}
	return r
}

// reopenAndCollect runs plain recovery on the directory and returns
// every surviving record payload past the checkpoint.
func reopenAndCollect(t *testing.T, dir string) [][]byte {
	t.Helper()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open for verification: %v", err)
	}
	defer l.Close()
	_, recs := collect(t, l)
	return recs
}

// TestResilientRecoversTransientSyncFault: one fsync fails, the
// wrapper reopens and the record comes back durable exactly once.
func TestResilientRecoversTransientSyncFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	r := openResilientT(t, dir, ffs, RetryPolicy{})

	recs := payloads(3)
	if _, err := r.AppendSync(recs[0]); err != nil {
		t.Fatalf("AppendSync(0): %v", err)
	}
	ffs.Inject(Fault{Op: "sync"}) // one-shot: the next fsync fails
	seq, err := r.AppendSync(recs[1])
	if err != nil {
		t.Fatalf("AppendSync(1) across transient sync fault: %v", err)
	}
	if seq != 2 {
		t.Fatalf("record after retry got seq %d, want 2 (no duplicate)", seq)
	}
	if !ffs.Fired() {
		t.Fatal("fault never fired; the test exercised nothing")
	}
	if r.Retries() == 0 || r.Reopens() == 0 {
		t.Fatalf("retry telemetry empty: retries=%d reopens=%d", r.Retries(), r.Reopens())
	}
	if _, err := r.AppendSync(recs[2]); err != nil {
		t.Fatalf("AppendSync(2) after recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got := reopenAndCollect(t, dir)
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3 (retry must not duplicate)", len(got))
	}
	for i := range got {
		if string(got[i]) != string(recs[i]) {
			t.Fatalf("record %d corrupted by retry", i)
		}
	}
}

// TestResilientRecoversTornWrite: a torn append is truncated by the
// reopen and the record is written again, once.
func TestResilientRecoversTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	r := openResilientT(t, dir, ffs, RetryPolicy{})

	recs := payloads(2)
	if _, err := r.AppendSync(recs[0]); err != nil {
		t.Fatalf("AppendSync(0): %v", err)
	}
	ffs.Inject(Fault{Op: "write", Torn: 7}) // write 7 bytes, then "crash"
	if _, err := r.AppendSync(recs[1]); err != nil {
		t.Fatalf("AppendSync(1) across torn write: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got := reopenAndCollect(t, dir)
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	if string(got[1]) != string(recs[1]) {
		t.Fatal("torn-then-retried record corrupted")
	}
}

// TestResilientExhaustsOnStickyFault: a dead disk drains the attempt
// budget, the error surfaces, and a later Reopen (after the fault
// clears) brings the log back — the server's degraded-mode probe path.
func TestResilientExhaustsOnStickyFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	r := openResilientT(t, dir, ffs, RetryPolicy{MaxAttempts: 3})

	if _, err := r.AppendSync([]byte("healthy")); err != nil {
		t.Fatalf("AppendSync healthy: %v", err)
	}
	ffs.Inject(Fault{Op: "sync", Sticky: true})
	if _, err := r.AppendSync([]byte("doomed")); err == nil {
		t.Fatal("AppendSync succeeded under a sticky sync fault")
	}
	if r.Healthy() {
		t.Fatal("log reports healthy after exhausting its attempts")
	}
	if err := r.SaveCheckpoint([]byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("SaveCheckpoint while unavailable: %v, want ErrUnavailable", err)
	}

	ffs.Clear()
	if err := r.Reopen(); err != nil {
		t.Fatalf("Reopen after fault cleared: %v", err)
	}
	if !r.Healthy() {
		t.Fatal("log not healthy after Reopen")
	}
	seq, err := r.AppendSync([]byte("recovered"))
	if err != nil {
		t.Fatalf("AppendSync after recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got := reopenAndCollect(t, dir)
	// "healthy" at seq 1, "recovered" at some later seq; "doomed" must
	// be absent or identical to a record that was never acknowledged —
	// the contract is only that acknowledged records survive and the
	// final append is the last record.
	if len(got) == 0 || string(got[len(got)-1]) != "recovered" {
		t.Fatalf("final record = %q records=%d, want \"recovered\"", got[len(got)-1], len(got))
	}
	if string(got[0]) != "healthy" {
		t.Fatalf("first record = %q, want \"healthy\"", got[0])
	}
	if seq != uint64(len(got)) {
		t.Fatalf("last ack seq %d but %d records on disk", seq, len(got))
	}
}

// TestRetryPolicyBackoffBounds: the jittered backoff stays within
// [d/2, d] of the capped exponential schedule.
func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 8 * time.Millisecond, MaxDelay: 50 * time.Millisecond}.withDefaults()
	want := []time.Duration{8, 16, 32, 50, 50} // ms, pre-jitter, capped
	for i, w := range want {
		w *= time.Millisecond
		for trial := 0; trial < 32; trial++ {
			got := p.Backoff(i + 1)
			if got < w/2 || got > w {
				t.Fatalf("Backoff(%d) = %v outside [%v, %v]", i+1, got, w/2, w)
			}
		}
	}
}

// TestFaultFSDelay: a pure Delay fault stalls the operation without
// failing it.
func TestFaultFSDelay(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("warm")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	ffs.Inject(Fault{Op: "sync", Sticky: true, Delay: 30 * time.Millisecond})
	if _, err := l.Append([]byte("slow")); err != nil {
		t.Fatalf("Append under delay fault: %v", err)
	}
	begin := time.Now()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync under delay fault must succeed, got: %v", err)
	}
	if took := time.Since(begin); took < 25*time.Millisecond {
		t.Fatalf("delayed sync returned in %v, want >= ~30ms", took)
	}
	if !ffs.Fired() {
		t.Fatal("delay fault did not report fired")
	}
}
