// Package wal implements the durability subsystem: a segmented,
// CRC-checked, length-prefixed write-ahead log of acknowledged ingest
// batches plus snapshot checkpoints of the engine state. The serving
// daemon appends every coalesced batch before committing it to the
// engine and fsyncs before acknowledging, so an HTTP 200 means the
// batch survives a crash; recovery loads the newest valid checkpoint
// and replays the log tail through the normal ingest path, which —
// because the engine is deterministic — rebuilds a state
// byte-identical to an uninterrupted run.
//
// The on-disk layout of a WAL directory:
//
//	wal-<seq16hex>.log    log segments; the hex is the sequence
//	                      number of the segment's first record
//	ckpt-<seq16hex>.ckpt  checkpoints; the hex is the first sequence
//	                      number NOT covered by the checkpoint
//	*.tmp                 in-flight checkpoint writes (removed at open)
//
// Both record and checkpoint payloads are opaque to this package.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the log runs on. Production uses the
// operating system (OSFS); the fault-injection harness (FaultFS)
// wraps it to deliver torn writes, short writes and errors at the Nth
// operation, which is how the crash-consistency tests drive the
// recovery paths without real crashes.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts the named file to the given size.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making entry
	// creations/renames/removals durable.
	SyncDir(name string) error
}

// File is the per-file surface the log needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OSFS is the real operating-system filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// ReadDir lists the directory sorted by name. os.ReadDir sorts already,
// but recovery's segment/checkpoint ordering depends on it, so the
// contract is enforced here rather than inherited.
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	sortDirEntries(entries)
	return entries, nil
}

// sortDirEntries pins the FS.ReadDir name-order contract for every
// implementation, independent of what the underlying listing returns.
func sortDirEntries(entries []os.DirEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
}

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
