package wal

import (
	"errors"
	"os"
	"sync"
	"time"
)

// ErrInjected is the default error a FaultFS fault surfaces.
var ErrInjected = errors.New("wal: injected fault")

// Fault describes one injected failure: the Nth operation of the given
// kind fails. A torn write still writes the first Torn bytes before
// reporting the error, modeling a crash mid-write; Sticky makes every
// subsequent matching operation fail too, modeling a dead disk (or the
// tail of a process that never got to run again).
type Fault struct {
	// Op is the operation kind to fail: "write", "sync", "create",
	// "rename", "remove", "truncate" or "syncdir".
	Op string
	// After is how many matching operations succeed before the fault
	// fires (0 fails the first one).
	After int
	// Torn, for write faults, is the number of bytes actually written
	// by the failing call before the error (a torn write). Negative
	// writes nothing (a clean error).
	Torn int
	// Err is the error to return; nil means ErrInjected — except when
	// Delay is set, where a nil Err makes the fault a pure slowdown.
	Err error
	// Sticky keeps the fault armed after it fires.
	Sticky bool
	// Delay stalls the matching operation before it proceeds. With a
	// nil Err the operation then succeeds — the slow-disk model the
	// overload drill uses to pin a server's ingest capacity — otherwise
	// it fails after the stall. Usually combined with Sticky.
	Delay time.Duration
}

// FaultFS wraps an FS and injects failures. It is the fault harness of
// the crash-consistency test suite: the log cannot tell it from a real
// filesystem, so every recovery path can be driven deterministically.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	fault  *Fault
	counts map[string]int
	fired  bool
}

// NewFaultFS wraps inner (nil means the OS filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, counts: map[string]int{}}
}

// Inject arms a fault, replacing any previous one and resetting the
// operation counters.
func (f *FaultFS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = &fault
	f.counts = map[string]int{}
	f.fired = false
}

// Clear disarms the current fault.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = nil
	f.fired = false
}

// Fired reports whether the armed fault has fired at least once.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// check consumes one operation of the given kind and reports whether
// it must fail (and with what error). A fired fault's Delay stalls the
// caller outside the lock before the verdict applies.
func (f *FaultFS) check(op string) (bool, error) {
	fail, delay, err := f.eval(op)
	if delay > 0 {
		time.Sleep(delay)
	}
	return fail, err
}

func (f *FaultFS) eval(op string) (bool, time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fault := f.fault
	if fault == nil || fault.Op != op {
		return false, 0, nil
	}
	n := f.counts[op]
	f.counts[op] = n + 1
	if n < fault.After || (f.fired && !fault.Sticky) {
		return false, 0, nil
	}
	f.fired = true
	if fault.Err == nil && fault.Delay > 0 {
		// A pure slow-disk fault: stall, then let the operation through.
		return false, fault.Delay, nil
	}
	err := fault.Err
	if err == nil {
		err = ErrInjected
	}
	return true, fault.Delay, err
}

// tornBytes returns the armed fault's Torn budget (write faults only).
func (f *FaultFS) tornBytes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fault == nil {
		return 0
	}
	return f.fault.Torn
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if fail, err := f.check("create"); fail {
			return nil, err
		}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if fail, err := f.check("rename"); fail {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if fail, err := f.check("remove"); fail {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir sorts explicitly rather than trusting the wrapped FS: a test
// double with arbitrary listing order must not leak unsorted entries
// into recovery's segment ordering.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	entries, err := f.inner.ReadDir(name)
	if err != nil {
		return nil, err
	}
	sortDirEntries(entries)
	return entries, nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if fail, err := f.check("truncate"); fail {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(name string) error {
	if fail, err := f.check("syncdir"); fail {
		return err
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	if fail, err := f.fs.check("write"); fail {
		// A torn write: part of the buffer reaches the file before the
		// "crash". The caller sees the error; the bytes are on disk for
		// the next recovery to trip over.
		if torn := f.fs.tornBytes(); torn > 0 {
			n := torn
			if n > len(p) {
				n = len(p)
			}
			written, werr := f.inner.Write(p[:n])
			if werr != nil {
				return written, werr
			}
			return written, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if fail, err := f.fs.check("sync"); fail {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
