package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// ErrUnavailable is returned by operations on a ResilientLog whose
// handle was invalidated by an exhausted retry loop and has not been
// reopened yet.
var ErrUnavailable = errors.New("wal: log unavailable (reopen pending)")

// RetryPolicy bounds a ResilientLog's transient-fault handling: how
// many times a durable append is attempted and how the backoff between
// attempts grows.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per record, including
	// the first. Zero means the default 3; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Zero means the
	// default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means the default
	// 500ms.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	return p
}

// Backoff returns the sleep before retry number attempt (1-based):
// exponential growth from BaseDelay capped at MaxDelay, with uniform
// jitter in [d/2, d] so synchronized retriers spread out.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// ResilientLog wraps a Log with a bounded retry-with-backoff policy
// around the durable-append path. A failed write wedges a plain Log
// until it is reopened and recovery repairs the tail; ResilientLog
// does exactly that automatically — close the broken handle, back off,
// re-run Open on the same directory, retry the record — so a transient
// disk hiccup costs latency, not the process. When every attempt fails
// the error comes back to the caller, which decides what degraded mode
// looks like (the serving daemon flips ingest into read-only 503s).
//
// Like Log, all mutating methods must be called from a single owner
// goroutine; only Retries, Reopens and Healthy are safe elsewhere.
type ResilientLog struct {
	opts   Options
	policy RetryPolicy
	log    *Log // nil while a failure has the handle invalidated
	info   RecoveryInfo

	// sleep is the backoff clock; tests swap it out.
	sleep func(time.Duration)

	retries atomic.Uint64
	reopens atomic.Uint64
}

// OpenResilient opens the WAL like Open and wraps it in the retry
// policy. Boot-time recovery (Checkpoint, Replay) runs on the inner
// log as usual before the first append.
func OpenResilient(opts Options, policy RetryPolicy) (*ResilientLog, error) {
	l, err := Open(opts)
	if err != nil {
		return nil, err
	}
	return &ResilientLog{
		opts:   opts,
		policy: policy.withDefaults(),
		log:    l,
		info:   l.Info(),
		sleep:  time.Sleep,
	}, nil
}

// Info returns what boot-time recovery found (reopens do not change
// it: the engine already holds everything they would report).
func (r *ResilientLog) Info() RecoveryInfo { return r.info }

// Checkpoint returns the newest valid checkpoint payload loaded at
// boot, or nil.
func (r *ResilientLog) Checkpoint() []byte { return r.log.Checkpoint() }

// Replay streams the boot-time replay tail; see Log.Replay.
func (r *ResilientLog) Replay(fn func(seq uint64, payload []byte) error) error {
	return r.log.Replay(fn)
}

// Stats returns the inner log's counters (zero while unavailable).
func (r *ResilientLog) Stats() Stats {
	if r.log == nil {
		return Stats{}
	}
	return r.log.Stats()
}

// SaveCheckpoint persists a checkpoint through the inner log. No retry
// loop: checkpoints are an optimization the caller already tolerates
// failing (the log still covers everything), so the error just reports
// the attempt.
func (r *ResilientLog) SaveCheckpoint(payload []byte) error {
	if r.log == nil {
		return ErrUnavailable
	}
	return r.log.SaveCheckpoint(payload)
}

// Healthy reports whether the log currently holds a usable handle.
func (r *ResilientLog) Healthy() bool { return r.log != nil && r.log.wedged == nil }

// Retries counts backoff-and-retry rounds taken by AppendSync.
func (r *ResilientLog) Retries() uint64 { return r.retries.Load() }

// Reopens counts successful recovery reopens of the directory.
func (r *ResilientLog) Reopens() uint64 { return r.reopens.Load() }

// Reopen discards the current handle (if any) and re-runs Open's full
// recovery on the directory, repairing whatever tail damage the
// failure left. The checkpoint and replay tail recovery finds are
// discarded — a mid-flight reopen continues an engine that already
// holds everything acknowledged. The degraded-mode probe calls this
// directly.
func (r *ResilientLog) Reopen() error {
	r.invalidate()
	l, err := Open(r.opts)
	if err != nil {
		return err
	}
	l.replay = nil
	l.replayed = true
	r.log = l
	r.reopens.Add(1)
	return nil
}

func (r *ResilientLog) invalidate() {
	if r.log != nil {
		_ = r.log.Close()
		r.log = nil
	}
}

// AppendSync appends one record and makes it durable, retrying
// transient failures under the policy. Every failure invalidates the
// handle and the next attempt reopens the directory, so recovery
// truncates a torn append before the record is written again. A record
// that fully reached the file but failed its fsync is detected by its
// sequence number surviving recovery and is fsynced in place instead
// of appended again — retries never duplicate records. The returned
// error (after MaxAttempts) means the record is not durable and the
// log is left without a handle; Reopen brings it back.
func (r *ResilientLog) AppendSync(payload []byte) (uint64, error) {
	var lastErr error
	var landed uint64 // seq of a complete append whose fsync failed
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			r.sleep(r.policy.Backoff(attempt))
		}
		if r.log == nil || r.log.wedged != nil {
			if err := r.Reopen(); err != nil {
				lastErr = err
				continue
			}
		}
		if landed != 0 && r.log.Stats().NextSeq > landed {
			// The record survived recovery intact; only the fsync is
			// outstanding.
			if err := r.log.SyncTail(); err != nil {
				lastErr = err
				r.invalidate()
				continue
			}
			return landed, nil
		}
		landed = 0
		seq, err := r.log.Append(payload)
		if err != nil {
			lastErr = err // the handle is wedged; the next attempt reopens
			continue
		}
		if err := r.log.Sync(); err != nil {
			lastErr = err
			landed = seq
			r.invalidate() // durable state unknown; recovery decides
			continue
		}
		return seq, nil
	}
	r.invalidate()
	return 0, fmt.Errorf("wal: record not durable after %d attempt(s): %w", r.policy.MaxAttempts, lastErr)
}

// Close closes the underlying handle if one is open.
func (r *ResilientLog) Close() error {
	if r.log == nil {
		return nil
	}
	err := r.log.Close()
	r.log = nil
	return err
}
