package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Shared HTTP retry/backoff for the experiments' clients (the e2e
// warm-up, the wal drill and the overload drill). The retry contract
// is deliberately narrow: only clean shed responses — 429/503, where
// the server definitively committed nothing — are retried, honoring
// the Retry-After hint when present. Transport errors are returned
// immediately: a lost response leaves the commit ambiguous, and the
// drills' exact acked-points accounting cannot tolerate a blind
// replay that might duplicate a batch.

// shedReply is a parsed 429/503 rejection: the machine-readable
// reason and retry hint the server attaches to every shed.
type shedReply struct {
	Status            int
	Reason            string
	RetryAfterSeconds int
}

// parseShed classifies one response, returning nil for anything that
// is not a shed status. The hint is read from the Retry-After header
// with the JSON body's retry_after_seconds as fallback.
func parseShed(status int, header http.Header, body []byte) *shedReply {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return nil
	}
	s := &shedReply{Status: status}
	if ra, err := strconv.Atoi(header.Get("Retry-After")); err == nil {
		s.RetryAfterSeconds = ra
	}
	var payload struct {
		Reason            string `json:"reason"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if json.Unmarshal(body, &payload) == nil {
		s.Reason = payload.Reason
		if s.RetryAfterSeconds == 0 {
			s.RetryAfterSeconds = payload.RetryAfterSeconds
		}
	}
	return s
}

// backoffDelay is the jittered exponential backoff every bench client
// shares: base doubled per attempt, capped at max, jittered into
// [d/2, d] so synchronized clients decorrelate. A nil rng falls back
// to the goroutine-safe global source.
func backoffDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	jitter := int64(d/2) + 1
	if rng != nil {
		return d/2 + time.Duration(rng.Int63n(jitter))
	}
	return d/2 + time.Duration(rand.Int63n(jitter))
}

// doPost issues one POST of a pre-rendered JSON body and drains the
// response, returning status, headers and body.
func doPost(client *http.Client, url string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

// postShedRetry POSTs until a 200, retrying shed responses with the
// shared backoff (preferring the server's Retry-After hint when it is
// under the cap) and failing on anything else. Returns the 200 body.
func postShedRetry(client *http.Client, url string, body []byte, attempts int, base, max time.Duration, rng *rand.Rand) ([]byte, error) {
	var last *shedReply
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := backoffDelay(attempt, base, max, rng)
			if last != nil && last.RetryAfterSeconds > 0 {
				if hint := time.Duration(last.RetryAfterSeconds) * time.Second; hint > delay && hint <= max {
					delay = hint
				}
			}
			time.Sleep(delay)
		}
		status, header, raw, err := doPost(client, url, body)
		if err != nil {
			return nil, err
		}
		if status == http.StatusOK {
			return raw, nil
		}
		if shed := parseShed(status, header, raw); shed != nil {
			last = shed
			continue
		}
		return nil, fmt.Errorf("bench: %s status %d: %s", url, status, raw)
	}
	return nil, fmt.Errorf("bench: %s still shed after %d attempts (last: %d %s)", url, attempts, last.Status, last.Reason)
}

// getShedRetry GETs until a 200 with the same shed-only retry rule.
func getShedRetry(client *http.Client, url string, attempts int, base, max time.Duration, rng *rand.Rand) ([]byte, error) {
	var last *shedReply
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffDelay(attempt, base, max, rng))
		}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return raw, nil
		}
		if shed := parseShed(resp.StatusCode, resp.Header, raw); shed != nil {
			last = shed
			continue
		}
		return nil, fmt.Errorf("bench: %s status %d: %s", url, resp.StatusCode, raw)
	}
	return nil, fmt.Errorf("bench: %s still shed after %d attempts (last: %d %s)", url, attempts, last.Status, last.Reason)
}

// waitUntil polls cond every interval until it reports done, the
// condition errors, or the timeout passes.
func waitUntil(timeout, every time.Duration, what string, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := cond()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(every)
	}
}
