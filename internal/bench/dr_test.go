package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunDRSmoke runs the full disaster-recovery drill at a small
// scale: a durable child shipping to a fault-injected remote, a total
// outage that must not fail an ack, SIGKILL plus rm -rf of the data
// directory, and a restore-from-archive restart verified
// byte-identical. Every contract violation is an error from RunDR, so
// most of the assertion weight is inside the drill itself.
func TestRunDRSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning disaster drill in -short mode")
	}
	s := Scale{Points: 4096, Seed: 1, Rate: 1000}
	rep, err := RunDR(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-dr/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.AckedPoints == 0 || rep.OutageAckedPoints == 0 {
		t.Errorf("drill acked %d points (%d during the outage); both must be positive", rep.AckedPoints, rep.OutageAckedPoints)
	}
	if rep.ArchivedThroughSeq == 0 {
		t.Error("nothing was archived before the kill")
	}
	if rep.ArchiveFailed == 0 || rep.ArchiveRetried == 0 {
		t.Errorf("the flaky remote never forced a retry: failed=%d retried=%d", rep.ArchiveFailed, rep.ArchiveRetried)
	}
	if rep.CompressionRatio <= 0 || rep.CompressionRatio >= 1 {
		t.Errorf("compression ratio = %g, want in (0, 1)", rep.CompressionRatio)
	}
	if rep.RecoveredPoints == 0 || rep.RecoveredPoints%e2eIngestBatch != 0 {
		t.Errorf("recovered %d points: zero or not whole batches", rep.RecoveredPoints)
	}
	if rep.RestoreCheckpoints == 0 || rep.RestoreSegments == 0 {
		t.Errorf("restore downloaded %d checkpoints, %d segments; want both positive", rep.RestoreCheckpoints, rep.RestoreSegments)
	}
	if !rep.SnapshotIdentical {
		t.Error("restored snapshot not verified byte-identical")
	}
	if rep.RestartWallSeconds <= 0 || rep.RestartWallSeconds >= rep.RecoveryBudgetSeconds {
		t.Errorf("restart wall = %gs against a %gs budget", rep.RestartWallSeconds, rep.RecoveryBudgetSeconds)
	}
	if want := rep.RecoveredPoints + drLiveBatches*e2eIngestBatch; rep.PostRestartPoints != want {
		t.Errorf("post-restore points = %d, want %d", rep.PostRestartPoints, want)
	}
	if FormatDR(rep) == "" {
		t.Error("empty formatted report")
	}

	path := filepath.Join(t.TempDir(), "BENCH_recovery.json")
	if err := WriteDRJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back DRReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact not round-trippable: %v", err)
	}
	if back.RecoveredPoints != rep.RecoveredPoints || back.Schema != rep.Schema {
		t.Errorf("artifact round-trip mismatch: %+v", back)
	}
}
