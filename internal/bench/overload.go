package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/server"
	"github.com/densitymountain/edmstream/internal/wal"
)

// This file holds the overload chaos drill: a real child edmserved
// process on a deliberately slow disk is driven at several times its
// ingest capacity while the disk dies and comes back, and the
// resilience layer must hold its contract — every 200-acked point
// survives a graceful drain and restart, every refused request is a
// clean 429/503 with a Retry-After hint, the server degrades and
// recovers automatically, and nothing is silently dropped
// (BENCH_overload.json).

const (
	// overloadChildEnv marks a process as the overload drill's serving
	// child; cmd/edmbench and the bench test binary divert to
	// RunOverloadChild when it is set, before any flag parsing.
	overloadChildEnv = "EDMBENCH_OVERLOAD_CHILD"
	// overloadSlowSync is the baseline injected fsync stall: the slow
	// disk that pins the child's ingest capacity low enough for the
	// parent to overload it 4x from ordinary goroutines.
	overloadSlowSync = 40 * time.Millisecond
	// overloadPtsPerReq is the points per ingest request; small so
	// admission decisions happen at request, not batch, granularity.
	overloadPtsPerReq = 16
	// overloadWriters is the closed-loop writer count of the overload
	// phase (the calibration phase uses 2).
	overloadWriters = 16
	// overloadWarmup covers the engine's InitPoints so the DP-Tree is
	// built before any measurement.
	overloadWarmup = 1024
)

// OverloadReport is the JSON-serializable outcome of the drill.
type OverloadReport struct {
	Schema           string  `json:"schema"`
	Seed             int64   `json:"seed"`
	PointsPerRequest int     `json:"points_per_request"`
	Writers          int     `json:"writers"`
	SlowSyncMillis   float64 `json:"slow_sync_millis"`

	// CapacityPointsPerSec is the calibrated goodput of 2 polite
	// writers against the slow disk; OfferedPointsPerSec is what the
	// overload phase threw at the server, OverloadFactor their ratio
	// (the drill requires >= 4).
	CapacityPointsPerSec float64 `json:"capacity_points_per_sec"`
	OfferedPointsPerSec  float64 `json:"offered_points_per_sec"`
	OverloadFactor       float64 `json:"overload_factor"`

	// GoodputPointsPerSec is the acknowledged-point rate the server
	// sustained through the overload phase (faults included).
	GoodputPointsPerSec float64 `json:"goodput_points_per_sec"`
	WallSeconds         float64 `json:"wall_seconds"`
	AckedRequests       int64   `json:"acked_requests"`
	AckedPoints         int64   `json:"acked_points"`
	Shed429             int64   `json:"shed_429"`
	Shed503             int64   `json:"shed_503"`
	// ShedRate is shed requests over all overload-phase requests.
	ShedRate float64 `json:"shed_rate"`
	// Accepted-request latency quantiles (microseconds): what a
	// request that made it through admission paid end to end.
	AcceptedP50Micros float64 `json:"accepted_p50_micros"`
	AcceptedP99Micros float64 `json:"accepted_p99_micros"`

	// DegradedSeconds is how long the server sat in degraded mode;
	// RecoverySeconds the lag from the disk healing to the server
	// reporting healthy again (the probe's detection latency).
	DegradedSeconds   float64 `json:"degraded_seconds"`
	RecoverySeconds   float64 `json:"recovery_seconds"`
	DegradedEntered   uint64  `json:"degraded_entered"`
	DegradedRecovered uint64  `json:"degraded_recovered"`

	// TotalAckedPoints counts every 200 across all phases;
	// RecoveredPoints is what a restarted child holds after the
	// graceful drain — the drill requires them EQUAL.
	TotalAckedPoints int64 `json:"total_acked_points"`
	RecoveredPoints  int64 `json:"recovered_points"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// overloadStatsBody is the slice of GET /v1/stats the drill consumes.
type overloadStatsBody struct {
	Engine struct {
		Points int64 `json:"Points"`
	} `json:"engine"`
	Server struct {
		Degraded  bool `json:"degraded"`
		Admission struct {
			DegradedEntered   uint64 `json:"degraded_entered"`
			DegradedRecovered uint64 `json:"degraded_recovered"`
		} `json:"admission"`
	} `json:"server"`
}

func overloadStats(client *http.Client, base string) (overloadStatsBody, error) {
	raw, err := getShedRetry(client, base+"/v1/stats", 4, 10*time.Millisecond, time.Second, nil)
	if err != nil {
		return overloadStatsBody{}, err
	}
	var st overloadStatsBody
	if err := json.Unmarshal(raw, &st); err != nil {
		return overloadStatsBody{}, fmt.Errorf("bench: stats response: %w", err)
	}
	return st, nil
}

// overloadBodies pre-renders ingest bodies WITHOUT ids or times (the
// server stamps its own monotone stream clock), so the writers can
// cycle them indefinitely.
func overloadBodies(seed int64, rate float64) ([][]byte, error) {
	pts := ServeStream(64*overloadPtsPerReq, seed, rate)
	type wirePt struct {
		Vector []float64 `json:"vector"`
	}
	bodies := make([][]byte, 0, len(pts)/overloadPtsPerReq)
	batch := make([]wirePt, overloadPtsPerReq)
	for b := 0; b+overloadPtsPerReq <= len(pts); b += overloadPtsPerReq {
		for i := range batch {
			batch[i] = wirePt{Vector: pts[b+i].Vector}
		}
		raw, err := json.Marshal(batch)
		if err != nil {
			return nil, fmt.Errorf("bench: rendering overload body: %w", err)
		}
		bodies = append(bodies, raw)
	}
	return bodies, nil
}

// RunOverload drives the overload drill end to end. s supplies the
// seed and rate; the traffic volume is governed by the drill's phases,
// not s.Points.
func RunOverload(s Scale) (OverloadReport, error) {
	exe, err := os.Executable()
	if err != nil {
		return OverloadReport{}, fmt.Errorf("bench: locating own executable for the overload child: %w", err)
	}
	base, err := os.MkdirTemp("", "edmbench-overload-")
	if err != nil {
		return OverloadReport{}, err
	}
	defer os.RemoveAll(base)
	dataDir := filepath.Join(base, "data")
	addrFile := filepath.Join(base, "addr")

	bodies, err := overloadBodies(s.Seed, s.Rate)
	if err != nil {
		return OverloadReport{}, err
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        overloadWriters + 4,
		MaxIdleConnsPerHost: overloadWriters + 4,
	}}

	startChild := func() (*benchChild, error) {
		return startBenchChild(exe, []string{
			overloadChildEnv + "=1",
			"EDMBENCH_OVERLOAD_DIR=" + dataDir,
			"EDMBENCH_OVERLOAD_ADDR_FILE=" + addrFile,
			fmt.Sprintf("EDMBENCH_OVERLOAD_RATE=%g", s.Rate),
			fmt.Sprintf("EDMBENCH_OVERLOAD_SLOW_MS=%d", overloadSlowSync.Milliseconds()),
		}, addrFile)
	}
	child, err := startChild()
	if err != nil {
		return OverloadReport{}, err
	}
	childUp := true
	defer func() {
		if childUp {
			_ = child.cmd.Process.Kill()
			<-child.wait
		}
	}()
	url := "http://" + child.addr

	rep := OverloadReport{
		Schema:           "edmstream-overload/v1",
		Seed:             s.Seed,
		PointsPerRequest: overloadPtsPerReq,
		Writers:          overloadWriters,
		SlowSyncMillis:   float64(overloadSlowSync.Milliseconds()),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
	}
	var totalAcked atomic.Int64 // points acked across every phase

	// Warm-up: one polite writer past InitPoints.
	for sent := 0; sent < overloadWarmup; sent += overloadPtsPerReq {
		if _, err := postShedRetry(client, url+"/v1/ingest", bodies[(sent/overloadPtsPerReq)%len(bodies)], 8, 10*time.Millisecond, time.Second, nil); err != nil {
			return rep, fmt.Errorf("bench: overload warm-up: %w", err)
		}
		totalAcked.Add(overloadPtsPerReq)
	}

	// Calibration: 2 polite writers for a short window fix the slow
	// disk's sustainable goodput — the capacity the overload phase
	// must exceed 4x.
	calibrated, err := overloadClosedLoop(client, url, bodies, 2, 900*time.Millisecond)
	if err != nil {
		return rep, err
	}
	totalAcked.Add(calibrated.ackedPoints)
	if calibrated.wall <= 0 || calibrated.ackedPoints == 0 {
		return rep, errors.New("bench: calibration measured no goodput")
	}
	rep.CapacityPointsPerSec = float64(calibrated.ackedPoints) / calibrated.wall.Seconds()

	// Overload phase: saturating writers, and mid-phase the disk dies
	// (SIGUSR1) and later heals back to merely slow (SIGUSR2).
	stop := make(chan struct{})
	res := newOverloadCounters()
	var writerErr atomic.Value
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < overloadWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := overloadWriter(client, url, bodies, int64(w), stop, res); err != nil {
				writerErr.CompareAndSwap(nil, err)
			}
		}(w)
	}
	fail := func(err error) (OverloadReport, error) {
		close(stop)
		wg.Wait()
		return rep, err
	}

	// Let pure overload sheds accumulate against a healthy-but-slow
	// disk before any fault.
	if err := waitUntil(10*time.Second, 10*time.Millisecond, "a 429 overload shed", func() (bool, error) {
		return res.shed429.Load() > 0 && time.Since(begin) > 600*time.Millisecond, nil
	}); err != nil {
		return fail(err)
	}

	// The disk dies.
	if err := child.cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		return fail(fmt.Errorf("bench: arming the disk fault: %w", err))
	}
	var tDegraded time.Time
	if err := waitUntil(10*time.Second, 10*time.Millisecond, "the server to report degraded", func() (bool, error) {
		st, err := overloadStats(client, url)
		if err != nil {
			return false, err
		}
		if st.Server.Degraded {
			tDegraded = time.Now()
		}
		return st.Server.Degraded, nil
	}); err != nil {
		return fail(err)
	}
	time.Sleep(400 * time.Millisecond) // collect degraded-mode 503s

	// The disk heals (back to merely slow); the recovery probe must
	// notice without a restart.
	tClear := time.Now()
	if err := child.cmd.Process.Signal(syscall.SIGUSR2); err != nil {
		return fail(fmt.Errorf("bench: clearing the disk fault: %w", err))
	}
	var tRecovered time.Time
	if err := waitUntil(15*time.Second, 10*time.Millisecond, "the server to recover", func() (bool, error) {
		st, err := overloadStats(client, url)
		if err != nil {
			return false, err
		}
		if !st.Server.Degraded {
			tRecovered = time.Now()
		}
		return !st.Server.Degraded, nil
	}); err != nil {
		return fail(err)
	}
	rep.DegradedSeconds = tRecovered.Sub(tDegraded).Seconds()
	rep.RecoverySeconds = tRecovered.Sub(tClear).Seconds()

	// Post-recovery goodput: at least one fresh ack proves the
	// recovered server commits again.
	ackedAtRecovery := res.ackedReqs.Load()
	if err := waitUntil(15*time.Second, 10*time.Millisecond, "a post-recovery ack", func() (bool, error) {
		return res.ackedReqs.Load() > ackedAtRecovery, nil
	}); err != nil {
		return fail(err)
	}

	close(stop)
	wg.Wait()
	wall := time.Since(begin)
	if err, _ := writerErr.Load().(error); err != nil {
		return rep, err
	}

	ackedPts := res.ackedReqs.Load() * overloadPtsPerReq
	totalAcked.Add(ackedPts)
	attempts := res.ackedReqs.Load() + res.shed429.Load() + res.shed503.Load()
	rep.WallSeconds = wall.Seconds()
	rep.AckedRequests = res.ackedReqs.Load()
	rep.AckedPoints = ackedPts
	rep.Shed429 = res.shed429.Load()
	rep.Shed503 = res.shed503.Load()
	rep.ShedRate = float64(rep.Shed429+rep.Shed503) / float64(attempts)
	rep.GoodputPointsPerSec = float64(ackedPts) / wall.Seconds()
	rep.OfferedPointsPerSec = float64(attempts*overloadPtsPerReq) / wall.Seconds()
	rep.OverloadFactor = rep.OfferedPointsPerSec / rep.CapacityPointsPerSec
	rep.AcceptedP50Micros, rep.AcceptedP99Micros = res.quantiles()

	st, err := overloadStats(client, url)
	if err != nil {
		return rep, err
	}
	rep.DegradedEntered = st.Server.Admission.DegradedEntered
	rep.DegradedRecovered = st.Server.Admission.DegradedRecovered

	// Contract checks on the traffic the drill just produced.
	if rep.OverloadFactor < 4 {
		return rep, fmt.Errorf("bench: offered load only %.1fx capacity (%.0f vs %.0f points/sec); the drill needs >= 4x", rep.OverloadFactor, rep.OfferedPointsPerSec, rep.CapacityPointsPerSec)
	}
	if rep.Shed429 == 0 {
		return rep, errors.New("bench: overload produced no 429 sheds")
	}
	if rep.Shed503 == 0 {
		return rep, errors.New("bench: the degraded window produced no 503 sheds")
	}
	if rep.DegradedEntered == 0 || rep.DegradedRecovered == 0 {
		return rep, fmt.Errorf("bench: degraded transitions missing: entered=%d recovered=%d", rep.DegradedEntered, rep.DegradedRecovered)
	}

	// Graceful drain: SIGTERM must exit 0 with every queued request
	// serviced.
	if err := child.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return rep, err
	}
	if err := <-child.wait; err != nil {
		childUp = false
		return rep, fmt.Errorf("bench: graceful drain under overload: %v", err)
	}
	childUp = false

	// The ledger check: a restarted child must hold EXACTLY the acked
	// points — an ack that did not survive is data loss, a surplus is
	// a shed or failed request that silently committed.
	rep.TotalAckedPoints = totalAcked.Load()
	child2, err := startChild()
	if err != nil {
		return rep, fmt.Errorf("bench: restarting after the drill: %w", err)
	}
	defer func() {
		_ = child2.cmd.Process.Signal(syscall.SIGTERM)
		<-child2.wait
	}()
	st2, err := overloadStats(client, "http://"+child2.addr)
	if err != nil {
		return rep, err
	}
	rep.RecoveredPoints = st2.Engine.Points
	if rep.RecoveredPoints != rep.TotalAckedPoints {
		return rep, fmt.Errorf("bench: restarted server holds %d points but %d were acknowledged: the overload drill leaked or lost work", rep.RecoveredPoints, rep.TotalAckedPoints)
	}
	return rep, nil
}

// overloadCounters aggregates the writers' outcomes.
type overloadCounters struct {
	ackedReqs atomic.Int64
	shed429   atomic.Int64
	shed503   atomic.Int64

	mu     sync.Mutex
	micros []float64 // accepted-request latencies
}

func newOverloadCounters() *overloadCounters {
	return &overloadCounters{micros: make([]float64, 0, 4096)}
}

func (o *overloadCounters) observe(micros float64) {
	o.mu.Lock()
	o.micros = append(o.micros, micros)
	o.mu.Unlock()
}

func (o *overloadCounters) quantiles() (p50, p99 float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.micros) == 0 {
		return 0, 0
	}
	sort.Float64s(o.micros)
	rank := func(q float64) float64 {
		idx := int(q*float64(len(o.micros))) - 1
		if idx < 0 {
			idx = 0
		}
		return o.micros[idx]
	}
	return rank(0.50), rank(0.99)
}

// overloadWriter is one closed-loop client: it counts acks and sheds,
// verifies every shed carries a Retry-After hint and a parseable
// reason, and backs off briefly on rejection (briefly on purpose —
// the drill's job is to overload, the server's job is to survive it).
func overloadWriter(client *http.Client, url string, bodies [][]byte, seed int64, stop <-chan struct{}, res *overloadCounters) error {
	rng := rand.New(rand.NewSource(seed))
	attempt := 0
	for i := 0; ; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		t0 := time.Now()
		status, header, raw, err := doPost(client, url+"/v1/ingest", bodies[rng.Intn(len(bodies))])
		if err != nil {
			return fmt.Errorf("bench: overload ingest transport: %w", err)
		}
		switch {
		case status == http.StatusOK:
			res.ackedReqs.Add(1)
			res.observe(float64(time.Since(t0).Nanoseconds()) / 1e3)
			attempt = 0
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			shed := parseShed(status, header, raw)
			if shed.RetryAfterSeconds < 1 {
				return fmt.Errorf("bench: %d shed without a Retry-After hint: %s", status, raw)
			}
			if shed.Reason == "" {
				return fmt.Errorf("bench: %d shed without a machine-readable reason: %s", status, raw)
			}
			if status == http.StatusTooManyRequests {
				res.shed429.Add(1)
			} else {
				res.shed503.Add(1)
			}
			attempt++
			time.Sleep(backoffDelay(attempt, 2*time.Millisecond, 10*time.Millisecond, rng))
		default:
			return fmt.Errorf("bench: overload ingest status %d: %s", status, raw)
		}
	}
}

// closedLoopResult is one timed closed-loop traffic window.
type closedLoopResult struct {
	ackedPoints int64
	wall        time.Duration
}

// overloadClosedLoop runs n polite writers (shared shed-retry helper,
// generous backoff) for the given duration and reports acked points.
func overloadClosedLoop(client *http.Client, url string, bodies [][]byte, n int, d time.Duration) (closedLoopResult, error) {
	stop := make(chan struct{})
	var acked atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 101))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := postShedRetry(client, url+"/v1/ingest", bodies[(w+i)%len(bodies)], 8, 5*time.Millisecond, 250*time.Millisecond, rng); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				acked.Add(overloadPtsPerReq)
			}
		}(w)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return closedLoopResult{}, fmt.Errorf("bench: calibration ingest: %w", err)
	}
	return closedLoopResult{ackedPoints: acked.Load(), wall: time.Since(begin)}, nil
}

// RunOverloadChild is the overload drill's serving child: a durable
// edmserved on an injected slow disk, with tight admission settings
// so the parent can force every shedding path. SIGUSR1 kills the disk
// (sticky sync failure), SIGUSR2 heals it back to merely slow,
// SIGTERM drains gracefully.
func RunOverloadChild() error {
	dir := os.Getenv("EDMBENCH_OVERLOAD_DIR")
	addrFile := os.Getenv("EDMBENCH_OVERLOAD_ADDR_FILE")
	if dir == "" || addrFile == "" {
		return errors.New("bench: EDMBENCH_OVERLOAD_DIR and EDMBENCH_OVERLOAD_ADDR_FILE are required in child mode")
	}
	rate, err := strconv.ParseFloat(os.Getenv("EDMBENCH_OVERLOAD_RATE"), 64)
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_OVERLOAD_RATE: %w", err)
	}
	slowMS, err := strconv.Atoi(os.Getenv("EDMBENCH_OVERLOAD_SLOW_MS"))
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_OVERLOAD_SLOW_MS: %w", err)
	}
	slow := wal.Fault{Op: "sync", Sticky: true, Delay: time.Duration(slowMS) * time.Millisecond}
	dead := wal.Fault{Op: "sync", Sticky: true}

	ffs := wal.NewFaultFS(nil)
	ffs.Inject(slow)
	c, err := edmstream.New(walOptions(rate))
	if err != nil {
		return err
	}
	srv, err := server.New(c, server.Config{
		Addr:                  "127.0.0.1:0",
		DataDir:               dir,
		WALFS:                 ffs,
		CoalesceWindow:        2 * time.Millisecond,
		MaxBatch:              4 * overloadPtsPerReq,
		MaxPending:            8,
		IngestDeadline:        100 * time.Millisecond,
		DegradedProbeInterval: 100 * time.Millisecond,
		WALRetryAttempts:      2,
		CheckpointEvery:       1 << 20,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if err := publishAddr(addrFile, srv.Addr()); err != nil {
		return err
	}

	ch := make(chan os.Signal, 4)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT, syscall.SIGUSR1, syscall.SIGUSR2)
	for sig := range ch {
		switch sig {
		case syscall.SIGUSR1:
			ffs.Inject(dead)
		case syscall.SIGUSR2:
			ffs.Inject(slow)
		default:
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return srv.Shutdown(ctx)
		}
	}
	return nil
}

// FormatOverload renders the report for the terminal.
func FormatOverload(rep OverloadReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Overload drill: %d writers vs a slow disk (%.0fms fsync), mid-run disk death and recovery\n",
		rep.Writers, rep.SlowSyncMillis)
	fmt.Fprintf(&b, "  (gomaxprocs %d, %d CPUs, %d-point requests)\n", rep.GOMAXPROCS, rep.NumCPU, rep.PointsPerRequest)
	fmt.Fprintf(&b, "capacity %.0f points/sec; offered %.0f (%.1fx); goodput under overload %.0f\n",
		rep.CapacityPointsPerSec, rep.OfferedPointsPerSec, rep.OverloadFactor, rep.GoodputPointsPerSec)
	fmt.Fprintf(&b, "acked %d requests (%d points); shed %d x 429 + %d x 503 (%.1f%% of requests, all with Retry-After)\n",
		rep.AckedRequests, rep.AckedPoints, rep.Shed429, rep.Shed503, rep.ShedRate*100)
	fmt.Fprintf(&b, "accepted-request latency p50/p99 = %.0f/%.0f us\n", rep.AcceptedP50Micros, rep.AcceptedP99Micros)
	fmt.Fprintf(&b, "degraded for %.2fs; recovered %.2fs after the disk healed (entered %d, recovered %d)\n",
		rep.DegradedSeconds, rep.RecoverySeconds, rep.DegradedEntered, rep.DegradedRecovered)
	fmt.Fprintf(&b, "ledger: %d acked points total, %d recovered after drain+restart (exact)\n",
		rep.TotalAckedPoints, rep.RecoveredPoints)
	return b.String()
}

// WriteOverloadJSON writes the machine-readable artifact.
func WriteOverloadJSON(path string, rep OverloadReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling overload report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
