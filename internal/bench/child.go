package bench

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"time"
)

// benchChild is a re-exec'd copy of the current binary serving as a
// drill's real child process (the wal kill-and-restart drill and the
// overload drill both use one). The child signals readiness by
// atomically writing its bound address to a file — for the durable
// drills that write happens only after recovery completed, so the
// parent's poll on the file doubles as a recovery barrier.
type benchChild struct {
	cmd  *exec.Cmd
	addr string
	// wait receives cmd.Wait's result exactly once.
	wait chan error
}

// startBenchChild re-execs exe with the given environment appended to
// the parent's, then waits for the address file to appear.
func startBenchChild(exe string, env []string, addrFile string) (*benchChild, error) {
	_ = os.Remove(addrFile)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("bench: starting child: %w", err)
	}
	ch := &benchChild{cmd: cmd, wait: make(chan error, 1)}
	go func() { ch.wait <- cmd.Wait() }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			ch.addr = string(raw)
			return ch, nil
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			<-ch.wait
			return nil, errors.New("bench: child did not report an address within 30s")
		}
		select {
		case err := <-ch.wait:
			return nil, fmt.Errorf("bench: child exited before binding: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// publishAddr atomically writes a child's bound address to the file
// the parent polls (write-then-rename: the parent never reads a torn
// file).
func publishAddr(addrFile, addr string) error {
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, addrFile)
}
