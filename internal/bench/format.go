package bench

import (
	"fmt"
	"strings"
	"time"
)

// FormatTable2 renders the Table 2 rows.
func FormatTable2(rows []DatasetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Datasets\n")
	fmt.Fprintf(&b, "%-16s %10s %6s %9s %10s\n", "data set", "instances", "dim", "clusters", "r")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %6d %9d %10.3g\n", r.Name, r.Instances, r.Dim, r.Clusters, r.Radius)
	}
	return b.String()
}

// FormatFig6 renders the SDS snapshot summaries.
func FormatFig6(snaps []SDSSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: SDS snapshots (clusters and density peaks over time)\n")
	fmt.Fprintf(&b, "%8s %9s %12s %9s  %s\n", "t (s)", "clusters", "active cells", "outliers", "peak seeds")
	for _, s := range snaps {
		var peaks []string
		for _, p := range s.PeakSeeds {
			if len(p) >= 2 {
				peaks = append(peaks, fmt.Sprintf("(%.1f,%.1f)", p[0], p[1]))
			}
		}
		fmt.Fprintf(&b, "%8.1f %9d %12d %9d  %s\n", s.Time, s.Clusters, s.ActiveCells, s.Outliers, strings.Join(peaks, " "))
	}
	return b.String()
}

// FormatEvents renders an evolution log (Fig. 7 / Fig. 8 content).
func FormatEvents(title string, events []interface{ String() string }) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	for _, e := range events {
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	return b.String()
}

// FormatComparisonResponseTime renders the Fig. 9 series: average
// cluster-update response time per algorithm over stream length.
func FormatComparisonResponseTime(dataset string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 (%s): response time per cluster update\n", dataset)
	for _, r := range results {
		fmt.Fprintf(&b, "  %-10s mean=%s series=", r.Algorithm, formatDuration(r.MeanResponseTime))
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "(%d pts: %s) ", s.Points, formatDuration(s.ResponseTime))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatComparisonThroughput renders the Fig. 10 series.
func FormatComparisonThroughput(dataset string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 (%s): throughput (points/second)\n", dataset)
	for _, r := range results {
		fmt.Fprintf(&b, "  %-10s mean=%.0f pt/s series=", r.Algorithm, r.MeanThroughput)
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "(%d pts: %.0f) ", s.Points, s.Throughput)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatComparisonCMM renders the Fig. 13 series.
func FormatComparisonCMM(dataset string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 (%s): cluster quality (CMM)\n", dataset)
	for _, r := range results {
		fmt.Fprintf(&b, "  %-10s mean=%.3f series=", r.Algorithm, r.MeanCMM)
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "(%d pts: %.3f) ", s.Points, s.CMM)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig11 renders the filter comparison.
func FormatFig11(dataset string, results []FilterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 (%s): accumulated dependency-update time\n", dataset)
	for _, r := range results {
		fmt.Fprintf(&b, "  %-7s total=%s candidates=%d filtered(df)=%d filtered(tif)=%d series=",
			r.Mode, formatDuration(r.Accumulated), r.Candidates, r.FilteredByDensity, r.FilteredByTriangle)
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "(%d pts: %s) ", s.Points, formatDuration(s.Accumulated))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig12 renders the dimensionality sweep.
func FormatFig12(results []DimensionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12: response time vs dimensionality (HDS)\n")
	fmt.Fprintf(&b, "%6s", "dim")
	if len(results) > 0 {
		for _, r := range results[0].Results {
			fmt.Fprintf(&b, " %12s", r.Algorithm)
		}
	}
	fmt.Fprintln(&b)
	for _, dr := range results {
		fmt.Fprintf(&b, "%6d", dr.Dim)
		for _, r := range dr.Results {
			fmt.Fprintf(&b, " %12s", formatDuration(r.MeanResponseTime))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig14 renders the rate sweep.
func FormatFig14(results []RateResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14: EDMStream cluster quality vs stream rate (CoverType-like)\n")
	fmt.Fprintf(&b, "%10s %10s %14s\n", "rate", "mean CMM", "response time")
	for _, r := range results {
		fmt.Fprintf(&b, "%10.0f %10.3f %14s\n", r.Rate, r.Result.MeanCMM, formatDuration(r.Result.MeanResponseTime))
	}
	return b.String()
}

// FormatTable4 renders the dynamic vs static τ comparison.
func FormatTable4(tc TauComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 / Fig. 15: number of clusters over time (SDS), dynamic vs static τ\n")
	fmt.Fprintf(&b, "static τ = %.3f\n", tc.StaticTau)
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "t (s)", "dynamic τ", "#dynamic", "#static")
	for i := range tc.Seconds {
		fmt.Fprintf(&b, "%8.0f %12.3f %12d %12d\n", tc.Seconds[i], tc.DynamicTau[i], tc.DynamicClusters[i], tc.StaticClusters[i])
	}
	fmt.Fprintf(&b, "decision graph at init: %d cells\n", len(tc.InitGraph))
	return b.String()
}

// FormatFig16 renders the reservoir-size experiment.
func FormatFig16(dataset string, results []ReservoirResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 16 (%s): outlier reservoir size vs theoretical bound\n", dataset)
	for _, r := range results {
		fmt.Fprintf(&b, "  rate=%.0f/s bound=%.0f max=%d series=", r.Rate, r.Bound, r.MaxSize)
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "(%d pts: %d) ", s.Points, s.Size)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig17 renders the radius sweep.
func FormatFig17(results []RadiusResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 17: effect of cluster-cell radius r (PAMAP2-like)\n")
	fmt.Fprintf(&b, "%10s %10s %10s %14s %12s\n", "quantile", "r", "mean CMM", "response time", "active cells")
	for _, r := range results {
		fmt.Fprintf(&b, "%9.1f%% %10.3g %10.3f %14s %12d\n", r.Quantile*100, r.Radius, r.MeanCMM, formatDuration(r.MeanResponse), r.ActiveCells)
	}
	return b.String()
}

// FormatAblation renders the extra design-choice studies.
func FormatAblation(results []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (beyond the paper)\n")
	fmt.Fprintf(&b, "%-18s %-24s %10s %14s %9s\n", "study", "variant", "mean CMM", "response time", "clusters")
	for _, r := range results {
		fmt.Fprintf(&b, "%-18s %-24s %10.3f %14s %9d\n", r.Study, r.Variant, r.MeanCMM, formatDuration(r.MeanResponse), r.Clusters)
	}
	return b.String()
}

// FormatIndexBench renders the nearest-seed index experiment.
func FormatIndexBench(results []IndexBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Nearest-seed index: grid vs linear insert throughput (2-D lattice stream)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %14s %12s %18s %9s\n",
		"index", "active", "cells total", "inserts/sec", "insert wall", "seed dists/point", "clusters")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8s %12d %12d %14.0f %12s %18.1f %9d\n",
			r.IndexKind, r.ActiveCells, r.TotalCells, r.InsertsPerSec, formatDuration(r.InsertWall),
			r.MeanCandidatesPerPoint, r.Clusters)
	}
	if s := IndexSpeedup(results); s > 0 {
		fmt.Fprintf(&b, "grid speedup over linear: %.2fx\n", s)
	}
	return b.String()
}

// FormatThroughput renders the batched-ingestion throughput
// experiment.
func FormatThroughput(rep ThroughputReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ingestion throughput: per-point Insert vs InsertBatch (bursty 2-D lattice stream)\n")
	fmt.Fprintf(&b, "%-10s %7s %12s %14s %15s %15s %9s\n",
		"mode", "batch", "active", "points/sec", "allocs/point", "bytes/point", "clusters")
	for _, r := range []ThroughputModeResult{rep.PerPoint, rep.Batch} {
		fmt.Fprintf(&b, "%-10s %7d %12d %14.0f %15.3f %15.1f %9d\n",
			r.Mode, r.BatchSize, r.ActiveCells, r.PointsPerSec, r.AllocsPerPoint, r.BytesPerPoint, r.Clusters)
	}
	fmt.Fprintf(&b, "batch speedup over per-point: %.2fx\n", rep.Speedup)
	return b.String()
}

// FormatParallel renders the parallel-ingest worker sweep.
func FormatParallel(rep ParallelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel speculative routing: InsertBatch worker sweep (bursty 2-D lattice stream, batch %d)\n",
		rep.BatchSize)
	fmt.Fprintf(&b, "%-8s %14s %9s %10s %15s %12s %9s\n",
		"workers", "points/sec", "speedup", "spec-hit", "allocs/point", "active", "clusters")
	for _, r := range rep.Results {
		hit := "-"
		if r.SpeculativeRoutes > 0 {
			hit = fmt.Sprintf("%.4f", r.SpeculationHitRate)
		}
		fmt.Fprintf(&b, "%-8d %14.0f %8.2fx %10s %15.3f %12d %9d\n",
			r.Workers, r.PointsPerSec, r.Speedup, hit, r.AllocsPerPoint, r.ActiveCells, r.Clusters)
	}
	fmt.Fprintf(&b, "speedup at 4 workers over single-threaded batch: %.2fx (GOMAXPROCS=%d, %d CPUs)\n",
		rep.SpeedupAt4, rep.GoMaxProcs, rep.NumCPU)
	return b.String()
}

// FormatServe renders the serving experiment: incremental vs full
// snapshot-refresh latency, and concurrent query throughput.
func FormatServe(rep ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving layer: incremental refresh + concurrent Assign (steady-state lattice stream)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s %12s %8s\n",
		"extraction", "refreshes", "median", "mean", "min", "max", "cells")
	for _, r := range []ServeRefreshResult{rep.Incremental, rep.Full} {
		fmt.Fprintf(&b, "%-12s %10d %12s %12s %12s %12s %8d\n",
			r.Mode, r.Refreshes,
			formatDuration(time.Duration(r.MedianNanos)),
			formatDuration(time.Duration(int64(r.MeanNanos))),
			formatDuration(time.Duration(r.MinNanos)),
			formatDuration(time.Duration(r.MaxNanos)),
			r.ActiveCells)
	}
	fmt.Fprintf(&b, "incremental refresh speedup over full rebuild: %.2fx\n", rep.RefreshSpeedup)
	fmt.Fprintf(&b, "concurrent queries: %d readers + 1 writer, %.0f queries/sec aggregate (%.4f allocs/query)\n",
		rep.Readers, rep.QueriesPerSec, rep.AllocsPerQuery)
	fmt.Fprintf(&b, "hit rate: %.4f on in-distribution probes; out-of-core/noise (%d probes): %.4f\n",
		rep.HitRate, rep.NoiseQueries, rep.NoiseHitRate)
	fmt.Fprintf(&b, "writer sustained %.0f points/sec while serving\n", rep.WriterPointsPerSec)
	return b.String()
}

func formatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
