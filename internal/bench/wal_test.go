package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestMain diverts the test binary into child-server mode when the
// kill-and-restart drill, the overload drill or the disaster-recovery
// drill re-execs it (see RunWALChild / RunOverloadChild / RunDRChild);
// cmd/edmbench has the same hooks, so the experiments work from both
// binaries.
func TestMain(m *testing.M) {
	if os.Getenv(walChildEnv) == "1" {
		if err := RunWALChild(); err != nil {
			fmt.Fprintf(os.Stderr, "wal child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv(overloadChildEnv) == "1" {
		if err := RunOverloadChild(); err != nil {
			fmt.Fprintf(os.Stderr, "overload child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv(drChildEnv) == "1" {
		if err := RunDRChild(); err != nil {
			fmt.Fprintf(os.Stderr, "dr child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestRunWALSmoke runs the full durability experiment at a small
// scale: both throughput modes against real WAL directories, then the
// SIGKILL / restart / byte-identical-recovery drill against a child
// process. Every contract violation is an error from RunWAL, so most
// of the assertion weight is inside the experiment itself.
func TestRunWALSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning durability experiment in -short mode")
	}
	s := Scale{Points: 2048, Seed: 1, Rate: 1000}
	rep, err := RunWAL(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-wal/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Throughput) != 2 {
		t.Fatalf("throughput modes = %d, want 2", len(rep.Throughput))
	}
	wantPts := int64(s.Points/e2eIngestBatch) * e2eIngestBatch
	for _, tr := range rep.Throughput {
		if tr.Points != wantPts {
			t.Errorf("%s ingested %d points, want %d", tr.Mode, tr.Points, wantPts)
		}
		if tr.PointsPerSec <= 0 || tr.WallSeconds <= 0 {
			t.Errorf("%s throughput not measured: %+v", tr.Mode, tr)
		}
		// Warm-up plus measurement, one record per flush at minimum
		// granularity: the WAL must have seen every point.
		if tr.WALRecords == 0 || tr.WALBytes == 0 {
			t.Errorf("%s WAL accounting empty: %+v", tr.Mode, tr)
		}
		if tr.Checkpoints == 0 {
			t.Errorf("%s took no checkpoints at cadence %d: %+v", tr.Mode, walCheckpointEvery, tr)
		}
	}
	if rep.Throughput[0].Mode != "fsync" || rep.Throughput[1].Mode != "nosync" {
		t.Errorf("mode order = %s, %s", rep.Throughput[0].Mode, rep.Throughput[1].Mode)
	}
	if rep.Throughput[0].FsyncP50Micros <= 0 {
		t.Errorf("fsync mode reports no fsync latency: %+v", rep.Throughput[0])
	}
	if rep.NoSyncSpeedup <= 0 {
		t.Errorf("nosync speedup = %g", rep.NoSyncSpeedup)
	}

	k := rep.Kill
	if k.AckedPoints == 0 {
		t.Error("kill drill acknowledged no points before the kill")
	}
	if k.RecoveredPoints < k.AckedPoints {
		t.Errorf("recovered %d < acked %d", k.RecoveredPoints, k.AckedPoints)
	}
	if k.RecoveredPoints%e2eIngestBatch != 0 {
		t.Errorf("recovered %d points: not whole batches", k.RecoveredPoints)
	}
	if !k.SnapshotIdentical {
		t.Error("recovered snapshot not verified byte-identical")
	}
	if !k.HasCheckpoint {
		t.Errorf("recovery used no checkpoint despite cadence %d over %d points", walCheckpointEvery, k.RecoveredPoints)
	}
	// ReplayedRecords is usually positive but legitimately zero when
	// the kill lands exactly on a checkpoint boundary — reported, not
	// asserted.
	if want := k.RecoveredPoints + 2*e2eIngestBatch; k.PostRestartPoints != want {
		t.Errorf("post-restart points = %d, want %d", k.PostRestartPoints, want)
	}
	if FormatWAL(rep) == "" {
		t.Error("empty formatted report")
	}

	path := filepath.Join(t.TempDir(), "BENCH_wal.json")
	if err := WriteWALJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back WALReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact not round-trippable: %v", err)
	}
	if back.Kill.RecoveredPoints != k.RecoveredPoints || back.Schema != rep.Schema {
		t.Errorf("artifact round-trip mismatch: %+v", back)
	}
}
