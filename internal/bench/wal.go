package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/server"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the durability experiment: what the WAL's
// fsync-before-ack costs, and what it buys. Phase one measures ingest
// throughput through durable edmserved instances with the fsync on
// and off (WALNoSync), so the group-commit amortization of the
// coalescer is machine-readable across revisions (BENCH_wal.json).
// Phase two is the crash drill: a child edmserved process is SIGKILLed
// mid-traffic, restarted on the same WAL directory, and must come back
// holding every acknowledged point — verified byte-for-byte against a
// fresh engine fed the same prefix, which only determinism plus the
// checkpoint+replay equivalence (internal/wal, internal/server tests)
// make possible.

const (
	// walWarmup is the pre-measurement stream: enough to initialize
	// the DP-Tree (InitPoints 500) and publish a first clustering.
	walWarmup = 1024
	// walWriters is the concurrent HTTP writer count of the
	// throughput phase; concurrency is what lets one fsync cover
	// several requests (group commit through the coalescer).
	walWriters = 2
	// walCheckpointEvery keeps the checkpoint cadence dense enough
	// that the kill lands between checkpoints and recovery exercises
	// both the checkpoint restore and the tail replay.
	walCheckpointEvery = 1000
	// walChildEnv marks a process as the kill-and-restart child.
	// cmd/edmbench and the bench test binary both divert to
	// RunWALChild when it is set, before any flag parsing.
	walChildEnv = "EDMBENCH_WAL_CHILD"
)

// WALThroughputResult is one durability mode's ingest measurement.
type WALThroughputResult struct {
	// Mode is "fsync" (the default durable path: every acknowledged
	// batch is on disk) or "nosync" (WALNoSync: the log is written
	// but acknowledgments do not wait for the disk).
	Mode           string  `json:"mode"`
	Points         int64   `json:"points"`
	WallSeconds    float64 `json:"wall_seconds"`
	PointsPerSec   float64 `json:"points_per_sec"`
	WALRecords     uint64  `json:"wal_records"`
	WALBytes       uint64  `json:"wal_bytes"`
	Checkpoints    uint64  `json:"checkpoints"`
	FsyncP50Micros float64 `json:"fsync_p50_micros"`
	FsyncP99Micros float64 `json:"fsync_p99_micros"`
}

// WALKillResult is the outcome of the kill-and-restart drill.
type WALKillResult struct {
	// AckedPoints is how many points had received an HTTP 200 before
	// the SIGKILL; the durability contract is that every one of them
	// survives. RecoveredPoints is what the restarted server holds —
	// at least AckedPoints, at most the sent total (a batch that was
	// fsynced but whose response never reached the client also
	// survives; that is allowed, losing an acked batch is not).
	AckedPoints     int64 `json:"acked_points"`
	RecoveredPoints int64 `json:"recovered_points"`
	// ReplayedRecords and HasCheckpoint describe the recovery the
	// restarted child reported: records replayed from the log tail on
	// top of the newest checkpoint.
	ReplayedRecords int  `json:"replayed_records"`
	HasCheckpoint   bool `json:"has_checkpoint"`
	// SnapshotIdentical records that the restarted server's published
	// clustering is byte-identical to a fresh engine fed the same
	// recovered prefix (the run errors out when it is not).
	SnapshotIdentical bool `json:"snapshot_identical"`
	// PostRestartPoints is the engine size after the restarted server
	// accepted fresh traffic (liveness: recovery yields a server, not
	// a read-only museum).
	PostRestartPoints int64 `json:"post_restart_points"`
}

// WALReport is the JSON-serializable outcome of the experiment.
type WALReport struct {
	Schema      string                `json:"schema"`
	Points      int                   `json:"points"`
	Seed        int64                 `json:"seed"`
	Rate        float64               `json:"rate"`
	IngestBatch int                   `json:"ingest_batch"`
	Throughput  []WALThroughputResult `json:"throughput"`
	// NoSyncSpeedup is nosync over fsync points/sec: the price of the
	// durability guarantee on this machine's disk.
	NoSyncSpeedup float64       `json:"nosync_speedup"`
	Kill          WALKillResult `json:"kill_restart"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
}

// walOptions is the engine configuration shared by the children, the
// throughput servers and the parent's reference engine. It pins the
// route phase to one worker like the serve experiment does: the drill
// asserts byte-identical recovery across processes, so the topology
// itself must be identical everywhere the stream is replayed.
func walOptions(rate float64) edmstream.Options {
	o := e2eOptions(rate)
	o.IngestWorkers = 1
	return o
}

// walPost sends one pre-rendered ingest body and requires a 200.
// Shed responses retry through the shared backoff helper; transport
// errors stay immediate, which is what lets the kill drill see the
// SIGKILL as a failed request instead of replaying (and duplicating)
// an ambiguous batch.
func walPost(client *http.Client, base string, body []byte) error {
	_, err := postShedRetry(client, base+"/v1/ingest", body, 4, 10*time.Millisecond, time.Second, nil)
	return err
}

// walGet fetches one endpoint's raw body and requires a 200.
func walGet(client *http.Client, base, path string) ([]byte, error) {
	return getShedRetry(client, base+path, 4, 10*time.Millisecond, time.Second, nil)
}

// walStatsBody is the slice of GET /v1/stats the experiment consumes
// (the wire contract, like any other client).
type walStatsBody struct {
	Engine struct {
		Points int64 `json:"Points"`
	} `json:"engine"`
	Server struct {
		Durability *struct {
			Records     uint64  `json:"records"`
			Bytes       uint64  `json:"bytes"`
			Checkpoints uint64  `json:"checkpoints"`
			Segments    int64   `json:"segments"`
			NoSync      bool    `json:"no_sync"`
			FsyncP50Sec float64 `json:"fsync_p50_seconds"`
			FsyncP99Sec float64 `json:"fsync_p99_seconds"`
			Recovery    struct {
				HasCheckpoint   bool  `json:"has_checkpoint"`
				RecordsReplayed int   `json:"records_replayed"`
				DroppedBytes    int64 `json:"dropped_bytes"`
			} `json:"recovery"`
		} `json:"durability"`
	} `json:"server"`
}

func walStats(client *http.Client, base string) (walStatsBody, error) {
	raw, err := walGet(client, base, "/v1/stats")
	if err != nil {
		return walStatsBody{}, err
	}
	var st walStatsBody
	if err := json.Unmarshal(raw, &st); err != nil {
		return walStatsBody{}, fmt.Errorf("bench: stats response: %w", err)
	}
	return st, nil
}

// RunWAL measures the durable ingest path and runs the kill-and-
// restart drill. s.Points is the measured ingest volume per
// throughput mode (rounded down to whole batches) and the traffic
// pool of the drill.
func RunWAL(s Scale) (WALReport, error) {
	const liveBatches = 2
	measuredBatches := s.Points / e2eIngestBatch
	if measuredBatches < 4 {
		return WALReport{}, fmt.Errorf("bench: the wal experiment needs at least %d points, got %d", 4*e2eIngestBatch, s.Points)
	}
	warmupBatches := walWarmup / e2eIngestBatch
	total := (warmupBatches + measuredBatches + liveBatches) * e2eIngestBatch
	pts := ServeStream(total, s.Seed, s.Rate)
	bodies, err := e2eBodies(pts)
	if err != nil {
		return WALReport{}, err
	}

	rep := WALReport{
		Schema:      "edmstream-wal/v1",
		Points:      measuredBatches * e2eIngestBatch,
		Seed:        s.Seed,
		Rate:        s.Rate,
		IngestBatch: e2eIngestBatch,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	for _, noSync := range []bool{false, true} {
		res, err := runWALThroughput(noSync, s, bodies[:warmupBatches+measuredBatches], warmupBatches)
		if err != nil {
			return WALReport{}, err
		}
		rep.Throughput = append(rep.Throughput, res)
	}
	if rep.Throughput[0].PointsPerSec > 0 {
		rep.NoSyncSpeedup = rep.Throughput[1].PointsPerSec / rep.Throughput[0].PointsPerSec
	}

	kill, err := runWALKill(s, pts, bodies, warmupBatches, liveBatches)
	if err != nil {
		return WALReport{}, err
	}
	rep.Kill = kill
	return rep, nil
}

// runWALThroughput drives one durable in-process server with
// concurrent writers and reports the measured ingest rate plus the
// server's WAL accounting.
func runWALThroughput(noSync bool, s Scale, bodies [][]byte, warmupBatches int) (WALThroughputResult, error) {
	mode := "fsync"
	if noSync {
		mode = "nosync"
	}
	dir, err := os.MkdirTemp("", "edmbench-wal-")
	if err != nil {
		return WALThroughputResult{}, err
	}
	defer os.RemoveAll(dir)

	c, err := edmstream.New(walOptions(s.Rate))
	if err != nil {
		return WALThroughputResult{}, fmt.Errorf("bench: building clusterer: %w", err)
	}
	srv, err := server.New(c, server.Config{
		Addr:            "127.0.0.1:0",
		DataDir:         dir,
		WALNoSync:       noSync,
		CheckpointEvery: walCheckpointEvery,
	})
	if err != nil {
		return WALThroughputResult{}, fmt.Errorf("bench: building %s server: %w", mode, err)
	}
	if err := srv.Start(); err != nil {
		return WALThroughputResult{}, fmt.Errorf("bench: starting %s server: %w", mode, err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        walWriters + 2,
		MaxIdleConnsPerHost: walWriters + 2,
	}}

	for b := 0; b < warmupBatches; b++ {
		if err := walPost(client, base, bodies[b]); err != nil {
			return WALThroughputResult{}, fmt.Errorf("bench: %s warm-up: %w", mode, err)
		}
	}

	measured := bodies[warmupBatches:]
	var firstErr atomic.Value // error
	var npts atomic.Int64
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < walWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := w; b < len(measured); b += walWriters {
				if err := walPost(client, base, measured[b]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				npts.Add(e2eIngestBatch)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(begin)
	if err, _ := firstErr.Load().(error); err != nil {
		return WALThroughputResult{}, fmt.Errorf("bench: %s ingest: %w", mode, err)
	}

	st, err := walStats(client, base)
	if err != nil {
		return WALThroughputResult{}, err
	}
	d := st.Server.Durability
	if d == nil {
		return WALThroughputResult{}, fmt.Errorf("bench: %s server reports no durability section — WAL not wired in", mode)
	}
	if d.NoSync != noSync {
		return WALThroughputResult{}, fmt.Errorf("bench: %s server reports no_sync=%v", mode, d.NoSync)
	}
	return WALThroughputResult{
		Mode:           mode,
		Points:         npts.Load(),
		WallSeconds:    wall.Seconds(),
		PointsPerSec:   float64(npts.Load()) / wall.Seconds(),
		WALRecords:     d.Records,
		WALBytes:       d.Bytes,
		Checkpoints:    d.Checkpoints,
		FsyncP50Micros: d.FsyncP50Sec * 1e6,
		FsyncP99Micros: d.FsyncP99Sec * 1e6,
	}, nil
}

// startWALChild re-execs this binary in child mode on the given WAL
// directory and waits for it to report its bound address. The child
// writes the addr file only after server.New returns — that is, after
// recovery — so a returned child has finished recovering.
func startWALChild(exe, dataDir, addrFile string, rate float64) (*benchChild, error) {
	return startBenchChild(exe, []string{
		walChildEnv + "=1",
		"EDMBENCH_WAL_DIR=" + dataDir,
		"EDMBENCH_WAL_ADDR_FILE=" + addrFile,
		fmt.Sprintf("EDMBENCH_WAL_RATE=%g", rate),
		fmt.Sprintf("EDMBENCH_WAL_CHECKPOINT_EVERY=%d", walCheckpointEvery),
	}, addrFile)
}

// runWALKill is the crash drill: SIGKILL a durable child mid-traffic,
// restart it on the same WAL directory, and verify the recovered
// state is exactly the acknowledged prefix — byte-identical to a
// fresh engine fed that prefix directly.
func runWALKill(s Scale, pts []stream.Point, bodies [][]byte, warmupBatches, liveBatches int) (WALKillResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return WALKillResult{}, fmt.Errorf("bench: locating own executable for the wal child: %w", err)
	}
	base, err := os.MkdirTemp("", "edmbench-wal-kill-")
	if err != nil {
		return WALKillResult{}, err
	}
	defer os.RemoveAll(base)
	dataDir := filepath.Join(base, "data")
	addrFile := filepath.Join(base, "addr")
	client := &http.Client{}

	child, err := startWALChild(exe, dataDir, addrFile, s.Rate)
	if err != nil {
		return WALKillResult{}, err
	}

	// One sequential writer: with requests strictly one at a time the
	// acknowledged set is always an exact prefix of the stream, which
	// is what makes the reference replay below well-defined.
	send := bodies[:len(bodies)-liveBatches]
	killAfter := int64(warmupBatches + (len(send)-warmupBatches)/2)
	var acked atomic.Int64
	var killIssued atomic.Bool
	var writerErr error
	threshold := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, body := range send {
			if err := walPost(client, "http://"+child.addr, body); err != nil {
				// The error after the SIGKILL is the crash happening
				// mid-request — expected. Before it, it is a failure.
				if !killIssued.Load() {
					writerErr = err
				}
				return
			}
			if acked.Add(1) == killAfter {
				close(threshold)
			}
		}
	}()
	select {
	case <-threshold:
	case <-done:
	}
	killIssued.Store(true)
	_ = child.cmd.Process.Kill() // SIGKILL: no flush, no goodbye
	<-child.wait
	<-done
	if writerErr != nil {
		return WALKillResult{}, fmt.Errorf("bench: ingest before the kill: %w", writerErr)
	}
	ackedPoints := acked.Load() * e2eIngestBatch

	// Restart on the same directory; startWALChild returning means
	// recovery completed.
	child2, err := startWALChild(exe, dataDir, addrFile, s.Rate)
	if err != nil {
		return WALKillResult{}, fmt.Errorf("bench: restarting after the kill: %w", err)
	}
	defer func() {
		if child2 != nil {
			_ = child2.cmd.Process.Kill()
			<-child2.wait
		}
	}()
	base2 := "http://" + child2.addr
	st, err := walStats(client, base2)
	if err != nil {
		return WALKillResult{}, err
	}
	recovered := st.Engine.Points
	res := WALKillResult{AckedPoints: ackedPoints, RecoveredPoints: recovered}
	if st.Server.Durability != nil {
		res.ReplayedRecords = st.Server.Durability.Recovery.RecordsReplayed
		res.HasCheckpoint = st.Server.Durability.Recovery.HasCheckpoint
	}

	// The contract: every acknowledged point survived; nothing beyond
	// the sent stream appeared; only whole batches exist.
	if recovered < ackedPoints {
		return res, fmt.Errorf("bench: crash recovery lost acknowledged points: %d acked, %d recovered", ackedPoints, recovered)
	}
	if max := int64(len(send)) * e2eIngestBatch; recovered > max {
		return res, fmt.Errorf("bench: crash recovery invented points: %d recovered, only %d ever sent", recovered, max)
	}
	if recovered%e2eIngestBatch != 0 {
		return res, fmt.Errorf("bench: crash recovery kept a partial batch: %d points is not a multiple of %d", recovered, e2eIngestBatch)
	}

	// Byte-identical equivalence: a fresh engine fed the recovered
	// prefix directly must publish the same clustering the restarted
	// server serves.
	ref, err := edmstream.New(walOptions(s.Rate))
	if err != nil {
		return res, fmt.Errorf("bench: building reference clusterer: %w", err)
	}
	for b := 0; b < int(recovered)/e2eIngestBatch; b++ {
		if err := ref.InsertBatch(pts[b*e2eIngestBatch : (b+1)*e2eIngestBatch]); err != nil {
			return res, fmt.Errorf("bench: reference replay: %w", err)
		}
	}
	refSrv, err := server.New(ref, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		return res, fmt.Errorf("bench: building reference server: %w", err)
	}
	if err := refSrv.Start(); err != nil {
		return res, fmt.Errorf("bench: starting reference server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = refSrv.Shutdown(ctx)
	}()
	childSnap, err := walGet(client, base2, "/v1/snapshot")
	if err != nil {
		return res, err
	}
	refSnap, err := walGet(client, "http://"+refSrv.Addr(), "/v1/snapshot")
	if err != nil {
		return res, err
	}
	if !bytes.Equal(childSnap, refSnap) {
		return res, fmt.Errorf("bench: recovered clustering diverges from a fresh engine fed the same %d points (%d vs %d snapshot bytes)", recovered, len(childSnap), len(refSnap))
	}
	res.SnapshotIdentical = true

	// Liveness: the recovered server keeps serving writes.
	for _, body := range bodies[len(bodies)-liveBatches:] {
		if err := walPost(client, base2, body); err != nil {
			return res, fmt.Errorf("bench: post-restart ingest: %w", err)
		}
	}
	st2, err := walStats(client, base2)
	if err != nil {
		return res, err
	}
	res.PostRestartPoints = st2.Engine.Points
	if want := recovered + int64(liveBatches)*e2eIngestBatch; res.PostRestartPoints != want {
		return res, fmt.Errorf("bench: post-restart engine holds %d points, want %d", res.PostRestartPoints, want)
	}

	// Graceful exit this time: SIGTERM must drain and return 0.
	_ = child2.cmd.Process.Signal(syscall.SIGTERM)
	if err := <-child2.wait; err != nil {
		child2 = nil
		return res, fmt.Errorf("bench: graceful shutdown after recovery: %v", err)
	}
	child2 = nil
	return res, nil
}

// RunWALChild is the kill-and-restart child: a durable edmserved
// instance on an ephemeral loopback port, configured through
// EDMBENCH_WAL_* environment variables. It writes its bound address
// to the addr file only after server.New returned — after recovery —
// so the parent's poll on that file doubles as a recovery barrier.
// Then it waits to be SIGKILLed (the crash) or SIGTERMed (the
// graceful verification pass).
func RunWALChild() error {
	dir := os.Getenv("EDMBENCH_WAL_DIR")
	addrFile := os.Getenv("EDMBENCH_WAL_ADDR_FILE")
	if dir == "" || addrFile == "" {
		return errors.New("bench: EDMBENCH_WAL_DIR and EDMBENCH_WAL_ADDR_FILE are required in child mode")
	}
	rate, err := strconv.ParseFloat(os.Getenv("EDMBENCH_WAL_RATE"), 64)
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_WAL_RATE: %w", err)
	}
	ckptEvery, err := strconv.Atoi(os.Getenv("EDMBENCH_WAL_CHECKPOINT_EVERY"))
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_WAL_CHECKPOINT_EVERY: %w", err)
	}

	c, err := edmstream.New(walOptions(rate))
	if err != nil {
		return err
	}
	srv, err := server.New(c, server.Config{
		Addr:            "127.0.0.1:0",
		DataDir:         dir,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if err := publishAddr(addrFile, srv.Addr()); err != nil {
		return err
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	<-ch
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// FormatWAL renders the report for the terminal.
func FormatWAL(rep WALReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Durability: WAL fsync-before-ack cost and kill-and-restart recovery\n")
	fmt.Fprintf(&b, "  (gomaxprocs %d, %d CPUs, %d writers, %d-point batches, checkpoint every %d points)\n",
		rep.GOMAXPROCS, rep.NumCPU, walWriters, rep.IngestBatch, walCheckpointEvery)
	fmt.Fprintf(&b, "%-8s %10s %9s %12s %12s %10s %22s\n",
		"mode", "points", "wall(s)", "points/sec", "wal records", "wal MiB", "fsync p50/p99 (us)")
	for _, t := range rep.Throughput {
		fmt.Fprintf(&b, "%-8s %10d %9.2f %12.0f %12d %10.2f %11.0f/%-10.0f\n",
			t.Mode, t.Points, t.WallSeconds, t.PointsPerSec,
			t.WALRecords, float64(t.WALBytes)/(1<<20), t.FsyncP50Micros, t.FsyncP99Micros)
	}
	fmt.Fprintf(&b, "nosync/fsync speedup: %.2fx (what the durability guarantee costs on this disk)\n", rep.NoSyncSpeedup)
	k := rep.Kill
	fmt.Fprintf(&b, "kill-and-restart: SIGKILL mid-traffic, restart on the same WAL directory\n")
	fmt.Fprintf(&b, "  acked %d points before the kill; recovered %d (checkpoint %v + %d replayed records)\n",
		k.AckedPoints, k.RecoveredPoints, k.HasCheckpoint, k.ReplayedRecords)
	fmt.Fprintf(&b, "  recovered clustering byte-identical to an uninterrupted run: %v\n", k.SnapshotIdentical)
	fmt.Fprintf(&b, "  post-restart ingest accepted; engine at %d points, graceful drain clean\n", k.PostRestartPoints)
	return b.String()
}

// WriteWALJSON writes the machine-readable artifact.
func WriteWALJSON(path string, rep WALReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling wal report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
