// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation section (Sec. 6). Each Run*
// function corresponds to one experiment ID listed in DESIGN.md, drives
// the algorithms over the same synthetic workloads, and returns
// structured results that cmd/edmbench and the root-level benchmarks
// print as the rows/series the paper reports.
package bench

import (
	"fmt"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/dbstream"
	"github.com/densitymountain/edmstream/internal/denstream"
	"github.com/densitymountain/edmstream/internal/dstream"
	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/metrics"
	"github.com/densitymountain/edmstream/internal/mrstream"
	"github.com/densitymountain/edmstream/internal/stream"
)

// NamedClusterer pairs an algorithm instance with the label used in
// reports.
type NamedClusterer struct {
	Name      string
	Clusterer stream.Clusterer
}

// NewEDMStream builds an EDMStream instance configured the way the
// evaluation uses it: radius from the dataset, adaptive τ off (a static
// τ derived from the radius) unless adaptive is requested, and the
// paper's decay/β/rate settings.
func NewEDMStream(radius, rate float64, adaptive bool) (*core.EDMStream, error) {
	cfg := core.Config{
		Radius:      radius,
		Rate:        rate,
		AdaptiveTau: adaptive,
		InitPoints:  500,
	}
	return core.New(cfg)
}

// Algorithms builds one instance of every algorithm under comparison,
// parameterized for the given dataset. The summarization granularities
// are matched so every algorithm maintains a comparable number of
// summaries (cluster-cells, micro-clusters, grid cells): EDMStream and
// DBSTREAM use the cell radius r directly, DenStream bounds the
// micro-cluster RMS radius by r/2 (an RMS radius of r/2 covers roughly
// the same volume as a seed ball of radius r), and the grid methods use
// cells of side r. This mirrors the paper's setup, where all
// algorithms summarize at the granularity chosen by the d_c rule.
func Algorithms(ds gen.Dataset, rate float64) ([]NamedClusterer, error) {
	r := ds.SuggestedRadius
	edm, err := NewEDMStream(r, rate, false)
	if err != nil {
		return nil, fmt.Errorf("bench: building EDMStream: %w", err)
	}
	den, err := denstream.New(denstream.Config{Eps: r / 2, OfflineEps: 2 * r, Mu: 5})
	if err != nil {
		return nil, fmt.Errorf("bench: building DenStream: %w", err)
	}
	dst, err := dstream.New(dstream.Config{GridSize: r})
	if err != nil {
		return nil, fmt.Errorf("bench: building D-Stream: %w", err)
	}
	dbs, err := dbstream.New(dbstream.Config{Radius: r})
	if err != nil {
		return nil, fmt.Errorf("bench: building DBSTREAM: %w", err)
	}
	mrs, err := mrstream.New(mrstream.Config{TopCellSize: 2 * r, Levels: 3})
	if err != nil {
		return nil, fmt.Errorf("bench: building MR-Stream: %w", err)
	}
	return []NamedClusterer{
		{Name: edm.Name(), Clusterer: edm},
		{Name: dst.Name(), Clusterer: dst},
		{Name: den.Name(), Clusterer: den},
		{Name: dbs.Name(), Clusterer: dbs},
		{Name: mrs.Name(), Clusterer: mrs},
	}, nil
}

// RunConfig controls a measured stream run.
type RunConfig struct {
	// Rate is the arrival rate in points per second used to stamp the
	// stream (the paper fixes 1000 pt/s unless stated otherwise).
	Rate float64
	// QueryEvery requests an updated clustering every this many points;
	// the time of those requests is the "response time of a cluster
	// update" the paper reports. Default 1000.
	QueryEvery int
	// SampleEvery records one measurement sample every this many
	// points. Default QueryEvery.
	SampleEvery int
	// WindowSize is the number of recent points kept for cluster
	// quality (CMM) evaluation. Default 1000.
	WindowSize int
	// ComputeCMM enables CMM evaluation at every sample (it is costly,
	// so the pure performance experiments leave it off).
	ComputeCMM bool
	// MaxPoints truncates the stream (0 = use every point).
	MaxPoints int
}

func (c *RunConfig) defaults() {
	if c.Rate == 0 {
		c.Rate = 1000
	}
	if c.QueryEvery == 0 {
		c.QueryEvery = 1000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.QueryEvery
	}
	if c.WindowSize == 0 {
		c.WindowSize = 1000
	}
}

// Sample is one measurement taken during a stream run.
type Sample struct {
	// Points is the number of points processed so far.
	Points int
	// StreamTime is the stream timestamp at the sample.
	StreamTime float64
	// ResponseTime is the average wall-clock time of a cluster-update
	// request (a Clusters call) during the interval.
	ResponseTime time.Duration
	// InsertTime is the average wall-clock time of a point insertion
	// during the interval.
	InsertTime time.Duration
	// Throughput is points per wall-clock second over the interval,
	// including the amortized cluster-update requests.
	Throughput float64
	// CMM is the cluster quality over the recent window (only when
	// RunConfig.ComputeCMM is set).
	CMM float64
	// Clusters is the number of macro-clusters reported at the sample.
	Clusters int
}

// Result is the outcome of a measured stream run.
type Result struct {
	Algorithm string
	Dataset   string
	Samples   []Sample
	// TotalWall is the total wall-clock time spent (inserts + queries).
	TotalWall time.Duration
	// Points is the total number of points processed.
	Points int
	// FinalClusters is the cluster count at the end of the run.
	FinalClusters int
	// MeanResponseTime averages the per-sample response times.
	MeanResponseTime time.Duration
	// MeanThroughput is Points divided by the total wall-clock time.
	MeanThroughput float64
	// MeanCMM averages the per-sample CMM values (when computed).
	MeanCMM float64
}

// RunStream drives one clusterer over the dataset and measures it.
func RunStream(c stream.Clusterer, ds gen.Dataset, cfg RunConfig) (Result, error) {
	cfg.defaults()
	src, err := ds.RateSource(cfg.Rate)
	if err != nil {
		return Result{}, err
	}
	window := stream.NewWindow(cfg.WindowSize)

	res := Result{Algorithm: c.Name(), Dataset: ds.Name}
	var insertDur, queryDur time.Duration
	var queries int
	var intervalInsert, intervalQuery time.Duration
	var intervalQueries int
	intervalStartWall := time.Now()
	intervalStartPoints := 0

	var clusters []stream.MacroCluster
	points := 0
	now := 0.0
	for {
		if cfg.MaxPoints > 0 && points >= cfg.MaxPoints {
			break
		}
		p, ok := src.Next()
		if !ok {
			break
		}
		now = p.Time
		window.Add(p)

		t0 := time.Now()
		if err := c.Insert(p); err != nil {
			return Result{}, fmt.Errorf("bench: %s rejected point %d: %w", c.Name(), p.ID, err)
		}
		d := time.Since(t0)
		insertDur += d
		intervalInsert += d
		points++

		if points%cfg.QueryEvery == 0 {
			t1 := time.Now()
			clusters = c.Clusters(now)
			qd := time.Since(t1)
			queryDur += qd
			intervalQuery += qd
			queries++
			intervalQueries++
		}

		if points%cfg.SampleEvery == 0 {
			sample := Sample{
				Points:     points,
				StreamTime: now,
				Clusters:   len(clusters),
			}
			intervalPoints := points - intervalStartPoints
			if intervalQueries > 0 {
				sample.ResponseTime = intervalQuery / time.Duration(intervalQueries)
			}
			if intervalPoints > 0 {
				sample.InsertTime = intervalInsert / time.Duration(intervalPoints)
				elapsed := time.Since(intervalStartWall).Seconds()
				if elapsed > 0 {
					sample.Throughput = float64(intervalPoints) / elapsed
				}
			}
			if cfg.ComputeCMM && len(window.Points()) > 0 {
				sample.CMM = evaluateCMM(window.Points(), clusters, now)
			}
			res.Samples = append(res.Samples, sample)
			intervalInsert, intervalQuery, intervalQueries = 0, 0, 0
			intervalStartWall = time.Now()
			intervalStartPoints = points
		}
	}

	res.Points = points
	res.TotalWall = insertDur + queryDur
	res.FinalClusters = len(clusters)
	if len(res.Samples) > 0 {
		var rt time.Duration
		var cmmSum float64
		cmmSamples := 0
		for _, s := range res.Samples {
			rt += s.ResponseTime
			if cfg.ComputeCMM {
				cmmSum += s.CMM
				cmmSamples++
			}
		}
		res.MeanResponseTime = rt / time.Duration(len(res.Samples))
		if cmmSamples > 0 {
			res.MeanCMM = cmmSum / float64(cmmSamples)
		}
	}
	if res.TotalWall > 0 {
		res.MeanThroughput = float64(points) / res.TotalWall.Seconds()
	}
	return res, nil
}

// evaluateCMM scores the current clustering against the ground truth of
// the recent window.
func evaluateCMM(window []stream.Point, clusters []stream.MacroCluster, now float64) float64 {
	assignment := stream.AssignToClusters(window, clusters, 0)
	v, err := metrics.CMM(window, assignment, metrics.CMMConfig{Now: now})
	if err != nil {
		return 0
	}
	return v
}
