package bench

import (
	"testing"
)

// TestRunThroughputSmall smoke-tests the throughput experiment at a
// small scale: both modes must process the full stream, produce
// identical clustering fingerprints (RunThroughput errors otherwise)
// and report sane metrics.
func TestRunThroughputSmall(t *testing.T) {
	s := SmallScale()
	rep, err := RunThroughput(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-throughput/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	for _, r := range []ThroughputModeResult{rep.PerPoint, rep.Batch} {
		if r.Points != s.Points {
			t.Errorf("%s: points = %d, want %d", r.Mode, r.Points, s.Points)
		}
		if r.PointsPerSec <= 0 {
			t.Errorf("%s: no throughput measured", r.Mode)
		}
		if r.ActiveCells == 0 || r.Clusters == 0 {
			t.Errorf("%s: degenerate clustering: %+v", r.Mode, r)
		}
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
}

// TestWriteThroughputJSON checks the artifact writer round-trips.
func TestWriteThroughputJSON(t *testing.T) {
	rep := ThroughputReport{Schema: "edmstream-throughput/v1", Points: 1,
		PerPoint: ThroughputModeResult{Mode: "per-point", BatchSize: 1},
		Batch:    ThroughputModeResult{Mode: "batch", BatchSize: ThroughputBatchSize},
		Speedup:  1}
	path := t.TempDir() + "/BENCH_throughput.json"
	if err := WriteThroughputJSON(path, rep); err != nil {
		t.Fatal(err)
	}
}

// The steady-state ingest benchmarks live at the repository root
// (BenchmarkInsertBatch in bench_test.go) and drive the public API;
// this package only hosts the paired experiment (RunThroughput).
