package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the ingestion throughput experiment (not in the
// paper): it measures per-point Insert against batched InsertBatch on
// a bursty 2-D lattice workload with over a thousand simultaneously
// active cluster-cells, and reports points/sec plus per-point
// allocation counts. cmd/edmbench writes the result as a
// BENCH_throughput.json artifact so the performance trajectory stays
// machine-readable across revisions.

// ThroughputBatchSize is the batch size the experiment feeds
// InsertBatch with.
const ThroughputBatchSize = 256

// ThroughputModeResult is the outcome of one ingestion mode's run.
type ThroughputModeResult struct {
	// Mode is "per-point" or "batch".
	Mode string `json:"mode"`
	// BatchSize is ThroughputBatchSize for the batch mode, 1 otherwise.
	BatchSize int `json:"batch_size"`
	// Points is the number of measured insertions (after warm-up).
	Points int `json:"points"`
	// WallNanos is the wall-clock time the measured insertions took.
	WallNanos int64 `json:"wall_nanos"`
	// PointsPerSec is the measured insert throughput.
	PointsPerSec float64 `json:"points_per_sec"`
	// AllocsPerPoint and BytesPerPoint are the heap allocation counts
	// of the measured phase, normalized per point.
	AllocsPerPoint float64 `json:"allocs_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
	// ActiveCells, Clusters and CellsCreated fingerprint the clustering
	// output so callers can verify both modes computed the same thing.
	ActiveCells  int   `json:"active_cells"`
	Clusters     int   `json:"clusters"`
	CellsCreated int64 `json:"cells_created"`
}

// ThroughputReport is the JSON-serializable outcome of the experiment.
type ThroughputReport struct {
	// Schema versions the artifact layout for cross-revision tooling.
	Schema string `json:"schema"`
	// Points is the measured stream length, Seed the generator seed.
	Points int   `json:"points"`
	Seed   int64 `json:"seed"`
	// PerPoint and Batch are the two measured modes.
	PerPoint ThroughputModeResult `json:"per_point"`
	Batch    ThroughputModeResult `json:"batch"`
	// Speedup is Batch.PointsPerSec / PerPoint.PointsPerSec.
	Speedup float64 `json:"speedup"`
}

// ThroughputStream builds the bursty 2-D lattice workload: points
// drawn from a sites×sites lattice of weighted seed locations (as in
// the index experiment), but emitted in bursts of 2–10 consecutive
// points per site — the temporal locality of sessionized or
// sensor-driven traffic, where one user/sensor emits a run of events
// before the stream moves on. Bursts are what batched ingestion's
// same-cell run coalescing exploits; 2% uniform background noise
// exercises the reservoir path.
func ThroughputStream(n int, seed int64, rate float64) []stream.Point {
	const spacing = 4.0
	rng := rand.New(rand.NewSource(seed))
	nsites := indexBenchSites * indexBenchSites
	sites := make([][2]float64, 0, nsites)
	for i := 0; i < indexBenchSites; i++ {
		for j := 0; j < indexBenchSites; j++ {
			sites = append(sites, [2]float64{float64(i) * spacing, float64(j) * spacing})
		}
	}
	cum := make([]float64, nsites)
	total := 0.0
	for i := range cum {
		total += 2 + 8*rng.Float64()
		cum[i] = total
	}
	pickSite := func() int {
		x := rng.Float64() * total
		lo, hi := 0, nsites-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	span := float64(indexBenchSites) * spacing
	pts := make([]stream.Point, 0, n)
	emit := func(vec []float64) {
		pts = append(pts, stream.Point{
			ID:     int64(len(pts)),
			Vector: vec,
			Time:   float64(len(pts)) / rate,
			Label:  stream.NoLabel,
		})
	}
	for len(pts) < n {
		if rng.Float64() < 0.02 {
			emit([]float64{rng.Float64()*span*1.5 - span/4, rng.Float64()*span*1.5 - span/4})
			continue
		}
		s := sites[pickSite()]
		burst := 2 + rng.Intn(9)
		for b := 0; b < burst && len(pts) < n; b++ {
			emit([]float64{s[0] + rng.NormFloat64()*0.25, s[1] + rng.NormFloat64()*0.25})
		}
	}
	return pts
}

// ThroughputConfig parameterizes EDMStream for the throughput
// workload: the index experiment's configuration (≈1600 simultaneously
// active cells) on the grid index, with automatic evolution checks
// disabled — the experiment isolates the ingest path; the cost of a
// cluster-update request is what the Fig. 9 experiment measures.
// Maintenance sweeps still run on their regular schedule. Ingest is
// pinned single-threaded: this experiment measures the serial batch
// pipeline (run coalescing), which is also the controlled baseline of
// the parallel experiment — leaving IngestWorkers at its GOMAXPROCS
// default would fold route-phase parallelism into the batch row on
// multi-core machines and break cross-revision comparability. The
// worker scaling itself is what `edmbench parallel` measures (it
// overrides IngestWorkers per run).
func ThroughputConfig(rate float64) core.Config {
	cfg := indexBenchConfig(rate, core.IndexGrid)
	cfg.EvolutionInterval = -1
	cfg.IngestWorkers = 1
	return cfg
}

// RunThroughput measures per-point and batched ingestion over the same
// bursty lattice stream. s.Points is the measured stream length; a
// fixed warm-up (ten sweeps of the lattice, fed per-point in both
// runs) precedes measurement so both modes operate at full cell
// population. The two runs' clustering fingerprints must agree — a
// built-in check of the batch/sequential equivalence guarantee — or an
// error is returned.
func RunThroughput(s Scale) (ThroughputReport, error) {
	warmup := 10 * indexBenchSites * indexBenchSites
	pts := ThroughputStream(warmup+s.Points, s.Seed, s.Rate)

	measure := func(batchSize int) (ThroughputModeResult, error) {
		edm, err := core.New(ThroughputConfig(s.Rate))
		if err != nil {
			return ThroughputModeResult{}, fmt.Errorf("bench: building EDMStream: %w", err)
		}
		for i := 0; i < warmup; i++ {
			if err := edm.Insert(pts[i]); err != nil {
				return ThroughputModeResult{}, fmt.Errorf("bench: warm-up insert %d: %w", i, err)
			}
		}
		measured := pts[warmup:]
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		if batchSize <= 1 {
			for i := range measured {
				if err := edm.Insert(measured[i]); err != nil {
					return ThroughputModeResult{}, fmt.Errorf("bench: insert %d: %w", i, err)
				}
			}
		} else {
			for i := 0; i < len(measured); i += batchSize {
				end := i + batchSize
				if end > len(measured) {
					end = len(measured)
				}
				if err := edm.InsertBatch(measured[i:end]); err != nil {
					return ThroughputModeResult{}, fmt.Errorf("bench: batch %d:%d: %w", i, end, err)
				}
			}
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)

		snap := edm.Snapshot()
		st := edm.Stats()
		mode := "per-point"
		if batchSize > 1 {
			mode = "batch"
		}
		r := ThroughputModeResult{
			Mode:         mode,
			BatchSize:    batchSize,
			Points:       len(measured),
			WallNanos:    wall.Nanoseconds(),
			ActiveCells:  st.ActiveCells,
			Clusters:     snap.NumClusters(),
			CellsCreated: st.CellsCreated,
		}
		if wall > 0 {
			r.PointsPerSec = float64(len(measured)) / wall.Seconds()
		}
		if len(measured) > 0 {
			r.AllocsPerPoint = float64(after.Mallocs-before.Mallocs) / float64(len(measured))
			r.BytesPerPoint = float64(after.TotalAlloc-before.TotalAlloc) / float64(len(measured))
		}
		return r, nil
	}

	perPoint, err := measure(1)
	if err != nil {
		return ThroughputReport{}, err
	}
	batch, err := measure(ThroughputBatchSize)
	if err != nil {
		return ThroughputReport{}, err
	}
	if perPoint.Clusters != batch.Clusters || perPoint.CellsCreated != batch.CellsCreated ||
		perPoint.ActiveCells != batch.ActiveCells {
		return ThroughputReport{}, fmt.Errorf(
			"bench: batch and per-point ingestion diverged: per-point {clusters %d cells %d active %d}, batch {clusters %d cells %d active %d}",
			perPoint.Clusters, perPoint.CellsCreated, perPoint.ActiveCells,
			batch.Clusters, batch.CellsCreated, batch.ActiveCells)
	}
	rep := ThroughputReport{
		Schema:   "edmstream-throughput/v1",
		Points:   s.Points,
		Seed:     s.Seed,
		PerPoint: perPoint,
		Batch:    batch,
	}
	if perPoint.PointsPerSec > 0 {
		rep.Speedup = batch.PointsPerSec / perPoint.PointsPerSec
	}
	return rep, nil
}

// WriteThroughputJSON writes the report to path as indented JSON (the
// BENCH_throughput.json artifact).
func WriteThroughputJSON(path string, rep ThroughputReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding throughput report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing throughput artifact: %w", err)
	}
	return nil
}
