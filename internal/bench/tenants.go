package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/server"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the multi-tenant serving drill: many named streams
// multiplexed over the bounded writer pool, under a memory budget
// small enough that the evictor churns engines to disk and back while
// traffic is live. Phase one measures the single-stream sequential
// baseline every acceptance ratio is against. Phase two boots a child
// edmserved process with tenantStreams streams, drives one sequential
// writer per stream, SIGKILLs the child mid-traffic, restarts it on
// the same data directory, and requires every stream's recovered
// clustering to be byte-identical to a solo reference replay of
// exactly that stream's acknowledged batches — multi-tenancy may cost
// latency, never isolation or durability.

const (
	// tenantStreams is how many named streams the drill runs
	// concurrently (the acceptance floor is 32).
	tenantStreams = 32
	// tenantWriters is the client goroutine count; each one round-robins
	// over tenantStreams/tenantWriters streams, one batch per turn. The
	// rotation is what makes eviction churn possible at all: a stream
	// whose writer never pauses keeps its pool handle queued or running,
	// and the evictor (correctly) refuses to touch it — real tenants
	// interleave, so the drill's traffic does too.
	tenantWriters = 8
	// tenantChildEnv marks a process as the drill's serving child.
	tenantChildEnv = "EDMBENCH_TENANTS_CHILD"
	// tenantSweepInterval keeps the evictor hot while traffic runs.
	tenantSweepInterval = 5 * time.Millisecond
	// tenantEvictIdle evicts anything untouched for this long, so the
	// idle path churns alongside the budget path.
	tenantEvictIdle = 500 * time.Millisecond
)

// tenantBudget is the global memory budget the child runs under:
// room for roughly half the streams, so the LRU evictor is always
// working while all of them carry traffic.
func tenantBudget() int64 {
	return int64(tenantStreams/2) * server.MinMemoryBudget
}

// TenantStreamResult is one stream's ledger through the kill drill.
type TenantStreamResult struct {
	Stream string `json:"stream"`
	// AckedBatches is how many batches had an HTTP 200 before the
	// SIGKILL; RecoveredBatches is what the restarted child holds. The
	// contract: acked <= recovered <= acked+1 (the one in-flight batch
	// may have committed before its response was cut).
	AckedBatches      int  `json:"acked_batches"`
	RecoveredBatches  int  `json:"recovered_batches"`
	SnapshotIdentical bool `json:"snapshot_identical"`
}

// TenancyReport is the JSON-serializable outcome of the drill.
type TenancyReport struct {
	Schema           string `json:"schema"`
	Streams          int    `json:"streams"`
	BatchesPerStream int    `json:"batches_per_stream"`
	IngestBatch      int    `json:"ingest_batch"`
	MemoryBudget     int64  `json:"memory_budget_bytes"`
	WriterPool       int    `json:"writer_pool"`

	// BaselinePointsPerSec is the phase-one single-stream sequential
	// writer; AggregatePointsPerSec is all tenantStreams writers
	// together under budget churn, measured up to the kill threshold.
	BaselinePointsPerSec  float64 `json:"baseline_points_per_sec"`
	AggregatePointsPerSec float64 `json:"aggregate_points_per_sec"`
	AggregateSpeedup      float64 `json:"aggregate_speedup"`
	SpeedupAsserted       bool    `json:"speedup_asserted"`

	// EvictionsBeforeKill is the churn the budget forced while traffic
	// was live (the drill fails when it is zero — no churn, nothing
	// exercised). RevivalsAfterRestart counts the transparent revivals
	// the verification reads triggered in the restarted child.
	EvictionsBeforeKill  uint64 `json:"evictions_before_kill"`
	RevivalsAfterRestart uint64 `json:"revivals_after_restart"`

	AckedPoints     int64                `json:"acked_points"`
	RecoveredPoints int64                `json:"recovered_points"`
	StreamsVerified int                  `json:"streams_verified"`
	PerStream       []TenantStreamResult `json:"per_stream"`

	// PostRestartLive: the restarted child accepted fresh ingest on
	// revived streams (recovery yields a server, not a museum).
	PostRestartLive bool `json:"post_restart_live"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// tenantStatsBody is the slice of GET /v1/stats the drill consumes.
type tenantStatsBody struct {
	Engine struct {
		Points int64 `json:"Points"`
	} `json:"engine"`
	Server struct {
		Tenancy struct {
			StreamsLive int    `json:"streams_live"`
			WriterPool  int    `json:"writer_pool"`
			Evictions   uint64 `json:"evictions"`
			Revivals    uint64 `json:"revivals"`
		} `json:"tenancy"`
	} `json:"server"`
}

func tenantStats(client *http.Client, base, path string) (tenantStatsBody, error) {
	raw, err := getShedRetry(client, base+path, 8, 10*time.Millisecond, time.Second, nil)
	if err != nil {
		return tenantStatsBody{}, err
	}
	var st tenantStatsBody
	if err := json.Unmarshal(raw, &st); err != nil {
		return tenantStatsBody{}, fmt.Errorf("bench: stats response: %w", err)
	}
	return st, nil
}

// tenantWorkload builds every stream's deterministic input: distinct
// seeds, whole batches, one spare batch per stream for the liveness
// check after the restart.
func tenantWorkload(s Scale) (batches int, bodies [][][]byte, pts [][]stream.Point, err error) {
	batches = s.Points / (8 * e2eIngestBatch)
	if batches < 6 {
		batches = 6
	}
	perStream := (batches + 1) * e2eIngestBatch // +1 spare liveness batch
	bodies = make([][][]byte, tenantStreams)
	pts = make([][]stream.Point, tenantStreams)
	for i := 0; i < tenantStreams; i++ {
		pts[i] = ServeStream(perStream, s.Seed+int64(i), s.Rate)
		bodies[i], err = e2eBodies(pts[i])
		if err != nil {
			return 0, nil, nil, err
		}
	}
	return batches, bodies, pts, nil
}

// RunTenants runs the multi-tenant serving drill.
func RunTenants(s Scale) (TenancyReport, error) {
	batches, bodies, pts, err := tenantWorkload(s)
	if err != nil {
		return TenancyReport{}, err
	}
	rep := TenancyReport{
		Schema:           "edmstream-tenancy/v1",
		Streams:          tenantStreams,
		BatchesPerStream: batches,
		IngestBatch:      e2eIngestBatch,
		MemoryBudget:     tenantBudget(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
	}

	baseline, err := runTenantBaseline(s, bodies[0][:batches])
	if err != nil {
		return TenancyReport{}, err
	}
	rep.BaselinePointsPerSec = baseline

	if err := runTenantKill(s, &rep, bodies, pts); err != nil {
		return rep, err
	}
	if rep.BaselinePointsPerSec > 0 {
		rep.AggregateSpeedup = rep.AggregatePointsPerSec / rep.BaselinePointsPerSec
	}

	// The scaling assertion needs real hardware parallelism: on a
	// 1-2 core runner the 32 writers timeshare a core and the ratio
	// measures the scheduler, not the pool.
	if procs := min(runtime.NumCPU(), runtime.GOMAXPROCS(0)); procs >= 4 {
		rep.SpeedupAsserted = true
		if rep.AggregatePointsPerSec < rep.BaselinePointsPerSec {
			return rep, fmt.Errorf("bench: %d tenant streams aggregate %.0f points/sec below the single-stream baseline %.0f",
				tenantStreams, rep.AggregatePointsPerSec, rep.BaselinePointsPerSec)
		}
	}
	return rep, nil
}

// runTenantBaseline measures one sequential writer on a solo durable
// single-stream server: the reference rate the multi-tenant aggregate
// is compared against.
func runTenantBaseline(s Scale, bodies [][]byte) (float64, error) {
	dir, err := os.MkdirTemp("", "edmbench-tenants-base-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	c, err := edmstream.New(walOptions(s.Rate))
	if err != nil {
		return 0, err
	}
	srv, err := server.New(c, server.Config{
		Addr:            "127.0.0.1:0",
		DataDir:         dir,
		CheckpointEvery: walCheckpointEvery,
	})
	if err != nil {
		return 0, fmt.Errorf("bench: building baseline server: %w", err)
	}
	if err := srv.Start(); err != nil {
		return 0, fmt.Errorf("bench: starting baseline server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client := &http.Client{}
	base := "http://" + srv.Addr()
	begin := time.Now()
	for _, body := range bodies {
		if err := walPost(client, base, body); err != nil {
			return 0, fmt.Errorf("bench: baseline ingest: %w", err)
		}
	}
	wall := time.Since(begin)
	return float64(len(bodies)*e2eIngestBatch) / wall.Seconds(), nil
}

// startTenantChild re-execs this binary as the multi-tenant serving
// child and waits for its address (published only after server.New —
// after stream discovery and default-stream recovery).
func startTenantChild(exe, dataDir, addrFile string, rate float64) (*benchChild, error) {
	return startBenchChild(exe, []string{
		tenantChildEnv + "=1",
		"EDMBENCH_TENANTS_DIR=" + dataDir,
		"EDMBENCH_TENANTS_ADDR_FILE=" + addrFile,
		fmt.Sprintf("EDMBENCH_TENANTS_RATE=%g", rate),
		fmt.Sprintf("EDMBENCH_TENANTS_BUDGET=%d", tenantBudget()),
		fmt.Sprintf("EDMBENCH_TENANTS_CHECKPOINT_EVERY=%d", walCheckpointEvery),
	}, addrFile)
}

// runTenantKill is the churn-and-crash phase. One sequential writer
// per stream keeps every acknowledged set an exact batch prefix of
// its stream, which is what makes the per-stream reference replays
// well-defined.
func runTenantKill(s Scale, rep *TenancyReport, bodies [][][]byte, pts [][]stream.Point) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("bench: locating own executable for the tenants child: %w", err)
	}
	base, err := os.MkdirTemp("", "edmbench-tenants-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)
	dataDir := filepath.Join(base, "data")
	addrFile := filepath.Join(base, "addr")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        tenantStreams + 4,
		MaxIdleConnsPerHost: tenantStreams + 4,
	}}

	child, err := startTenantChild(exe, dataDir, addrFile, s.Rate)
	if err != nil {
		return err
	}
	childBase := "http://" + child.addr

	batches := rep.BatchesPerStream
	killAfter := int64(tenantStreams*batches) / 2
	var totalAcked atomic.Int64
	var killIssued atomic.Bool
	threshold := make(chan struct{})
	var thresholdOnce sync.Once

	acked := make([]int64, tenantStreams)
	writerErrs := make([]error, tenantWriters)
	var wg sync.WaitGroup
	begin := time.Now()
	var threshWall atomic.Int64 // nanoseconds to the kill threshold
	perWriter := tenantStreams / tenantWriters
	for w := 0; w < tenantWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Round-robin over this writer's streams, one batch per
			// turn: each stream stays strictly sequential (its acked set
			// is always an exact batch prefix) while sitting idle — and
			// evictable — between its turns.
			for b := 0; b < batches; b++ {
				for k := 0; k < perWriter; k++ {
					i := w*perWriter + k
					url := fmt.Sprintf("%s/v1/tenant-%02d/ingest", childBase, i)
					if _, err := postShedRetry(client, url, bodies[i][b], 8, 10*time.Millisecond, time.Second, nil); err != nil {
						// After the SIGKILL a failed request is the crash
						// happening — expected; before it, a real failure.
						if !killIssued.Load() {
							writerErrs[w] = err
						}
						return
					}
					atomic.AddInt64(&acked[i], 1)
					if totalAcked.Add(1) == killAfter {
						thresholdOnce.Do(func() {
							threshWall.Store(int64(time.Since(begin)))
							close(threshold)
						})
					}
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	select {
	case <-threshold:
	case <-writersDone:
		thresholdOnce.Do(func() {
			threshWall.Store(int64(time.Since(begin)))
			close(threshold)
		})
	}

	// Grab the churn ledger while the child is still alive, then kill
	// it mid-traffic.
	st, err := tenantStats(client, childBase, "/v1/stats")
	if err != nil {
		return fmt.Errorf("bench: pre-kill stats: %w", err)
	}
	rep.EvictionsBeforeKill = st.Server.Tenancy.Evictions
	rep.WriterPool = st.Server.Tenancy.WriterPool
	killIssued.Store(true)
	_ = child.cmd.Process.Kill() // SIGKILL: no flush, no goodbye
	<-child.wait
	<-writersDone
	for w, werr := range writerErrs {
		if werr != nil {
			return fmt.Errorf("bench: writer %d ingest before the kill: %w", w, werr)
		}
	}
	if rep.EvictionsBeforeKill == 0 {
		return fmt.Errorf("bench: no evictions before the kill — the %d-byte budget exerted no pressure over %d streams", rep.MemoryBudget, tenantStreams)
	}
	rep.AggregatePointsPerSec = float64(killAfter*e2eIngestBatch) / time.Duration(threshWall.Load()).Seconds()
	for i := range acked {
		rep.AckedPoints += acked[i] * e2eIngestBatch
	}

	// Restart on the same directory: discovery re-registers every named
	// stream, and each verification read revives one transparently.
	child2, err := startTenantChild(exe, dataDir, addrFile, s.Rate)
	if err != nil {
		return fmt.Errorf("bench: restarting after the kill: %w", err)
	}
	defer func() {
		if child2 != nil {
			_ = child2.cmd.Process.Kill()
			<-child2.wait
		}
	}()
	base2 := "http://" + child2.addr

	for i := 0; i < tenantStreams; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		res := TenantStreamResult{Stream: name, AckedBatches: int(acked[i])}
		st, err := tenantStats(client, base2, "/v1/"+name+"/stats")
		if err != nil {
			return fmt.Errorf("bench: %s post-restart stats: %w", name, err)
		}
		recovered := st.Engine.Points
		if recovered%e2eIngestBatch != 0 {
			return fmt.Errorf("bench: %s recovered a partial batch: %d points", name, recovered)
		}
		res.RecoveredBatches = int(recovered / e2eIngestBatch)
		rep.RecoveredPoints += recovered
		if res.RecoveredBatches < res.AckedBatches {
			rep.PerStream = append(rep.PerStream, res)
			return fmt.Errorf("bench: %s lost acknowledged batches: %d acked, %d recovered", name, res.AckedBatches, res.RecoveredBatches)
		}
		if res.RecoveredBatches > res.AckedBatches+1 {
			// One sequential writer has at most one in-flight request;
			// anything beyond acked+1 was invented.
			rep.PerStream = append(rep.PerStream, res)
			return fmt.Errorf("bench: %s recovered %d batches with only %d acked and one in flight", name, res.RecoveredBatches, res.AckedBatches)
		}

		// Solo reference replay of exactly the recovered prefix: a
		// fresh single-stream engine fed those batches directly must
		// publish the identical clustering — tenancy, eviction churn
		// and the crash were invisible to this stream's state.
		ref, err := edmstream.New(walOptions(s.Rate))
		if err != nil {
			return err
		}
		for b := 0; b < res.RecoveredBatches; b++ {
			if err := ref.InsertBatch(pts[i][b*e2eIngestBatch : (b+1)*e2eIngestBatch]); err != nil {
				return fmt.Errorf("bench: %s reference replay: %w", name, err)
			}
		}
		refSrv, err := server.New(ref, server.Config{Addr: "127.0.0.1:0"})
		if err != nil {
			return err
		}
		if err := refSrv.Start(); err != nil {
			return err
		}
		childSnap, err := walGet(client, base2, "/v1/"+name+"/snapshot")
		if err == nil {
			var refSnap []byte
			refSnap, err = walGet(client, "http://"+refSrv.Addr(), "/v1/snapshot")
			if err == nil && !bytes.Equal(childSnap, refSnap) {
				err = fmt.Errorf("bench: %s recovered clustering diverges from its solo replay of %d batches (%d vs %d snapshot bytes)",
					name, res.RecoveredBatches, len(childSnap), len(refSnap))
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = refSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			rep.PerStream = append(rep.PerStream, res)
			return err
		}
		res.SnapshotIdentical = true
		rep.StreamsVerified++
		rep.PerStream = append(rep.PerStream, res)
	}
	st2, err := tenantStats(client, base2, "/v1/stats")
	if err != nil {
		return err
	}
	rep.RevivalsAfterRestart = st2.Server.Tenancy.Revivals
	if rep.RevivalsAfterRestart < uint64(tenantStreams) {
		return fmt.Errorf("bench: only %d revivals after reading all %d streams", rep.RevivalsAfterRestart, tenantStreams)
	}

	// Liveness: revived streams keep accepting writes (the spare batch
	// generated beyond the sent range, so IDs never collide).
	for i := 0; i < tenantStreams; i += 8 {
		url := fmt.Sprintf("%s/v1/tenant-%02d/ingest", base2, i)
		if _, err := postShedRetry(client, url, bodies[i][batches], 8, 10*time.Millisecond, time.Second, nil); err != nil {
			return fmt.Errorf("bench: post-restart ingest on tenant-%02d: %w", i, err)
		}
	}
	rep.PostRestartLive = true

	// Graceful exit this time: SIGTERM must drain every stream's
	// coalescer and return 0.
	_ = child2.cmd.Process.Signal(syscall.SIGTERM)
	if err := <-child2.wait; err != nil {
		child2 = nil
		return fmt.Errorf("bench: graceful shutdown after recovery: %v", err)
	}
	child2 = nil
	return nil
}

// RunTenantsChild is the drill's serving child: a durable multi-tenant
// edmserved instance with an engine factory, a tight memory budget and
// a hot sweep cadence, configured through EDMBENCH_TENANTS_* variables.
func RunTenantsChild() error {
	dir := os.Getenv("EDMBENCH_TENANTS_DIR")
	addrFile := os.Getenv("EDMBENCH_TENANTS_ADDR_FILE")
	if dir == "" || addrFile == "" {
		return errors.New("bench: EDMBENCH_TENANTS_DIR and EDMBENCH_TENANTS_ADDR_FILE are required in child mode")
	}
	rate, err := strconv.ParseFloat(os.Getenv("EDMBENCH_TENANTS_RATE"), 64)
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_TENANTS_RATE: %w", err)
	}
	budget, err := strconv.ParseInt(os.Getenv("EDMBENCH_TENANTS_BUDGET"), 10, 64)
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_TENANTS_BUDGET: %w", err)
	}
	ckptEvery, err := strconv.Atoi(os.Getenv("EDMBENCH_TENANTS_CHECKPOINT_EVERY"))
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_TENANTS_CHECKPOINT_EVERY: %w", err)
	}

	c, err := edmstream.New(walOptions(rate))
	if err != nil {
		return err
	}
	srv, err := server.New(c, server.Config{
		Addr:            "127.0.0.1:0",
		DataDir:         dir,
		CheckpointEvery: ckptEvery,
		MemoryBudget:    budget,
		EvictIdleAfter:  tenantEvictIdle,
		SweepInterval:   tenantSweepInterval,
		NewEngine:       func() (*edmstream.Clusterer, error) { return edmstream.New(walOptions(rate)) },
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if err := publishAddr(addrFile, srv.Addr()); err != nil {
		return err
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	<-ch
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// FormatTenants renders the report for the terminal.
func FormatTenants(rep TenancyReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Multi-tenant serving: %d streams over a %d-writer pool, %.0f MiB budget\n",
		rep.Streams, rep.WriterPool, float64(rep.MemoryBudget)/(1<<20))
	fmt.Fprintf(&b, "  (gomaxprocs %d, %d CPUs, %d batches of %d points per stream)\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.BatchesPerStream, rep.IngestBatch)
	fmt.Fprintf(&b, "throughput: single-stream baseline %.0f points/sec, %d-stream aggregate %.0f (%.2fx",
		rep.BaselinePointsPerSec, rep.Streams, rep.AggregatePointsPerSec, rep.AggregateSpeedup)
	if rep.SpeedupAsserted {
		fmt.Fprintf(&b, ", asserted)\n")
	} else {
		fmt.Fprintf(&b, ", not asserted: <4 usable CPUs)\n")
	}
	fmt.Fprintf(&b, "churn: %d evictions under budget pressure before the SIGKILL; %d revivals after the restart\n",
		rep.EvictionsBeforeKill, rep.RevivalsAfterRestart)
	fmt.Fprintf(&b, "kill-and-restart: %d points acked across %d streams; %d recovered\n",
		rep.AckedPoints, rep.Streams, rep.RecoveredPoints)
	fmt.Fprintf(&b, "  %d/%d streams byte-identical to their solo reference replays; post-restart ingest live: %v\n",
		rep.StreamsVerified, rep.Streams, rep.PostRestartLive)
	return b.String()
}

// WriteTenantsJSON writes the machine-readable artifact.
func WriteTenantsJSON(path string, rep TenancyReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling tenancy report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
