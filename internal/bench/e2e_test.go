package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunE2ESmoke boots the real server and pushes a small load
// through every driver (writers, readers, events, snapshot), then
// checks the report's internal consistency and the JSON artifact.
func TestRunE2ESmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("network e2e experiment in -short mode")
	}
	s := Scale{Points: 3000, Seed: 1, Rate: 1000}
	rep, err := RunE2E(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-e2e/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	// The writers round down to whole batches.
	wantPts := int64(s.Points/e2eIngestBatch) * e2eIngestBatch
	if rep.IngestPoints != wantPts {
		t.Errorf("ingest points = %d, want %d", rep.IngestPoints, wantPts)
	}
	if rep.IngestPointsPerSec <= 0 || rep.WallSeconds <= 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
	if rep.AssignQueries == 0 || rep.AssignQPS <= 0 {
		t.Errorf("readers did no work: %+v", rep)
	}
	if rep.AssignHitRate <= 0.5 {
		t.Errorf("assign hit rate %.3f: published clustering not serving", rep.AssignHitRate)
	}
	if rep.Coalescer.Batches == 0 || rep.Coalescer.BatchPointsP50 < e2eIngestBatch {
		t.Errorf("coalescer distribution empty or sub-request batches: %+v", rep.Coalescer)
	}
	endpoints := map[string]bool{}
	for _, e := range rep.Endpoints {
		endpoints[e.Endpoint] = true
		if e.Requests == 0 || e.P99Micros < e.P50Micros || e.MaxMicros < e.P99Micros {
			t.Errorf("inconsistent quantiles for %s: %+v", e.Endpoint, e)
		}
	}
	for _, want := range []string{"ingest", "assign", "events", "snapshot"} {
		if !endpoints[want] {
			t.Errorf("no latency recorded for endpoint %s", want)
		}
	}
	if FormatE2E(rep) == "" {
		t.Error("empty formatted report")
	}

	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := WriteE2EJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back E2EReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact not round-trippable: %v", err)
	}
	if back.IngestPoints != rep.IngestPoints || back.Schema != rep.Schema {
		t.Errorf("artifact round-trip mismatch: %+v", back)
	}
}
