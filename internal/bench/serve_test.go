package bench

import (
	"testing"
)

// TestRunServeSmall smoke-tests the serving experiment at a small
// scale: both refresh modes must run the same number of refreshes and
// agree on the clustering (RunServe errors otherwise), the concurrent
// phase must issue queries that hit clusters, and steady-state queries
// must be allocation-free. Absolute speedups are machine-dependent and
// documented by the committed BENCH_serve.json artifact, not asserted
// here.
func TestRunServeSmall(t *testing.T) {
	s := SmallScale()
	rep, err := RunServe(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-serve/v2" {
		t.Errorf("schema = %q", rep.Schema)
	}
	for _, r := range []ServeRefreshResult{rep.Incremental, rep.Full} {
		if r.Refreshes < 5 || r.MeanNanos <= 0 {
			t.Errorf("%s: degenerate refresh measurement: %+v", r.Mode, r)
		}
		if r.ActiveCells == 0 || r.Clusters == 0 {
			t.Errorf("%s: degenerate clustering: %+v", r.Mode, r)
		}
	}
	if rep.RefreshSpeedup <= 0 {
		t.Errorf("refresh speedup = %v", rep.RefreshSpeedup)
	}
	if rep.Readers != ServeReaders {
		t.Errorf("readers = %d, want %d", rep.Readers, ServeReaders)
	}
	if rep.Queries <= 0 || rep.QueriesPerSec <= 0 {
		t.Errorf("no queries measured: %+v", rep)
	}
	// In-distribution probes are drawn like the workload's cluster
	// bursts, so on a steady-state engine they should essentially
	// always land in a cluster; the committed artifact documents the
	// full-scale value (≥ 0.999). The bound here is looser only
	// because the smoke scale warms fewer refresh cycles.
	if rep.HitRate < 0.99 || rep.HitRate > 1 {
		t.Errorf("in-distribution hit rate = %v, want ≥ 0.99", rep.HitRate)
	}
	if rep.NoiseQueries > 0 && (rep.NoiseHitRate < 0 || rep.NoiseHitRate > 1) {
		t.Errorf("noise hit rate = %v", rep.NoiseHitRate)
	}
	if rep.AllocsPerQuery > 0.01 {
		t.Errorf("Assign allocates %.4f per query, want ~0", rep.AllocsPerQuery)
	}
	if rep.WriterPointsPerSec <= 0 {
		t.Errorf("writer made no progress while serving")
	}
}

// TestWriteServeJSON checks the artifact writer round-trips.
func TestWriteServeJSON(t *testing.T) {
	rep := ServeReport{Schema: "edmstream-serve/v2", Readers: ServeReaders}
	path := t.TempDir() + "/BENCH_serve.json"
	if err := WriteServeJSON(path, rep); err != nil {
		t.Fatal(err)
	}
}
