package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the serving experiment (not in the paper): it
// measures the read side built in PR 3 — incremental snapshot-refresh
// latency against the PR 2 from-scratch rebuild on a steady-state
// stream with ~1.9k active cluster-cells, and concurrent Assign
// queries/sec with one writer goroutine ingesting while N reader
// goroutines classify points against the published snapshot.
// cmd/edmbench writes the result as a BENCH_serve.json artifact so the
// performance trajectory stays machine-readable across revisions.

// ServeReaders is the number of concurrent query goroutines the
// experiment runs against the single writer.
const ServeReaders = 4

// serveBatchSize is the writer's ingest batch size.
const serveBatchSize = 256

// ServeRefreshResult is the refresh-latency outcome of one extraction
// mode.
type ServeRefreshResult struct {
	// Mode is "incremental" or "full" (the PR 2 from-scratch rebuild).
	Mode string `json:"mode"`
	// Refreshes is the number of timed snapshot refreshes; each is
	// preceded by 100 ms of stream time worth of ingested points.
	Refreshes int `json:"refreshes"`
	// MedianNanos, MeanNanos, MinNanos and MaxNanos summarize the
	// per-refresh wall-clock latency. The refresh speedup is computed
	// from the medians, which are robust against scheduler and GC
	// outliers polluting a mean of sub-millisecond samples.
	MedianNanos int64   `json:"median_nanos"`
	MeanNanos   float64 `json:"mean_nanos"`
	MinNanos    int64   `json:"min_nanos"`
	MaxNanos    int64   `json:"max_nanos"`
	// ActiveCells and Clusters fingerprint the final clustering so the
	// two modes can be checked for agreement.
	ActiveCells int `json:"active_cells"`
	Clusters    int `json:"clusters"`
}

// ServeReport is the JSON-serializable outcome of the experiment.
type ServeReport struct {
	// Schema versions the artifact layout for cross-revision tooling.
	Schema string `json:"schema"`
	// Points is the refresh-phase stream length, Seed the generator
	// seed.
	Points int   `json:"points"`
	Seed   int64 `json:"seed"`
	// Incremental and Full are the two refresh-latency runs;
	// RefreshSpeedup is Full.MedianNanos / Incremental.MedianNanos.
	Incremental    ServeRefreshResult `json:"incremental"`
	Full           ServeRefreshResult `json:"full"`
	RefreshSpeedup float64            `json:"refresh_speedup"`
	// Readers is the number of concurrent query goroutines;
	// Queries/QueryWallNanos/QueriesPerSec measure their aggregate
	// Assign throughput while the writer ingests.
	Readers        int     `json:"readers"`
	Queries        int64   `json:"queries"`
	QueryWallNanos int64   `json:"query_wall_nanos"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	// HitRate is the serving SLO number: the fraction of
	// in-distribution probes — points in the jitter core of a lattice
	// site whose cluster the published snapshot serves — that Assign
	// classified while the writer churned the engine. Before v2 of
	// this schema the probe set also mixed in the stream's uniform
	// background noise, the extreme tail of its burst jitter and
	// bursts at below-threshold (cold) sites, which capped the
	// reported rate at ~0.9985 by construction: all three are probes
	// the clustering is *supposed* to reject (ingesting one would land
	// in an inactive outlier cell, or seed a new one), so their
	// rejection is correct serving behavior, not an index miss — the
	// frozen probe window is exact for query radii up to the bucket
	// side (see index.Frozen.Assign). Those out-of-distribution probes
	// are now measured separately: NoiseQueries counts them and
	// NoiseHitRate reports how often one still fell within the cell
	// radius of a published seed (the jitter shoulder usually does,
	// and cold sites warm up as the writer replays traffic; uniform
	// noise rarely does).
	HitRate      float64 `json:"hit_rate"`
	NoiseQueries int64   `json:"noise_queries"`
	NoiseHitRate float64 `json:"noise_hit_rate"`
	// WriterPointsPerSec is the writer's ingest throughput while being
	// hammered by the readers.
	WriterPointsPerSec float64 `json:"writer_points_per_sec"`
	// AllocsPerQuery is the heap allocation count of a steady-state
	// Assign, measured single-threaded on a quiescent engine after
	// warm-up (the acceptance target is zero).
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

// ServeStream builds the steady-state serving workload: points drawn
// from the same sites×sites lattice as the throughput experiment, but
// with per-site weights forming smooth density mountains (a few
// Gaussian humps spanning a 2–40 weight range) instead of independent
// random weights. Neighboring sites then differ in density by a clear
// margin almost everywhere, so the DP-Tree's dependency links — and
// with them the cluster partition — stay put between refreshes: the
// regime a serving deployment sits in once its clusters have formed,
// and the regime the incremental extraction is designed for (few dirty
// subtrees per refresh). Bursts of 2–6 points per site keep the
// temporal locality of sessionized traffic; 0.5% uniform noise keeps
// the reservoir path exercised without dominating the churn.
func ServeStream(n int, seed int64, rate float64) []stream.Point {
	const spacing = 4.0
	rng := rand.New(rand.NewSource(seed))
	nsites := indexBenchSites * indexBenchSites
	type site struct{ x, y float64 }
	sites := make([]site, 0, nsites)
	for i := 0; i < indexBenchSites; i++ {
		for j := 0; j < indexBenchSites; j++ {
			sites = append(sites, site{float64(i) * spacing, float64(j) * spacing})
		}
	}
	// A few Gaussian weight mountains over the lattice.
	const mountains = 8
	type hump struct{ cx, cy, sigma, height float64 }
	humps := make([]hump, mountains)
	span := float64(indexBenchSites) * spacing
	for m := range humps {
		humps[m] = hump{
			cx:     rng.Float64() * span,
			cy:     rng.Float64() * span,
			sigma:  (3 + 2*rng.Float64()) * spacing,
			height: 15 + 25*rng.Float64(),
		}
	}
	cum := make([]float64, nsites)
	total := 0.0
	for i, s := range sites {
		w := 2.0
		for _, h := range humps {
			dx, dy := s.x-h.cx, s.y-h.cy
			w += h.height * math.Exp(-(dx*dx+dy*dy)/(2*h.sigma*h.sigma))
		}
		total += w
		cum[i] = total
	}
	pickSite := func() int {
		x := rng.Float64() * total
		lo, hi := 0, nsites-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	pts := make([]stream.Point, 0, n)
	emit := func(vec []float64) {
		pts = append(pts, stream.Point{
			ID:     int64(len(pts)),
			Vector: vec,
			Time:   float64(len(pts)) / rate,
			Label:  stream.NoLabel,
		})
	}
	for len(pts) < n {
		if rng.Float64() < 0.005 {
			emit([]float64{rng.Float64()*span*1.5 - span/4, rng.Float64()*span*1.5 - span/4})
			continue
		}
		s := sites[pickSite()]
		burst := 2 + rng.Intn(5)
		for b := 0; b < burst && len(pts) < n; b++ {
			emit([]float64{s.x + rng.NormFloat64()*0.25, s.y + rng.NormFloat64()*0.25})
		}
	}
	return pts
}

// ServeConfig parameterizes EDMStream for the serving workload: the
// throughput experiment's configuration (including its single-threaded
// ingest pin, which keeps the documented 1-writer + N-reader topology
// exact — a route-phase worker pool would compete with the readers for
// cores and change the contention regime the artifact tracks), but
// with a slower decay
// (a = 0.99999 per point, steady-state stream weight 100k instead of
// 20k) so accumulated cell densities dwarf individual bursts and the
// density ranking — and with it the DP-Tree's dependency links — is
// stable between refreshes. That is the steady serving regime the
// incremental extraction is designed for; the cluster structure is
// identical under both extraction modes either way.
func ServeConfig(rate float64) core.Config {
	cfg := ThroughputConfig(rate)
	cfg.Decay = stream.Decay{A: 0.99999, Lambda: rate}
	cfg.Beta = 3e-5
	return cfg
}

// serveWarmup is the warm-up length: with the slow serving decay the
// steady-state density half-life is ~70 stream-seconds, so the warm-up
// replays 100 stream-seconds of traffic to bring the lattice cells to
// their equilibrium densities before anything is measured.
func serveWarmup() int { return 100000 }

// newServeEngine builds a warmed-up engine at steady state.
func newServeEngine(s Scale, pts []stream.Point, full bool) (*core.EDMStream, error) {
	edm, err := core.New(ServeConfig(s.Rate))
	if err != nil {
		return nil, fmt.Errorf("bench: building EDMStream: %w", err)
	}
	edm.SetFullExtraction(full)
	warmup := serveWarmup()
	for i := 0; i < warmup; i += serveBatchSize {
		end := i + serveBatchSize
		if end > warmup {
			end = warmup
		}
		if err := edm.InsertBatch(pts[i:end]); err != nil {
			return nil, fmt.Errorf("bench: warm-up batch %d:%d: %w", i, end, err)
		}
	}
	edm.Refresh()
	return edm, nil
}

// measureServeRefresh times `refreshes` snapshot refreshes, each after
// 100 ms of stream time worth of ingestion, for one extraction mode.
func measureServeRefresh(s Scale, pts []stream.Point, refreshes, chunk int, full bool) (ServeRefreshResult, error) {
	edm, err := newServeEngine(s, pts, full)
	if err != nil {
		return ServeRefreshResult{}, err
	}
	mode := "incremental"
	if full {
		mode = "full"
	}
	r := ServeRefreshResult{Mode: mode, Refreshes: refreshes, MinNanos: int64(^uint64(0) >> 1)}
	pos := serveWarmup()
	var total int64
	durations := make([]int64, 0, refreshes)
	var snap core.Snapshot
	for i := 0; i < refreshes; i++ {
		for n := 0; n < chunk; n += serveBatchSize {
			end := pos + serveBatchSize
			if end > pos+chunk-n {
				end = pos + chunk - n
			}
			if end > len(pts) {
				return ServeRefreshResult{}, fmt.Errorf("bench: serve stream too short")
			}
			if err := edm.InsertBatch(pts[pos:end]); err != nil {
				return ServeRefreshResult{}, fmt.Errorf("bench: refresh-phase batch: %w", err)
			}
			pos = end
		}
		t0 := time.Now()
		snap = edm.Refresh()
		d := time.Since(t0).Nanoseconds()
		total += d
		durations = append(durations, d)
		if d < r.MinNanos {
			r.MinNanos = d
		}
		if d > r.MaxNanos {
			r.MaxNanos = d
		}
	}
	r.MeanNanos = float64(total) / float64(refreshes)
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	r.MedianNanos = durations[len(durations)/2]
	r.ActiveCells = snap.ActiveCells
	r.Clusters = snap.NumClusters()
	return r, nil
}

// RunServe measures the serving layer: (a) snapshot-refresh latency of
// the incremental extraction against the PR 2 full rebuild on an
// identical steady-state stream, and (b) aggregate Assign queries/sec
// of ServeReaders goroutines running against one continuously
// ingesting writer. The two refresh runs' clustering fingerprints must
// agree (byte-identical extraction is separately property-tested) or
// an error is returned.
func RunServe(s Scale) (ServeReport, error) {
	// A serving deployment refreshes frequently to keep served
	// snapshots fresh — cheap refreshes are exactly what the
	// incremental extraction buys — so the experiment refreshes ten
	// times per stream-second (100 ms snapshot staleness). The full
	// rebuild pays its O(active cells) price at every one of those
	// refreshes; the incremental path pays for the handful of subtrees
	// the 100 ms of traffic actually moved.
	chunk := int(s.Rate) / 10
	if chunk < 50 {
		chunk = 50
	}
	refreshes := s.Points / chunk
	if refreshes < 5 {
		refreshes = 5
	}
	warmup := serveWarmup()
	pts := ServeStream(warmup+refreshes*chunk, s.Seed, s.Rate)

	inc, err := measureServeRefresh(s, pts, refreshes, chunk, false)
	if err != nil {
		return ServeReport{}, err
	}
	full, err := measureServeRefresh(s, pts, refreshes, chunk, true)
	if err != nil {
		return ServeReport{}, err
	}
	if inc.ActiveCells != full.ActiveCells || inc.Clusters != full.Clusters {
		return ServeReport{}, fmt.Errorf(
			"bench: incremental and full extraction diverged: incremental {cells %d clusters %d}, full {cells %d clusters %d}",
			inc.ActiveCells, inc.Clusters, full.ActiveCells, full.Clusters)
	}
	rep := ServeReport{
		Schema:      "edmstream-serve/v2",
		Points:      refreshes * chunk,
		Seed:        s.Seed,
		Incremental: inc,
		Full:        full,
		Readers:     ServeReaders,
	}
	if inc.MedianNanos > 0 {
		rep.RefreshSpeedup = float64(full.MedianNanos) / float64(inc.MedianNanos)
	}

	if err := runServeConcurrent(s, pts, &rep); err != nil {
		return ServeReport{}, err
	}
	return rep, nil
}

// runServeConcurrent drives the 1-writer + N-reader phase and the
// quiescent allocation measurement, filling the query fields of rep.
func runServeConcurrent(s Scale, pts []stream.Point, rep *ServeReport) error {
	edm, err := newServeEngine(s, pts, false)
	if err != nil {
		return err
	}

	// Probe points: a slice of the measured stream, partitioned into
	// in-distribution probes (burst points in a lattice site's jitter
	// core — the traffic a serving deployment classifies) and
	// out-of-core probes (the stream's uniform background noise plus
	// the burst jitter's extreme tail — points the radius rule itself
	// treats as outliers). See classifyServeProbes.
	warmup := serveWarmup()
	probes := pts[warmup:]
	if len(probes) > 8192 {
		probes = probes[:8192]
	}
	clusterProbes, outProbes := classifyServeProbes(probes)
	if len(clusterProbes) == 0 {
		return fmt.Errorf("bench: no in-distribution serve probes")
	}

	// Pre-pass on the warmed, quiescent engine: in-core probes whose
	// site is too cold to be a cluster — below the active threshold, so
	// not published — are correct rejections, exactly like the noise
	// probes (ingesting one would land in an inactive outlier cell).
	// They join the out-of-distribution set, and the headline hit rate
	// measures what a serving SLO means: traffic belonging to published
	// clusters keeps being served while the writer churns the engine.
	edm.Refresh()
	served := make([]stream.Point, 0, len(clusterProbes))
	for _, p := range clusterProbes {
		if _, ok := edm.Assign(p); ok {
			served = append(served, p)
		} else {
			outProbes = append(outProbes, p)
		}
	}
	if len(served) == 0 {
		return fmt.Errorf("bench: no served-cluster probes after the cold-site pre-pass")
	}

	// The writer cycles over the tail of the stream, restamping times
	// so the stream clock keeps advancing at s.Rate, and refreshes the
	// published snapshot once per stream-second — the steady serving
	// regime. The ring is the writer's own copy: restamping must not
	// mutate the probe slice the readers read concurrently.
	ring := append([]stream.Point(nil), pts[warmup:]...)
	now := edm.Now()
	var stop atomic.Bool
	var written atomic.Int64
	var wg sync.WaitGroup

	// Wall-clock duration of the measured window, scaled with Points
	// so CI smoke runs stay fast.
	duration := time.Duration(float64(time.Second) * float64(s.Points) / 20000)
	if duration < 150*time.Millisecond {
		duration = 150 * time.Millisecond
	}
	if duration > 2*time.Second {
		duration = 2 * time.Second
	}

	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		pos := 0
		sinceRefresh := 0
		for !stop.Load() {
			end := pos + serveBatchSize
			if end > len(ring) {
				pos, end = 0, serveBatchSize
			}
			batch := ring[pos:end]
			for i := range batch {
				now += 1 / s.Rate
				batch[i].Time = now
			}
			if err := edm.InsertBatch(batch); err != nil {
				writerErr = fmt.Errorf("bench: serve writer: %w", err)
				return
			}
			written.Add(int64(len(batch)))
			sinceRefresh += len(batch)
			if sinceRefresh >= int(s.Rate)/10 {
				edm.Refresh()
				sinceRefresh = 0
			}
			pos = end
		}
	}()

	var queries, hits, noiseQueries, noiseHits atomic.Int64
	for r := 0; r < ServeReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var q, h, nq, nh int64
			for i := r; !stop.Load(); i++ {
				// One query in 200 probes the out-of-core set so both
				// rates are measured under the same concurrent load.
				// Indexing by the reader's own (staggered) noise counter
				// walks the whole set — indexing by i would visit only
				// the residues 199 mod 200 of it.
				if len(outProbes) > 0 && i%200 == 199 {
					if _, ok := edm.Assign(outProbes[(int(nq)*ServeReaders+r)%len(outProbes)]); ok {
						nh++
					}
					nq++
					continue
				}
				if _, ok := edm.Assign(served[i%len(served)]); ok {
					h++
				}
				q++
			}
			queries.Add(q)
			hits.Add(h)
			noiseQueries.Add(nq)
			noiseHits.Add(nh)
		}(r)
	}

	t0 := time.Now()
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(t0)
	if writerErr != nil {
		return writerErr
	}

	rep.Queries = queries.Load() + noiseQueries.Load()
	rep.NoiseQueries = noiseQueries.Load()
	rep.QueryWallNanos = wall.Nanoseconds()
	if wall > 0 {
		rep.QueriesPerSec = float64(rep.Queries) / wall.Seconds()
		rep.WriterPointsPerSec = float64(written.Load()) / wall.Seconds()
	}
	if q := queries.Load(); q > 0 {
		rep.HitRate = float64(hits.Load()) / float64(q)
	}
	if rep.NoiseQueries > 0 {
		rep.NoiseHitRate = float64(noiseHits.Load()) / float64(rep.NoiseQueries)
	}

	// Steady-state allocation count: quiescent engine, index warmed by
	// one throwaway query (the first Assign after a membership change
	// builds the frozen index).
	edm.Refresh()
	edm.Assign(served[0])
	const allocRuns = 100000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < allocRuns; i++ {
		edm.Assign(served[i%len(served)])
	}
	runtime.ReadMemStats(&after)
	rep.AllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(allocRuns)
	return nil
}

// classifyServeProbes splits a slice of the serve stream into
// in-distribution probes — points in the jitter core of a lattice
// site, the traffic a serving deployment routinely classifies — and
// everything else: the stream's uniform background noise plus the
// extreme tail of the burst jitter. The stream emits cluster points at
// site ± N(0, 0.25²) per axis; the in-distribution threshold is 0.5
// (2σ) per axis, which keeps a probe within the cell radius of the
// seeds that accumulate around its site. Points beyond it are exactly
// the ones the radius rule itself treats as outliers — ingesting such
// a point would seed a fresh outlier cell rather than joining the
// site's cluster — so counting their (correct) rejections against the
// serving hit rate would cap it by workload construction, not by any
// index behavior.
func classifyServeProbes(pts []stream.Point) (cluster, noise []stream.Point) {
	const spacing = 4.0
	hi := float64(indexBenchSites-1) * spacing
	for _, p := range pts {
		in := true
		for _, v := range p.Vector {
			g := math.Round(v/spacing) * spacing
			if g < 0 {
				g = 0
			} else if g > hi {
				g = hi
			}
			if math.Abs(v-g) > 0.5 {
				in = false
				break
			}
		}
		if in {
			cluster = append(cluster, p)
		} else {
			noise = append(noise, p)
		}
	}
	return cluster, noise
}

// WriteServeJSON writes the report to path as indented JSON (the
// BENCH_serve.json artifact).
func WriteServeJSON(path string, rep ServeReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding serve report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing serve artifact: %w", err)
	}
	return nil
}
