package bench

import (
	"strings"
	"testing"

	"github.com/densitymountain/edmstream/internal/core"
)

// TestRunIndexBench smoke-tests the nearest-seed index experiment at a
// reduced scale and checks that the two policies computed the same
// clustering (the experiment's numbers are only comparable when the
// work done is identical).
func TestRunIndexBench(t *testing.T) {
	if testing.Short() {
		t.Skip("index bench workload is too large for -short")
	}
	s := Scale{Points: 2000, Seed: 1, Rate: 1000}
	results, err := RunIndexBench(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 results, got %d", len(results))
	}
	linear, grid := results[0], results[1]
	if linear.Policy != core.IndexLinear || grid.Policy != core.IndexGrid {
		t.Fatalf("unexpected policy order: %v, %v", linear.Policy, grid.Policy)
	}
	if linear.IndexKind != "linear" || grid.IndexKind != "grid" {
		t.Fatalf("unexpected index kinds: %q, %q", linear.IndexKind, grid.IndexKind)
	}
	// Identical clustering fingerprints: the policies must have done
	// the same clustering work.
	if linear.Clusters != grid.Clusters || linear.CellsCreated != grid.CellsCreated ||
		linear.ActiveCells != grid.ActiveCells || linear.TotalCells != grid.TotalCells {
		t.Fatalf("policies disagree on the clustering:\n  linear %+v\n  grid   %+v", linear, grid)
	}
	// The lattice must be live: the measured phase runs against four
	// digits of simultaneously active cells.
	if grid.ActiveCells < 1000 {
		t.Fatalf("only %d active cells; the workload no longer exercises the indexed regime", grid.ActiveCells)
	}
	if linear.InsertsPerSec <= 0 || grid.InsertsPerSec <= 0 {
		t.Fatalf("non-positive throughput: linear %v, grid %v", linear.InsertsPerSec, grid.InsertsPerSec)
	}
	// The grid must prune: two orders of magnitude fewer seed
	// distances per point (wall-clock speedup is asserted only by the
	// benchmark, not here, to keep the test robust on slow CI).
	if grid.MeanCandidatesPerPoint*10 > linear.MeanCandidatesPerPoint {
		t.Fatalf("grid measured %.1f seed distances per point vs linear %.1f — pruning broke",
			grid.MeanCandidatesPerPoint, linear.MeanCandidatesPerPoint)
	}
	out := FormatIndexBench(results)
	for _, want := range []string{"grid", "linear", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatIndexBench output missing %q:\n%s", want, out)
		}
	}
}
