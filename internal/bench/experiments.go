package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/gen"
	"github.com/densitymountain/edmstream/internal/metrics"
	"github.com/densitymountain/edmstream/internal/stream"
	"github.com/densitymountain/edmstream/internal/text"
)

// Scale controls how large the synthetic workloads are. The paper's
// full sizes (Table 2) take minutes per experiment on a laptop; the
// default scale used by `go test -bench` and cmd/edmbench is smaller
// but produces the same curve shapes because every quantity is reported
// against stream length.
type Scale struct {
	// Points is the stream length per dataset.
	Points int
	// Seed seeds the deterministic generators.
	Seed int64
	// Rate is the arrival rate in points per second.
	Rate float64
}

// DefaultScale is the scale used by the benchmarks: large enough for
// every phase (initialization, promotions, decay, deletions) to occur,
// small enough to run all experiments in minutes.
func DefaultScale() Scale { return Scale{Points: 20000, Seed: 1, Rate: 1000} }

// SmallScale is used by unit tests of the harness itself.
func SmallScale() Scale { return Scale{Points: 3000, Seed: 1, Rate: 1000} }

// dataset builds one of the named datasets at the given scale.
func dataset(name string, s Scale) (gen.Dataset, error) {
	return gen.ByName(name, s.Points, s.Seed)
}

// ---------------------------------------------------------------------------
// Table 2 — dataset inventory
// ---------------------------------------------------------------------------

// DatasetRow is one row of Table 2.
type DatasetRow struct {
	Name      string
	Instances int
	Dim       int
	Clusters  int
	Radius    float64
}

// RunTable2 regenerates the dataset inventory of Table 2 at the given
// scale (the Instances column reports the scaled stream length; the
// full-size cardinalities are documented in the generators).
func RunTable2(s Scale) ([]DatasetRow, error) {
	names := []string{"sds", "hds-10", "hds-30", "hds-100", "kdd", "covertype", "pamap2"}
	rows := make([]DatasetRow, 0, len(names))
	for _, name := range names {
		ds, err := dataset(name, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DatasetRow{
			Name:      ds.Name,
			Instances: ds.Len(),
			Dim:       ds.Dim,
			Clusters:  ds.NumClasses,
			Radius:    ds.SuggestedRadius,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 — SDS snapshots
// ---------------------------------------------------------------------------

// SDSSnapshot summarizes the clustering at one of the Fig. 6 snapshot
// times.
type SDSSnapshot struct {
	Time        float64
	Clusters    int
	ActiveCells int
	Outliers    int
	// PeakSeeds are the cluster peaks' seed coordinates.
	PeakSeeds [][]float64
}

// RunFig6 replays the SDS stream and reports the clustering at the
// paper's six snapshot times (scaled to the stream length).
func RunFig6(s Scale) ([]SDSSnapshot, error) {
	ds, err := dataset("sds", s)
	if err != nil {
		return nil, err
	}
	edm, err := NewEDMStream(ds.SuggestedRadius, s.Rate, false)
	if err != nil {
		return nil, err
	}
	streamSeconds := float64(ds.Len()) / s.Rate
	// The paper's snapshot times 1,4,8,12,14,20 s over a 20 s stream.
	fractions := []float64{0.05, 0.20, 0.40, 0.60, 0.70, 0.9999}
	snapTimes := make([]float64, len(fractions))
	for i, f := range fractions {
		snapTimes[i] = f * streamSeconds
	}

	src, err := ds.RateSource(s.Rate)
	if err != nil {
		return nil, err
	}
	var out []SDSSnapshot
	next := 0
	takeSnapshot := func(at float64) {
		snap := edm.Snapshot()
		s := SDSSnapshot{
			Time:        at,
			Clusters:    snap.NumClusters(),
			ActiveCells: snap.ActiveCells,
			Outliers:    snap.OutlierCells,
		}
		for _, c := range snap.Clusters {
			for i, id := range c.CellIDs {
				if id == c.PeakCellID && c.SeedPoints[i].Vector != nil {
					s.PeakSeeds = append(s.PeakSeeds, c.SeedPoints[i].Vector)
				}
			}
		}
		out = append(out, s)
	}
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := edm.Insert(p); err != nil {
			return nil, err
		}
		for next < len(snapTimes) && p.Time >= snapTimes[next] {
			takeSnapshot(snapTimes[next])
			next++
		}
	}
	// Snapshots scheduled at or after the final point's timestamp are
	// taken on the stream's final state.
	for ; next < len(snapTimes); next++ {
		takeSnapshot(snapTimes[next])
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 7 — cluster evolution activities on SDS
// ---------------------------------------------------------------------------

// RunFig7 replays the SDS stream and returns the cluster evolution log
// (the content of Fig. 7) together with the scripted ground-truth
// schedule for comparison.
func RunFig7(s Scale) ([]core.Event, []gen.SDSEvent, error) {
	ds, err := dataset("sds", s)
	if err != nil {
		return nil, nil, err
	}
	edm, err := core.New(core.Config{
		Radius:            ds.SuggestedRadius,
		Rate:              s.Rate,
		Tau:               2.0,
		InitPoints:        500,
		EvolutionInterval: 0.25,
	})
	if err != nil {
		return nil, nil, err
	}
	src, err := ds.RateSource(s.Rate)
	if err != nil {
		return nil, nil, err
	}
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := edm.Insert(p); err != nil {
			return nil, nil, err
		}
	}
	return edm.Events(), gen.SDSEvents(), nil
}

// ---------------------------------------------------------------------------
// Fig. 8 / Table 3 — news recommendation use case
// ---------------------------------------------------------------------------

// NewsCluster describes one news cluster at the end of the stream: its
// ID and the most common tags among its cell seeds (the analogue of the
// topic tags shown in Fig. 8).
type NewsCluster struct {
	ID   int
	Size int
	Tags []string
}

// NewsEvolutionResult is the outcome of the news use case.
type NewsEvolutionResult struct {
	Events        []core.Event
	FinalClusters []NewsCluster
	Scripted      []text.NewsEvent
}

// RunFig8 runs EDMStream over the synthetic news stream with the
// Jaccard distance and reports the evolution log and the final topic
// clusters with their tags.
func RunFig8(s Scale) (NewsEvolutionResult, error) {
	pts, _, err := text.NewsStream(text.NewsConfig{N: s.Points, Seed: s.Seed}, nil)
	if err != nil {
		return NewsEvolutionResult{}, err
	}
	edm, err := core.New(core.Config{
		Radius:            0.4,
		Rate:              s.Rate,
		Tau:               0.75,
		InitPoints:        500,
		EvolutionInterval: 0.5,
	})
	if err != nil {
		return NewsEvolutionResult{}, err
	}
	src, err := stream.NewRateStamper(stream.NewSliceSource(pts), s.Rate, 0)
	if err != nil {
		return NewsEvolutionResult{}, err
	}
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := edm.Insert(p); err != nil {
			return NewsEvolutionResult{}, err
		}
	}
	snap := edm.Snapshot()
	res := NewsEvolutionResult{Events: edm.Events(), Scripted: text.NewsEvents()}
	for _, c := range snap.Clusters {
		counts := map[string]int{}
		for _, seed := range c.SeedPoints {
			for tok := range seed.Tokens {
				counts[tok]++
			}
		}
		type tc struct {
			tok string
			n   int
		}
		var all []tc
		for tok, n := range counts {
			all = append(all, tc{tok, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].tok < all[j].tok
		})
		tags := make([]string, 0, 3)
		for i := 0; i < len(all) && i < 3; i++ {
			tags = append(tags, all[i].tok)
		}
		res.FinalClusters = append(res.FinalClusters, NewsCluster{ID: c.ID, Size: len(c.CellIDs), Tags: tags})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 9 / Fig. 10 / Fig. 13 — response time, throughput, CMM vs baselines
// ---------------------------------------------------------------------------

// RunComparison drives every algorithm over the named dataset and
// returns one Result per algorithm. computeCMM selects the Fig. 13
// (quality) variant; otherwise only performance is measured (Fig. 9 and
// Fig. 10 read different fields of the same results).
func RunComparison(name string, s Scale, computeCMM bool) ([]Result, error) {
	ds, err := dataset(name, s)
	if err != nil {
		return nil, err
	}
	algos, err := Algorithms(ds, s.Rate)
	if err != nil {
		return nil, err
	}
	cfg := RunConfig{Rate: s.Rate, ComputeCMM: computeCMM}
	results := make([]Result, 0, len(algos))
	for _, a := range algos {
		r, err := RunStream(a.Clusterer, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: running %s on %s: %w", a.Name, ds.Name, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// ComparisonDatasets are the three real-dataset simulators used by
// Figs. 9, 10, 11 and 13.
func ComparisonDatasets() []string { return []string{"kdd", "covertype", "pamap2"} }

// ---------------------------------------------------------------------------
// Fig. 11 — effect of the filtering strategies
// ---------------------------------------------------------------------------

// FilterSample is one point of the accumulated dependency-update time
// curve.
type FilterSample struct {
	Points      int
	Accumulated time.Duration
}

// FilterResult is the Fig. 11 series for one filter mode.
type FilterResult struct {
	Mode               core.FilterMode
	Samples            []FilterSample
	Accumulated        time.Duration
	Candidates         int64
	FilteredByDensity  int64
	FilteredByTriangle int64
}

// RunFig11 runs EDMStream over the named dataset three times — without
// filtering (wf), with the density filter (df) and with both filters
// (df+tif) — and reports the accumulated dependency-update time.
func RunFig11(name string, s Scale) ([]FilterResult, error) {
	ds, err := dataset(name, s)
	if err != nil {
		return nil, err
	}
	modes := []core.FilterMode{core.FilterNone, core.FilterDensity, core.FilterAll}
	out := make([]FilterResult, 0, len(modes))
	for _, mode := range modes {
		// DetailedStats turns on the wall-clock instrumentation this
		// experiment plots (it is off by default on the ingest path).
		cfg := core.Config{Radius: ds.SuggestedRadius, Rate: s.Rate, Tau: ds.SuggestedRadius * 4, InitPoints: 500, DetailedStats: true}
		cfg.SetFilters(mode)
		edm, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		src, err := ds.RateSource(s.Rate)
		if err != nil {
			return nil, err
		}
		fr := FilterResult{Mode: mode}
		points := 0
		sampleEvery := s.Points / 10
		if sampleEvery == 0 {
			sampleEvery = 1
		}
		for {
			p, ok := src.Next()
			if !ok {
				break
			}
			if err := edm.Insert(p); err != nil {
				return nil, err
			}
			points++
			if points%sampleEvery == 0 {
				fr.Samples = append(fr.Samples, FilterSample{Points: points, Accumulated: edm.Stats().DependencyUpdateTime})
			}
		}
		st := edm.Stats()
		fr.Accumulated = st.DependencyUpdateTime
		fr.Candidates = st.DependencyCandidates
		fr.FilteredByDensity = st.FilteredByDensity
		fr.FilteredByTriangle = st.FilteredByTriangle
		out = append(out, fr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 12 — varying data dimensionality
// ---------------------------------------------------------------------------

// DimensionResult holds the per-algorithm results for one
// dimensionality.
type DimensionResult struct {
	Dim     int
	Results []Result
}

// RunFig12 measures every algorithm on HDS streams of increasing
// dimensionality.
func RunFig12(dims []int, s Scale) ([]DimensionResult, error) {
	if len(dims) == 0 {
		dims = []int{10, 30, 100}
	}
	out := make([]DimensionResult, 0, len(dims))
	for _, dim := range dims {
		results, err := RunComparison(fmt.Sprintf("hds-%d", dim), s, false)
		if err != nil {
			return nil, err
		}
		out = append(out, DimensionResult{Dim: dim, Results: results})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 14 — cluster quality at different stream rates
// ---------------------------------------------------------------------------

// RateResult is the Fig. 14 row for one stream rate.
type RateResult struct {
	Rate   float64
	Result Result
}

// RunFig14 measures EDMStream's CMM on the CoverType-like stream at
// several arrival rates.
func RunFig14(rates []float64, s Scale) ([]RateResult, error) {
	if len(rates) == 0 {
		rates = []float64{1000, 5000, 10000}
	}
	ds, err := dataset("covertype", s)
	if err != nil {
		return nil, err
	}
	out := make([]RateResult, 0, len(rates))
	for _, rate := range rates {
		edm, err := NewEDMStream(ds.SuggestedRadius, rate, false)
		if err != nil {
			return nil, err
		}
		r, err := RunStream(edm, ds, RunConfig{Rate: rate, ComputeCMM: true})
		if err != nil {
			return nil, err
		}
		out = append(out, RateResult{Rate: rate, Result: r})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 15 / Table 4 — dynamic τ vs static τ
// ---------------------------------------------------------------------------

// TauComparison reports, per whole stream-second, the number of
// clusters found with the adaptive τ and with the τ frozen at its
// initial value (Table 4), plus the τ values themselves.
type TauComparison struct {
	Seconds         []float64
	DynamicClusters []int
	StaticClusters  []int
	DynamicTau      []float64
	StaticTau       float64
	// InitGraph is the decision graph at initialization time (the
	// "init τ" plot of Fig. 15a).
	InitGraph []core.DecisionPoint
}

// RunTable4 replays the SDS stream with adaptive and static τ and
// reports the cluster counts per second.
func RunTable4(s Scale) (TauComparison, error) {
	ds, err := dataset("sds", s)
	if err != nil {
		return TauComparison{}, err
	}
	mk := func(adaptive bool) (*core.EDMStream, error) {
		return core.New(core.Config{
			Radius:            ds.SuggestedRadius,
			Rate:              s.Rate,
			AdaptiveTau:       adaptive,
			InitPoints:        500,
			EvolutionInterval: 0.5,
		})
	}
	dynamic, err := mk(true)
	if err != nil {
		return TauComparison{}, err
	}
	static, err := mk(false)
	if err != nil {
		return TauComparison{}, err
	}

	src, err := ds.RateSource(s.Rate)
	if err != nil {
		return TauComparison{}, err
	}
	out := TauComparison{}
	nextSecond := 1.0
	var graphTaken bool
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := dynamic.Insert(p); err != nil {
			return TauComparison{}, err
		}
		if err := static.Insert(p); err != nil {
			return TauComparison{}, err
		}
		if p.Time >= nextSecond {
			if !graphTaken {
				out.InitGraph = dynamic.DecisionGraph()
				graphTaken = true
			}
			dSnap := dynamic.Snapshot()
			sSnap := static.Snapshot()
			out.Seconds = append(out.Seconds, nextSecond)
			out.DynamicClusters = append(out.DynamicClusters, dSnap.NumClusters())
			out.StaticClusters = append(out.StaticClusters, sSnap.NumClusters())
			out.DynamicTau = append(out.DynamicTau, dynamic.Tau())
			out.StaticTau = static.Tau()
			nextSecond++
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 16 — outlier reservoir size
// ---------------------------------------------------------------------------

// ReservoirSample is one point of the reservoir-size curve.
type ReservoirSample struct {
	Points int
	Size   int
}

// ReservoirResult is the Fig. 16 series for one stream rate.
type ReservoirResult struct {
	Rate    float64
	Bound   float64
	Samples []ReservoirSample
	MaxSize int
}

// RunFig16 measures the outlier reservoir size over the named dataset
// at several stream rates, together with the theoretical upper bound of
// Sec. 4.4.
func RunFig16(name string, rates []float64, s Scale) ([]ReservoirResult, error) {
	if len(rates) == 0 {
		rates = []float64{1000, 5000, 10000}
	}
	ds, err := dataset(name, s)
	if err != nil {
		return nil, err
	}
	out := make([]ReservoirResult, 0, len(rates))
	for _, rate := range rates {
		edm, err := NewEDMStream(ds.SuggestedRadius, rate, false)
		if err != nil {
			return nil, err
		}
		src, err := ds.RateSource(rate)
		if err != nil {
			return nil, err
		}
		rr := ReservoirResult{Rate: rate, Bound: edm.ReservoirBound()}
		points := 0
		sampleEvery := s.Points / 10
		if sampleEvery == 0 {
			sampleEvery = 1
		}
		for {
			p, ok := src.Next()
			if !ok {
				break
			}
			if err := edm.Insert(p); err != nil {
				return nil, err
			}
			points++
			if points%sampleEvery == 0 {
				size := edm.Stats().InactiveCells
				rr.Samples = append(rr.Samples, ReservoirSample{Points: points, Size: size})
				if size > rr.MaxSize {
					rr.MaxSize = size
				}
			}
		}
		out = append(out, rr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 17 — effect of the cluster-cell radius r
// ---------------------------------------------------------------------------

// RadiusResult is the Fig. 17 row for one radius choice.
type RadiusResult struct {
	Quantile     float64
	Radius       float64
	MeanCMM      float64
	MeanResponse time.Duration
	ActiveCells  int
}

// RunFig17 sweeps the cluster-cell radius over the 0.5%–2% pairwise
// distance quantiles (as Sec. 6.7 does) on the PAMAP2-like stream and
// reports cluster quality and response time.
func RunFig17(s Scale) ([]RadiusResult, error) {
	ds, err := dataset("pamap2", s)
	if err != nil {
		return nil, err
	}
	quantiles := []float64{0.005, 0.01, 0.015, 0.02}
	out := make([]RadiusResult, 0, len(quantiles))
	for _, q := range quantiles {
		radius, err := gen.SuggestRadius(ds.Points, q, 400)
		if err != nil {
			return nil, err
		}
		if radius <= 0 {
			continue
		}
		edm, err := NewEDMStream(radius, s.Rate, false)
		if err != nil {
			return nil, err
		}
		r, err := RunStream(edm, ds, RunConfig{Rate: s.Rate, ComputeCMM: true})
		if err != nil {
			return nil, err
		}
		out = append(out, RadiusResult{
			Quantile:     q,
			Radius:       radius,
			MeanCMM:      r.MeanCMM,
			MeanResponse: r.MeanResponseTime,
			ActiveCells:  edm.Stats().ActiveCells,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablations (not in the paper): design-choice studies called out in
// DESIGN.md.
// ---------------------------------------------------------------------------

// AblationResult is one ablation row.
type AblationResult struct {
	Study        string
	Variant      string
	MeanCMM      float64
	MeanResponse time.Duration
	Clusters     int
}

// RunAblation runs the extra design-choice studies: adaptive vs static
// τ on the drifting CoverType-like stream, and cluster-cell
// summarization granularity (radius halved / doubled).
func RunAblation(s Scale) ([]AblationResult, error) {
	ds, err := dataset("covertype", s)
	if err != nil {
		return nil, err
	}
	var out []AblationResult

	for _, adaptive := range []bool{false, true} {
		edm, err := NewEDMStream(ds.SuggestedRadius, s.Rate, adaptive)
		if err != nil {
			return nil, err
		}
		r, err := RunStream(edm, ds, RunConfig{Rate: s.Rate, ComputeCMM: true})
		if err != nil {
			return nil, err
		}
		variant := "static-tau"
		if adaptive {
			variant = "adaptive-tau"
		}
		out = append(out, AblationResult{Study: "tau-strategy", Variant: variant, MeanCMM: r.MeanCMM, MeanResponse: r.MeanResponseTime, Clusters: r.FinalClusters})
	}

	for _, mult := range []float64{0.5, 1, 2} {
		edm, err := NewEDMStream(ds.SuggestedRadius*mult, s.Rate, false)
		if err != nil {
			return nil, err
		}
		r, err := RunStream(edm, ds, RunConfig{Rate: s.Rate, ComputeCMM: true})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Study:        "cell-granularity",
			Variant:      fmt.Sprintf("radius x%.1f", mult),
			MeanCMM:      r.MeanCMM,
			MeanResponse: r.MeanResponseTime,
			Clusters:     r.FinalClusters,
		})
	}

	// Quality reference: the shared CMM evaluation on a perfect
	// assignment of the last window, to show the metric's headroom.
	perfect := metricsHeadroom(ds)
	out = append(out, AblationResult{Study: "cmm-headroom", Variant: "ground-truth assignment", MeanCMM: perfect})
	return out, nil
}

// metricsHeadroom computes CMM for the ground-truth assignment of the
// dataset's last 1000 points (an upper reference for Fig. 13-style
// plots).
func metricsHeadroom(ds gen.Dataset) float64 {
	n := len(ds.Points)
	if n == 0 {
		return 0
	}
	start := n - 1000
	if start < 0 {
		start = 0
	}
	window := ds.Points[start:]
	assignment := make([]int, len(window))
	for i, p := range window {
		if p.Label == stream.NoLabel {
			assignment[i] = -1
		} else {
			assignment[i] = p.Label
		}
	}
	v, err := metrics.CMM(window, assignment, metrics.CMMConfig{})
	if err != nil {
		return 0
	}
	return v
}
