package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the parallel-ingest experiment (not in the paper):
// it sweeps InsertBatch's route-phase worker count over the bursty
// 2-D lattice throughput workload and measures batch-ingest
// points/sec, speculation hit rate and per-point allocations for each
// count. The single-worker run is the fully serial batch path (the
// PR 2 pipeline) and is the baseline every other row's speedup is
// computed against. cmd/edmbench writes the result as a
// BENCH_parallel.json artifact so the scaling trajectory stays
// machine-readable across revisions.
//
// The wall-clock speedup is bounded by the machine: with GOMAXPROCS=1
// the worker pool timeshares one core and the sweep can only show the
// overhead of the speculative pipeline (the GoMaxProcs and NumCPU
// fields record the environment next to the numbers). The clustering
// fingerprints of every worker count must agree — the byte-identical
// equivalence guarantee, property-tested in internal/core — or the
// experiment errors out.

// ParallelWorkerCounts is the worker-count sweep the experiment runs.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelModeResult is the outcome of one worker count's run.
type ParallelModeResult struct {
	// Workers is the configured route-phase worker count.
	Workers int `json:"workers"`
	// Points is the number of measured insertions (after warm-up).
	Points int `json:"points"`
	// WallNanos is the wall-clock time the measured insertions took;
	// PointsPerSec the resulting throughput and Speedup its ratio to
	// the single-worker baseline.
	WallNanos    int64   `json:"wall_nanos"`
	PointsPerSec float64 `json:"points_per_sec"`
	Speedup      float64 `json:"speedup"`
	// SpeculativeRoutes and SpeculationMisses are the route-phase
	// counters of the measured run (warm-up excluded);
	// SpeculationHitRate is 1 − misses/routes (1 when nothing was
	// routed speculatively, i.e. the single-worker baseline). On this
	// workload the misses are dominated by burst siblings: when a
	// burst arrives at a site whose cell expired, the first point
	// creates the cell mid-batch and the rest of the burst — routed
	// against the pre-batch snapshot — is claimed by it during
	// validation, a repair that costs one scan of the batch's new
	// cells and no index probe. Full re-routes (speculated cell
	// deleted by a mid-batch sweep) are far rarer.
	SpeculativeRoutes  int64   `json:"speculative_routes"`
	SpeculationMisses  int64   `json:"speculation_misses"`
	SpeculationHitRate float64 `json:"speculation_hit_rate"`
	// AllocsPerPoint and BytesPerPoint are the heap allocation counts
	// of the measured phase, normalized per point.
	AllocsPerPoint float64 `json:"allocs_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
	// ActiveCells, Clusters and CellsCreated fingerprint the
	// clustering output; they must be identical across worker counts.
	ActiveCells  int   `json:"active_cells"`
	Clusters     int   `json:"clusters"`
	CellsCreated int64 `json:"cells_created"`
}

// ParallelReport is the JSON-serializable outcome of the experiment.
type ParallelReport struct {
	// Schema versions the artifact layout for cross-revision tooling.
	Schema string `json:"schema"`
	// Points is the measured stream length, Seed the generator seed,
	// BatchSize the InsertBatch size.
	Points    int   `json:"points"`
	Seed      int64 `json:"seed"`
	BatchSize int   `json:"batch_size"`
	// GoMaxProcs and NumCPU record the parallelism available where the
	// artifact was generated; wall-clock speedups are meaningless
	// without them.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Results holds one row per worker count, in sweep order.
	Results []ParallelModeResult `json:"results"`
	// SpeedupAt4 is the 4-worker row's speedup over the single-worker
	// baseline (0 when either row is missing) — the headline number CI
	// asserts on multi-core runners.
	SpeedupAt4 float64 `json:"speedup_at_4_workers"`
}

// RunParallel measures batched ingestion over the bursty lattice
// stream for every worker count in ParallelWorkerCounts. s.Points is
// the measured stream length; a fixed warm-up (ten sweeps of the
// lattice) precedes measurement so every run operates at full cell
// population. All runs must produce identical clustering fingerprints
// or an error is returned.
func RunParallel(s Scale) (ParallelReport, error) {
	warmup := 10 * indexBenchSites * indexBenchSites
	pts := ThroughputStream(warmup+s.Points, s.Seed, s.Rate)

	measure := func(workers int) (ParallelModeResult, error) {
		cfg := ThroughputConfig(s.Rate)
		cfg.IngestWorkers = workers
		edm, err := core.New(cfg)
		if err != nil {
			return ParallelModeResult{}, fmt.Errorf("bench: building EDMStream: %w", err)
		}
		ingest := func(batch []stream.Point, lo, hi int) error {
			for i := lo; i < hi; i += ThroughputBatchSize {
				end := i + ThroughputBatchSize
				if end > hi {
					end = hi
				}
				if err := edm.InsertBatch(batch[i:end]); err != nil {
					return fmt.Errorf("bench: batch %d:%d: %w", i, end, err)
				}
			}
			return nil
		}
		if err := ingest(pts, 0, warmup); err != nil {
			return ParallelModeResult{}, err
		}
		before := edm.Stats()
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		t0 := time.Now()
		if err := ingest(pts, warmup, len(pts)); err != nil {
			return ParallelModeResult{}, err
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&memAfter)

		snap := edm.Snapshot()
		st := edm.Stats()
		r := ParallelModeResult{
			Workers:            workers,
			Points:             s.Points,
			WallNanos:          wall.Nanoseconds(),
			SpeculativeRoutes:  st.SpeculativeRoutes - before.SpeculativeRoutes,
			SpeculationMisses:  st.SpeculationMisses - before.SpeculationMisses,
			SpeculationHitRate: 1,
			ActiveCells:        st.ActiveCells,
			Clusters:           snap.NumClusters(),
			CellsCreated:       st.CellsCreated,
		}
		if r.SpeculativeRoutes > 0 {
			r.SpeculationHitRate = 1 - float64(r.SpeculationMisses)/float64(r.SpeculativeRoutes)
		}
		if wall > 0 {
			r.PointsPerSec = float64(s.Points) / wall.Seconds()
		}
		if s.Points > 0 {
			r.AllocsPerPoint = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(s.Points)
			r.BytesPerPoint = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(s.Points)
		}
		return r, nil
	}

	rep := ParallelReport{
		Schema:     "edmstream-parallel/v1",
		Points:     s.Points,
		Seed:       s.Seed,
		BatchSize:  ThroughputBatchSize,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	var base ParallelModeResult
	for _, w := range ParallelWorkerCounts {
		r, err := measure(w)
		if err != nil {
			return ParallelReport{}, err
		}
		if w == ParallelWorkerCounts[0] {
			base = r
		} else if r.Clusters != base.Clusters || r.CellsCreated != base.CellsCreated ||
			r.ActiveCells != base.ActiveCells {
			return ParallelReport{}, fmt.Errorf(
				"bench: %d-worker ingestion diverged from the single-threaded baseline: {clusters %d cells %d active %d} vs {clusters %d cells %d active %d}",
				w, r.Clusters, r.CellsCreated, r.ActiveCells,
				base.Clusters, base.CellsCreated, base.ActiveCells)
		}
		if base.PointsPerSec > 0 {
			r.Speedup = r.PointsPerSec / base.PointsPerSec
		}
		if w == 4 {
			rep.SpeedupAt4 = r.Speedup
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// WriteParallelJSON writes the report to path as indented JSON (the
// BENCH_parallel.json artifact).
func WriteParallelJSON(path string, rep ParallelReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding parallel report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing parallel artifact: %w", err)
	}
	return nil
}
