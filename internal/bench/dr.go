package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/server"
)

// This file holds the disaster-recovery drill: a durable child
// edmserved ships its WAL to a deliberately flaky object store
// (periodic upload failures with visible partial-upload debris,
// periodic download failures, and a full outage window mid-run) while
// a sequential writer ingests. The archive contract under test: a
// remote outage NEVER fails or blocks an acknowledged ingest — the
// server only reports archive-lagging — and after the local data
// directory is destroyed outright, a fresh child restores from the
// remote, recovers a whole-batch prefix of the acknowledged stream
// covering everything the archive had shipped, serves a clustering
// byte-identical to a fresh engine fed that prefix, and does it all
// inside the recovery-time budget (BENCH_recovery.json).

const (
	// drChildEnv marks a process as the disaster drill's serving child;
	// cmd/edmbench and the bench test binary divert to RunDRChild when
	// it is set, before any flag parsing.
	drChildEnv = "EDMBENCH_DR_CHILD"
	// drCheckpointEvery keeps checkpoints dense enough that the remote
	// holds one well before the outage, so the restore exercises both
	// the checkpoint download and the segment tail replay.
	drCheckpointEvery = 2000
	// drSegmentBytes keeps WAL segments small enough that every drill
	// phase — including the short outage window at CI scale — seals
	// and ships several.
	drSegmentBytes = 16 << 10
	// drBudget is the recovery-time budget handed to both children:
	// the full restart of the second child — download, validate,
	// replay, bind — must come in under it.
	drBudget = 5 * time.Second
	// drLiveBatches is the post-restore liveness traffic.
	drLiveBatches = 2
)

// DRReport is the JSON-serializable outcome of the drill.
type DRReport struct {
	Schema      string  `json:"schema"`
	Points      int     `json:"points"`
	Seed        int64   `json:"seed"`
	Rate        float64 `json:"rate"`
	IngestBatch int     `json:"ingest_batch"`

	// AckedPoints is every point 200-acked across all phases before
	// the kill; OutageAckedPoints the subset acked while the remote
	// was fully down (the never-block contract: each one was a clean
	// 200 with zero retries).
	AckedPoints       int64 `json:"acked_points"`
	OutageAckedPoints int64 `json:"outage_acked_points"`

	// Archive accounting at the moment of the kill. ArchivedThroughSeq
	// is the sealed-segment high-water mark the remote held; every WAL
	// record below it must be recoverable. CompressionRatio is
	// shipped-over-read bytes for the gzip'd uploads.
	ArchivedThroughSeq uint64  `json:"archived_through_seq"`
	ArchiveFailed      uint64  `json:"archive_failed_uploads"`
	ArchiveRetried     uint64  `json:"archive_upload_retries"`
	CompressionRatio   float64 `json:"compression_ratio"`

	// The disaster: SIGKILL plus rm -rf of the data directory, then a
	// restore-from-archive restart. RecoveredPoints is what the
	// restored child holds — whole batches only, at most AckedPoints,
	// at least what the archive had sealed.
	RecoveredPoints    int64   `json:"recovered_points"`
	RestoreCheckpoints int     `json:"restore_checkpoints"`
	RestoreSegments    int     `json:"restore_segments"`
	RestoreBytes       int64   `json:"restore_bytes"`
	RestoreBadObjects  int     `json:"restore_bad_objects"`
	RestoreRetried     int     `json:"restore_retried"`
	RestoreSeconds     float64 `json:"restore_seconds"`

	// RestartWallSeconds is the full disaster restart — process start
	// to bound address — which the drill requires under
	// RecoveryBudgetSeconds.
	RestartWallSeconds    float64 `json:"restart_wall_seconds"`
	RecoveryBudgetSeconds float64 `json:"recovery_budget_seconds"`
	BudgetCheckpoints     uint64  `json:"budget_checkpoints"`
	ReplayPointsPerSec    int64   `json:"replay_points_per_sec"`

	// SnapshotIdentical records that the restored clustering is
	// byte-identical to a fresh engine fed the recovered prefix.
	SnapshotIdentical bool  `json:"snapshot_identical"`
	PostRestartPoints int64 `json:"post_restart_points"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// drStatsBody is the slice of GET /v1/stats the drill consumes.
type drStatsBody struct {
	Engine struct {
		Points int64 `json:"Points"`
	} `json:"engine"`
	Server struct {
		Durability *struct {
			BudgetCheckpoints    uint64 `json:"budget_checkpoints"`
			ReplayPointsPerSec   int64  `json:"replay_points_per_sec"`
			CheckpointCompressed bool   `json:"checkpoint_compressed"`
		} `json:"durability"`
		Archive *struct {
			Shipped              uint64               `json:"shipped"`
			ShippedBytes         uint64               `json:"shipped_bytes"`
			ReadBytes            uint64               `json:"read_bytes"`
			Failed               uint64               `json:"failed"`
			Retried              uint64               `json:"retried"`
			LagObjects           int64                `json:"lag_objects"`
			Lagging              bool                 `json:"lagging"`
			ShippedThroughSeq    uint64               `json:"shipped_through_seq"`
			ShippedCheckpointSeq uint64               `json:"shipped_checkpoint_seq"`
			Restore              *archive.RestoreInfo `json:"restore"`
		} `json:"archive"`
	} `json:"server"`
}

func drStats(client *http.Client, base string) (drStatsBody, error) {
	raw, err := getShedRetry(client, base+"/v1/stats", 4, 10*time.Millisecond, time.Second, nil)
	if err != nil {
		return drStatsBody{}, err
	}
	var st drStatsBody
	if err := json.Unmarshal(raw, &st); err != nil {
		return drStatsBody{}, fmt.Errorf("bench: stats response: %w", err)
	}
	return st, nil
}

// startDRChild re-execs this binary as the disaster drill's durable
// serving child. The addr file is written only after server.New
// returned — after any restore and recovery — so the parent's poll on
// it doubles as a recovery barrier, and its wall time is the restart
// the budget judges.
func startDRChild(exe, dataDir, remoteDir, addrFile string, rate float64, restore bool) (*benchChild, error) {
	restoreFlag := "0"
	if restore {
		restoreFlag = "1"
	}
	return startBenchChild(exe, []string{
		drChildEnv + "=1",
		"EDMBENCH_DR_DIR=" + dataDir,
		"EDMBENCH_DR_REMOTE=" + remoteDir,
		"EDMBENCH_DR_ADDR_FILE=" + addrFile,
		fmt.Sprintf("EDMBENCH_DR_RATE=%g", rate),
		fmt.Sprintf("EDMBENCH_DR_BUDGET_MS=%d", drBudget.Milliseconds()),
		"EDMBENCH_DR_RESTORE=" + restoreFlag,
	}, addrFile)
}

// RunDR drives the disaster-recovery drill end to end. s.Points is
// the acknowledged traffic pool (rounded down to whole batches).
func RunDR(s Scale) (DRReport, error) {
	exe, err := os.Executable()
	if err != nil {
		return DRReport{}, fmt.Errorf("bench: locating own executable for the dr child: %w", err)
	}
	base, err := os.MkdirTemp("", "edmbench-dr-")
	if err != nil {
		return DRReport{}, err
	}
	defer os.RemoveAll(base)
	dataDir := filepath.Join(base, "data")
	remoteDir := filepath.Join(base, "remote")
	addrFile := filepath.Join(base, "addr")

	measuredBatches := s.Points / e2eIngestBatch
	if measuredBatches < 8 {
		return DRReport{}, fmt.Errorf("bench: the dr drill needs at least %d points, got %d", 8*e2eIngestBatch, s.Points)
	}
	warmupBatches := walWarmup / e2eIngestBatch
	total := (warmupBatches + measuredBatches + drLiveBatches) * e2eIngestBatch
	pts := ServeStream(total, s.Seed, s.Rate)
	bodies, err := e2eBodies(pts)
	if err != nil {
		return DRReport{}, err
	}
	// Phase split of the measured batches: half against the flaky-but-
	// up remote, a quarter during the total outage, the rest after the
	// heal so the shipper's catch-up runs under fresh traffic.
	outageStart := warmupBatches + measuredBatches/2
	outageEnd := outageStart + measuredBatches/4
	killAt := warmupBatches + measuredBatches

	rep := DRReport{
		Schema:                "edmstream-dr/v1",
		Points:                measuredBatches * e2eIngestBatch,
		Seed:                  s.Seed,
		Rate:                  s.Rate,
		IngestBatch:           e2eIngestBatch,
		RecoveryBudgetSeconds: drBudget.Seconds(),
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		NumCPU:                runtime.NumCPU(),
	}
	client := &http.Client{}

	child, err := startDRChild(exe, dataDir, remoteDir, addrFile, s.Rate, false)
	if err != nil {
		return rep, err
	}
	childUp := true
	defer func() {
		if childUp {
			_ = child.cmd.Process.Kill()
			<-child.wait
		}
	}()
	url := "http://" + child.addr

	// One sequential writer: with requests strictly one at a time the
	// acknowledged set is always an exact whole-batch prefix of the
	// stream, which is what makes the reference replay well-defined.
	acked := 0
	post := func(b int) error {
		if err := walPost(client, url, bodies[b]); err != nil {
			return fmt.Errorf("bench: dr ingest (batch %d): %w", b, err)
		}
		acked++
		return nil
	}

	// Phase 1: flaky remote (periodic failed and partial uploads, the
	// shipper retries through all of it).
	for b := 0; b < outageStart; b++ {
		if err := post(b); err != nil {
			return rep, err
		}
	}
	if err := waitUntil(30*time.Second, 10*time.Millisecond, "the archive to hold a checkpoint and sealed segments", func() (bool, error) {
		st, err := drStats(client, url)
		if err != nil {
			return false, err
		}
		a := st.Server.Archive
		return a != nil && a.ShippedCheckpointSeq > 0 && a.ShippedThroughSeq > 0, nil
	}); err != nil {
		return rep, err
	}

	// Phase 2: total remote outage. Every ingest must still be a clean
	// first-try 200 — local durability is the ack authority, the
	// archive only reports lag.
	if err := child.cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		return rep, fmt.Errorf("bench: arming the remote outage: %w", err)
	}
	for b := outageStart; b < outageEnd; b++ {
		status, _, raw, err := doPost(client, url+"/v1/ingest", bodies[b])
		if err != nil {
			return rep, fmt.Errorf("bench: ingest during the remote outage: %w", err)
		}
		if status != http.StatusOK {
			return rep, fmt.Errorf("bench: the remote outage failed an ingest ack: batch %d got %d: %s", b, status, raw)
		}
		acked++
	}
	rep.OutageAckedPoints = int64(outageEnd-outageStart) * e2eIngestBatch
	if err := waitUntil(30*time.Second, 10*time.Millisecond, "the server to report archive-lagging", func() (bool, error) {
		st, err := drStats(client, url)
		if err != nil {
			return false, err
		}
		a := st.Server.Archive
		if a == nil || !a.Lagging || a.Failed == 0 {
			return false, nil
		}
		raw, err := getShedRetry(client, url+"/healthz", 4, 10*time.Millisecond, time.Second, nil)
		if err != nil {
			return false, err
		}
		return strings.Contains(string(raw), "archive-lagging"), nil
	}); err != nil {
		return rep, err
	}

	// Phase 3: the remote heals (back to merely flaky); the shipper
	// must catch up to zero lag on its own while traffic continues.
	if err := child.cmd.Process.Signal(syscall.SIGUSR2); err != nil {
		return rep, fmt.Errorf("bench: healing the remote: %w", err)
	}
	for b := outageEnd; b < killAt; b++ {
		if err := post(b); err != nil {
			return rep, err
		}
	}
	var preKill drStatsBody
	if err := waitUntil(30*time.Second, 10*time.Millisecond, "the shipper to catch up after the outage", func() (bool, error) {
		st, err := drStats(client, url)
		if err != nil {
			return false, err
		}
		a := st.Server.Archive
		if a == nil || a.Lagging || a.LagObjects != 0 {
			return false, nil
		}
		preKill = st
		return true, nil
	}); err != nil {
		return rep, err
	}
	rep.AckedPoints = int64(acked) * e2eIngestBatch
	a := preKill.Server.Archive
	rep.ArchivedThroughSeq = a.ShippedThroughSeq
	rep.ArchiveFailed = a.Failed
	rep.ArchiveRetried = a.Retried
	if a.ReadBytes > 0 {
		rep.CompressionRatio = float64(a.ShippedBytes) / float64(a.ReadBytes)
	}
	if a.Failed == 0 || a.Retried == 0 {
		return rep, fmt.Errorf("bench: the flaky remote never exercised the retry path: failed=%d retried=%d", a.Failed, a.Retried)
	}
	if a.ShippedBytes >= a.ReadBytes {
		return rep, fmt.Errorf("bench: compressed shipping did not shrink the stream: shipped %d bytes of %d read", a.ShippedBytes, a.ReadBytes)
	}
	if preKill.Server.Durability == nil || !preKill.Server.Durability.CheckpointCompressed {
		return rep, errors.New("bench: the child does not report compressed checkpoints")
	}

	// The disaster: SIGKILL, then the data directory is destroyed
	// outright. The remote archive is all that survives.
	_ = child.cmd.Process.Kill()
	<-child.wait
	childUp = false
	if err := os.RemoveAll(dataDir); err != nil {
		return rep, fmt.Errorf("bench: destroying the data directory: %w", err)
	}

	t0 := time.Now()
	child2, err := startDRChild(exe, dataDir, remoteDir, addrFile, s.Rate, true)
	if err != nil {
		return rep, fmt.Errorf("bench: restore-from-archive restart: %w", err)
	}
	rep.RestartWallSeconds = time.Since(t0).Seconds()
	defer func() {
		if child2 != nil {
			_ = child2.cmd.Process.Kill()
			<-child2.wait
		}
	}()
	url2 := "http://" + child2.addr

	st2, err := drStats(client, url2)
	if err != nil {
		return rep, err
	}
	recovered := st2.Engine.Points
	rep.RecoveredPoints = recovered
	a2 := st2.Server.Archive
	if a2 == nil || a2.Restore == nil {
		return rep, errors.New("bench: the restored child reports no restore info — RestoreFromArchive did not run")
	}
	rep.RestoreCheckpoints = a2.Restore.Checkpoints
	rep.RestoreSegments = a2.Restore.Segments
	rep.RestoreBytes = a2.Restore.Bytes
	rep.RestoreBadObjects = a2.Restore.BadObjects
	rep.RestoreRetried = a2.Restore.Retried
	rep.RestoreSeconds = a2.Restore.DurationSeconds
	if st2.Server.Durability != nil {
		rep.BudgetCheckpoints = st2.Server.Durability.BudgetCheckpoints
		rep.ReplayPointsPerSec = st2.Server.Durability.ReplayPointsPerSec
	}

	// The recovery contract: whole batches only, nothing beyond what
	// was acknowledged, nothing less than what the archive had sealed.
	if recovered%e2eIngestBatch != 0 {
		return rep, fmt.Errorf("bench: restore kept a partial batch: %d points is not a multiple of %d", recovered, e2eIngestBatch)
	}
	if recovered > rep.AckedPoints {
		return rep, fmt.Errorf("bench: restore invented points: %d recovered, only %d acknowledged", recovered, rep.AckedPoints)
	}
	if sealed := int64(rep.ArchivedThroughSeq-1) * e2eIngestBatch; recovered < sealed {
		return rep, fmt.Errorf("bench: restore lost archived records: %d points recovered, the archive had sealed through %d", recovered, sealed)
	}
	if rep.RestoreCheckpoints == 0 || rep.RestoreSegments == 0 {
		return rep, fmt.Errorf("bench: restore downloaded %d checkpoints and %d segments; the drill needs both paths exercised", rep.RestoreCheckpoints, rep.RestoreSegments)
	}
	if rep.RestartWallSeconds >= drBudget.Seconds() {
		return rep, fmt.Errorf("bench: disaster restart took %.2fs, over the %.0fs recovery budget", rep.RestartWallSeconds, drBudget.Seconds())
	}

	// Byte-identical equivalence: a fresh engine fed the recovered
	// prefix directly must publish the same clustering the restored
	// server serves.
	ref, err := edmstream.New(walOptions(s.Rate))
	if err != nil {
		return rep, fmt.Errorf("bench: building reference clusterer: %w", err)
	}
	for b := 0; b < int(recovered)/e2eIngestBatch; b++ {
		if err := ref.InsertBatch(pts[b*e2eIngestBatch : (b+1)*e2eIngestBatch]); err != nil {
			return rep, fmt.Errorf("bench: reference replay: %w", err)
		}
	}
	refSrv, err := server.New(ref, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		return rep, fmt.Errorf("bench: building reference server: %w", err)
	}
	if err := refSrv.Start(); err != nil {
		return rep, fmt.Errorf("bench: starting reference server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = refSrv.Shutdown(ctx)
	}()
	childSnap, err := walGet(client, url2, "/v1/snapshot")
	if err != nil {
		return rep, err
	}
	refSnap, err := walGet(client, "http://"+refSrv.Addr(), "/v1/snapshot")
	if err != nil {
		return rep, err
	}
	if !bytes.Equal(childSnap, refSnap) {
		return rep, fmt.Errorf("bench: restored clustering diverges from a fresh engine fed the same %d points (%d vs %d snapshot bytes)", recovered, len(childSnap), len(refSnap))
	}
	rep.SnapshotIdentical = true

	// Liveness: the restored server keeps serving writes.
	for _, body := range bodies[len(bodies)-drLiveBatches:] {
		if err := walPost(client, url2, body); err != nil {
			return rep, fmt.Errorf("bench: post-restore ingest: %w", err)
		}
	}
	st3, err := drStats(client, url2)
	if err != nil {
		return rep, err
	}
	rep.PostRestartPoints = st3.Engine.Points
	if want := recovered + int64(drLiveBatches)*e2eIngestBatch; rep.PostRestartPoints != want {
		return rep, fmt.Errorf("bench: post-restore engine holds %d points, want %d", rep.PostRestartPoints, want)
	}

	// Graceful exit: SIGTERM must drain and return 0.
	_ = child2.cmd.Process.Signal(syscall.SIGTERM)
	if err := <-child2.wait; err != nil {
		child2 = nil
		return rep, fmt.Errorf("bench: graceful shutdown after the restore: %v", err)
	}
	child2 = nil
	return rep, nil
}

// RunDRChild is the disaster drill's serving child: a durable
// edmserved shipping compressed checkpoints and sealed segments to a
// fault-injected object store. The remote is flaky by construction —
// periodic upload failures that leave truncated partial-upload debris
// visible, and periodic download failures — and SIGUSR1/SIGUSR2 turn
// a total outage on and off. SIGTERM drains gracefully.
func RunDRChild() error {
	dir := os.Getenv("EDMBENCH_DR_DIR")
	remote := os.Getenv("EDMBENCH_DR_REMOTE")
	addrFile := os.Getenv("EDMBENCH_DR_ADDR_FILE")
	if dir == "" || remote == "" || addrFile == "" {
		return errors.New("bench: EDMBENCH_DR_DIR, EDMBENCH_DR_REMOTE and EDMBENCH_DR_ADDR_FILE are required in child mode")
	}
	rate, err := strconv.ParseFloat(os.Getenv("EDMBENCH_DR_RATE"), 64)
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_DR_RATE: %w", err)
	}
	budgetMS, err := strconv.Atoi(os.Getenv("EDMBENCH_DR_BUDGET_MS"))
	if err != nil {
		return fmt.Errorf("bench: EDMBENCH_DR_BUDGET_MS: %w", err)
	}
	restore := os.Getenv("EDMBENCH_DR_RESTORE") == "1"

	inner, err := archive.NewDirStore(remote)
	if err != nil {
		return err
	}
	fstore := archive.NewFaultStore(inner)
	// Flaky from the first byte: every 5th upload dies after leaving a
	// 64-byte truncated object behind, every 4th download fails once.
	fstore.Inject(
		archive.Fault{Op: "put", After: 3, Every: 5, Partial: 64},
		archive.Fault{Op: "get", After: 1, Every: 4},
	)

	c, err := edmstream.New(walOptions(rate))
	if err != nil {
		return err
	}
	srv, err := server.New(c, server.Config{
		Addr:            "127.0.0.1:0",
		DataDir:         dir,
		WALSegmentBytes: drSegmentBytes,
		CheckpointEvery: drCheckpointEvery,

		ArchiveStore:       fstore,
		ArchiveQueue:       16,
		ArchiveRetryBase:   20 * time.Millisecond,
		ArchiveRetryMax:    250 * time.Millisecond,
		ArchiveResync:      150 * time.Millisecond,
		CheckpointCompress: true,
		RecoveryBudget:     time.Duration(budgetMS) * time.Millisecond,
		RestoreFromArchive: restore,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if err := publishAddr(addrFile, srv.Addr()); err != nil {
		return err
	}

	ch := make(chan os.Signal, 4)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT, syscall.SIGUSR1, syscall.SIGUSR2)
	for sig := range ch {
		switch sig {
		case syscall.SIGUSR1:
			fstore.SetOutage(true)
		case syscall.SIGUSR2:
			fstore.SetOutage(false)
		default:
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return srv.Shutdown(ctx)
		}
	}
	return nil
}

// FormatDR renders the report for the terminal.
func FormatDR(rep DRReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Disaster-recovery drill: flaky remote archive, total outage, rm -rf, restore\n")
	fmt.Fprintf(&b, "  (gomaxprocs %d, %d CPUs, %d-point batches, checkpoint every %d points, %v budget)\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.IngestBatch, drCheckpointEvery, time.Duration(rep.RecoveryBudgetSeconds*float64(time.Second)))
	fmt.Fprintf(&b, "acked %d points (%d of them during the total remote outage, every one a first-try 200)\n",
		rep.AckedPoints, rep.OutageAckedPoints)
	fmt.Fprintf(&b, "archive at kill time: sealed through seq %d; %d failed uploads, %d retries; gzip ratio %.2f\n",
		rep.ArchivedThroughSeq, rep.ArchiveFailed, rep.ArchiveRetried, rep.CompressionRatio)
	fmt.Fprintf(&b, "restore: %d checkpoints + %d segments = %.1f KiB in %.2fs (%d bad objects skipped, %d download retries)\n",
		rep.RestoreCheckpoints, rep.RestoreSegments, float64(rep.RestoreBytes)/1024, rep.RestoreSeconds, rep.RestoreBadObjects, rep.RestoreRetried)
	fmt.Fprintf(&b, "recovered %d points (<= acked, >= archived) in %.2fs restart, under the %.0fs budget\n",
		rep.RecoveredPoints, rep.RestartWallSeconds, rep.RecoveryBudgetSeconds)
	fmt.Fprintf(&b, "  replay %d points/sec, %d budget-triggered checkpoints\n", rep.ReplayPointsPerSec, rep.BudgetCheckpoints)
	fmt.Fprintf(&b, "restored clustering byte-identical to an uninterrupted run: %v\n", rep.SnapshotIdentical)
	fmt.Fprintf(&b, "post-restore ingest accepted; engine at %d points, graceful drain clean\n", rep.PostRestartPoints)
	return b.String()
}

// WriteDRJSON writes the machine-readable artifact.
func WriteDRJSON(path string, rep DRReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling dr report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
