package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/server"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the end-to-end serving experiment (not in the
// paper): it boots the real edmserved network layer on loopback and
// drives it the way a deployment would be driven — concurrent HTTP
// writers streaming batched ingest while concurrent HTTP readers
// classify points, an events consumer long-polls the evolution
// cursor, and a snapshot poller reads the published clustering. The
// artifact records ingest throughput, assign qps, client-observed
// per-endpoint latency quantiles and the coalescer's batch-size
// distribution, so the network layer's performance trajectory is
// machine-readable across revisions (BENCH_e2e.json).

// E2E topology and workload shape.
const (
	// E2EWriters and E2EReaders are the concurrent HTTP client counts.
	E2EWriters = 2
	E2EReaders = 2
	// e2eIngestBatch is the points per ingest request: small enough
	// that concurrent writers give the coalescer real merging work,
	// large enough to be a sane client batch.
	e2eIngestBatch = 128
	// e2eAssignBatch is the points per assign request.
	e2eAssignBatch = 32
	// e2eWarmup is the pre-measurement stream fed through the same
	// HTTP path: four sweeps of the lattice populates the cells and
	// publishes a first clustering.
	e2eWarmup = 6400
)

// E2EEndpointResult is the client-observed latency summary of one
// endpoint.
type E2EEndpointResult struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	// Quantiles are exact over every request the drivers issued
	// during the measured phase, in microseconds.
	P50Micros float64 `json:"p50_micros"`
	P90Micros float64 `json:"p90_micros"`
	P99Micros float64 `json:"p99_micros"`
	MaxMicros float64 `json:"max_micros"`
}

// E2ECoalescerResult is the server-reported batch formation summary.
type E2ECoalescerResult struct {
	Batches            uint64  `json:"batches"`
	Points             uint64  `json:"points"`
	BatchPointsP50     float64 `json:"batch_points_p50"`
	BatchPointsP90     float64 `json:"batch_points_p90"`
	BatchPointsP99     float64 `json:"batch_points_p99"`
	BatchPointsMax     float64 `json:"batch_points_max"`
	BatchRequestsP50   float64 `json:"batch_requests_p50"`
	BatchRequestsP99   float64 `json:"batch_requests_p99"`
	BatchWaitP50Micros float64 `json:"batch_wait_p50_micros"`
	BatchWaitP99Micros float64 `json:"batch_wait_p99_micros"`
}

// E2EReport is the JSON-serializable outcome of the experiment.
type E2EReport struct {
	Schema  string  `json:"schema"`
	Points  int     `json:"points"`
	Seed    int64   `json:"seed"`
	Rate    float64 `json:"rate"`
	Writers int     `json:"writers"`
	Readers int     `json:"readers"`
	// CoalesceWindowMicros is the server's ingest coalescing window.
	CoalesceWindowMicros float64 `json:"coalesce_window_micros"`
	// WallSeconds is the measured-phase duration.
	WallSeconds float64 `json:"wall_seconds"`
	// IngestPoints/IngestPointsPerSec: aggregate writer throughput
	// through the full network path.
	IngestPoints       int64   `json:"ingest_points"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	// AssignQueries/AssignQPS: aggregate reader throughput;
	// AssignHitRate is the fraction classified into a cluster.
	AssignQueries int64   `json:"assign_queries"`
	AssignQPS     float64 `json:"assign_qps"`
	AssignHitRate float64 `json:"assign_hit_rate"`
	// EventsPages counts long-poll pages the events consumer read;
	// EventsSeen the events delivered through the cursor.
	EventsPages int64               `json:"events_pages"`
	EventsSeen  int64               `json:"events_seen"`
	Endpoints   []E2EEndpointResult `json:"endpoints"`
	Coalescer   E2ECoalescerResult  `json:"coalescer"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	NumCPU      int                 `json:"num_cpu"`
}

// e2eOptions mirrors the serve experiment's engine configuration
// through the public API: grid index, slow decay for a stable
// steady-state density ranking, evolution tracking on so the events
// endpoint has traffic.
func e2eOptions(rate float64) edmstream.Options {
	return edmstream.Options{
		Radius:      1.0,
		Rate:        rate,
		Decay:       stream.Decay{A: 0.99999, Lambda: rate},
		Beta:        3e-5,
		Tau:         6.0,
		InitPoints:  500,
		IndexPolicy: edmstream.IndexGrid,
	}
}

// e2eLatencies collects client-observed request durations per
// endpoint, sharded per goroutine and merged at the end.
type e2eLatencies struct {
	mu   sync.Mutex
	data map[string][]float64 // endpoint -> micros
}

func (l *e2eLatencies) add(endpoint string, micros []float64) {
	l.mu.Lock()
	l.data[endpoint] = append(l.data[endpoint], micros...)
	l.mu.Unlock()
}

func (l *e2eLatencies) summarize() []E2EEndpointResult {
	names := make([]string, 0, len(l.data))
	for name := range l.data {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]E2EEndpointResult, 0, len(names))
	for _, name := range names {
		micros := l.data[name]
		if len(micros) == 0 {
			continue
		}
		sort.Float64s(micros)
		rank := func(q float64) float64 {
			idx := int(math.Ceil(q*float64(len(micros)))) - 1
			if idx < 0 {
				idx = 0
			}
			return micros[idx]
		}
		out = append(out, E2EEndpointResult{
			Endpoint:  name,
			Requests:  int64(len(micros)),
			P50Micros: rank(0.50),
			P90Micros: rank(0.90),
			P99Micros: rank(0.99),
			MaxMicros: micros[len(micros)-1],
		})
	}
	return out
}

// e2eStatsBody mirrors the server's /v1/stats JSON (the server type
// is unexported; the benchmark consumes the wire contract like any
// other client).
type e2eStatsBody struct {
	Engine struct {
		Points int64 `json:"Points"`
	} `json:"engine"`
	Server struct {
		Coalescer struct {
			Batches          uint64  `json:"batches"`
			Points           uint64  `json:"points"`
			BatchPointsP50   float64 `json:"batch_points_p50"`
			BatchPointsP90   float64 `json:"batch_points_p90"`
			BatchPointsP99   float64 `json:"batch_points_p99"`
			BatchPointsMax   float64 `json:"batch_points_max"`
			BatchRequestsP50 float64 `json:"batch_requests_p50"`
			BatchRequestsP99 float64 `json:"batch_requests_p99"`
			BatchWaitP50Sec  float64 `json:"batch_wait_p50_seconds"`
			BatchWaitP99Sec  float64 `json:"batch_wait_p99_seconds"`
		} `json:"coalescer"`
	} `json:"server"`
}

// RunE2E boots the serving daemon on loopback and measures it under
// concurrent HTTP load. s.Points is the measured ingest volume
// (split across the writers); a fixed warm-up precedes measurement.
func RunE2E(s Scale) (E2EReport, error) {
	cfg := server.DefaultConfig()
	cfg.Addr = "127.0.0.1:0"

	c, err := edmstream.New(e2eOptions(s.Rate))
	if err != nil {
		return E2EReport{}, fmt.Errorf("bench: building clusterer: %w", err)
	}
	srv, err := server.New(c, cfg)
	if err != nil {
		return E2EReport{}, fmt.Errorf("bench: building server: %w", err)
	}
	if err := srv.Start(); err != nil {
		return E2EReport{}, fmt.Errorf("bench: starting server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        E2EWriters + E2EReaders + 4,
		MaxIdleConnsPerHost: E2EWriters + E2EReaders + 4,
	}}

	// The workload: the serve experiment's density-mountain lattice,
	// pre-rendered to wire-format request bodies so marshalling cost
	// stays out of the measured client loop.
	total := e2eWarmup + s.Points
	pts := ServeStream(total, s.Seed, s.Rate)
	bodies, err := e2eBodies(pts)
	if err != nil {
		return E2EReport{}, err
	}
	warmupBatches := e2eWarmup / e2eIngestBatch

	post := func(path string, body []byte) (*http.Response, error) {
		req, err := http.NewRequest("POST", base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return client.Do(req)
	}
	drainOK := func(resp *http.Response, what string) error {
		defer resp.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return fmt.Errorf("bench: %s response: %w", what, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench: %s status %d: %s", what, resp.StatusCode, sink)
		}
		return nil
	}

	// Warm-up through the same network path (single writer, ordered).
	// The shared shed-retry helper absorbs any 429/503 the server
	// emits before it settles; transport errors stay fatal.
	for b := 0; b < warmupBatches; b++ {
		if _, err := postShedRetry(client, base+"/v1/ingest", bodies[b], 4, 10*time.Millisecond, time.Second, nil); err != nil {
			return E2EReport{}, fmt.Errorf("bench: warm-up ingest: %w", err)
		}
	}

	lat := &e2eLatencies{data: map[string][]float64{}}
	var ingested, queries, hits, eventsPages, eventsSeen atomic.Int64
	var firstErr atomic.Value // error

	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	// Writers split the measured batches round-robin.
	writersDone := make(chan struct{})
	var writerWG sync.WaitGroup
	measured := bodies[warmupBatches:]
	begin := time.Now()
	for w := 0; w < E2EWriters; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			micros := make([]float64, 0, len(measured)/E2EWriters+1)
			npts := 0
			for b := w; b < len(measured); b += E2EWriters {
				t0 := time.Now()
				resp, err := post("/v1/ingest", measured[b])
				if err != nil {
					fail(fmt.Errorf("bench: ingest: %w", err))
					return
				}
				if err := drainOK(resp, "ingest"); err != nil {
					fail(err)
					return
				}
				micros = append(micros, float64(time.Since(t0).Nanoseconds())/1e3)
				npts += e2eIngestBatch
			}
			ingested.Add(int64(npts))
			lat.add("ingest", micros)
		}(w)
	}
	go func() { writerWG.Wait(); close(writersDone) }()

	// Readers classify in-distribution probe points until the writers
	// finish.
	var readerWG sync.WaitGroup
	for r := 0; r < E2EReaders; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			type assignResp struct {
				Clusters []int `json:"clusters"`
			}
			micros := make([]float64, 0, 4096)
			pos := r * 1997 // decorrelate the readers
			for {
				select {
				case <-writersDone:
					lat.add("assign", micros)
					return
				default:
				}
				probe := make([]map[string]any, e2eAssignBatch)
				for i := range probe {
					p := pts[(pos+i*31)%len(pts)]
					probe[i] = map[string]any{"vector": p.Vector}
				}
				pos += e2eAssignBatch * 31
				body, err := json.Marshal(probe)
				if err != nil {
					fail(err)
					return
				}
				t0 := time.Now()
				resp, err := post("/v1/assign", body)
				if err != nil {
					fail(fmt.Errorf("bench: assign: %w", err))
					return
				}
				var out assignResp
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("bench: assign response: %w", err))
					return
				}
				micros = append(micros, float64(time.Since(t0).Nanoseconds())/1e3)
				queries.Add(int64(len(out.Clusters)))
				for _, id := range out.Clusters {
					if id >= 0 {
						hits.Add(1)
					}
				}
			}
		}(r)
	}

	// One events consumer follows the evolution cursor by long-poll,
	// and one snapshot poller reads the published clustering: the two
	// read-side endpoints a dashboard would hit.
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		type eventsResp struct {
			Cursor uint64            `json:"cursor"`
			Events []json.RawMessage `json:"events"`
		}
		micros := make([]float64, 0, 1024)
		cursor := uint64(0)
		for {
			select {
			case <-writersDone:
				lat.add("events", micros)
				return
			default:
			}
			t0 := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/v1/events?cursor=%d&wait=100ms", base, cursor))
			if err != nil {
				fail(fmt.Errorf("bench: events: %w", err))
				return
			}
			var out eventsResp
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				fail(fmt.Errorf("bench: events response: %w", err))
				return
			}
			micros = append(micros, float64(time.Since(t0).Nanoseconds())/1e3)
			cursor = out.Cursor
			eventsPages.Add(1)
			eventsSeen.Add(int64(len(out.Events)))
		}
	}()
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		micros := make([]float64, 0, 1024)
		for {
			select {
			case <-writersDone:
				lat.add("snapshot", micros)
				return
			default:
			}
			t0 := time.Now()
			resp, err := client.Get(base + "/v1/snapshot")
			if err != nil {
				fail(fmt.Errorf("bench: snapshot: %w", err))
				return
			}
			var sink json.RawMessage
			err = json.NewDecoder(resp.Body).Decode(&sink)
			resp.Body.Close()
			if err != nil {
				fail(fmt.Errorf("bench: snapshot response: %w", err))
				return
			}
			micros = append(micros, float64(time.Since(t0).Nanoseconds())/1e3)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	<-writersDone
	wall := time.Since(begin)
	readerWG.Wait()
	pollWG.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return E2EReport{}, err
	}

	// Server-side accounting: the engine must hold exactly the points
	// the clients sent — the network path may not drop or duplicate.
	var stats e2eStatsBody
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return E2EReport{}, fmt.Errorf("bench: stats: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return E2EReport{}, fmt.Errorf("bench: stats response: %w", err)
	}
	wantPoints := int64(e2eWarmup) + ingested.Load()
	if stats.Engine.Points != wantPoints {
		return E2EReport{}, fmt.Errorf("bench: engine holds %d points, clients sent %d: the network path dropped or duplicated work", stats.Engine.Points, wantPoints)
	}

	rep := E2EReport{
		Schema:               "edmstream-e2e/v1",
		Points:               s.Points,
		Seed:                 s.Seed,
		Rate:                 s.Rate,
		Writers:              E2EWriters,
		Readers:              E2EReaders,
		CoalesceWindowMicros: float64(cfg.CoalesceWindow.Microseconds()),
		WallSeconds:          wall.Seconds(),
		IngestPoints:         ingested.Load(),
		IngestPointsPerSec:   float64(ingested.Load()) / wall.Seconds(),
		AssignQueries:        queries.Load(),
		AssignQPS:            float64(queries.Load()) / wall.Seconds(),
		EventsPages:          eventsPages.Load(),
		EventsSeen:           eventsSeen.Load(),
		Endpoints:            lat.summarize(),
		Coalescer: E2ECoalescerResult{
			Batches:            stats.Server.Coalescer.Batches,
			Points:             stats.Server.Coalescer.Points,
			BatchPointsP50:     stats.Server.Coalescer.BatchPointsP50,
			BatchPointsP90:     stats.Server.Coalescer.BatchPointsP90,
			BatchPointsP99:     stats.Server.Coalescer.BatchPointsP99,
			BatchPointsMax:     stats.Server.Coalescer.BatchPointsMax,
			BatchRequestsP50:   stats.Server.Coalescer.BatchRequestsP50,
			BatchRequestsP99:   stats.Server.Coalescer.BatchRequestsP99,
			BatchWaitP50Micros: stats.Server.Coalescer.BatchWaitP50Sec * 1e6,
			BatchWaitP99Micros: stats.Server.Coalescer.BatchWaitP99Sec * 1e6,
		},
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if queries.Load() > 0 {
		rep.AssignHitRate = float64(hits.Load()) / float64(queries.Load())
	}
	return rep, nil
}

// e2eBodies pre-renders the stream as ingest request bodies of
// e2eIngestBatch points each (dropping the tail remainder).
func e2eBodies(pts []stream.Point) ([][]byte, error) {
	nb := len(pts) / e2eIngestBatch
	bodies := make([][]byte, 0, nb)
	type wirePt struct {
		ID     int64     `json:"id"`
		Vector []float64 `json:"vector"`
		Time   float64   `json:"time"`
	}
	batch := make([]wirePt, e2eIngestBatch)
	for b := 0; b < nb; b++ {
		for i := range batch {
			p := pts[b*e2eIngestBatch+i]
			batch[i] = wirePt{ID: p.ID, Vector: p.Vector, Time: p.Time}
		}
		raw, err := json.Marshal(batch)
		if err != nil {
			return nil, fmt.Errorf("bench: rendering ingest body: %w", err)
		}
		bodies = append(bodies, raw)
	}
	return bodies, nil
}

// FormatE2E renders the report for the terminal.
func FormatE2E(rep E2EReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "End-to-end serving: edmserved on loopback, %d HTTP writers + %d HTTP readers\n", rep.Writers, rep.Readers)
	fmt.Fprintf(&b, "  (gomaxprocs %d, %d CPUs, coalesce window %.0fus)\n", rep.GOMAXPROCS, rep.NumCPU, rep.CoalesceWindowMicros)
	fmt.Fprintf(&b, "ingest: %d points in %.2fs = %.0f points/sec through the full network path\n",
		rep.IngestPoints, rep.WallSeconds, rep.IngestPointsPerSec)
	fmt.Fprintf(&b, "assign: %d queries = %.0f qps, hit rate %.4f\n", rep.AssignQueries, rep.AssignQPS, rep.AssignHitRate)
	fmt.Fprintf(&b, "events: %d long-poll pages delivered %d events\n", rep.EventsPages, rep.EventsSeen)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %12s %12s\n", "endpoint", "requests", "p50(us)", "p90(us)", "p99(us)", "max(us)")
	for _, e := range rep.Endpoints {
		fmt.Fprintf(&b, "%-10s %10d %12.0f %12.0f %12.0f %12.0f\n",
			e.Endpoint, e.Requests, e.P50Micros, e.P90Micros, e.P99Micros, e.MaxMicros)
	}
	fmt.Fprintf(&b, "coalescer: %d batches for %d points; batch size p50/p90/p99/max = %.0f/%.0f/%.0f/%.0f points, requests/batch p50/p99 = %.0f/%.0f, wait p50/p99 = %.0f/%.0f us\n",
		rep.Coalescer.Batches, rep.Coalescer.Points,
		rep.Coalescer.BatchPointsP50, rep.Coalescer.BatchPointsP90, rep.Coalescer.BatchPointsP99, rep.Coalescer.BatchPointsMax,
		rep.Coalescer.BatchRequestsP50, rep.Coalescer.BatchRequestsP99,
		rep.Coalescer.BatchWaitP50Micros, rep.Coalescer.BatchWaitP99Micros)
	return b.String()
}

// WriteE2EJSON writes the machine-readable artifact.
func WriteE2EJSON(path string, rep E2EReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling e2e report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
