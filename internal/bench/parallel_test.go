package bench

import (
	"testing"
)

// TestRunParallelSmall smoke-tests the parallel-ingest experiment at a
// small scale: every worker count must process the full stream,
// produce the same clustering fingerprints (RunParallel errors
// otherwise) and report sane metrics, and the multi-worker runs must
// actually have routed speculatively.
func TestRunParallelSmall(t *testing.T) {
	s := SmallScale()
	rep, err := RunParallel(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-parallel/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Results) != len(ParallelWorkerCounts) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(ParallelWorkerCounts))
	}
	if rep.GoMaxProcs <= 0 || rep.NumCPU <= 0 {
		t.Errorf("environment not recorded: %+v", rep)
	}
	for i, r := range rep.Results {
		if r.Workers != ParallelWorkerCounts[i] {
			t.Errorf("result %d: workers = %d, want %d", i, r.Workers, ParallelWorkerCounts[i])
		}
		if r.PointsPerSec <= 0 {
			t.Errorf("workers %d: no throughput measured", r.Workers)
		}
		if r.ActiveCells == 0 || r.Clusters == 0 {
			t.Errorf("workers %d: degenerate clustering: %+v", r.Workers, r)
		}
		if r.SpeculationHitRate < 0 || r.SpeculationHitRate > 1 {
			t.Errorf("workers %d: hit rate %v outside [0,1]", r.Workers, r.SpeculationHitRate)
		}
		switch {
		case r.Workers == 1 && r.SpeculativeRoutes != 0:
			t.Errorf("single-worker run routed %d points speculatively", r.SpeculativeRoutes)
		case r.Workers > 1 && r.SpeculativeRoutes == 0:
			t.Errorf("workers %d: route phase never ran", r.Workers)
		}
	}
	if rep.SpeedupAt4 <= 0 {
		t.Errorf("SpeedupAt4 = %v", rep.SpeedupAt4)
	}
}

// TestWriteParallelJSON checks the artifact writer round-trips.
func TestWriteParallelJSON(t *testing.T) {
	rep := ParallelReport{Schema: "edmstream-parallel/v1", Points: 1, BatchSize: ThroughputBatchSize,
		Results: []ParallelModeResult{{Workers: 1, Speedup: 1}}}
	path := t.TempDir() + "/BENCH_parallel.json"
	if err := WriteParallelJSON(path, rep); err != nil {
		t.Fatal(err)
	}
}
