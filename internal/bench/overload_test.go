package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunOverloadSmoke runs the full overload chaos drill: a child
// server on an injected slow disk driven at 4x capacity, a mid-run
// disk death and recovery, a graceful drain, and an exact
// acked-vs-recovered ledger check against a restarted child. Every
// contract violation is an error from RunOverload, so most of the
// assertion weight lives inside the drill.
func TestRunOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning overload drill in -short mode")
	}
	rep, err := RunOverload(Scale{Points: 2048, Seed: 1, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "edmstream-overload/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.CapacityPointsPerSec <= 0 || rep.GoodputPointsPerSec <= 0 {
		t.Errorf("throughput not measured: capacity=%g goodput=%g", rep.CapacityPointsPerSec, rep.GoodputPointsPerSec)
	}
	if rep.OverloadFactor < 4 {
		t.Errorf("overload factor %.2f < 4", rep.OverloadFactor)
	}
	if rep.Shed429 == 0 || rep.Shed503 == 0 {
		t.Errorf("shed mix incomplete: %d x 429, %d x 503", rep.Shed429, rep.Shed503)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("shed rate %.3f not in (0,1)", rep.ShedRate)
	}
	if rep.AcceptedP99Micros < rep.AcceptedP50Micros || rep.AcceptedP50Micros <= 0 {
		t.Errorf("accepted latency quantiles inconsistent: p50=%g p99=%g", rep.AcceptedP50Micros, rep.AcceptedP99Micros)
	}
	if rep.DegradedSeconds <= 0 || rep.RecoverySeconds <= 0 {
		t.Errorf("degraded window not measured: degraded=%.3fs recovery=%.3fs", rep.DegradedSeconds, rep.RecoverySeconds)
	}
	if rep.DegradedEntered == 0 || rep.DegradedRecovered == 0 {
		t.Errorf("degraded transitions: entered=%d recovered=%d", rep.DegradedEntered, rep.DegradedRecovered)
	}
	if rep.RecoveredPoints != rep.TotalAckedPoints || rep.TotalAckedPoints == 0 {
		t.Errorf("ledger mismatch: acked=%d recovered=%d", rep.TotalAckedPoints, rep.RecoveredPoints)
	}
	if FormatOverload(rep) == "" {
		t.Error("empty formatted report")
	}

	path := filepath.Join(t.TempDir(), "BENCH_overload.json")
	if err := WriteOverloadJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back OverloadReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact not round-trippable: %v", err)
	}
	if back.RecoveredPoints != rep.RecoveredPoints || back.Schema != rep.Schema {
		t.Errorf("artifact round-trip mismatch: %+v", back)
	}
}

// TestBackoffDelayBounds pins the shared backoff helper's envelope:
// monotone non-decreasing cap, jitter within [d/2, d], zero-safe.
func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, max := 10*time.Millisecond, 200*time.Millisecond
	prevCap := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		cap := base
		for i := 0; i < attempt && cap < max; i++ {
			cap *= 2
		}
		if cap > max {
			cap = max
		}
		if cap < prevCap {
			t.Fatalf("cap shrank at attempt %d", attempt)
		}
		prevCap = cap
		for trial := 0; trial < 100; trial++ {
			d := backoffDelay(attempt, base, max, rng)
			if d < cap/2 || d > cap {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, cap/2, cap)
			}
		}
	}
	if d := backoffDelay(3, 0, 0, rng); d != 0 {
		t.Errorf("zero base/max must yield 0, got %v", d)
	}
	if d := backoffDelay(5, time.Millisecond, 100*time.Millisecond, nil); d <= 0 {
		t.Errorf("nil rng must still produce a positive delay, got %v", d)
	}
}
