package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file holds the nearest-seed index experiment (not in the
// paper): it measures the insert throughput of the grid-indexed hot
// path against the linear scan on a workload with over a thousand
// simultaneously active cluster-cells — the regime where the O(#cells)
// scan per point dominates and a spatial index pays off.

// IndexBenchResult is the outcome of one policy's run.
type IndexBenchResult struct {
	// Policy and IndexKind identify the nearest-seed index used.
	Policy    core.IndexPolicy
	IndexKind string
	// ActiveCells and TotalCells describe the cell population at the
	// end of the run (TotalCells includes the outlier reservoir).
	ActiveCells int
	TotalCells  int
	// Points is the number of measured insertions (after warm-up) and
	// InsertWall the wall-clock time they took.
	Points     int
	InsertWall time.Duration
	// InsertsPerSec is the measured insert throughput.
	InsertsPerSec float64
	// SeedCandidates is the number of seed distances measured during
	// the measured phase (warm-up excluded); MeanCandidatesPerPoint
	// normalizes it per insert. The grid's advantage is visible here
	// before it shows up in wall-clock numbers.
	SeedCandidates         int64
	MeanCandidatesPerPoint float64
	// Clusters and CellsCreated fingerprint the clustering output so
	// callers can verify both policies computed the same thing.
	Clusters     int
	CellsCreated int64
}

// indexBenchSites is the lattice width: sites² cluster-cells stay
// simultaneously active during the measured phase.
const indexBenchSites = 40

// indexBenchStream builds the workload: points drawn from a
// sites×sites lattice of seed locations (spacing 4r, Gaussian jitter
// well inside r) with per-site weights spread over a 5× range, plus 2%
// uniform background noise. The weights give the lattice a proper
// density relief — cluster-cell densities spread from ~4 to ~21 units
// instead of sitting on a plateau — which is both more realistic and
// what the paper's density filter (Theorem 1) assumes; the noise
// points exercise the reservoir path.
func indexBenchStream(n int, seed int64, rate float64) []stream.Point {
	const spacing = 4.0
	rng := rand.New(rand.NewSource(seed))
	nsites := indexBenchSites * indexBenchSites
	sites := make([][2]float64, 0, nsites)
	for i := 0; i < indexBenchSites; i++ {
		for j := 0; j < indexBenchSites; j++ {
			sites = append(sites, [2]float64{float64(i) * spacing, float64(j) * spacing})
		}
	}
	// Cumulative site weights in [2, 10] for weighted sampling.
	cum := make([]float64, nsites)
	total := 0.0
	for i := range cum {
		total += 2 + 8*rng.Float64()
		cum[i] = total
	}
	pickSite := func() int {
		x := rng.Float64() * total
		lo, hi := 0, nsites-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	span := float64(indexBenchSites) * spacing
	pts := make([]stream.Point, n)
	for i := range pts {
		var vec []float64
		if rng.Float64() < 0.02 {
			vec = []float64{rng.Float64()*span*1.5 - span/4, rng.Float64()*span*1.5 - span/4}
		} else {
			s := sites[pickSite()]
			vec = []float64{s[0] + rng.NormFloat64()*0.25, s[1] + rng.NormFloat64()*0.25}
		}
		pts[i] = stream.Point{ID: int64(i), Vector: vec, Time: float64(i) / rate, Label: stream.NoLabel}
	}
	return pts
}

// indexBenchConfig parameterizes EDMStream so that (nearly) all sites²
// lattice cells stay active: with decay a = 0.99995 per point the
// steady-state stream weight is 20 000, the 1600 cells hold ~4 to ~21
// units of it depending on their weight, and β = 1e-4 puts the active
// threshold at 2 — low enough that even the lightest sites stay active
// through the gaps of their Poisson-like arrival schedule.
func indexBenchConfig(rate float64, policy core.IndexPolicy) core.Config {
	return core.Config{
		Radius:      1.0,
		Rate:        rate,
		Decay:       stream.Decay{A: 0.99995, Lambda: rate},
		Beta:        1e-4,
		Tau:         6.0,
		InitPoints:  500,
		IndexPolicy: policy,
		// The experiment measures insert cost; cluster refreshes are
		// throttled so their (identical) cost does not drown the
		// assignment-path difference under comparison.
		EvolutionInterval: 2.0,
	}
}

// RunIndexBench measures insert throughput with the linear scan and
// with the grid index on the same lattice stream. s.Points is the
// measured stream length; a fixed warm-up (ten sweeps of the lattice)
// precedes measurement so both runs operate at full cell population.
// The first result is the linear baseline, the second the grid run;
// their clustering fingerprints (Clusters, CellsCreated, cell counts)
// are expected to be identical.
func RunIndexBench(s Scale) ([]IndexBenchResult, error) {
	warmup := 10 * indexBenchSites * indexBenchSites
	pts := indexBenchStream(warmup+s.Points, s.Seed, s.Rate)

	policies := []core.IndexPolicy{core.IndexLinear, core.IndexGrid}
	out := make([]IndexBenchResult, 0, len(policies))
	for _, policy := range policies {
		edm, err := core.New(indexBenchConfig(s.Rate, policy))
		if err != nil {
			return nil, fmt.Errorf("bench: building EDMStream (%v): %w", policy, err)
		}
		for i := 0; i < warmup; i++ {
			if err := edm.Insert(pts[i]); err != nil {
				return nil, fmt.Errorf("bench: warm-up insert %d (%v): %w", i, policy, err)
			}
		}
		candBefore := edm.Stats().SeedCandidates
		t0 := time.Now()
		for i := warmup; i < len(pts); i++ {
			if err := edm.Insert(pts[i]); err != nil {
				return nil, fmt.Errorf("bench: insert %d (%v): %w", i, policy, err)
			}
		}
		wall := time.Since(t0)

		snap := edm.Snapshot()
		st := edm.Stats()
		r := IndexBenchResult{
			Policy:         policy,
			IndexKind:      edm.IndexKind(),
			ActiveCells:    st.ActiveCells,
			TotalCells:     st.ActiveCells + st.InactiveCells,
			Points:         s.Points,
			InsertWall:     wall,
			SeedCandidates: st.SeedCandidates - candBefore,
			Clusters:       snap.NumClusters(),
			CellsCreated:   st.CellsCreated,
		}
		if wall > 0 {
			r.InsertsPerSec = float64(s.Points) / wall.Seconds()
		}
		if s.Points > 0 {
			r.MeanCandidatesPerPoint = float64(st.SeedCandidates-candBefore) / float64(s.Points)
		}
		out = append(out, r)
	}
	return out, nil
}

// IndexSpeedup returns the grid-over-linear insert throughput ratio of
// a RunIndexBench result set (0 when it cannot be computed).
func IndexSpeedup(results []IndexBenchResult) float64 {
	var linear, grid float64
	for _, r := range results {
		switch r.Policy {
		case core.IndexLinear:
			linear = r.InsertsPerSec
		case core.IndexGrid:
			grid = r.InsertsPerSec
		}
	}
	if linear <= 0 {
		return 0
	}
	return grid / linear
}
