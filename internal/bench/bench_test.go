package bench

import (
	"strings"
	"testing"

	"github.com/densitymountain/edmstream/internal/core"
	"github.com/densitymountain/edmstream/internal/gen"
)

func TestAlgorithmsFactory(t *testing.T) {
	ds, err := gen.SDS(gen.SDSConfig{N: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	algos, err := Algorithms(ds, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(algos) != 5 {
		t.Fatalf("expected 5 algorithms, got %d", len(algos))
	}
	names := map[string]bool{}
	for _, a := range algos {
		if a.Clusterer == nil {
			t.Fatalf("%s has a nil clusterer", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"} {
		if !names[want] {
			t.Errorf("missing algorithm %s", want)
		}
	}
}

func TestRunStreamMeasurements(t *testing.T) {
	ds, err := gen.SDS(gen.SDSConfig{N: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	edm, err := NewEDMStream(ds.SuggestedRadius, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(edm, ds, RunConfig{Rate: 1000, QueryEvery: 500, ComputeCMM: true, WindowSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 3000 {
		t.Errorf("Points = %d", res.Points)
	}
	if res.Algorithm != "EDMStream" || res.Dataset != "SDS" {
		t.Errorf("labels wrong: %s / %s", res.Algorithm, res.Dataset)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, s := range res.Samples {
		if s.Throughput <= 0 {
			t.Errorf("sample at %d points has non-positive throughput", s.Points)
		}
		if s.CMM < 0 || s.CMM > 1 {
			t.Errorf("sample CMM out of range: %v", s.CMM)
		}
	}
	if res.MeanThroughput <= 0 || res.TotalWall <= 0 {
		t.Errorf("aggregate measurements missing: %+v", res)
	}
	if res.MeanResponseTime <= 0 {
		t.Errorf("mean response time missing")
	}
	if res.FinalClusters == 0 {
		t.Errorf("no clusters at the end of the SDS prefix")
	}
	// MaxPoints truncation.
	edm2, _ := NewEDMStream(ds.SuggestedRadius, 1000, false)
	res2, err := RunStream(edm2, ds, RunConfig{Rate: 1000, MaxPoints: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Points != 1000 {
		t.Errorf("MaxPoints not honored: %d", res2.Points)
	}
}

func TestRunTable2(t *testing.T) {
	rows, err := RunTable2(Scale{Points: 400, Seed: 1, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("expected 7 dataset rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Instances != 400 || r.Dim <= 0 || r.Clusters <= 0 || r.Radius <= 0 {
			t.Errorf("malformed row: %+v", r)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "SDS") || !strings.Contains(text, "CoverType-like") {
		t.Errorf("formatted table missing datasets:\n%s", text)
	}
}

func TestRunFig6AndFig7(t *testing.T) {
	s := Scale{Points: 6000, Seed: 2, Rate: 1000}
	snaps, err := RunFig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 6 {
		t.Fatalf("expected 6 snapshots, got %d", len(snaps))
	}
	if FormatFig6(snaps) == "" {
		t.Error("empty Fig. 6 format")
	}
	events, scripted, err := RunFig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripted) != 4 {
		t.Errorf("scripted schedule has %d events", len(scripted))
	}
	if len(events) == 0 {
		t.Error("no evolution events on SDS")
	}
	kinds := map[core.EventKind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, k := range []core.EventKind{core.Merge, core.Split} {
		if !kinds[k] {
			t.Errorf("missing %v event in Fig. 7 run", k)
		}
	}
}

func TestRunFig8(t *testing.T) {
	res, err := RunFig8(Scale{Points: 6000, Seed: 3, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalClusters) == 0 {
		t.Fatal("no news clusters at the end of the stream")
	}
	for _, c := range res.FinalClusters {
		if len(c.Tags) == 0 {
			t.Errorf("cluster %d has no tags", c.ID)
		}
	}
	if len(res.Scripted) != 4 {
		t.Errorf("scripted news schedule has %d events", len(res.Scripted))
	}
}

func TestRunComparisonSmall(t *testing.T) {
	s := Scale{Points: 2500, Seed: 4, Rate: 1000}
	results, err := RunComparison("kdd", s, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("expected 5 results, got %d", len(results))
	}
	for _, r := range results {
		if r.Points != s.Points {
			t.Errorf("%s processed %d points", r.Algorithm, r.Points)
		}
	}
	if FormatComparisonResponseTime("kdd", results) == "" ||
		FormatComparisonThroughput("kdd", results) == "" ||
		FormatComparisonCMM("kdd", results) == "" {
		t.Error("empty formatted comparison output")
	}
}

func TestRunFig11FiltersReduceWork(t *testing.T) {
	s := Scale{Points: 4000, Seed: 5, Rate: 1000}
	results, err := RunFig11("kdd", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 filter modes, got %d", len(results))
	}
	byMode := map[core.FilterMode]FilterResult{}
	for _, r := range results {
		byMode[r.Mode] = r
		if len(r.Samples) == 0 {
			t.Errorf("mode %v has no samples", r.Mode)
		}
	}
	wf := byMode[core.FilterNone]
	df := byMode[core.FilterDensity]
	all := byMode[core.FilterAll]
	if wf.FilteredByDensity != 0 {
		t.Error("wf mode should not filter")
	}
	if df.FilteredByDensity == 0 || all.FilteredByDensity == 0 {
		t.Error("density filter never fired")
	}
	if all.FilteredByTriangle == 0 {
		t.Error("triangle filter never fired")
	}
	if FormatFig11("kdd", results) == "" {
		t.Error("empty Fig. 11 format")
	}
}

func TestRunFig12SmallDims(t *testing.T) {
	results, err := RunFig12([]int{10, 30}, Scale{Points: 1500, Seed: 6, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 dimension results, got %d", len(results))
	}
	if results[0].Dim != 10 || results[1].Dim != 30 {
		t.Errorf("dimension labels wrong: %+v", results)
	}
	if FormatFig12(results) == "" {
		t.Error("empty Fig. 12 format")
	}
}

func TestRunFig14Rates(t *testing.T) {
	results, err := RunFig14([]float64{1000, 5000}, Scale{Points: 2500, Seed: 7, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 rate results, got %d", len(results))
	}
	for _, r := range results {
		if r.Result.MeanCMM < 0 || r.Result.MeanCMM > 1 {
			t.Errorf("rate %v: CMM out of range %v", r.Rate, r.Result.MeanCMM)
		}
	}
	if FormatFig14(results) == "" {
		t.Error("empty Fig. 14 format")
	}
}

func TestRunTable4DynamicVsStatic(t *testing.T) {
	tc, err := RunTable4(Scale{Points: 8000, Seed: 8, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Seconds) == 0 {
		t.Fatal("no per-second cluster counts")
	}
	if len(tc.DynamicClusters) != len(tc.Seconds) || len(tc.StaticClusters) != len(tc.Seconds) {
		t.Fatal("ragged Table 4 output")
	}
	if tc.StaticTau <= 0 {
		t.Errorf("static tau = %v", tc.StaticTau)
	}
	if len(tc.InitGraph) == 0 {
		t.Error("missing init decision graph")
	}
	if FormatTable4(tc) == "" {
		t.Error("empty Table 4 format")
	}
}

func TestRunFig16ReservoirBounds(t *testing.T) {
	results, err := RunFig16("covertype", []float64{1000, 5000}, Scale{Points: 4000, Seed: 9, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 rate series, got %d", len(results))
	}
	for _, r := range results {
		if r.Bound <= 0 {
			t.Errorf("rate %v: non-positive bound", r.Rate)
		}
		if float64(r.MaxSize) > r.Bound {
			t.Errorf("rate %v: measured reservoir size %d exceeds bound %v", r.Rate, r.MaxSize, r.Bound)
		}
	}
	if FormatFig16("covertype", results) == "" {
		t.Error("empty Fig. 16 format")
	}
}

func TestRunFig17RadiusSweep(t *testing.T) {
	results, err := RunFig17(Scale{Points: 2500, Seed: 10, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no radius results")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Radius < results[i-1].Radius {
			t.Errorf("radius not increasing with quantile: %+v", results)
		}
	}
	if FormatFig17(results) == "" {
		t.Error("empty Fig. 17 format")
	}
}

func TestRunAblation(t *testing.T) {
	results, err := RunAblation(Scale{Points: 2000, Seed: 11, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 5 {
		t.Fatalf("expected at least 5 ablation rows, got %d", len(results))
	}
	if FormatAblation(results) == "" {
		t.Error("empty ablation format")
	}
}
