// Package denstream implements the DenStream baseline (Cao, Ester,
// Qian, Zhou — SDM 2006) used for comparison in the paper's evaluation:
// an online phase maintains potential and outlier micro-clusters with
// exponentially decayed weights, and an offline phase re-clusters the
// potential micro-cluster centers with a weighted DBSCAN whenever the
// clustering is requested. The offline pass on every cluster-update
// request is exactly the cost EDMStream's incremental DP-Tree avoids.
package denstream

import (
	"fmt"
	"math"

	"github.com/densitymountain/edmstream/internal/dbscan"
	"github.com/densitymountain/edmstream/internal/microcluster"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes DenStream.
type Config struct {
	// Eps is the maximum micro-cluster radius ε. Required.
	Eps float64
	// Beta is the potential-micro-cluster weight factor β in (0,1]
	// (default 0.25): a micro-cluster is potential when its weight is
	// at least Beta*Mu.
	Beta float64
	// Mu is the core weight threshold µ (default 10).
	Mu float64
	// Decay is the freshness decay model shared with the other
	// algorithms (default a=0.998, λ=1000, the per-point equivalent
	// used throughout the evaluation).
	Decay stream.Decay
	// PruneInterval is the stream-time interval between pruning passes
	// over the micro-clusters (default 1.0 seconds).
	PruneInterval float64
	// OfflineEps is the DBSCAN ε used by the offline step over
	// micro-cluster centers (default 2*Eps).
	OfflineEps float64
}

func (c *Config) defaults() {
	if c.Beta == 0 {
		c.Beta = 0.25
	}
	if c.Mu == 0 {
		c.Mu = 10
	}
	if c.Decay == (stream.Decay{}) {
		c.Decay = stream.Decay{A: 0.998, Lambda: 1000}
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = 1.0
	}
	if c.OfflineEps == 0 {
		c.OfflineEps = 2 * c.Eps
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c
	d.defaults()
	if d.Eps <= 0 {
		return fmt.Errorf("denstream: ε must be positive, got %v", c.Eps)
	}
	if d.Beta <= 0 || d.Beta > 1 {
		return fmt.Errorf("denstream: β must be in (0,1], got %v", c.Beta)
	}
	if d.Mu <= 0 {
		return fmt.Errorf("denstream: µ must be positive, got %v", c.Mu)
	}
	return d.Decay.Validate()
}

// DenStream is the algorithm state. It implements stream.Clusterer.
type DenStream struct {
	cfg       Config
	potential []*microcluster.MicroCluster
	outliers  []*microcluster.MicroCluster
	nextID    int64
	now       float64
	lastPrune float64
}

// New creates a DenStream instance.
func New(cfg Config) (*DenStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	return &DenStream{cfg: cfg}, nil
}

// Name implements stream.Clusterer.
func (d *DenStream) Name() string { return "DenStream" }

// NumMicroClusters returns the number of potential and outlier
// micro-clusters currently maintained.
func (d *DenStream) NumMicroClusters() (potential, outliers int) {
	return len(d.potential), len(d.outliers)
}

// Insert implements stream.Clusterer.
func (d *DenStream) Insert(p stream.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.IsText() {
		return fmt.Errorf("denstream: text points are not supported")
	}
	if p.Time > d.now {
		d.now = p.Time
	}
	now := d.now

	// Try to absorb into the nearest potential micro-cluster whose
	// radius stays within ε.
	if mc := d.nearest(d.potential, p); mc != nil && mc.RadiusIfInserted(p, now, d.cfg.Decay) <= d.cfg.Eps {
		mc.Insert(p, now, d.cfg.Decay)
	} else if mc := d.nearest(d.outliers, p); mc != nil && mc.RadiusIfInserted(p, now, d.cfg.Decay) <= d.cfg.Eps {
		mc.Insert(p, now, d.cfg.Decay)
		// Promote the outlier micro-cluster once it reaches β·µ.
		if mc.WeightAt(now, d.cfg.Decay) >= d.cfg.Beta*d.cfg.Mu {
			d.promote(mc)
		}
	} else {
		nmc, err := microcluster.New(d.nextID, p)
		if err != nil {
			return err
		}
		d.nextID++
		d.outliers = append(d.outliers, nmc)
	}

	if now-d.lastPrune >= d.cfg.PruneInterval {
		d.prune(now)
		d.lastPrune = now
	}
	return nil
}

func (d *DenStream) nearest(mcs []*microcluster.MicroCluster, p stream.Point) *microcluster.MicroCluster {
	var best *microcluster.MicroCluster
	bestDist := math.Inf(1)
	for _, mc := range mcs {
		if dist := mc.DistanceToPoint(p); dist < bestDist {
			bestDist = dist
			best = mc
		}
	}
	return best
}

func (d *DenStream) promote(mc *microcluster.MicroCluster) {
	for i, o := range d.outliers {
		if o == mc {
			d.outliers = append(d.outliers[:i], d.outliers[i+1:]...)
			break
		}
	}
	d.potential = append(d.potential, mc)
}

// prune demotes potential micro-clusters whose weight decayed below
// β·µ and drops outlier micro-clusters whose weight fell below 1 (they
// are unlikely to ever become potential).
func (d *DenStream) prune(now float64) {
	var keptP []*microcluster.MicroCluster
	for _, mc := range d.potential {
		if mc.WeightAt(now, d.cfg.Decay) >= d.cfg.Beta*d.cfg.Mu {
			keptP = append(keptP, mc)
		} else {
			d.outliers = append(d.outliers, mc)
		}
	}
	d.potential = keptP

	var keptO []*microcluster.MicroCluster
	for _, mc := range d.outliers {
		if mc.WeightAt(now, d.cfg.Decay) >= 1 {
			keptO = append(keptO, mc)
		}
	}
	d.outliers = keptO
}

// Clusters implements stream.Clusterer: the offline phase runs a
// weighted DBSCAN over the potential micro-cluster centers.
func (d *DenStream) Clusters(now float64) []stream.MacroCluster {
	if now > d.now {
		d.now = now
	}
	now = d.now
	if len(d.potential) == 0 {
		return nil
	}
	centers := make([]stream.Point, len(d.potential))
	weights := make([]float64, len(d.potential))
	for i, mc := range d.potential {
		centers[i] = stream.Point{ID: mc.ID, Vector: mc.Center(), Time: now}
		weights[i] = mc.WeightAt(now, d.cfg.Decay)
	}
	res, err := dbscan.Cluster(centers, weights, dbscan.Config{Eps: d.cfg.OfflineEps, MinPts: int(math.Max(1, d.cfg.Mu))})
	if err != nil {
		return nil
	}
	byCluster := map[int]*stream.MacroCluster{}
	for i, a := range res.Assignment {
		if a == dbscan.Noise {
			continue
		}
		mc, ok := byCluster[a]
		if !ok {
			mc = &stream.MacroCluster{ID: a + 1}
			byCluster[a] = mc
		}
		mc.Centers = append(mc.Centers, centers[i].Vector)
		mc.Weight += weights[i]
	}
	out := make([]stream.MacroCluster, 0, len(byCluster))
	for _, mc := range byCluster {
		out = append(out, *mc)
	}
	stream.SortClusters(out)
	return out
}
