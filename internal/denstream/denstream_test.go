package denstream

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func twoBlobStream(n int, rate float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}}
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % 2
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			Label:  k,
			Time:   float64(i) / rate,
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Eps: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Eps: -1},
		{Eps: 1, Beta: 2},
		{Eps: 1, Mu: -3},
		{Eps: 1, Decay: stream.Decay{A: 2, Lambda: 1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ stream.Clusterer = (*DenStream)(nil)
}

func TestTwoBlobClustering(t *testing.T) {
	d, err := New(Config{Eps: 1.0, Mu: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DenStream" {
		t.Errorf("Name = %q", d.Name())
	}
	pts := twoBlobStream(4000, 1000, 1)
	for _, p := range pts {
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	pot, _ := d.NumMicroClusters()
	if pot == 0 {
		t.Fatal("no potential micro-clusters were formed")
	}
	clusters := d.Clusters(pts[len(pts)-1].Time)
	if len(clusters) != 2 {
		t.Fatalf("found %d macro clusters, want 2", len(clusters))
	}
	// Assignments of recent points are label-consistent.
	recent := pts[len(pts)-400:]
	assign := stream.AssignToClusters(recent, clusters, 0)
	consistent := 0
	byLabel := map[int]map[int]int{}
	for i, a := range assign {
		l := recent[i].Label
		if byLabel[l] == nil {
			byLabel[l] = map[int]int{}
		}
		byLabel[l][a]++
	}
	for _, counts := range byLabel {
		best, total := 0, 0
		for _, c := range counts {
			total += c
			if c > best {
				best = c
			}
		}
		consistent += best
		if float64(best) < 0.9*float64(total) {
			t.Errorf("label assignments not consistent: %v", counts)
		}
	}
	_ = consistent
}

func TestOldClusterFadesAway(t *testing.T) {
	d, err := New(Config{Eps: 1.0, Mu: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rate := 1000.0
	// Phase 1: blob at (0,0); Phase 2: blob at (30,30).
	for i := 0; i < 8000; i++ {
		ts := float64(i) / rate
		c := []float64{0, 0}
		if ts >= 3 {
			c = []float64{30, 30}
		}
		p := stream.Point{ID: int64(i), Vector: []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}, Time: ts}
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	clusters := d.Clusters(8.0)
	if len(clusters) != 1 {
		t.Fatalf("expected only the recent cluster to survive, got %d", len(clusters))
	}
	center := clusters[0].Centers[0]
	if distance.Euclid(center, []float64{30, 30}) > 5 {
		t.Errorf("surviving cluster is not the recent one: center %v", center)
	}
}

func TestInsertErrors(t *testing.T) {
	d, err := New(Config{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(stream.Point{}); err == nil {
		t.Error("invalid point accepted")
	}
	if err := d.Insert(stream.Point{Tokens: distance.NewTokenSet("a")}); err == nil {
		t.Error("text point accepted")
	}
	if err := d.Insert(stream.Point{Vector: []float64{math.NaN()}}); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestClustersOnEmptyState(t *testing.T) {
	d, _ := New(Config{Eps: 1})
	if got := d.Clusters(0); got != nil {
		t.Errorf("empty DenStream should report no clusters, got %v", got)
	}
}
