package archive

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/densitymountain/edmstream/internal/wal"
)

// ErrLocalState is returned by Restore when the data directory already
// holds WAL files: local state is the durability authority, and a
// restore over it could only lose acknowledged records.
var ErrLocalState = errors.New("archive: data directory already holds WAL state")

// RestoreInfo reports what a disaster restore fetched and wrote.
type RestoreInfo struct {
	// Checkpoints and Segments count the objects materialized locally.
	Checkpoints int `json:"checkpoints"`
	Segments    int `json:"segments"`
	// Bytes is the total written into the data directory (decompressed).
	Bytes int64 `json:"bytes"`
	// BadObjects counts remote objects skipped as undecodable — the
	// partial-upload debris a non-atomic remote can hold. wal.Open's
	// own validation decides what the surviving set proves.
	BadObjects int `json:"bad_objects"`
	// Retried counts per-object download retries against a flaky
	// remote.
	Retried int `json:"retried"`
	// DurationSeconds is the wall time of the whole restore.
	DurationSeconds float64 `json:"duration_seconds"`
}

// restoreRetry bounds the per-object download retries. A flaky remote
// (the drill's periodic get faults) is survivable; a persistent
// transport failure aborts the restore with an error — the caller can
// re-run it, nothing local was acknowledged yet.
const (
	restoreAttempts  = 6
	restoreRetryBase = 25 * time.Millisecond
	restoreRetryMax  = 500 * time.Millisecond
)

// Restore rebuilds an empty WAL directory from the object store: every
// remote checkpoint and segment is downloaded (with bounded per-object
// retries), decompressed when shipped gzipped, and written atomically
// under its local file name. It deliberately re-creates the on-disk
// layout instead of interpreting it — the subsequent wal.Open applies
// the exact CRC, magic and sequence-continuity rules of local crash
// recovery, so a stale tail, a missing suffix or partial-upload debris
// degrade to a shorter consistent prefix, never to corruption.
//
// All checkpoints are restored, not just the newest: wal.Open's
// fall-back-across-corrupt-checkpoints logic needs the older ones when
// the newest object turns out damaged.
func Restore(store ObjectStore, dir string) (RestoreInfo, error) {
	begin := time.Now()
	var info RestoreInfo
	if store == nil {
		return info, errors.New("archive: Restore requires a store")
	}
	if dir == "" {
		return info, errors.New("archive: Restore requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return info, fmt.Errorf("archive: creating data directory: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return info, fmt.Errorf("archive: inspecting data directory: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if _, ok := wal.ParseSegmentFileName(name); ok {
			return info, fmt.Errorf("%w (%s)", ErrLocalState, name)
		}
		if _, ok := wal.ParseCheckpointFileName(name); ok {
			return info, fmt.Errorf("%w (%s)", ErrLocalState, name)
		}
	}

	keys, err := listRetry(store, &info)
	if err != nil {
		return info, err
	}
	// Group remote keys by the local file they restore to: the same
	// segment can exist both plain and gzipped when the shipper's
	// Compress flag was toggled across restarts. Only one variant may
	// win per name — the one holding the longer decompressed payload,
	// since segments are append-only and the longer copy carries a
	// superset of the shorter one's valid prefix. List order must never
	// decide (it would always favour .gz, even when stale and shorter).
	type target struct {
		name   string
		isCkpt bool
	}
	byName := make(map[target][]string)
	var order []target
	for _, key := range keys {
		name, isCkpt, ok := localName(key)
		if !ok {
			continue // foreign object under the prefix; not ours to judge
		}
		tgt := target{name: name, isCkpt: isCkpt}
		if _, seen := byName[tgt]; !seen {
			order = append(order, tgt)
		}
		byName[tgt] = append(byName[tgt], key)
	}
	for _, tgt := range order {
		var best []byte
		haveBest := false
		for _, key := range byName[tgt] {
			data, err := getRetry(store, key, &info)
			if errors.Is(err, ErrNotExist) {
				continue // pruned after the listing; its replacement is shipped
			}
			if err != nil {
				return info, fmt.Errorf("archive: restoring %q: %w", key, err)
			}
			if strings.HasSuffix(key, gzSuffix) {
				plain, gerr := gunzip(data)
				if gerr != nil {
					// Partial-upload debris: a truncated gzip stream fails
					// its own framing. Skip it — for segments the WAL's
					// continuity rules bound the loss, for checkpoints an
					// older restored one takes over.
					info.BadObjects++
					continue
				}
				data = plain
			}
			if !haveBest || len(data) > len(best) {
				best, haveBest = data, true
			}
		}
		if !haveBest {
			continue
		}
		if err := writeAtomic(dir, tgt.name, best); err != nil {
			return info, err
		}
		if tgt.isCkpt {
			info.Checkpoints++
		} else {
			info.Segments++
		}
		info.Bytes += int64(len(best))
	}
	if err := syncDir(dir); err != nil {
		return info, err
	}
	info.DurationSeconds = time.Since(begin).Seconds()
	return info, nil
}

// localName maps a remote key back to its local WAL file name,
// validating the name shape so a stray object cannot smuggle an
// arbitrary path into the data directory.
func localName(key string) (name string, isCkpt bool, ok bool) {
	name = strings.TrimSuffix(key, gzSuffix)
	switch {
	case strings.HasPrefix(name, segKeyPrefix):
		name = strings.TrimPrefix(name, segKeyPrefix)
		_, ok = wal.ParseSegmentFileName(name)
		return name, false, ok
	case strings.HasPrefix(name, ckptKeyPrefix):
		name = strings.TrimPrefix(name, ckptKeyPrefix)
		_, ok = wal.ParseCheckpointFileName(name)
		return name, true, ok
	}
	return "", false, false
}

func listRetry(store ObjectStore, info *RestoreInfo) ([]string, error) {
	var lastErr error
	for attempt := 0; attempt < restoreAttempts; attempt++ {
		if attempt > 0 {
			info.Retried++
			time.Sleep(backoff(attempt, restoreRetryBase, restoreRetryMax))
		}
		keys, err := store.List("")
		if err == nil {
			return keys, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("archive: listing the remote: %w", lastErr)
}

func getRetry(store ObjectStore, key string, info *RestoreInfo) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < restoreAttempts; attempt++ {
		if attempt > 0 {
			info.Retried++
			time.Sleep(backoff(attempt, restoreRetryBase, restoreRetryMax))
		}
		data, err := store.Get(key)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, ErrNotExist) {
			// Pruned between List and Get by another shipper: whatever
			// superseded it is in the listing too (or the next restore
			// attempt's).
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("still failing after %d attempts: %w", restoreAttempts, lastErr)
}

func gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	plain, err := io.ReadAll(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return plain, nil
}

// writeAtomic writes name into dir via temp-and-rename with an fsync,
// so an interrupted restore leaves no torn WAL files for the next
// attempt to misread.
func writeAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".restore-tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: writing %s: %w", name, err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("archive: writing %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("archive: publishing %s: %w", name, err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
