package archive

import (
	"bytes"
	"errors"
	"testing"
)

func newFaultStore(t *testing.T) (*FaultStore, *DirStore) {
	t.Helper()
	inner, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	return NewFaultStore(inner), inner
}

func TestFaultStorePeriodic(t *testing.T) {
	s, _ := newFaultStore(t)
	s.Inject(Fault{Op: "put", After: 2, Every: 3})
	// Puts 0,1 succeed; 2 fails; 3,4 succeed; 5 fails; ...
	for i := 0; i < 9; i++ {
		err := s.Put("k", []byte("v"))
		wantFail := i >= 2 && (i-2)%3 == 0
		if wantFail && !errors.Is(err, ErrInjected) {
			t.Fatalf("put %d: err = %v, want ErrInjected", i, err)
		}
		if !wantFail && err != nil {
			t.Fatalf("put %d: unexpected error %v", i, err)
		}
	}
}

func TestFaultStorePartialPutIsVisible(t *testing.T) {
	s, inner := newFaultStore(t)
	s.Inject(Fault{Op: "put", Partial: 4})
	data := []byte("0123456789")
	if err := s.Put("seg/x", data); !errors.Is(err, ErrInjected) {
		t.Fatalf("partial put err = %v, want ErrInjected", err)
	}
	// The truncated prefix is VISIBLE under the key — the non-atomic
	// remote the restore path must survive.
	got, err := inner.Get("seg/x")
	if err != nil || !bytes.Equal(got, data[:4]) {
		t.Fatalf("partial object = %q, %v; want %q", got, err, data[:4])
	}
}

func TestFaultStoreOutage(t *testing.T) {
	s, _ := newFaultStore(t)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("pre-outage put: %v", err)
	}
	s.SetOutage(true)
	if err := s.Put("k", []byte("v")); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage put err = %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage get err = %v", err)
	}
	if _, err := s.List(""); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage list err = %v", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("outage delete err = %v", err)
	}
	s.SetOutage(false)
	if got, err := s.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("healed get = %q, %v", got, err)
	}
}

func TestFaultStoreIndependentFaults(t *testing.T) {
	s, _ := newFaultStore(t)
	s.Inject(
		Fault{Op: "put", After: 1},
		Fault{Op: "get", After: 0, Sticky: true},
	)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("put 0 should succeed: %v", err)
	}
	if err := s.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("put 1 err = %v, want ErrInjected", err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("put 2 should succeed (non-sticky): %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Get("k"); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky get %d err = %v", i, err)
		}
	}
	s.Clear()
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("get after Clear: %v", err)
	}
}
