package archive

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream/internal/wal"
)

// Remote key prefixes; the name under the prefix is the local WAL file
// name, with ".gz" appended when the shipper compressed it in flight.
const (
	segKeyPrefix  = "seg/"
	ckptKeyPrefix = "ckpt/"
	gzSuffix      = ".gz"
)

// ShipperOptions configures a Shipper.
type ShipperOptions struct {
	// Dir is the local WAL directory the objects are read from.
	Dir string
	// Store is the remote. Required.
	Store ObjectStore
	// QueueLen bounds the notification queue; a full queue drops the
	// notification (counted, and repaired by the next resync) rather
	// than ever blocking the WAL writer. Zero means 64.
	QueueLen int
	// RetryBase/RetryMax shape the jittered exponential backoff between
	// upload attempts of the queue head. Zero means 100ms / 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// ResyncEvery is how often the shipper, when notifications were
	// dropped or uploads failed, rescans the directory and ships
	// whatever the remote is missing. Zero means 30s.
	ResyncEvery time.Duration
	// Compress gzips shipped segments (checkpoints are compressed at
	// the WAL layer when its CompressCheckpoints option is on).
	Compress bool
}

// shipTask is one object to upload.
type shipTask struct {
	name string // local file name (wal-*.log or ckpt-*.ckpt)
	ckpt bool
	// through is the first sequence number NOT covered by the object
	// (0 for resync tasks, whose coverage is unknown to the scanner).
	through  uint64
	enqueued time.Time
}

// ShipperStats is a point-in-time snapshot of the shipper's counters,
// safe to take from any goroutine.
type ShipperStats struct {
	// Shipped counts successful uploads; ShippedBytes their on-wire
	// size and ReadBytes the local bytes they were read from (the
	// compression ratio is ReadBytes/ShippedBytes).
	Shipped      uint64
	ShippedBytes uint64
	ReadBytes    uint64
	// Failed counts upload attempts the remote refused; Retried the
	// backoff rounds taken re-attempting the queue head.
	Failed  uint64
	Retried uint64
	// Dropped counts notifications lost to a full queue (repaired by
	// resync); Skipped counts tasks whose local file had already been
	// pruned away by a newer checkpoint before the upload ran.
	Dropped uint64
	Skipped uint64
	// Pruned counts remote objects deleted because a shipped checkpoint
	// superseded them.
	Pruned uint64
	// LagObjects is the queued (plus in-flight) upload count;
	// LagRecords is how far the remote's proven coverage trails the
	// local log (localThrough - shippedThrough); LagSeconds is the age
	// of the oldest pending upload.
	LagObjects int64
	LagRecords int64
	LagSeconds float64
	// Lagging is the health detail: an upload is currently failing, or
	// dropped notifications await a resync.
	Lagging bool
	// LocalThroughSeq / ShippedThroughSeq are the first sequence
	// numbers not covered by, respectively, the newest local
	// seal/checkpoint notification and the newest successfully shipped
	// one. ShippedCheckpointSeq is the newest shipped checkpoint's
	// coverage — the floor a disaster restore is guaranteed to reach.
	LocalThroughSeq      uint64
	ShippedThroughSeq    uint64
	ShippedCheckpointSeq uint64
}

// Shipper uploads sealed WAL segments and finished checkpoints to an
// ObjectStore from a bounded queue, with jittered retry/backoff. It
// never blocks or fails the ingest path: notifications are non-blocking
// sends from the WAL writer goroutine, remote failures are retried and
// reported as lag, and a full queue degrades to a directory resync
// instead of backpressure.
type Shipper struct {
	dir      string
	store    ObjectStore
	compress bool

	queue       chan shipTask
	retryBase   time.Duration
	retryMax    time.Duration
	resyncEvery time.Duration

	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
	startOnce sync.Once

	shipped      atomic.Uint64
	shippedBytes atomic.Uint64
	readBytes    atomic.Uint64
	failed       atomic.Uint64
	retried      atomic.Uint64
	dropped      atomic.Uint64
	skipped      atomic.Uint64
	pruned       atomic.Uint64

	localThrough   atomic.Uint64
	shippedThrough atomic.Uint64
	shippedCkpt    atomic.Uint64

	inflight     atomic.Int64
	oldestNanos  atomic.Int64 // enqueue time of the oldest pending task; 0 = none
	failStreak   atomic.Int64
	resyncNeeded atomic.Bool
}

// NewShipper builds a shipper; call Start to launch its goroutine.
func NewShipper(opts ShipperOptions) (*Shipper, error) {
	if opts.Store == nil {
		return nil, errors.New("archive: ShipperOptions.Store is required")
	}
	if opts.Dir == "" {
		return nil, errors.New("archive: ShipperOptions.Dir is required")
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 64
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	if opts.ResyncEvery <= 0 {
		opts.ResyncEvery = 30 * time.Second
	}
	return &Shipper{
		dir:         opts.Dir,
		store:       opts.Store,
		compress:    opts.Compress,
		queue:       make(chan shipTask, opts.QueueLen),
		retryBase:   opts.RetryBase,
		retryMax:    opts.RetryMax,
		resyncEvery: opts.ResyncEvery,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}, nil
}

// Start launches the upload goroutine. The first thing it does is a
// reconcile pass: anything in the directory the remote does not hold is
// enqueued, which covers objects sealed before the shipper existed and
// notifications lost to a crash.
func (s *Shipper) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// NoteSegmentSealed is the wal.Options.OnSegmentSealed hook: called on
// the WAL writer goroutine when a segment is finished. through is the
// first sequence number not in the segment. Never blocks.
func (s *Shipper) NoteSegmentSealed(name string, through uint64) {
	s.note(shipTask{name: name, through: through, enqueued: time.Now()})
}

// NoteCheckpointSaved is the wal.Options.OnCheckpointSaved hook: called
// on the WAL writer goroutine after a checkpoint is durable. nextSeq is
// the first sequence number it does not cover.
func (s *Shipper) NoteCheckpointSaved(name string, nextSeq uint64) {
	s.note(shipTask{name: name, ckpt: true, through: nextSeq, enqueued: time.Now()})
}

func (s *Shipper) note(t shipTask) {
	if t.through > 0 {
		maxStore(&s.localThrough, t.through)
	}
	select {
	case s.queue <- t:
		s.oldestNanos.CompareAndSwap(0, t.enqueued.UnixNano())
	default:
		// The remote is behind and the queue is full: drop the
		// notification rather than slow the writer; the resync pass
		// re-discovers the file by listing the directory.
		s.dropped.Add(1)
		s.resyncNeeded.Store(true)
	}
}

// maxStore raises a to v if v is larger (monotone CAS loop).
func maxStore(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *Shipper) run() {
	defer close(s.done)
	s.reconcile()
	ticker := time.NewTicker(s.resyncEvery)
	defer ticker.Stop()
	for {
		select {
		case t := <-s.queue:
			// The head is the oldest pending task (in-flight counts as
			// pending); pin its age so LagSeconds tracks it, not a task
			// that already shipped. The next dequeue overwrites, the
			// empty-queue path below clears.
			s.oldestNanos.Store(t.enqueued.UnixNano())
			s.process(t, false)
			if len(s.queue) == 0 {
				s.oldestNanos.Store(0)
				// The queue just drained: if anything was dropped or
				// failed along the way, repair coverage right now
				// instead of waiting out the ticker.
				if s.resyncNeeded.CompareAndSwap(true, false) {
					s.reconcile()
				}
			}
		case <-ticker.C:
			if s.resyncNeeded.CompareAndSwap(true, false) {
				s.reconcile()
			}
		case <-s.stop:
			s.drain()
			return
		}
	}
}

// process uploads one task. The queue head is retried with jittered
// exponential backoff until it succeeds, the file disappears (pruned by
// a newer checkpoint — superseded, not lost), or the shipper stops;
// later tasks wait behind it, which is fine because a remote that
// rejects the head is not going to take them either.
func (s *Shipper) process(t shipTask, draining bool) {
	s.inflight.Store(1)
	defer s.inflight.Store(0)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if draining {
				return // best-effort on shutdown: one attempt per task
			}
			s.retried.Add(1)
			if !s.sleep(backoff(attempt, s.retryBase, s.retryMax)) {
				return // stopping; the final checkpoint drain re-covers
			}
		}
		switch err := s.ship(t); {
		case err == nil:
			s.failStreak.Store(0)
			return
		case errors.Is(err, fs.ErrNotExist):
			// Pruned under us by a newer checkpoint: the records are
			// covered by an object that is (or will be) shipped.
			s.skipped.Add(1)
			return
		default:
			s.failed.Add(1)
			s.failStreak.Add(1)
			s.resyncNeeded.Store(true)
		}
	}
}

// ship performs one upload attempt (and, for checkpoints, the remote
// prune the new coverage allows).
func (s *Shipper) ship(t shipTask) error {
	raw, err := os.ReadFile(filepath.Join(s.dir, t.name))
	if err != nil {
		return err
	}
	key, data := s.encode(t, raw)
	if err := s.store.Put(key, data); err != nil {
		return err
	}
	// Toggling Compress across restarts changes a segment's remote key
	// (.gz appended or not); drop the sibling variant so a restore never
	// has to choose between a fresh copy and a stale one. Best-effort —
	// Restore's longer-variant rule is the backstop if this Delete fails.
	if sibling := siblingKey(key); sibling != "" {
		_ = s.store.Delete(sibling)
	}
	s.shipped.Add(1)
	s.shippedBytes.Add(uint64(len(data)))
	s.readBytes.Add(uint64(len(raw)))
	if t.through > 0 {
		maxStore(&s.shippedThrough, t.through)
	}
	if t.ckpt && t.through > 0 {
		maxStore(&s.shippedCkpt, t.through)
		s.pruneRemote(t.through)
	}
	return nil
}

// encode maps a task to its remote key and payload, gzipping segments
// when compression is on. Checkpoint files go verbatim: their gzip
// variant is a WAL-level format wal.Open already understands.
func (s *Shipper) encode(t shipTask, raw []byte) (string, []byte) {
	if t.ckpt {
		return ckptKeyPrefix + t.name, raw
	}
	if !s.compress {
		return segKeyPrefix + t.name, raw
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err == nil && zw.Close() == nil {
		return segKeyPrefix + t.name + gzSuffix, buf.Bytes()
	}
	return segKeyPrefix + t.name, raw
}

// siblingKey returns the other compression variant of a segment key
// ("" for checkpoints, which ship under one key regardless of format).
func siblingKey(key string) string {
	if !strings.HasPrefix(key, segKeyPrefix) {
		return ""
	}
	if strings.HasSuffix(key, gzSuffix) {
		return strings.TrimSuffix(key, gzSuffix)
	}
	return key + gzSuffix
}

// pruneRemote mirrors wal.prune on the remote: once a checkpoint
// covering ckptNext is shipped, older checkpoints and fully covered
// segments are deleted. Failures are ignored — a leftover object costs
// remote space, and the next shipped checkpoint retries.
func (s *Shipper) pruneRemote(ckptNext uint64) {
	keys, err := s.store.List("")
	if err != nil {
		return
	}
	type obj struct {
		key string
		seq uint64
	}
	var segs, ckpts []obj
	for _, key := range keys {
		name := strings.TrimSuffix(key, gzSuffix)
		switch {
		case strings.HasPrefix(name, segKeyPrefix):
			if seq, ok := wal.ParseSegmentFileName(strings.TrimPrefix(name, segKeyPrefix)); ok {
				segs = append(segs, obj{key: key, seq: seq})
			}
		case strings.HasPrefix(name, ckptKeyPrefix):
			if seq, ok := wal.ParseCheckpointFileName(strings.TrimPrefix(name, ckptKeyPrefix)); ok {
				ckpts = append(ckpts, obj{key: key, seq: seq})
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	for _, c := range ckpts {
		if c.seq < ckptNext {
			if s.store.Delete(c.key) == nil {
				s.pruned.Add(1)
			}
		}
	}
	// A segment is removable when the NEXT one starts at or below the
	// checkpoint boundary — same rule as the local prune; the newest
	// segment always stays.
	for len(segs) > 1 && segs[1].seq <= ckptNext {
		if s.store.Delete(segs[0].key) == nil {
			s.pruned.Add(1)
		}
		segs = segs[1:]
	}
}

// reconcile lists the directory and the remote and enqueues every local
// WAL file the remote does not hold. It is how the shipper catches up
// after dropped notifications, an outage, or a fresh start over an
// existing directory. The open tail segment ships too (as a prefix of
// itself): a stale remote tail only shortens what a disaster restore
// replays, never corrupts it, because restore re-runs the WAL's own
// tail-validation rules.
func (s *Shipper) reconcile() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.resyncNeeded.Store(true)
		return
	}
	remote, err := s.store.List("")
	if err != nil {
		s.failed.Add(1)
		s.failStreak.Add(1)
		s.resyncNeeded.Store(true)
		return
	}
	have := make(map[string]bool, len(remote))
	for _, key := range remote {
		have[strings.TrimSuffix(key, gzSuffix)] = true
	}
	now := time.Now()
	for _, ent := range entries {
		name := ent.Name()
		var t shipTask
		if _, ok := wal.ParseSegmentFileName(name); ok {
			if have[segKeyPrefix+name] {
				continue
			}
			t = shipTask{name: name, enqueued: now}
		} else if seq, ok := wal.ParseCheckpointFileName(name); ok {
			if have[ckptKeyPrefix+name] {
				continue
			}
			t = shipTask{name: name, ckpt: true, through: seq, enqueued: now}
		} else {
			continue
		}
		select {
		case s.queue <- t:
			s.oldestNanos.CompareAndSwap(0, now.UnixNano())
		default:
			s.dropped.Add(1)
			s.resyncNeeded.Store(true)
			return
		}
	}
}

// drain runs at shutdown: every queued task gets one best-effort
// attempt (no backoff — the process is leaving), so a healthy remote
// ends the session fully caught up, checkpoint included.
func (s *Shipper) drain() {
	for {
		select {
		case t := <-s.queue:
			s.oldestNanos.Store(t.enqueued.UnixNano())
			s.process(t, true)
		default:
			s.oldestNanos.Store(0)
			return
		}
	}
}

// sleep waits d or until the shipper stops, reporting whether it slept
// the full duration.
func (s *Shipper) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-s.stop:
		return false
	}
}

// backoff is the jittered exponential delay before retry `attempt`
// (1-based): base doubled per round, capped at max, jittered into
// [d/2, d] so a fleet of recovering shippers decorrelates.
func backoff(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Lagging reports the /healthz detail: an upload is failing or dropped
// notifications await a resync. Ingest is unaffected either way — this
// is an observability signal, not a 503.
func (s *Shipper) Lagging() bool {
	return s.failStreak.Load() > 0 || s.resyncNeeded.Load()
}

// Stats snapshots the shipper's counters; safe from any goroutine.
func (s *Shipper) Stats() ShipperStats {
	st := ShipperStats{
		Shipped:              s.shipped.Load(),
		ShippedBytes:         s.shippedBytes.Load(),
		ReadBytes:            s.readBytes.Load(),
		Failed:               s.failed.Load(),
		Retried:              s.retried.Load(),
		Dropped:              s.dropped.Load(),
		Skipped:              s.skipped.Load(),
		Pruned:               s.pruned.Load(),
		LagObjects:           int64(len(s.queue)) + s.inflight.Load(),
		LocalThroughSeq:      s.localThrough.Load(),
		ShippedThroughSeq:    s.shippedThrough.Load(),
		ShippedCheckpointSeq: s.shippedCkpt.Load(),
		Lagging:              s.Lagging(),
	}
	if lag := int64(st.LocalThroughSeq) - int64(st.ShippedThroughSeq); lag > 0 {
		st.LagRecords = lag
	}
	if oldest := s.oldestNanos.Load(); oldest > 0 {
		st.LagSeconds = time.Since(time.Unix(0, oldest)).Seconds()
	}
	return st
}

// Close stops the shipper after a best-effort drain of the queue (one
// attempt per task, no backoff), waiting at most timeout. Call after
// the WAL owner is done appending so the final checkpoint notification
// is already queued.
func (s *Shipper) Close(timeout time.Duration) error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	select {
	case <-s.done:
		return nil
	case <-time.After(timeout):
		return errors.New("archive: shipper drain timed out")
	}
}
