package archive

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/densitymountain/edmstream/internal/wal"
)

// buildAndShip creates a WAL directory with a compressed checkpoint and
// a live tail, ships everything (segments gzipped), and returns the
// store plus the replayable tail contents of the source log.
func buildAndShip(t *testing.T, store ObjectStore) (ckpt []byte, tailSeqs []uint64, tails [][]byte) {
	t.Helper()
	walDir := t.TempDir()
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, Compress: true, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, ResyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	l, err := wal.Open(wal.Options{
		Dir:                 walDir,
		SegmentBytes:        1 << 10,
		CompressCheckpoints: true,
		OnSegmentSealed:     ship.NoteSegmentSealed,
		OnCheckpointSaved:   ship.NoteCheckpointSaved,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	ship.Start()

	payload := make([]byte, 100)
	for i := 0; i < 30; i++ {
		payload[0] = byte(i)
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	ckpt = []byte("engine state after 30 records")
	if err := l.SaveCheckpoint(ckpt); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	for i := 30; i < 45; i++ {
		payload[0] = byte(i)
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal.Close: %v", err)
	}
	// wal.Close sealed the final segment (through = 46), so the remote
	// ends up covering the complete stream; poll for that coverage.
	waitFor(t, "everything shipped", func() bool {
		st := ship.Stats()
		return st.ShippedCheckpointSeq == 31 && st.ShippedThroughSeq == 46 && !ship.Lagging() && st.LagObjects == 0
	})
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("ship.Close: %v", err)
	}

	// What the source log would replay is the reference the restored
	// one must match.
	src, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatalf("reopening source: %v", err)
	}
	defer src.Close()
	if err := src.Replay(func(seq uint64, p []byte) error {
		tailSeqs = append(tailSeqs, seq)
		tails = append(tails, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("source Replay: %v", err)
	}
	return ckpt, tailSeqs, tails
}

// restoreAndOpen restores into a fresh directory and opens the result.
func restoreAndOpen(t *testing.T, store ObjectStore) (RestoreInfo, *wal.Log) {
	t.Helper()
	dir := t.TempDir()
	info, err := Restore(store, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open over restored dir: %v", err)
	}
	return info, l
}

func TestRestoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	ckpt, wantSeqs, wantTails := buildAndShip(t, store)

	info, l := restoreAndOpen(t, store)
	defer l.Close()
	if info.Checkpoints != 1 || info.Segments == 0 || info.BadObjects != 0 {
		t.Fatalf("unexpected restore info: %+v", info)
	}
	if !l.Info().HasCheckpoint || !bytes.Equal(l.Checkpoint(), ckpt) {
		t.Fatalf("restored checkpoint differs: %+v", l.Info())
	}
	var gotSeqs []uint64
	var gotTails [][]byte
	if err := l.Replay(func(seq uint64, p []byte) error {
		gotSeqs = append(gotSeqs, seq)
		gotTails = append(gotTails, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(gotSeqs) != len(wantSeqs) {
		t.Fatalf("restored %d tail records, want %d", len(gotSeqs), len(wantSeqs))
	}
	for i := range wantSeqs {
		if gotSeqs[i] != wantSeqs[i] || !bytes.Equal(gotTails[i], wantTails[i]) {
			t.Fatalf("restored tail record %d differs", i)
		}
	}
}

func TestRestoreSkipsPartialUploadDebris(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	ckpt, wantSeqs, _ := buildAndShip(t, store)

	// Plant a truncated gzip object under a plausible FUTURE segment
	// name — partial-upload debris from a dying shipper. Its gzip
	// framing fails, so restore skips it; WAL continuity is unaffected
	// because no valid record points past the real tail.
	if err := store.Put(segKeyPrefix+"wal-00000000000000ff.log"+gzSuffix, []byte("\x1f\x8b\x08garbage")); err != nil {
		t.Fatalf("planting debris: %v", err)
	}

	info, l := restoreAndOpen(t, store)
	defer l.Close()
	if info.BadObjects != 1 {
		t.Fatalf("BadObjects = %d, want 1: %+v", info.BadObjects, info)
	}
	if !bytes.Equal(l.Checkpoint(), ckpt) {
		t.Fatal("checkpoint differs after debris skip")
	}
	var got int
	if err := l.Replay(func(uint64, []byte) error { got++; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got != len(wantSeqs) {
		t.Fatalf("replayed %d records, want %d", got, len(wantSeqs))
	}
}

// TestRestorePrefersLongerVariant covers the Compress toggle across
// restarts: the same segment exists remotely both plain and gzipped,
// and the variant holding the longer (decompressed) payload must win —
// not whichever key List happens to sort last. Segments are
// append-only, so the longer copy is a superset of the shorter one.
func TestRestorePrefersLongerVariant(t *testing.T) {
	gz := func(data []byte) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatalf("gzip: %v", err)
		}
		if err := zw.Close(); err != nil {
			t.Fatalf("gzip close: %v", err)
		}
		return buf.Bytes()
	}
	long := bytes.Repeat([]byte("record-bytes"), 20)
	short := long[:24]
	for _, tc := range []struct {
		name      string
		plain, gz []byte
	}{
		// List sorts "x.log" before "x.log.gz", so last-writer-by-order
		// would always pick the gz body; the first case proves it does
		// not when the gz copy is the stale shorter one.
		{name: "plain-longer", plain: long, gz: gz(short)},
		{name: "gz-longer", plain: short, gz: gz(long)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewDirStore: %v", err)
			}
			const segName = "wal-0000000000000001.log"
			if err := store.Put(segKeyPrefix+segName, tc.plain); err != nil {
				t.Fatalf("Put plain: %v", err)
			}
			if err := store.Put(segKeyPrefix+segName+gzSuffix, tc.gz); err != nil {
				t.Fatalf("Put gz: %v", err)
			}
			dir := t.TempDir()
			info, err := Restore(store, dir)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if info.Segments != 1 || info.Bytes != int64(len(long)) {
				t.Fatalf("restore info %+v, want 1 segment of %d bytes", info, len(long))
			}
			got, err := os.ReadFile(filepath.Join(dir, segName))
			if err != nil {
				t.Fatalf("reading restored segment: %v", err)
			}
			if !bytes.Equal(got, long) {
				t.Fatalf("restored %d bytes, want the %d-byte variant", len(got), len(long))
			}
		})
	}
}

func TestRestoreSurvivesFlakyRemote(t *testing.T) {
	inner, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	ckpt, _, _ := buildAndShip(t, inner)
	store := NewFaultStore(inner)
	store.Inject(Fault{Op: "get", After: 1, Every: 2}) // every other download fails

	info, l := restoreAndOpen(t, store)
	defer l.Close()
	if info.Retried == 0 {
		t.Fatalf("flaky remote produced no retries: %+v", info)
	}
	if !bytes.Equal(l.Checkpoint(), ckpt) {
		t.Fatal("checkpoint differs after flaky restore")
	}
}

func TestRestoreRefusesLocalState(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if _, err := l.Append([]byte("local record")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Restore(store, dir); !errors.Is(err, ErrLocalState) {
		t.Fatalf("Restore over local state = %v, want ErrLocalState", err)
	}
}

func TestRestoreEmptyRemote(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	dir := t.TempDir()
	info, err := Restore(store, dir)
	if err != nil {
		t.Fatalf("Restore from empty remote: %v", err)
	}
	if info.Checkpoints != 0 || info.Segments != 0 {
		t.Fatalf("restored objects from an empty remote: %+v", info)
	}
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open after empty restore: %v", err)
	}
	defer l.Close()
	if l.Info().HasCheckpoint || l.Info().RecordsReplayable != 0 {
		t.Fatalf("empty restore produced state: %+v", l.Info())
	}
}
