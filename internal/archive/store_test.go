package archive

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	if err := s.Put("seg/wal-0000000000000001.log", []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("seg/wal-0000000000000001.log")
	if err != nil || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite is atomic and replaces the object.
	if err := s.Put("seg/wal-0000000000000001.log", []byte("two")); err != nil {
		t.Fatalf("overwrite Put: %v", err)
	}
	if got, _ := s.Get("seg/wal-0000000000000001.log"); !bytes.Equal(got, []byte("two")) {
		t.Fatalf("after overwrite Get = %q", got)
	}
	if err := s.Delete("seg/wal-0000000000000001.log"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("seg/wal-0000000000000001.log"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get after Delete = %v, want ErrNotExist", err)
	}
	// Deleting a missing key is not an error.
	if err := s.Delete("seg/wal-0000000000000001.log"); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
}

func TestDirStoreListSortedWithPrefix(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	keys := []string{"seg/b.log", "ckpt/a.ckpt", "seg/a.log", "seg/a.log.gz"}
	for _, k := range keys {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	// An in-flight temp file must be invisible to List.
	if err := os.WriteFile(filepath.Join(s.Root(), "seg", "c.log.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatalf("planting temp file: %v", err)
	}
	all, err := s.List("")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !sort.StringsAreSorted(all) || len(all) != len(keys) {
		t.Fatalf("List(\"\") = %v, want the %d keys sorted", all, len(keys))
	}
	segs, err := s.List("seg/")
	if err != nil {
		t.Fatalf("List(seg/): %v", err)
	}
	want := []string{"seg/a.log", "seg/a.log.gz", "seg/b.log"}
	if len(segs) != len(want) {
		t.Fatalf("List(seg/) = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("List(seg/) = %v, want %v", segs, want)
		}
	}
}

func TestDirStoreRejectsEscapingKeys(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	for _, bad := range []string{"", "../outside", "a/../../outside", "/etc/passwd"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted an escaping key", bad)
		}
		if _, err := s.Get(bad); err == nil {
			t.Fatalf("Get(%q) accepted an escaping key", bad)
		}
	}
}

func TestOpenStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenStore("file://" + dir); err != nil {
		t.Fatalf("OpenStore(file://): %v", err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatalf("OpenStore(plain path): %v", err)
	}
	for _, bad := range []string{"", "s3://bucket/prefix", "file://"} {
		if _, err := OpenStore(bad); err == nil {
			t.Fatalf("OpenStore(%q) accepted", bad)
		}
	}
}
