package archive

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/densitymountain/edmstream/internal/wal"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// appendRecords appends n synced ~100-byte records.
func appendRecords(t *testing.T, l *wal.Log, n int) {
	t.Helper()
	payload := make([]byte, 100)
	for i := 0; i < n; i++ {
		payload[0] = byte(i)
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync(%d): %v", i, err)
		}
	}
}

func TestShipperShipsSealsAndCheckpoints(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	// Build shipper and WAL over the SAME directory.
	walDir := t.TempDir()
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond, ResyncEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	l, err := wal.Open(wal.Options{
		Dir:               walDir,
		SegmentBytes:      1 << 10,
		OnSegmentSealed:   ship.NoteSegmentSealed,
		OnCheckpointSaved: ship.NoteCheckpointSaved,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer l.Close()
	ship.Start()

	appendRecords(t, l, 60) // several rotations at 1 KiB segments
	waitFor(t, "sealed segments shipped", func() bool { return ship.Stats().Shipped >= 2 })

	if err := l.SaveCheckpoint([]byte("engine state")); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	waitFor(t, "checkpoint shipped", func() bool { return ship.Stats().ShippedCheckpointSeq == 61 })
	// After the checkpoint ships, the remote prune mirrors the local
	// one: covered segments and older checkpoints disappear.
	waitFor(t, "remote pruned to checkpoint coverage", func() bool {
		keys, err := store.List("")
		if err != nil {
			return false
		}
		ckpts, oldSegs := 0, 0
		for _, k := range keys {
			if strings.HasPrefix(k, ckptKeyPrefix) {
				ckpts++
			}
			if strings.HasPrefix(k, segKeyPrefix) && k < segKeyPrefix+"wal-0000000000000030" {
				oldSegs++
			}
		}
		return ckpts == 1 && oldSegs <= 1
	})
	st := ship.Stats()
	if st.Lagging || st.LagRecords != 0 || st.Failed != 0 {
		t.Fatalf("healthy shipper reports lag: %+v", st)
	}
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestShipperRetriesFlakyStoreAndReportsLag(t *testing.T) {
	inner, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	store := NewFaultStore(inner)
	walDir := t.TempDir()
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, ResyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	l, err := wal.Open(wal.Options{
		Dir:             walDir,
		SegmentBytes:    1 << 10,
		OnSegmentSealed: ship.NoteSegmentSealed,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer l.Close()

	store.SetOutage(true)
	ship.Start()
	appendRecords(t, l, 40)
	waitFor(t, "failures recorded during outage", func() bool {
		st := ship.Stats()
		return st.Failed > 0 && st.Lagging && st.LagRecords > 0
	})

	store.SetOutage(false)
	waitFor(t, "catch-up after heal", func() bool {
		st := ship.Stats()
		return !st.Lagging && st.LagRecords == 0 && st.Shipped >= 2
	})
	if st := ship.Stats(); st.Retried == 0 {
		t.Fatalf("no retries recorded across an outage: %+v", st)
	}
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestShipperQueueOverflowHealsByResync(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	walDir := t.TempDir()
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, QueueLen: 1, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, ResyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	l, err := wal.Open(wal.Options{
		Dir:             walDir,
		SegmentBytes:    1 << 10,
		OnSegmentSealed: ship.NoteSegmentSealed,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer l.Close()

	// Not started yet: the 1-slot queue overflows and notifications
	// drop — but never block the writer.
	appendRecords(t, l, 60)
	if st := ship.Stats(); st.Dropped == 0 {
		t.Fatalf("expected dropped notifications with a 1-slot queue, got %+v", st)
	}
	ship.Start()
	waitFor(t, "resync repairs the dropped notifications", func() bool {
		keys, err := store.List(segKeyPrefix)
		if err != nil {
			return false
		}
		return len(keys) >= 3 && !ship.Lagging()
	})
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestShipperCompressesSegments(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	walDir := t.TempDir()
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, Compress: true, RetryBase: time.Millisecond, ResyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	l, err := wal.Open(wal.Options{
		Dir:             walDir,
		SegmentBytes:    1 << 10,
		OnSegmentSealed: ship.NoteSegmentSealed,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer l.Close()
	ship.Start()
	appendRecords(t, l, 60)
	waitFor(t, "compressed segments shipped", func() bool { return ship.Stats().Shipped >= 2 })
	keys, err := store.List(segKeyPrefix)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	for _, k := range keys {
		if !strings.HasSuffix(k, gzSuffix) {
			t.Fatalf("segment %q shipped uncompressed despite Compress", k)
		}
	}
	st := ship.Stats()
	if st.ShippedBytes >= st.ReadBytes {
		t.Fatalf("no compression gain: shipped %d read %d", st.ShippedBytes, st.ReadBytes)
	}
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShipperDeletesSiblingVariant covers the Compress toggle: a
// shipper re-uploading a segment under its new key must remove the old
// variant, so a restore never finds both and has to arbitrate.
func TestShipperDeletesSiblingVariant(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	walDir := t.TempDir()
	// The previous incarnation ran with Compress on and shipped this
	// segment gzipped; this one runs with Compress off.
	const segName = "wal-0000000000000001.log"
	if err := os.WriteFile(filepath.Join(walDir, segName), []byte("sealed segment bytes"), 0o644); err != nil {
		t.Fatalf("writing local segment: %v", err)
	}
	if err := store.Put(segKeyPrefix+segName+gzSuffix, []byte("stale gz body")); err != nil {
		t.Fatalf("planting stale variant: %v", err)
	}
	ship, err := NewShipper(ShipperOptions{Dir: walDir, Store: store, RetryBase: time.Millisecond, ResyncEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewShipper: %v", err)
	}
	ship.Start()
	ship.NoteSegmentSealed(segName, 6)
	waitFor(t, "segment shipped plain", func() bool { return ship.Stats().Shipped >= 1 })
	if err := ship.Close(5 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := store.Get(segKeyPrefix + segName); err != nil {
		t.Fatalf("plain variant missing after ship: %v", err)
	}
	if _, err := store.Get(segKeyPrefix + segName + gzSuffix); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stale gz variant survived the ship (err %v)", err)
	}
}
