// Package archive ships the durability subsystem's sealed WAL segments
// and finished checkpoints to a remote object store, and can rebuild an
// empty data directory from that store after total local loss. It is
// the disaster-recovery layer on top of internal/wal: local durability
// remains the acknowledgement authority (an HTTP 200 never waits on the
// remote), the archive is an asynchronous replica path with an
// explicit, observable consistency lag.
//
// The remote key layout mirrors the WAL directory:
//
//	seg/wal-<seq16hex>.log[.gz]    sealed (or reconciled) log segments
//	ckpt-<seq16hex>.ckpt under     checkpoints, shipped verbatim (the
//	ckpt/                          gzip variant is a WAL-level format)
//
// A ".gz" suffix marks an object the shipper compressed in flight;
// restore strips it and decompresses, then lets wal.Open apply the
// exact same CRC and sequence-continuity rules as local recovery.
package archive

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotExist is returned by Get and Delete for a key with no object.
var ErrNotExist = errors.New("archive: object does not exist")

// ObjectStore is the minimal blob-store surface the shipper and restore
// need. Implementations must make Put atomic per key (readers see the
// old object or the new one, never a torn mix) — DirStore does, and any
// real object store does by nature. FaultStore deliberately breaks this
// to model partial uploads.
type ObjectStore interface {
	// Put stores data under key, overwriting any previous object.
	Put(key string, data []byte) error
	// Get returns the object stored under key, or ErrNotExist.
	Get(key string) ([]byte, error)
	// List returns every key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object under key; deleting a missing key is
	// not an error.
	Delete(key string) error
}

// DirStore is the local-directory reference implementation: keys map to
// files under a root, with "/" separating subdirectories. It is what a
// file:// archive URL opens, and what the fault-injection wrapper and
// the drills build on.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if root == "" {
		return nil, errors.New("archive: store root is required")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("archive: creating store root: %w", err)
	}
	return &DirStore{root: root}, nil
}

// Root returns the store's directory.
func (s *DirStore) Root() string { return s.root }

// path maps a key to its file, rejecting escapes from the root.
func (s *DirStore) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("archive: empty object key")
	}
	clean := filepath.Clean(filepath.FromSlash(key))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("archive: object key %q escapes the store root", key)
	}
	return filepath.Join(s.root, clean), nil
}

// Put writes atomically: temp file in the same directory, then rename,
// so a concurrent Get (or a crash) never observes a torn object.
func (s *DirStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("archive: creating prefix for %q: %w", key, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("archive: writing %q: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("archive: publishing %q: %w", key, err)
	}
	return nil
}

func (s *DirStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	if err != nil {
		return nil, fmt.Errorf("archive: reading %q: %w", key, err)
	}
	return data, nil
}

// List walks the root and returns the sorted keys under prefix.
// In-flight ".tmp" files are invisible, like an object store's
// uncommitted multipart uploads.
func (s *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // raced with a delete; the object is simply gone
			}
			return err
		}
		if d.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, rerr := filepath.Rel(s.root, p)
		if rerr != nil {
			return rerr
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("archive: listing %q: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *DirStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("archive: deleting %q: %w", key, err)
	}
	return nil
}

// PrefixStore returns a view of store with every key prefixed — the
// namespacing seam multi-tenant serving uses to give each stream its
// own corner of one shared archive ("streams/<name>/"). The shipper
// and restore see their usual seg/ and ckpt/ layout; the prefix is
// invisible to them. prefix should end with "/".
func PrefixStore(store ObjectStore, prefix string) ObjectStore {
	if prefix == "" {
		return store
	}
	return &prefixStore{inner: store, prefix: prefix}
}

type prefixStore struct {
	inner  ObjectStore
	prefix string
}

func (s *prefixStore) Put(key string, data []byte) error { return s.inner.Put(s.prefix+key, data) }
func (s *prefixStore) Get(key string) ([]byte, error)    { return s.inner.Get(s.prefix + key) }
func (s *prefixStore) Delete(key string) error           { return s.inner.Delete(s.prefix + key) }

func (s *prefixStore) List(prefix string) ([]string, error) {
	keys, err := s.inner.List(s.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if rest, ok := strings.CutPrefix(k, s.prefix); ok {
			out = append(out, rest)
		}
	}
	return out, nil
}

// OpenStore resolves an archive URL to a store. Today the schemes are
// "file://<path>" and a bare filesystem path; the interface is the seam
// where an S3/GCS client would plug in without touching the shipper or
// restore logic.
func OpenStore(url string) (ObjectStore, error) {
	if url == "" {
		return nil, errors.New("archive: empty archive URL")
	}
	if rest, ok := strings.CutPrefix(url, "file://"); ok {
		if rest == "" {
			return nil, fmt.Errorf("archive: file:// URL %q has no path", url)
		}
		return NewDirStore(rest)
	}
	if i := strings.Index(url, "://"); i >= 0 {
		return nil, fmt.Errorf("archive: unsupported archive scheme %q (only file:// and plain paths)", url[:i])
	}
	return NewDirStore(url)
}
