package archive

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the default error an injected fault surfaces.
var ErrInjected = errors.New("archive: injected fault")

// ErrOutage is what every operation returns while a FaultStore outage
// is switched on (the dead-remote model the drills toggle by signal).
var ErrOutage = errors.New("archive: injected remote outage")

// Fault describes one injected remote failure, mirroring the wal.Fault
// model so both fault harnesses read the same way. The Nth matching
// operation fails; Every makes the failure periodic (a flaky remote
// rather than a single hiccup).
type Fault struct {
	// Op is the operation kind to fail: "put", "get", "list" or
	// "delete".
	Op string
	// After is how many matching operations succeed before the fault
	// first fires (0 fails the first one).
	After int
	// Every, when positive, re-fires the fault on every Every-th
	// matching operation after the first firing — the deterministic
	// flaky-remote mode the disaster drill runs against. Zero fires
	// once (or every time with Sticky).
	Every int
	// Partial, for put faults, is the number of bytes actually stored
	// under the key before the error: a partial upload that leaves a
	// truncated object VISIBLE remotely, which restore must survive.
	// Zero stores nothing.
	Partial int
	// Err is the error to return; nil means ErrInjected — except when
	// Delay is set, where a nil Err makes the fault a pure slowdown.
	Err error
	// Sticky keeps the fault firing on every subsequent match.
	Sticky bool
	// Delay stalls the matching operation before the verdict applies;
	// with a nil Err the operation then succeeds (a slow remote).
	Delay time.Duration
}

// faultState tracks one armed fault's match count.
type faultState struct {
	f     Fault
	count int
	fired bool
}

// FaultStore wraps an ObjectStore and injects deterministic errors,
// latency, partial uploads and whole-remote outages. The shipper and
// restore cannot tell it from a real flaky remote, so every retry,
// lag-reporting and recovery path is drivable without a network.
type FaultStore struct {
	inner ObjectStore

	mu     sync.Mutex
	faults []*faultState
	outage bool
}

// NewFaultStore wraps inner.
func NewFaultStore(inner ObjectStore) *FaultStore {
	return &FaultStore{inner: inner}
}

// Inject arms the given faults, replacing any previous set and
// resetting their counters. Each fault tracks its own operation count,
// so a flaky-put and a flaky-get fault coexist independently.
func (s *FaultStore) Inject(faults ...Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = s.faults[:0]
	for _, f := range faults {
		f := f
		s.faults = append(s.faults, &faultState{f: f})
	}
}

// Clear disarms every fault (the outage switch is separate).
func (s *FaultStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = nil
}

// SetOutage switches the whole-remote outage on or off: while on,
// every operation fails with ErrOutage (after consuming its fault
// counters, so a heal resumes the deterministic schedule).
func (s *FaultStore) SetOutage(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.outage = on
}

// Outage reports the current outage switch.
func (s *FaultStore) Outage() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outage
}

// check consumes one operation of the given kind and returns the
// verdict: whether it fails, the partial-put byte budget, and the
// error. A Delay stalls the caller outside the lock.
func (s *FaultStore) check(op string) (fail bool, partial int, err error) {
	fail, partial, delay, err := s.eval(op)
	if delay > 0 {
		time.Sleep(delay)
	}
	return fail, partial, err
}

func (s *FaultStore) eval(op string) (bool, int, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.faults {
		if st.f.Op != op {
			continue
		}
		n := st.count
		st.count++
		if n < st.f.After {
			continue
		}
		matched := st.f.Sticky || !st.fired
		if !matched && st.f.Every > 0 {
			matched = (n-st.f.After)%st.f.Every == 0
		}
		if !matched {
			continue
		}
		st.fired = true
		if st.f.Err == nil && st.f.Delay > 0 {
			return false, 0, st.f.Delay, nil // pure slowdown
		}
		err := st.f.Err
		if err == nil {
			err = ErrInjected
		}
		return true, st.f.Partial, st.f.Delay, err
	}
	if s.outage {
		return true, 0, 0, ErrOutage
	}
	return false, 0, 0, nil
}

func (s *FaultStore) Put(key string, data []byte) error {
	if fail, partial, err := s.check("put"); fail {
		if partial > 0 {
			// A partial upload: the truncated prefix becomes VISIBLE
			// under the key, modeling a non-atomic remote. Restore must
			// detect and skip it, never trust it.
			n := partial
			if n > len(data) {
				n = len(data)
			}
			_ = s.inner.Put(key, data[:n])
		}
		return err
	}
	return s.inner.Put(key, data)
}

func (s *FaultStore) Get(key string) ([]byte, error) {
	if fail, _, err := s.check("get"); fail {
		return nil, err
	}
	return s.inner.Get(key)
}

func (s *FaultStore) List(prefix string) ([]string, error) {
	if fail, _, err := s.check("list"); fail {
		return nil, err
	}
	return s.inner.List(prefix)
}

func (s *FaultStore) Delete(key string) error {
	if fail, _, err := s.check("delete"); fail {
		return err
	}
	return s.inner.Delete(key)
}
