// Package mrstream implements the MR-Stream baseline (Wan, Ng, Dang,
// Yu, Zhang — ACM TKDD 2009) used for comparison in the paper's
// evaluation: the data space is summarized at multiple resolutions by a
// hierarchy of density grids (each level halves the cell size of the
// level above), cells carry exponentially decayed densities, and the
// offline phase clusters the cells of a chosen resolution by grouping
// neighbouring dense cells. Only non-empty cells are materialized, but
// maintaining every resolution level for every point is exactly what
// makes MR-Stream the slowest of the baselines on high-dimensional
// streams, as the paper observes.
package mrstream

import (
	"fmt"

	"github.com/densitymountain/edmstream/internal/grid"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes MR-Stream.
type Config struct {
	// TopCellSize is the cell side length of the coarsest level.
	// Required.
	TopCellSize float64
	// Levels is the number of resolution levels H (default 3). Level h
	// has cell size TopCellSize / 2^h.
	Levels int
	// ClusterLevel is the resolution level the offline phase clusters
	// at (default Levels-1, the finest level).
	ClusterLevel int
	// Cm is the dense-cell factor relative to the level's average
	// occupied-cell density (default 0.5; see the D-Stream package for
	// why this differs from the published absolute-threshold form).
	Cm float64
	// Decay is the freshness decay model (default a=0.998, λ=1000).
	Decay stream.Decay
	// PruneInterval is the stream-time interval between sporadic-cell
	// removal passes (default 1.0 seconds).
	PruneInterval float64
	// SporadicDensity is the density below which a cell is removed
	// during pruning (default 0.3).
	SporadicDensity float64
}

func (c *Config) defaults() {
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.ClusterLevel == 0 {
		c.ClusterLevel = c.Levels - 1
	}
	if c.Cm == 0 {
		c.Cm = 0.5
	}
	if c.Decay == (stream.Decay{}) {
		c.Decay = stream.Decay{A: 0.998, Lambda: 1000}
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = 1.0
	}
	if c.SporadicDensity == 0 {
		c.SporadicDensity = 0.3
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c
	d.defaults()
	if d.TopCellSize <= 0 {
		return fmt.Errorf("mrstream: top cell size must be positive, got %v", c.TopCellSize)
	}
	if d.Levels < 1 {
		return fmt.Errorf("mrstream: need at least one level, got %d", c.Levels)
	}
	if d.ClusterLevel < 0 || d.ClusterLevel >= d.Levels {
		return fmt.Errorf("mrstream: cluster level %d outside [0,%d)", d.ClusterLevel, d.Levels)
	}
	if d.Cm <= 0 {
		return fmt.Errorf("mrstream: Cm must be positive, got %v", c.Cm)
	}
	return d.Decay.Validate()
}

// MRStream is the algorithm state. It implements stream.Clusterer.
type MRStream struct {
	cfg       Config
	levels    []*grid.Grid
	now       float64
	lastPrune float64
}

// New creates an MR-Stream instance.
func New(cfg Config) (*MRStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	levels := make([]*grid.Grid, cfg.Levels)
	size := cfg.TopCellSize
	for h := 0; h < cfg.Levels; h++ {
		g, err := grid.New(size, cfg.Decay)
		if err != nil {
			return nil, err
		}
		levels[h] = g
		size /= 2
	}
	return &MRStream{cfg: cfg, levels: levels}, nil
}

// Name implements stream.Clusterer.
func (m *MRStream) Name() string { return "MR-Stream" }

// NumCells returns the total number of occupied cells across all
// resolution levels.
func (m *MRStream) NumCells() int {
	total := 0
	for _, g := range m.levels {
		total += g.NumCells()
	}
	return total
}

// Insert implements stream.Clusterer: the point updates the cell that
// contains it at every resolution level (the tree path from the root to
// the finest cell).
func (m *MRStream) Insert(p stream.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.IsText() {
		return fmt.Errorf("mrstream: text points are not supported")
	}
	if p.Time > m.now {
		m.now = p.Time
	}
	for _, g := range m.levels {
		g.Insert(p, m.now)
	}
	if m.now-m.lastPrune >= m.cfg.PruneInterval {
		for _, g := range m.levels {
			g.Prune(m.now, m.cfg.SporadicDensity)
		}
		m.lastPrune = m.now
	}
	return nil
}

// Clusters implements stream.Clusterer: the offline phase clusters the
// configured resolution level by grouping neighbouring dense cells.
func (m *MRStream) Clusters(now float64) []stream.MacroCluster {
	if now > m.now {
		m.now = now
	}
	now = m.now
	g := m.levels[m.cfg.ClusterLevel]
	cells := g.Cells()
	if len(cells) == 0 {
		return nil
	}
	avg := g.TotalDensity(now) / float64(len(cells))
	threshold := m.cfg.Cm * avg

	var dense []*grid.Cell
	for _, c := range cells {
		if c.DensityAt(now, m.cfg.Decay) >= threshold {
			dense = append(dense, c)
		}
	}
	if len(dense) == 0 {
		return nil
	}
	comps := grid.ConnectedComponents(dense)
	byCluster := map[int]*stream.MacroCluster{}
	for i, c := range dense {
		mc, ok := byCluster[comps[i]]
		if !ok {
			mc = &stream.MacroCluster{ID: comps[i] + 1}
			byCluster[comps[i]] = mc
		}
		mc.Centers = append(mc.Centers, g.Center(c))
		mc.Weight += c.DensityAt(now, m.cfg.Decay)
	}
	out := make([]stream.MacroCluster, 0, len(byCluster))
	for _, mc := range byCluster {
		out = append(out, *mc)
	}
	stream.SortClusters(out)
	return out
}
