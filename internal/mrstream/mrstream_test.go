package mrstream

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func twoBlobStream(n int, rate float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}}
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % 2
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			Label:  k,
			Time:   float64(i) / rate,
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{TopCellSize: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{TopCellSize: -1},
		{TopCellSize: 4, Levels: -1, ClusterLevel: 0},
		{TopCellSize: 4, Levels: 2, ClusterLevel: 5},
		{TopCellSize: 4, Cm: -1},
		{TopCellSize: 4, Decay: stream.Decay{A: 3, Lambda: 1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ stream.Clusterer = (*MRStream)(nil)
}

func TestTwoBlobClustering(t *testing.T) {
	m, err := New(Config{TopCellSize: 4, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MR-Stream" {
		t.Errorf("Name = %q", m.Name())
	}
	pts := twoBlobStream(4000, 1000, 1)
	for _, p := range pts {
		if err := m.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumCells() == 0 {
		t.Fatal("no cells were created")
	}
	clusters := m.Clusters(pts[len(pts)-1].Time)
	if len(clusters) != 2 {
		t.Fatalf("found %d clusters, want 2", len(clusters))
	}
	var near0, near10 bool
	for _, c := range clusters {
		for _, center := range c.Centers {
			if distance.Euclid(center, []float64{0, 0}) < 3 {
				near0 = true
			}
			if distance.Euclid(center, []float64{10, 10}) < 3 {
				near10 = true
			}
		}
	}
	if !near0 || !near10 {
		t.Errorf("clusters do not cover both blobs")
	}
}

func TestMultiResolutionCellCounts(t *testing.T) {
	// Finer levels must have at least as many occupied cells as coarser
	// ones on a spread-out stream.
	m, err := New(Config{TopCellSize: 8, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		p := stream.Point{ID: int64(i), Vector: []float64{rng.Float64() * 30, rng.Float64() * 30}, Time: float64(i) / 1000}
		if err := m.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, len(m.levels))
	for h, g := range m.levels {
		counts[h] = g.NumCells()
	}
	for h := 1; h < len(counts); h++ {
		if counts[h] < counts[h-1] {
			t.Errorf("level %d has fewer cells (%d) than coarser level %d (%d)", h, counts[h], h-1, counts[h-1])
		}
	}
}

func TestClusterLevelSelection(t *testing.T) {
	// Clustering at the coarsest level merges the two blobs placed one
	// coarse cell apart, while the finest level separates them.
	fine, err := New(Config{TopCellSize: 16, Levels: 4, ClusterLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	top, err := New(Config{TopCellSize: 16, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := twoBlobStream(4000, 1000, 3)
	for _, p := range pts {
		if err := fine.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := top.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	now := pts[len(pts)-1].Time
	if got := len(fine.Clusters(now)); got != 2 {
		t.Errorf("finest level found %d clusters, want 2", got)
	}
	if got := len(top.Clusters(now)); got > 1 {
		// Blobs at (0,0) and (10,10) land in neighbouring 16-unit
		// cells, so the coarse level cannot separate them.
		t.Errorf("coarsest level found %d clusters, expected them merged", got)
	}
}

func TestInsertErrors(t *testing.T) {
	m, _ := New(Config{TopCellSize: 4})
	if err := m.Insert(stream.Point{}); err == nil {
		t.Error("invalid point accepted")
	}
	if err := m.Insert(stream.Point{Tokens: distance.NewTokenSet("a")}); err == nil {
		t.Error("text point accepted")
	}
}

func TestClustersOnEmptyState(t *testing.T) {
	m, _ := New(Config{TopCellSize: 4})
	if got := m.Clusters(0); got != nil {
		t.Errorf("empty MR-Stream should report no clusters, got %v", got)
	}
}
