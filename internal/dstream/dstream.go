// Package dstream implements the D-Stream baseline (Chen & Tu — KDD
// 2007) used for comparison in the paper's evaluation: the online phase
// maps every point to a density grid cell with exponentially decayed
// density and periodically removes sporadic cells; the offline phase
// classifies cells as dense, transitional or sparse and groups
// neighbouring dense cells (plus attached transitional cells) into
// clusters whenever the clustering is requested.
package dstream

import (
	"fmt"

	"github.com/densitymountain/edmstream/internal/grid"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes D-Stream.
//
// The original paper defines the dense threshold as C_m/(N(1−λ)) where
// N is the number of cells in the whole partitioned space; because this
// implementation never materializes the full cross product (the domain
// is unbounded), the thresholds are expressed relative to the average
// density of the occupied cells instead, so the defaults differ from
// the published C_m = 3, C_l = 0.8.
type Config struct {
	// GridSize is the side length of a density grid cell. Required.
	GridSize float64
	// Cm is the dense-cell factor: a cell is dense when its density is
	// at least Cm times the average occupied-cell density (default 0.5).
	Cm float64
	// Cl is the sparse-cell factor: a cell is sparse when its density
	// is below Cl times the average occupied-cell density (default 0.1).
	Cl float64
	// Decay is the freshness decay model (default a=0.998, λ=1000).
	Decay stream.Decay
	// PruneInterval is the stream-time interval between sporadic-cell
	// removal passes (default 1.0 seconds).
	PruneInterval float64
	// SporadicDensity is the density below which a cell is removed
	// during pruning (default 0.3).
	SporadicDensity float64
}

func (c *Config) defaults() {
	if c.Cm == 0 {
		c.Cm = 0.5
	}
	if c.Cl == 0 {
		c.Cl = 0.1
	}
	if c.Decay == (stream.Decay{}) {
		c.Decay = stream.Decay{A: 0.998, Lambda: 1000}
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = 1.0
	}
	if c.SporadicDensity == 0 {
		c.SporadicDensity = 0.3
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c
	d.defaults()
	if d.GridSize <= 0 {
		return fmt.Errorf("dstream: grid size must be positive, got %v", c.GridSize)
	}
	if d.Cm <= d.Cl {
		return fmt.Errorf("dstream: Cm (%v) must exceed Cl (%v)", d.Cm, d.Cl)
	}
	if d.Cl <= 0 {
		return fmt.Errorf("dstream: Cl must be positive, got %v", d.Cl)
	}
	return d.Decay.Validate()
}

// DStream is the algorithm state. It implements stream.Clusterer.
type DStream struct {
	cfg       Config
	grid      *grid.Grid
	now       float64
	lastPrune float64
}

// New creates a D-Stream instance.
func New(cfg Config) (*DStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	g, err := grid.New(cfg.GridSize, cfg.Decay)
	if err != nil {
		return nil, err
	}
	return &DStream{cfg: cfg, grid: g}, nil
}

// Name implements stream.Clusterer.
func (d *DStream) Name() string { return "D-Stream" }

// NumCells returns the number of occupied grid cells.
func (d *DStream) NumCells() int { return d.grid.NumCells() }

// Insert implements stream.Clusterer.
func (d *DStream) Insert(p stream.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.IsText() {
		return fmt.Errorf("dstream: text points are not supported")
	}
	if p.Time > d.now {
		d.now = p.Time
	}
	d.grid.Insert(p, d.now)
	if d.now-d.lastPrune >= d.cfg.PruneInterval {
		d.grid.Prune(d.now, d.cfg.SporadicDensity)
		d.lastPrune = d.now
	}
	return nil
}

// Clusters implements stream.Clusterer: the offline phase classifies
// cells and groups neighbouring dense cells into clusters.
func (d *DStream) Clusters(now float64) []stream.MacroCluster {
	if now > d.now {
		d.now = now
	}
	now = d.now
	cells := d.grid.Cells()
	if len(cells) == 0 {
		return nil
	}
	avg := d.grid.TotalDensity(now) / float64(len(cells))
	denseThreshold := d.cfg.Cm * avg
	sparseThreshold := d.cfg.Cl * avg

	var dense, transitional []*grid.Cell
	for _, c := range cells {
		density := c.DensityAt(now, d.cfg.Decay)
		switch {
		case density >= denseThreshold:
			dense = append(dense, c)
		case density >= sparseThreshold:
			transitional = append(transitional, c)
		}
	}
	if len(dense) == 0 {
		return nil
	}
	comps := grid.ConnectedComponents(dense)

	byCluster := map[int]*stream.MacroCluster{}
	addCell := func(cluster int, c *grid.Cell) {
		mc, ok := byCluster[cluster]
		if !ok {
			mc = &stream.MacroCluster{ID: cluster + 1}
			byCluster[cluster] = mc
		}
		mc.Centers = append(mc.Centers, d.grid.Center(c))
		mc.Weight += c.DensityAt(now, d.cfg.Decay)
	}
	for i, c := range dense {
		addCell(comps[i], c)
	}
	// Transitional cells join the cluster of any neighbouring dense
	// cell (the D-Stream border rule).
	for _, tc := range transitional {
		for i, dc := range dense {
			if grid.Neighbors(tc, dc) {
				addCell(comps[i], tc)
				break
			}
		}
	}
	out := make([]stream.MacroCluster, 0, len(byCluster))
	for _, mc := range byCluster {
		out = append(out, *mc)
	}
	stream.SortClusters(out)
	return out
}
