package dstream

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func twoBlobStream(n int, rate float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}}
	pts := make([]stream.Point, n)
	for i := range pts {
		k := i % 2
		pts[i] = stream.Point{
			ID:     int64(i),
			Vector: []float64{centers[k][0] + rng.NormFloat64()*0.5, centers[k][1] + rng.NormFloat64()*0.5},
			Label:  k,
			Time:   float64(i) / rate,
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{GridSize: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{GridSize: -1},
		{GridSize: 1, Cm: 0.5, Cl: 0.8},
		{GridSize: 1, Cl: -1, Cm: 2},
		{GridSize: 1, Decay: stream.Decay{A: 2, Lambda: 1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ stream.Clusterer = (*DStream)(nil)
}

func TestTwoBlobClustering(t *testing.T) {
	d, err := New(Config{GridSize: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "D-Stream" {
		t.Errorf("Name = %q", d.Name())
	}
	pts := twoBlobStream(4000, 1000, 1)
	for _, p := range pts {
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumCells() == 0 {
		t.Fatal("no grid cells were created")
	}
	clusters := d.Clusters(pts[len(pts)-1].Time)
	if len(clusters) != 2 {
		t.Fatalf("found %d clusters, want 2", len(clusters))
	}
	// Each cluster sits near one blob.
	var near0, near10 bool
	for _, c := range clusters {
		for _, center := range c.Centers {
			if distance.Euclid(center, []float64{0, 0}) < 3 {
				near0 = true
			}
			if distance.Euclid(center, []float64{10, 10}) < 3 {
				near10 = true
			}
		}
	}
	if !near0 || !near10 {
		t.Errorf("clusters do not cover both blobs")
	}
}

func TestSporadicCellsPruned(t *testing.T) {
	d, err := New(Config{GridSize: 1.0, SporadicDensity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rate := 1000.0
	// Scatter noise over a wide area plus one dense blob; the noise
	// cells must be pruned over time rather than accumulating forever.
	for i := 0; i < 6000; i++ {
		ts := float64(i) / rate
		var vec []float64
		if i%10 == 0 {
			vec = []float64{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
		} else {
			vec = []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		}
		if err := d.Insert(stream.Point{ID: int64(i), Vector: vec, Time: ts}); err != nil {
			t.Fatal(err)
		}
	}
	// Noise cells received ~1 point each; with pruning they cannot all
	// still be around (600 noise points were inserted).
	if d.NumCells() > 400 {
		t.Errorf("sporadic cells not pruned: %d cells", d.NumCells())
	}
	clusters := d.Clusters(6.0)
	if len(clusters) != 1 {
		t.Errorf("expected a single dense cluster, got %d", len(clusters))
	}
}

func TestInsertErrors(t *testing.T) {
	d, _ := New(Config{GridSize: 1})
	if err := d.Insert(stream.Point{}); err == nil {
		t.Error("invalid point accepted")
	}
	if err := d.Insert(stream.Point{Tokens: distance.NewTokenSet("a")}); err == nil {
		t.Error("text point accepted")
	}
}

func TestClustersOnEmptyState(t *testing.T) {
	d, _ := New(Config{GridSize: 1})
	if got := d.Clusters(0); got != nil {
		t.Errorf("empty D-Stream should report no clusters, got %v", got)
	}
}
