// Package distance provides the distance metrics used throughout the
// EDMStream reproduction: Euclidean (the paper's default, Sec. 2.1
// footnote 2), squared Euclidean, Manhattan, Cosine and Chebyshev for
// vector data, plus Jaccard distance over token sets for the news
// stream use case (Sec. 6.2.2).
//
// All vector metrics operate on []float64 of equal length and are
// pure functions without allocation, so they can be called on the hot
// path of every stream algorithm in this repository.
package distance

import (
	"errors"
	"fmt"
	"math"
)

// Metric is a distance function over real vectors. Implementations
// must be symmetric, non-negative and return zero for identical
// inputs. Implementations may assume len(a) == len(b); callers are
// responsible for validating dimensions (see CheckDims). Passing
// mismatched lengths is a caller bug: every implementation iterates
// the first vector, so a longer a panics with an index error while a
// longer b is silently truncated — validate with CheckDims when the
// lengths are not known to agree.
type Metric interface {
	// Distance returns the distance between a and b.
	Distance(a, b []float64) float64
	// Name returns a short, stable identifier (e.g. "euclidean").
	Name() string
}

// ErrDimensionMismatch is returned by CheckDims when two vectors have
// different lengths.
var ErrDimensionMismatch = errors.New("distance: dimension mismatch")

// CheckDims validates that a and b have the same, non-zero length.
func CheckDims(a, b []float64) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("%w: empty vector (len(a)=%d, len(b)=%d)", ErrDimensionMismatch, len(a), len(b))
	}
	if len(a) != len(b) {
		return fmt.Errorf("%w: len(a)=%d, len(b)=%d", ErrDimensionMismatch, len(a), len(b))
	}
	return nil
}

// Euclidean is the standard L2 metric. It is the paper's default
// distance for all numeric datasets.
type Euclidean struct{}

// Distance returns the L2 distance between a and b.
func (Euclidean) Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclidean{}.Distance(a, b))
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// SquaredEuclidean is the squared L2 metric. It preserves the ordering
// of Euclidean and avoids the square root, which makes it the metric
// of choice for nearest-neighbour searches on the hot path.
type SquaredEuclidean struct{}

// Distance returns the squared L2 distance between a and b.
func (SquaredEuclidean) Distance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Name implements Metric.
func (SquaredEuclidean) Name() string { return "sqeuclidean" }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between a and b.
func (Manhattan) Distance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between a and b. Like the other
// vector metrics it propagates NaN: a NaN coordinate in either input
// yields a NaN distance (a plain running-max would silently drop NaN
// differences, since every comparison against NaN is false).
func (Chebyshev) Distance(a, b []float64) float64 {
	var max float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d != d { // NaN
			return d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Cosine is the cosine distance 1 - cos(a, b). Zero vectors are
// defined to be at distance 1 from everything (including each other)
// so the metric never returns NaN.
type Cosine struct{}

// Distance returns the cosine distance between a and b.
func (Cosine) Distance(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	// Clamp to [-1, 1] to guard against floating point drift.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// ByName returns the vector metric registered under name. Supported
// names are "euclidean", "sqeuclidean", "manhattan", "chebyshev" and
// "cosine".
func ByName(name string) (Metric, error) {
	switch name {
	case "euclidean", "l2", "":
		return Euclidean{}, nil
	case "sqeuclidean":
		return SquaredEuclidean{}, nil
	case "manhattan", "l1":
		return Manhattan{}, nil
	case "chebyshev", "linf":
		return Chebyshev{}, nil
	case "cosine":
		return Cosine{}, nil
	default:
		return nil, fmt.Errorf("distance: unknown metric %q", name)
	}
}

// Euclid returns the L2 distance between a and b. It is a convenience
// wrapper used across packages where constructing a Metric value is
// overkill.
func Euclid(a, b []float64) float64 { return Euclidean{}.Distance(a, b) }

// SqEuclid returns the squared L2 distance between a and b.
func SqEuclid(a, b []float64) float64 { return SquaredEuclidean{}.Distance(a, b) }
