package distance

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEuclidean(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"zero", []float64{0, 0}, []float64{0, 0}, 0},
		{"unit-x", []float64{0, 0}, []float64{1, 0}, 1},
		{"3-4-5", []float64{0, 0}, []float64{3, 4}, 5},
		{"negative", []float64{-1, -1}, []float64{2, 3}, 5},
		{"1d", []float64{2}, []float64{7}, 5},
		{"identical", []float64{1.5, 2.5, 3.5}, []float64{1.5, 2.5, 3.5}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Euclid(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Euclid(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestSquaredEuclidean(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if got := SqEuclid(a, b); !almostEqual(got, 25) {
		t.Errorf("SqEuclid = %v, want 25", got)
	}
	// Squared distance must equal Euclidean squared.
	if got, want := SqEuclid(a, b), Euclid(a, b)*Euclid(a, b); !almostEqual(got, want) {
		t.Errorf("SqEuclid = %v, want Euclid^2 = %v", got, want)
	}
}

func TestManhattan(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"basic", []float64{1, 2}, []float64{4, -2}, 7},
		{"zero-vectors", []float64{0, 0, 0}, []float64{0, 0, 0}, 0},
		{"zero-vs-point", []float64{0, 0}, []float64{-3, 4}, 7},
		{"identical", []float64{1.5, -2.5}, []float64{1.5, -2.5}, 0},
		{"1d", []float64{-2}, []float64{5}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := (Manhattan{}).Distance(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Manhattan(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestChebyshev(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"basic", []float64{1, 2, 3}, []float64{4, 0, 3}, 3},
		{"zero-vectors", []float64{0, 0}, []float64{0, 0}, 0},
		{"zero-vs-point", []float64{0, 0}, []float64{-2, 1}, 2},
		{"identical", []float64{7, -7}, []float64{7, -7}, 0},
		{"max-on-last-axis", []float64{0, 0, 0}, []float64{1, 2, 9}, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := (Chebyshev{}).Distance(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Chebyshev(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// TestNaNPropagation pins the NaN contract: a NaN coordinate in either
// input makes every vector metric return NaN rather than a silently
// finite distance. Chebyshev needs an explicit check for this (a
// running max drops NaN differences because every comparison against
// NaN is false); the others propagate through arithmetic.
func TestNaNPropagation(t *testing.T) {
	nan := math.NaN()
	vecs := [][2][]float64{
		{{nan, 0}, {1, 2}},
		{{1, 2}, {nan, 0}},
		{{0, nan}, {1, 1}},
		{{nan}, {nan}},
	}
	// Cosine's zero-vector rule takes precedence by design: a zero
	// vector is at distance 1 from everything, NaN partner included.
	if got := (Cosine{}).Distance([]float64{0, nan}, []float64{0, 0}); got != 1 {
		t.Errorf("Cosine(NaN vector, zero vector) = %v, want 1 (zero-vector rule)", got)
	}
	for _, m := range []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, Cosine{}} {
		for _, v := range vecs {
			if got := m.Distance(v[0], v[1]); !math.IsNaN(got) {
				t.Errorf("%s(%v, %v) = %v, want NaN", m.Name(), v[0], v[1], got)
			}
		}
	}
}

// TestMismatchedLengthContract pins the documented caller contract for
// unequal-length vectors: every metric iterates its first argument, so
// a longer a panics (index out of range on b) while a longer b is
// silently truncated to len(a). CheckDims is the guard callers use
// when lengths are not known to agree.
func TestMismatchedLengthContract(t *testing.T) {
	long := []float64{1, 2, 3}
	short := []float64{1, 2}
	for _, m := range []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, Cosine{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(len 3, len 2) did not panic", m.Name())
				}
			}()
			m.Distance(long, short)
		}()
		// The symmetric call truncates: it must equal the distance over
		// the common prefix and must not panic.
		got := m.Distance(short, long)
		want := m.Distance(short, long[:len(short)])
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("%s(len 2, len 3) = %v, want prefix distance %v", m.Name(), got, want)
		}
	}
	if err := CheckDims(long, short); err == nil {
		t.Error("CheckDims(len 3, len 2): expected error")
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"parallel", []float64{1, 0}, []float64{5, 0}, 0},
		{"orthogonal", []float64{1, 0}, []float64{0, 3}, 1},
		{"opposite", []float64{1, 0}, []float64{-2, 0}, 2},
		{"zero-vector", []float64{0, 0}, []float64{1, 1}, 1},
		{"both-zero", []float64{0, 0}, []float64{0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := (Cosine{}).Distance(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Cosine(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims([]float64{1}, []float64{1}); err != nil {
		t.Errorf("CheckDims equal lengths: unexpected error %v", err)
	}
	if err := CheckDims([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("CheckDims mismatched lengths: expected error")
	}
	if err := CheckDims(nil, []float64{1}); err == nil {
		t.Error("CheckDims empty vector: expected error")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"euclidean", "l2", "", "sqeuclidean", "manhattan", "l1", "chebyshev", "linf", "cosine"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): unexpected error %v", name, err)
			continue
		}
		if m == nil {
			t.Errorf("ByName(%q): nil metric", name)
		}
	}
	if _, err := ByName("no-such-metric"); err == nil {
		t.Error("ByName(unknown): expected error")
	}
}

func TestMetricNames(t *testing.T) {
	metrics := []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, Cosine{}}
	seen := map[string]bool{}
	for _, m := range metrics {
		name := m.Name()
		if name == "" {
			t.Errorf("%T has empty name", m)
		}
		if seen[name] {
			t.Errorf("duplicate metric name %q", name)
		}
		seen[name] = true
	}
}

// bounded maps an arbitrary float64 into a finite range so quick
// generators do not overflow the metrics to +Inf.
func bounded(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func boundedVec(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, x := range a {
		out[i] = bounded(x)
	}
	return out
}

// Property: all vector metrics are symmetric, non-negative, and zero
// on identical inputs.
func TestMetricPropertiesQuick(t *testing.T) {
	metrics := []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, Cosine{}}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			prop := func(a, b [8]float64) bool {
				av, bv := boundedVec(a[:]), boundedVec(b[:])
				dab := m.Distance(av, bv)
				dba := m.Distance(bv, av)
				if math.IsNaN(dab) || dab < 0 {
					return false
				}
				if !almostEqual(dab, dba) {
					return false
				}
				// identity of indiscernibles is not required for cosine
				// with zero vectors, but d(a,a) must be ~0 for non-zero a.
				nonZero := false
				for _, x := range av {
					if x != 0 {
						nonZero = true
						break
					}
				}
				if nonZero && m.Distance(av, av) > 1e-9 {
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: Euclidean satisfies the triangle inequality, which is the
// premise of the paper's Theorem 2 (triangle inequality filter).
func TestEuclideanTriangleInequalityQuick(t *testing.T) {
	prop := func(a, b, c [5]float64) bool {
		av, bv, cv := boundedVec(a[:]), boundedVec(b[:]), boundedVec(c[:])
		ab := Euclid(av, bv)
		bc := Euclid(bv, cv)
		ac := Euclid(av, cv)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: |d(p,a) - d(p,b)| <= d(a,b), the exact inequality exploited
// by Theorem 2.
func TestReverseTriangleInequalityQuick(t *testing.T) {
	prop := func(p, a, b [4]float64) bool {
		pv, av, bv := boundedVec(p[:]), boundedVec(a[:]), boundedVec(b[:])
		lhs := math.Abs(Euclid(pv, av) - Euclid(pv, bv))
		return lhs <= Euclid(av, bv)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
