package distance

// TokenSet is a set of string tokens, used for text data such as the
// news stream of Sec. 6.2.2. The zero value is an empty set.
type TokenSet map[string]struct{}

// NewTokenSet builds a TokenSet from a list of tokens, dropping
// duplicates and empty strings.
func NewTokenSet(tokens ...string) TokenSet {
	s := make(TokenSet, len(tokens))
	for _, t := range tokens {
		if t == "" {
			continue
		}
		s[t] = struct{}{}
	}
	return s
}

// Add inserts token into the set. Empty tokens are ignored.
func (s TokenSet) Add(token string) {
	if token == "" {
		return
	}
	s[token] = struct{}{}
}

// Contains reports whether token is in the set.
func (s TokenSet) Contains(token string) bool {
	_, ok := s[token]
	return ok
}

// Len returns the number of tokens in the set.
func (s TokenSet) Len() int { return len(s) }

// Tokens returns the tokens in the set in unspecified order.
func (s TokenSet) Tokens() []string {
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	return out
}

// Clone returns a deep copy of the set.
func (s TokenSet) Clone() TokenSet {
	c := make(TokenSet, len(s))
	for t := range s {
		c[t] = struct{}{}
	}
	return c
}

// Union returns a new set containing every token of s and t.
func (s TokenSet) Union(t TokenSet) TokenSet {
	u := s.Clone()
	for tok := range t {
		u[tok] = struct{}{}
	}
	return u
}

// IntersectionSize returns |s ∩ t| without allocating.
func (s TokenSet) IntersectionSize(t TokenSet) int {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	n := 0
	for tok := range small {
		if _, ok := large[tok]; ok {
			n++
		}
	}
	return n
}

// Jaccard returns the Jaccard distance 1 - |a ∩ b| / |a ∪ b| between
// two token sets. Two empty sets are at distance 0; an empty set is at
// distance 1 from any non-empty set.
func Jaccard(a, b TokenSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := a.IntersectionSize(b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// JaccardSimilarity returns |a ∩ b| / |a ∪ b|.
func JaccardSimilarity(a, b TokenSet) float64 { return 1 - Jaccard(a, b) }
