package distance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTokenSet(t *testing.T) {
	s := NewTokenSet("a", "b", "a", "", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates and empties dropped)", s.Len())
	}
	for _, tok := range []string{"a", "b", "c"} {
		if !s.Contains(tok) {
			t.Errorf("missing token %q", tok)
		}
	}
	if s.Contains("") {
		t.Error("empty token should not be stored")
	}
}

func TestTokenSetOps(t *testing.T) {
	a := NewTokenSet("google", "wearable", "sdk")
	b := NewTokenSet("google", "smartwatch")

	if got := a.IntersectionSize(b); got != 1 {
		t.Errorf("IntersectionSize = %d, want 1", got)
	}
	u := a.Union(b)
	if u.Len() != 4 {
		t.Errorf("Union size = %d, want 4", u.Len())
	}
	// Union must not mutate the receivers.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("Union mutated its inputs")
	}

	c := a.Clone()
	c.Add("nokia")
	if a.Contains("nokia") {
		t.Error("Clone is not independent of the original")
	}
	if got := len(c.Tokens()); got != 4 {
		t.Errorf("Tokens length = %d, want 4", got)
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b TokenSet
		want float64
	}{
		{"identical", NewTokenSet("a", "b"), NewTokenSet("a", "b"), 0},
		{"disjoint", NewTokenSet("a", "b"), NewTokenSet("c", "d"), 1},
		{"half", NewTokenSet("a", "b"), NewTokenSet("b", "c"), 1 - 1.0/3.0},
		{"both-empty", NewTokenSet(), NewTokenSet(), 0},
		{"one-empty", NewTokenSet(), NewTokenSet("a"), 1},
		{"subset", NewTokenSet("a"), NewTokenSet("a", "b", "c", "d"), 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Jaccard(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Jaccard = %v, want %v", got, tt.want)
			}
			if got := JaccardSimilarity(tt.a, tt.b); !almostEqual(got, 1-tt.want) {
				t.Errorf("JaccardSimilarity = %v, want %v", got, 1-tt.want)
			}
		})
	}
}

// Property: Jaccard distance is symmetric, bounded in [0,1], and zero
// on identical sets.
func TestJaccardPropertiesQuick(t *testing.T) {
	build := func(words []uint8) TokenSet {
		s := NewTokenSet()
		for _, w := range words {
			s.Add(string(rune('a' + w%20)))
		}
		return s
	}
	prop := func(aw, bw []uint8) bool {
		a, b := build(aw), build(bw)
		d := Jaccard(a, b)
		if math.IsNaN(d) || d < 0 || d > 1 {
			return false
		}
		if !almostEqual(d, Jaccard(b, a)) {
			return false
		}
		if Jaccard(a, a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
