package tenant

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsWokenHandle checks the basic wake → run path.
func TestPoolRunsWokenHandle(t *testing.T) {
	p := NewPool(2)
	var runs atomic.Int64
	h := p.NewHandle(func() bool {
		runs.Add(1)
		return false
	})
	p.Start()
	defer p.Stop()
	h.Wake()
	waitFor(t, func() bool { return runs.Load() == 1 })
}

// TestPoolSingleOwnership: a handle's run function must never execute
// concurrently with itself, no matter how many workers and wakes.
func TestPoolSingleOwnership(t *testing.T) {
	p := NewPool(8)
	var inside atomic.Int64
	var runs atomic.Int64
	var violations atomic.Int64
	h := p.NewHandle(func() bool {
		if inside.Add(1) != 1 {
			violations.Add(1)
		}
		time.Sleep(50 * time.Microsecond)
		inside.Add(-1)
		runs.Add(1)
		return false
	})
	p.Start()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.Wake()
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return p.QueueDepth() == 0 })
	p.Stop()
	if violations.Load() != 0 {
		t.Fatalf("run executed concurrently with itself %d times", violations.Load())
	}
	if runs.Load() == 0 {
		t.Fatal("handle never ran")
	}
}

// TestPoolRearm: a wake landing while the handle is running must cause
// one more pass even when run reports no more work — otherwise work
// enqueued between run's final check and its return would strand.
func TestPoolRearm(t *testing.T) {
	p := NewPool(1)
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	h := p.NewHandle(func() bool {
		runs.Add(1)
		if first {
			first = false
			entered <- struct{}{}
			<-release
		}
		return false
	})
	p.Start()
	defer p.Stop()
	h.Wake()
	<-entered
	h.Wake() // lands while running → rearm
	close(release)
	waitFor(t, func() bool { return runs.Load() == 2 })
}

// TestPoolFairness: a hot handle that always has more work must not
// starve a second handle waiting in the queue.
func TestPoolFairness(t *testing.T) {
	p := NewPool(1) // single worker makes starvation possible
	var hotRuns, coldRan atomic.Int64
	var keepHot atomic.Bool
	keepHot.Store(true)
	hot := p.NewHandle(func() bool {
		hotRuns.Add(1)
		return keepHot.Load() // claims more work until the test stands it down
	})
	cold := p.NewHandle(func() bool {
		coldRan.Add(1)
		return false
	})
	p.Start()
	hot.Wake()
	waitFor(t, func() bool { return hotRuns.Load() > 0 })
	cold.Wake()
	// The hot handle re-queues at the tail, so cold must run within one
	// round despite hot never going idle.
	waitFor(t, func() bool { return coldRan.Load() == 1 })
	keepHot.Store(false) // Stop drains the queue; hot must stand down
	p.Stop()
}

// TestPoolTryRetire: retire succeeds only on an idle handle, and a
// retired handle never runs again.
func TestPoolTryRetire(t *testing.T) {
	p := NewPool(1)
	var runs atomic.Int64
	blocked := make(chan struct{})
	release := make(chan struct{})
	h := p.NewHandle(func() bool {
		runs.Add(1)
		blocked <- struct{}{}
		<-release
		return false
	})
	p.Start()
	defer p.Stop()

	h.Wake()
	<-blocked // running now
	if p.TryRetire(h) {
		t.Fatal("TryRetire succeeded on a running handle")
	}
	close(release)
	waitFor(t, func() bool { return runs.Load() == 1 && p.QueueDepth() == 0 })
	// Let the worker finish the post-run bookkeeping before retiring.
	waitFor(t, func() bool { return p.TryRetire(h) })
	h.Wake() // must be a no-op
	time.Sleep(20 * time.Millisecond)
	if got := runs.Load(); got != 1 {
		t.Fatalf("retired handle ran again: %d runs", got)
	}
}

// TestPoolStopDrainsQueue: handles queued before Stop still execute.
func TestPoolStopDrainsQueue(t *testing.T) {
	p := NewPool(1)
	var runs atomic.Int64
	handles := make([]*Handle, 16)
	for i := range handles {
		handles[i] = p.NewHandle(func() bool {
			runs.Add(1)
			return false
		})
	}
	for _, h := range handles {
		h.Wake()
	}
	p.Start()
	p.Stop()
	if got := runs.Load(); got != int64(len(handles)) {
		t.Fatalf("Stop drained %d of %d queued handles", got, len(handles))
	}
}

// TestPoolStopWithoutStart must not hang.
func TestPoolStopWithoutStart(t *testing.T) {
	p := NewPool(4)
	h := p.NewHandle(func() bool { return false })
	h.Wake()
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung on a never-started pool")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
