// Package tenant implements the multi-tenant serving substrate of
// edmserved: a registry of named streams with lazy creation, a global
// memory budget enforced by checkpoint-backed LRU eviction of idle
// streams, and a bounded writer pool that multiplexes every stream's
// single-writer ingest path over a fixed number of goroutines with
// round-robin fairness.
//
// The package is deliberately mechanism-only: it knows nothing about
// engines, WALs or HTTP. The server plugs in a factory that builds a
// stream, an evictor that checkpoints and releases one, and a runner
// that commits one coalesced batch. That keeps the lifecycle state
// machine (create → live → evicting → evicted → revive) testable in
// isolation from everything it orchestrates.
package tenant

import (
	"sync"
)

// handleState is a Handle's scheduling state, guarded by the pool
// mutex. The invariant the state machine protects: a handle's run
// function is executed by at most one worker at a time, so every
// stream keeps exactly the single-writer semantics it had when it
// owned a dedicated goroutine.
type handleState int

const (
	// handleIdle: not queued, not running. Wake moves it to queued.
	handleIdle handleState = iota
	// handleQueued: sitting in the pool's FIFO ready queue.
	handleQueued
	// handleRunning: a worker is inside run. Wake moves it to rearm.
	handleRunning
	// handleRearm: running, and a wake arrived meanwhile — the worker
	// requeues it after run returns even if run reported no more work
	// (the wake may have enqueued work run's final check missed).
	handleRearm
	// handleRetired: permanently removed (evicted stream). Wakes are
	// no-ops; the handle never runs again.
	handleRetired
)

// Handle is one stream's seat in the writer pool. Create it with
// Pool.NewHandle, schedule work with Wake, and permanently remove it
// with Pool.TryRetire when the stream is evicted.
type Handle struct {
	pool  *Pool
	run   func() bool
	state handleState // guarded by pool.mu
}

// Wake schedules the handle's run function: an idle handle joins the
// tail of the ready queue (round-robin fairness — it runs after every
// stream already waiting), a running handle is re-armed so it runs
// again after the current pass, and a queued or retired handle is left
// alone. Safe from any goroutine; never blocks.
func (h *Handle) Wake() {
	p := h.pool
	p.mu.Lock()
	switch h.state {
	case handleIdle:
		h.state = handleQueued
		p.queue = append(p.queue, h)
		p.cond.Signal()
	case handleRunning:
		h.state = handleRearm
	}
	p.mu.Unlock()
}

// Pool is the bounded writer pool: Workers goroutines executing handle
// run functions from a FIFO ready queue. After each pass a handle with
// more work re-joins the TAIL of the queue, so a hot stream with a
// never-empty queue gets exactly one batch per round — it cannot
// starve the streams behind it.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Handle
	stopped bool
	started bool
	workers int
	wg      sync.WaitGroup

	// depth mirrors len(queue) for telemetry without taking the lock
	// twice; read through QueueDepth.
	depth int
}

// NewPool builds a pool that will run workers goroutines once Start is
// called. workers must be at least 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// NewHandle registers a run function with the pool. run is called with
// single-ownership (never concurrently with itself) and should perform
// one bounded unit of work — gather and commit one batch — returning
// true when more work is already queued behind it. Returning true
// re-queues the handle at the tail; long work must be chunked this way
// or one stream would hold a worker hostage.
func (p *Pool) NewHandle(run func() bool) *Handle {
	return &Handle{pool: p, run: run}
}

// Start launches the worker goroutines. Calling it twice is an error
// in the caller; the second call is ignored.
func (p *Pool) Start() {
	p.mu.Lock()
	if p.started || p.stopped {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Started reports whether Start has run (the server's shutdown path
// must not wait on drains no worker will ever perform).
func (p *Pool) Started() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the current ready-queue length (telemetry).
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

// Stop drains the ready queue and stops the workers: every handle
// already queued (or re-queued by its own run) is still executed, then
// the workers exit and Stop returns. Callers that need specific
// streams drained must arrange the drains (wake the handles) before
// calling Stop.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.cond.Broadcast()
	started := p.started
	p.mu.Unlock()
	if started {
		p.wg.Wait()
	}
}

// TryRetire atomically retires an IDLE handle: if the handle is
// neither queued nor running, it is marked retired — subsequent Wakes
// are no-ops and the run function is guaranteed to never execute again
// — and TryRetire returns true. A handle with work in flight (queued,
// running or re-armed) is left untouched and TryRetire returns false.
// This is the evictor's exclusivity gate: a true return means the
// caller owns the stream's write path outright.
func (p *Pool) TryRetire(h *Handle) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h.state != handleIdle {
		return false
	}
	h.state = handleRetired
	return true
}

// worker is one pool goroutine: pop the queue head, run it with
// single-ownership, re-queue at the tail when it has more work.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.stopped {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.stopped {
			p.mu.Unlock()
			return
		}
		h := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.depth = len(p.queue)
		h.state = handleRunning
		p.mu.Unlock()

		more := h.run()

		p.mu.Lock()
		rearm := h.state == handleRearm
		if h.state == handleRunning || h.state == handleRearm {
			if more || rearm {
				h.state = handleQueued
				p.queue = append(p.queue, h)
				p.depth = len(p.queue)
				p.cond.Signal()
			} else {
				h.state = handleIdle
			}
		}
		p.mu.Unlock()
	}
}
