package tenant

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeStream is a Stream with a controllable footprint and an
// eviction ledger.
type fakeStream struct {
	name     string
	bytes    atomic.Int64
	evicted  atomic.Int64
	evictErr error
	mu       sync.Mutex
	writes   int // guarded by mu; simulates the single-writer state
}

func (f *fakeStream) MemoryBytes() int64 { return f.bytes.Load() }
func (f *fakeStream) Evict() error {
	if f.evictErr != nil {
		return f.evictErr
	}
	f.evicted.Add(1)
	return nil
}

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(cfg Config[*fakeStream]) (*Registry[*fakeStream], *atomic.Int64) {
	var built atomic.Int64
	if cfg.Factory == nil {
		cfg.Factory = func(name string) (*fakeStream, error) {
			built.Add(1)
			s := &fakeStream{name: name}
			s.bytes.Store(1 << 20)
			return s, nil
		}
	}
	return NewRegistry(cfg), &built
}

func TestValidateName(t *testing.T) {
	valid := []string{"default", "a", "tenant-1", "snake_case", "0numeric", "x-_-x"}
	for _, name := range valid {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{"", "streams", "UPPER", "has space", "café", "-leading", "_leading", "dot.dot", "a/b",
		"this-name-is-way-way-way-way-way-way-way-way-way-too-long-to-be-a-stream"}
	for _, name := range invalid {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", name)
		}
	}
}

func TestRegistryLazyCreateAndReuse(t *testing.T) {
	r, built := newTestRegistry(Config[*fakeStream]{})
	s1, rel1, err := r.Acquire("alpha", true)
	if err != nil {
		t.Fatal(err)
	}
	s2, rel2, err := r.Acquire("alpha", true)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("second Acquire built a different stream")
	}
	if built.Load() != 1 {
		t.Fatalf("factory ran %d times, want 1", built.Load())
	}
	rel1()
	rel2()
	st := r.Stats()
	if st.Live != 1 || st.Registered != 1 {
		t.Fatalf("stats = %+v, want 1 live / 1 registered", st)
	}
}

func TestRegistryUnknownStream(t *testing.T) {
	r, _ := newTestRegistry(Config[*fakeStream]{})
	_, _, err := r.Acquire("ghost", false)
	if !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("err = %v, want ErrUnknownStream", err)
	}
}

func TestRegistryMaxStreams(t *testing.T) {
	r, _ := newTestRegistry(Config[*fakeStream]{MaxStreams: 2})
	for _, name := range []string{"a", "b"} {
		_, rel, err := r.Acquire(name, true)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	_, _, err := r.Acquire("c", true)
	if !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("err = %v, want ErrTooManyStreams", err)
	}
	// Existing names still acquire fine at the cap.
	_, rel, err := r.Acquire("a", true)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestRegistryFactoryFailureUnregistersNewName(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	r := NewRegistry(Config[*fakeStream]{Factory: func(name string) (*fakeStream, error) {
		if fail {
			return nil, boom
		}
		return &fakeStream{name: name}, nil
	}})
	if _, _, err := r.Acquire("a", true); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := r.Stats(); st.Registered != 0 {
		t.Fatalf("failed first build left the name registered: %+v", st)
	}
	fail = false
	_, rel, err := r.Acquire("a", true)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestRegistryBudgetEvictsLRU(t *testing.T) {
	clock := newFakeClock()
	var evictedNames []string
	var mu sync.Mutex
	r, _ := newTestRegistry(Config[*fakeStream]{
		MemoryBudget: 2 << 20, // room for two 1 MiB streams
		Evictable:    true,
		Clock:        clock.Now,
		OnEvict: func(name string) {
			mu.Lock()
			evictedNames = append(evictedNames, name)
			mu.Unlock()
		},
	})
	for _, name := range []string{"old", "mid", "new"} {
		_, rel, err := r.Acquire(name, true)
		if err != nil {
			t.Fatal(err)
		}
		rel()
		clock.Advance(time.Minute)
	}
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d streams, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evictedNames) != 1 || evictedNames[0] != "old" {
		t.Fatalf("evicted %v, want [old] (LRU)", evictedNames)
	}
	st := r.Stats()
	if st.Live != 2 || st.Registered != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 live / 3 registered / 1 eviction", st)
	}
}

func TestRegistryPinnedStreamNotEvicted(t *testing.T) {
	clock := newFakeClock()
	r, _ := newTestRegistry(Config[*fakeStream]{
		MemoryBudget: 1, // everything is over budget
		Evictable:    true,
		Clock:        clock.Now,
	})
	_, rel, err := r.Acquire("pinned", true)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted a pinned stream (%d evictions)", n)
	}
	rel()
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep after release evicted %d, want 1", n)
	}
}

func TestRegistryCanEvictGate(t *testing.T) {
	clock := newFakeClock()
	allow := atomic.Bool{}
	r, _ := newTestRegistry(Config[*fakeStream]{
		MemoryBudget: 1,
		Evictable:    true,
		Clock:        clock.Now,
		CanEvict:     func(*fakeStream) bool { return allow.Load() },
	})
	_, rel, _ := r.Acquire("busy", true)
	rel()
	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep bypassed the CanEvict gate (%d evictions)", n)
	}
	allow.Store(true)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep with open gate evicted %d, want 1", n)
	}
}

func TestRegistryIdleEviction(t *testing.T) {
	clock := newFakeClock()
	r, _ := newTestRegistry(Config[*fakeStream]{
		EvictIdleAfter: time.Hour,
		Evictable:      true,
		Clock:          clock.Now,
	})
	_, rel, _ := r.Acquire("sleepy", true)
	rel()
	clock.Advance(30 * time.Minute)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("evicted a stream idle for only 30m (%d)", n)
	}
	clock.Advance(31 * time.Minute)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("did not evict a stream idle past the threshold (%d)", n)
	}
}

func TestRegistryReviveAfterEviction(t *testing.T) {
	clock := newFakeClock()
	r, built := newTestRegistry(Config[*fakeStream]{
		EvictIdleAfter: time.Minute,
		Evictable:      true,
		Clock:          clock.Now,
	})
	s1, rel, _ := r.Acquire("phoenix", true)
	rel()
	clock.Advance(2 * time.Minute)
	if n := r.Sweep(); n != 1 {
		t.Fatal("eviction did not happen")
	}
	if s1.evicted.Load() != 1 {
		t.Fatal("Evict was not called on the stream")
	}
	// Revival: Acquire with create=false must work — the name is known.
	s2, rel2, err := r.Acquire("phoenix", false)
	if err != nil {
		t.Fatalf("revival failed: %v", err)
	}
	rel2()
	if s2 == s1 {
		t.Fatal("revival returned the evicted instance")
	}
	if built.Load() != 2 {
		t.Fatalf("factory ran %d times, want 2 (create + revive)", built.Load())
	}
	st := r.Stats()
	if st.Revivals != 1 {
		t.Fatalf("stats = %+v, want 1 revival", st)
	}
}

func TestRegistryEvictFailureKeepsStreamLive(t *testing.T) {
	clock := newFakeClock()
	r := NewRegistry(Config[*fakeStream]{
		Factory: func(name string) (*fakeStream, error) {
			return &fakeStream{name: name, evictErr: errors.New("disk full")}, nil
		},
		EvictIdleAfter: time.Minute,
		Evictable:      true,
		Clock:          clock.Now,
	})
	s, rel, _ := r.Acquire("stuck", true)
	rel()
	clock.Advance(2 * time.Minute)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("failed eviction counted as success (%d)", n)
	}
	s2, rel2, err := r.Acquire("stuck", false)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if s2 != s {
		t.Fatal("failed eviction dropped the live stream")
	}
}

func TestRegistryRegisterEvicted(t *testing.T) {
	r, built := newTestRegistry(Config[*fakeStream]{})
	r.RegisterEvicted("resident")
	// create=false must revive, not 404: the name is known from disk.
	_, rel, err := r.Acquire("resident", false)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if built.Load() != 1 {
		t.Fatalf("factory ran %d times, want 1", built.Load())
	}
}

func TestRegistryEvictNow(t *testing.T) {
	r, _ := newTestRegistry(Config[*fakeStream]{Evictable: true})
	_, rel, _ := r.Acquire("admin", true)

	if _, err := r.EvictNow("ghost"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("EvictNow(ghost) err = %v, want ErrUnknownStream", err)
	}
	if ok, err := r.EvictNow("admin"); ok || err != nil {
		t.Fatalf("EvictNow on pinned stream = (%v, %v), want (false, nil)", ok, err)
	}
	rel()
	if ok, err := r.EvictNow("admin"); !ok || err != nil {
		t.Fatalf("EvictNow = (%v, %v), want (true, nil)", ok, err)
	}
	// Idempotent on an already-evicted stream.
	if ok, err := r.EvictNow("admin"); !ok || err != nil {
		t.Fatalf("repeat EvictNow = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestRegistryCloseRejectsAcquire(t *testing.T) {
	r, _ := newTestRegistry(Config[*fakeStream]{})
	_, rel, _ := r.Acquire("a", true)
	rel()
	r.Close()
	if _, _, err := r.Acquire("a", false); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if live := r.Live(); len(live) != 1 {
		t.Fatalf("Close released live streams: %d left, want 1", len(live))
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r, _ := newTestRegistry(Config[*fakeStream]{})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		_, rel, _ := r.Acquire(name, true)
		rel()
	}
	infos := r.Snapshot()
	if len(infos) != 3 || infos[0].Name != "alpha" || infos[1].Name != "mid" || infos[2].Name != "zeta" {
		t.Fatalf("snapshot = %+v, want sorted by name", infos)
	}
	for _, in := range infos {
		if in.State != "live" || in.MemoryBytes != 1<<20 {
			t.Fatalf("unexpected info %+v", in)
		}
	}
}

// TestRegistryAcquireDuringEviction races acquirers against the
// evictor: every Acquire must land on a usable stream (either the one
// about to be evicted, pinned in time, or a revived instance), never
// an error and never a half-evicted object.
func TestRegistryAcquireDuringEviction(t *testing.T) {
	clock := newFakeClock()
	r, _ := newTestRegistry(Config[*fakeStream]{
		MemoryBudget: 1, // permanent pressure: every unpinned stream evicts
		Evictable:    true,
		Clock:        clock.Now,
	})
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Sweep()
			}
		}
	}()

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				name := fmt.Sprintf("s%d", rng.Intn(3))
				s, rel, err := r.Acquire(name, true)
				if err != nil {
					failures.Add(1)
					continue
				}
				// Simulate using the stream while pinned.
				s.mu.Lock()
				s.writes++
				s.mu.Unlock()
				rel()
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d Acquires failed during eviction churn", failures.Load())
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatal("test exercised no evictions — not a meaningful race")
	}
	if st.Revivals == 0 {
		t.Fatal("test exercised no revivals — not a meaningful race")
	}
}

// TestRegistrySweepSkipsUnevictableLRU pins the sweep's skip-and-
// continue behavior: one permanently unevictable stream sitting at the
// LRU position (the server's default stream is exactly this) must not
// block the budget pass — the sweep skips it and evicts the next
// candidates instead of giving up.
func TestRegistrySweepSkipsUnevictableLRU(t *testing.T) {
	clock := newFakeClock()
	r, _ := newTestRegistry(Config[*fakeStream]{
		MemoryBudget: 2 << 20, // room for two 1 MiB streams
		Evictable:    true,
		Clock:        clock.Now,
		CanEvict:     func(s *fakeStream) bool { return s.name != "anchor" },
	})
	// "anchor" is the oldest (LRU) and can never be evicted.
	for _, name := range []string{"anchor", "mid", "new", "newer"} {
		_, rel, err := r.Acquire(name, true)
		if err != nil {
			t.Fatal(err)
		}
		rel()
		clock.Advance(time.Minute)
	}
	if n := r.Sweep(); n != 2 {
		t.Fatalf("Sweep evicted %d streams, want 2 (mid and new, skipping the unevictable LRU)", n)
	}
	st := r.Stats()
	if st.Live != 2 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 2 live / 2 evictions", st)
	}
	// The anchor itself is still live.
	if _, _, err := r.Acquire("anchor", false); err != nil {
		t.Fatalf("anchor gone after the sweep: %v", err)
	}
}
