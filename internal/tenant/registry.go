package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrUnknownStream: the name was never created (and has no on-disk
	// state to revive). Maps to 404.
	ErrUnknownStream = errors.New("unknown stream")
	// ErrTooManyStreams: creating the stream would exceed MaxStreams.
	// Maps to 429 with reason "overloaded".
	ErrTooManyStreams = errors.New("stream cap reached")
	// ErrClosed: the registry is shutting down. Maps to 503.
	ErrClosed = errors.New("stream registry is closed")
)

// maxNameLen bounds stream names; they become directory names and
// metric label values.
const maxNameLen = 64

// ValidateName checks a stream name: 1-64 characters of lowercase
// letters, digits, '-' and '_', starting with a letter or digit.
// "streams" is reserved (it is the admin endpoint's path segment).
// Names are embedded in URLs, on-disk directory names and Prometheus
// label values, so the alphabet is deliberately tight.
func ValidateName(name string) error {
	if name == "" {
		return errors.New("stream name is empty")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("stream name %q exceeds %d characters", name, maxNameLen)
	}
	if name == "streams" {
		return fmt.Errorf("stream name %q is reserved", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return fmt.Errorf("stream name %q: character %q at position %d (want [a-z0-9][a-z0-9_-]*)", name, c, i)
		}
	}
	return nil
}

// entryState is one registry entry's lifecycle state, guarded by the
// registry mutex:
//
//	         Acquire(create)            evictor: pins==0 ∧ retired
//	(absent) ───────────► creating ─► live ───────────► evicting
//	                          ▲                             │
//	                          │ Acquire (revive)            │ Evict() done
//	                          └───────── evicted ◄──────────┘
//
// creating/evicting are transient: concurrent Acquires wait on the
// registry condition variable until the transition lands in live or
// evicted, then re-evaluate. An evicted entry keeps its name
// registered (its state lives on disk), so a later touch revives it
// through the factory instead of returning ErrUnknownStream.
type entryState int

const (
	stateCreating entryState = iota
	stateLive
	stateEvicting
	stateEvicted
)

func (s entryState) String() string {
	switch s {
	case stateCreating:
		return "creating"
	case stateLive:
		return "live"
	case stateEvicting:
		return "evicting"
	case stateEvicted:
		return "evicted"
	}
	return "unknown"
}

// Stream is the registry's view of one tenant: enough to charge it
// against the memory budget and to checkpoint-and-release it.
type Stream interface {
	// MemoryBytes estimates the stream's resident footprint. Called
	// with the stream pinned or under eviction ownership; must be safe
	// concurrently with serving.
	MemoryBytes() int64
	// Evict checkpoints the stream to disk and releases its resources.
	// Called exactly once, only after the registry owns the stream
	// outright (zero pins, writer retired from the pool). After a nil
	// return the stream object is dropped; an error cancels the
	// eviction and the stream stays live.
	Evict() error
}

// entry is one named stream's registry slot.
type entry[S Stream] struct {
	name      string
	state     entryState
	stream    S
	pins      int
	lastTouch time.Time
	// everLive distinguishes a revivable evicted entry from a slot
	// whose very first creation failed (the latter is deleted).
	everLive bool
}

// Config configures a Registry.
type Config[S Stream] struct {
	// Factory builds (or revives) the named stream. Revival and first
	// creation are the same call: the stream's own recovery decides
	// what on-disk state means.
	Factory func(name string) (S, error)
	// MaxStreams caps the number of registered names (live + evicted);
	// 0 means unlimited.
	MaxStreams int
	// MemoryBudget is the global resident-footprint target in bytes;
	// when the sum of live streams' MemoryBytes exceeds it, Sweep
	// evicts least-recently-used unpinned streams until back under.
	// 0 disables budget-driven eviction.
	MemoryBudget int64
	// EvictIdleAfter evicts any stream untouched for this long even
	// under budget. 0 disables idle-driven eviction.
	EvictIdleAfter time.Duration
	// Evictable gates eviction entirely (the server requires a WAL:
	// evicting a stream without durable state would lose data).
	Evictable bool
	// CanEvict, when non-nil, is the exclusivity gate consulted with
	// the registry lock held after pins==0: the server retires the
	// stream's writer-pool handle here. Returning false skips the
	// stream this sweep.
	CanEvict func(s S) bool
	// OnEvict, when non-nil, is called after each successful eviction
	// (telemetry hook). Called without the registry lock.
	OnEvict func(name string)
	// Clock substitutes the time source for tests; nil means
	// time.Now.
	Clock func() time.Time
}

// Registry is the named-stream table: lazy creation on first
// Acquire(create=true), pin-counted references, and checkpoint-backed
// LRU eviction driven by Sweep.
type Registry[S Stream] struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config[S]

	entries map[string]*entry[S]
	closed  bool

	evictions uint64
	revivals  uint64
}

// NewRegistry builds an empty registry.
func NewRegistry[S Stream](cfg Config[S]) *Registry[S] {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Registry[S]{cfg: cfg, entries: map[string]*entry[S]{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// RegisterEvicted pre-registers a name whose state exists on disk but
// is not loaded (boot-time scan of the streams directory): reads and
// writes on it revive through the factory instead of 404ing. No-op if
// the name is already registered.
func (r *Registry[S]) RegisterEvicted(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return
	}
	r.entries[name] = &entry[S]{
		name:      name,
		state:     stateEvicted,
		everLive:  true,
		lastTouch: r.cfg.Clock(),
	}
}

// Adopt inserts an externally built stream as a live, unpinned entry —
// how an eagerly constructed stream (e.g. a default tenant built at
// boot) joins the registry without going through the factory. It must
// not collide with an existing name.
func (r *Registry[S]) Adopt(name string, s S) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("tenant: adopt %q: name already registered", name)
	}
	r.entries[name] = &entry[S]{
		name:      name,
		state:     stateLive,
		stream:    s,
		everLive:  true,
		lastTouch: r.cfg.Clock(),
	}
	return nil
}

// Acquire pins the named stream, creating it through the factory when
// create is true and the name is new, and transparently reviving it
// when it was evicted. The returned release function MUST be called
// exactly once when the caller is done; pins block eviction, so a
// pinned stream's write path and engine stay valid.
func (r *Registry[S]) Acquire(name string, create bool) (S, func(), error) {
	var zero S
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return zero, nil, ErrClosed
		}
		e, ok := r.entries[name]
		if !ok {
			if !create {
				r.mu.Unlock()
				return zero, nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
			}
			if r.cfg.MaxStreams > 0 && len(r.entries) >= r.cfg.MaxStreams {
				r.mu.Unlock()
				return zero, nil, fmt.Errorf("%w (max %d)", ErrTooManyStreams, r.cfg.MaxStreams)
			}
			e = &entry[S]{name: name, state: stateCreating}
			r.entries[name] = e
			return r.build(e, false)
		}
		switch e.state {
		case stateLive:
			e.pins++
			e.lastTouch = r.cfg.Clock()
			s := e.stream
			r.mu.Unlock()
			return s, r.releaseFunc(e), nil
		case stateEvicted:
			// Transparent revival: any touch (read or write) brings the
			// stream back through the factory, whose recovery loads the
			// eviction checkpoint plus whatever WAL tail preceded it.
			e.state = stateCreating
			return r.build(e, true)
		default: // creating or evicting: wait for the transition to land
			r.cond.Wait()
		}
	}
}

// build runs the factory for an entry in stateCreating. Called with
// the lock held; returns with it released.
func (r *Registry[S]) build(e *entry[S], revive bool) (S, func(), error) {
	var zero S
	r.mu.Unlock()
	s, err := r.cfg.Factory(e.name)
	r.mu.Lock()
	if err != nil {
		if e.everLive {
			// The on-disk state is still there; a later touch retries.
			e.state = stateEvicted
		} else {
			delete(r.entries, e.name)
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		return zero, nil, err
	}
	e.stream = s
	e.state = stateLive
	e.everLive = true
	e.pins = 1
	e.lastTouch = r.cfg.Clock()
	if revive {
		r.revivals++
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	return s, r.releaseFunc(e), nil
}

// releaseFunc builds the unpin closure for one successful Acquire.
func (r *Registry[S]) releaseFunc(e *entry[S]) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			e.lastTouch = r.cfg.Clock()
			r.mu.Unlock()
		})
	}
}

// Sweep runs one eviction pass: while the live footprint exceeds the
// memory budget, evict the least-recently-used unpinned stream; then
// evict every stream idle longer than EvictIdleAfter. Returns how many
// streams were evicted. Call it from a single janitor goroutine —
// sweeps do not race each other.
func (r *Registry[S]) Sweep() int {
	if !r.cfg.Evictable {
		return 0
	}
	evicted := 0
	// A candidate that refuses eviction (pinned between the pick and
	// the claim, busy writer handle, or the CanEvict gate — e.g. an
	// unevictable default stream that happens to be the LRU) is skipped
	// for the rest of this sweep, NOT treated as the end of the pass:
	// otherwise one permanently unevictable stream at the LRU position
	// would block every budget eviction forever. The next sweep retries
	// everything fresh.
	skip := make(map[string]bool)
	// Budget pass: one eviction per iteration, re-measuring in
	// between, so a sweep never over-evicts on a stale total.
	if r.cfg.MemoryBudget > 0 {
		for {
			e := r.pickOverBudget(skip)
			if e == nil {
				break
			}
			if r.evict(e) {
				evicted++
			} else {
				skip[e.name] = true
			}
		}
	}
	if r.cfg.EvictIdleAfter > 0 {
		cutoff := r.cfg.Clock().Add(-r.cfg.EvictIdleAfter)
		for {
			e := r.pickIdle(cutoff, skip)
			if e == nil {
				break
			}
			if r.evict(e) {
				evicted++
			} else {
				skip[e.name] = true
			}
		}
	}
	return evicted
}

// pickOverBudget returns the LRU unpinned live stream (excluding the
// sweep's skip set) if the live total exceeds the budget, nil
// otherwise.
func (r *Registry[S]) pickOverBudget(skip map[string]bool) *entry[S] {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	var total int64
	var lru *entry[S]
	for _, e := range r.entries {
		if e.state != stateLive {
			continue
		}
		total += e.stream.MemoryBytes()
		if e.pins > 0 || skip[e.name] {
			continue
		}
		if lru == nil || e.lastTouch.Before(lru.lastTouch) {
			lru = e
		}
	}
	if total <= r.cfg.MemoryBudget {
		return nil
	}
	return lru
}

// pickIdle returns one unpinned live stream untouched since cutoff,
// excluding the sweep's skip set.
func (r *Registry[S]) pickIdle(cutoff time.Time, skip map[string]bool) *entry[S] {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	for _, e := range r.entries {
		if e.state == stateLive && e.pins == 0 && !skip[e.name] && e.lastTouch.Before(cutoff) {
			return e
		}
	}
	return nil
}

// evict transitions one entry live → evicting → evicted, running the
// stream's Evict between the two. Returns false when the entry could
// not be claimed (a pin or the CanEvict gate said no) or Evict failed.
func (r *Registry[S]) evict(e *entry[S]) bool {
	r.mu.Lock()
	if r.closed || e.state != stateLive || e.pins > 0 {
		r.mu.Unlock()
		return false
	}
	// Exclusivity gate (the server retires the writer-pool handle
	// here): after it returns true, nothing can schedule the stream's
	// write path, and pins==0 means no request holds the engine.
	if r.cfg.CanEvict != nil && !r.cfg.CanEvict(e.stream) {
		r.mu.Unlock()
		return false
	}
	e.state = stateEvicting
	s := e.stream
	r.mu.Unlock()

	err := s.Evict()

	r.mu.Lock()
	if err != nil {
		// Eviction failed (checkpoint could not be written): the stream
		// keeps serving; a later sweep retries. The CanEvict gate
		// already retired the writer handle, so the server's Evict
		// implementation must re-arm it on failure.
		e.state = stateLive
		r.cond.Broadcast()
		r.mu.Unlock()
		return false
	}
	var zero S
	e.stream = zero
	e.state = stateEvicted
	e.lastTouch = r.cfg.Clock()
	r.evictions++
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(e.name)
	}
	return true
}

// EvictNow force-evicts one named stream (the admin endpoint). It
// fails with ErrUnknownStream for unregistered names and returns
// (false, nil) when the stream is busy (pinned, mid-transition, or
// its writer has queued work).
func (r *Registry[S]) EvictNow(name string) (bool, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	if e.state == stateEvicted {
		r.mu.Unlock()
		return true, nil
	}
	if !r.cfg.Evictable {
		r.mu.Unlock()
		return false, errors.New("eviction requires durability (a data directory)")
	}
	r.mu.Unlock()
	return r.evict(e), nil
}

// Info is one entry's public state snapshot.
type Info struct {
	Name      string
	State     string
	Pins      int
	LastTouch time.Time
	// MemoryBytes is the live footprint estimate; 0 when evicted.
	MemoryBytes int64
}

// Snapshot lists every registered stream, sorted by name.
func (r *Registry[S]) Snapshot() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		info := Info{Name: e.name, State: e.state.String(), Pins: e.pins, LastTouch: e.lastTouch}
		if e.state == stateLive {
			info.MemoryBytes = e.stream.MemoryBytes()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats is the registry's aggregate telemetry.
type Stats struct {
	// Live and Registered count streams resident in memory and names
	// known (live + evicted revivable).
	Live, Registered int
	// MemoryBytes is the summed live footprint estimate.
	MemoryBytes int64
	// Evictions and Revivals count lifecycle transitions since boot.
	Evictions, Revivals uint64
}

// Stats returns the aggregate counters.
func (r *Registry[S]) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Registered: len(r.entries), Evictions: r.evictions, Revivals: r.revivals}
	for _, e := range r.entries {
		if e.state == stateLive {
			st.Live++
			st.MemoryBytes += e.stream.MemoryBytes()
		}
	}
	return st
}

// Live returns the currently live streams (for shutdown: the server
// drains and closes each one). New acquires fail once Close ran.
func (r *Registry[S]) Live() []S {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]S, 0, len(r.entries))
	for _, e := range r.entries {
		if e.state == stateLive {
			out = append(out, e.stream)
		}
	}
	return out
}

// Close marks the registry closed: subsequent Acquires fail with
// ErrClosed and sweeps stop evicting. It does NOT release the live
// streams — the server owns their orderly shutdown (drain, final
// checkpoint, close) and needs them alive to do it.
func (r *Registry[S]) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}
