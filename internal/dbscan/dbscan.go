// Package dbscan implements the classic DBSCAN algorithm (Ester et al.
// 1996). In this repository it plays two roles: it is the offline
// re-clustering step used by the DenStream baseline (exactly as in the
// original paper), and it backs the DBSCAN-vs-DP comparison of
// Sec. 2.3.
package dbscan

import (
	"errors"
	"fmt"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Noise is the assignment of points that belong to no cluster.
const Noise = -1

// Config parameterizes DBSCAN.
type Config struct {
	// Eps is the neighbourhood radius ε. Required.
	Eps float64
	// MinPts is the minimum number of neighbours (including the point
	// itself) for a point to be a core point. Required.
	MinPts int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Eps <= 0 {
		return fmt.Errorf("dbscan: ε must be positive, got %v", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("dbscan: minPts must be at least 1, got %d", c.MinPts)
	}
	return nil
}

// Result holds the clustering output.
type Result struct {
	// Assignment is each point's cluster index (0-based) or Noise.
	Assignment []int
	// NumClusters is the number of clusters found.
	NumClusters int
	// Core marks the core points.
	Core []bool
}

// Cluster runs DBSCAN over the points. Weighted variants (used by the
// stream baselines, which cluster weighted micro-cluster centers) can
// pass per-point weights; nil weights mean weight 1 for every point.
func Cluster(points []stream.Point, weights []float64, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := len(points)
	if n == 0 {
		return Result{}, errors.New("dbscan: no points")
	}
	if weights != nil && len(weights) != n {
		return Result{}, fmt.Errorf("dbscan: %d weights for %d points", len(weights), n)
	}
	weightOf := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}

	// Neighbourhoods (brute force region queries).
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Distance(points[j]) <= cfg.Eps {
				neighbors[i] = append(neighbors[i], j)
				neighbors[j] = append(neighbors[j], i)
			}
		}
	}
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		w := weightOf(i)
		for _, j := range neighbors[i] {
			w += weightOf(j)
		}
		core[i] = w >= float64(cfg.MinPts)
	}

	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = Noise
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if !core[i] || assignment[i] != Noise {
			continue
		}
		// Expand a new cluster from this unassigned core point.
		assignment[i] = cluster
		queue := append([]int(nil), neighbors[i]...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if assignment[j] == Noise {
				assignment[j] = cluster
				if core[j] {
					queue = append(queue, neighbors[j]...)
				}
			}
		}
		cluster++
	}

	return Result{Assignment: assignment, NumClusters: cluster, Core: core}, nil
}
