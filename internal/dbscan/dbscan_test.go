package dbscan

import (
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

func blobs(centers [][]float64, n int, sigma float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []stream.Point
	for label, c := range centers {
		for i := 0; i < n; i++ {
			vec := make([]float64, len(c))
			for d := range vec {
				vec[d] = c[d] + rng.NormFloat64()*sigma
			}
			pts = append(pts, stream.Point{ID: int64(len(pts)), Vector: vec, Label: label})
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Eps: 1, MinPts: 3}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, cfg := range []Config{{}, {Eps: -1, MinPts: 3}, {Eps: 1, MinPts: 0}} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
	if _, err := Cluster(nil, nil, Config{Eps: 1, MinPts: 2}); err == nil {
		t.Error("empty input should be rejected")
	}
	pts := blobs([][]float64{{0, 0}}, 5, 0.1, 1)
	if _, err := Cluster(pts, []float64{1}, Config{Eps: 1, MinPts: 2}); err == nil {
		t.Error("mismatched weights should be rejected")
	}
}

func TestTwoBlobsAndNoise(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {10, 10}}, 50, 0.5, 2)
	// Isolated noise points.
	pts = append(pts,
		stream.Point{ID: 1000, Vector: []float64{50, 50}, Label: stream.NoLabel},
		stream.Point{ID: 1001, Vector: []float64{-50, 30}, Label: stream.NoLabel},
	)
	res, err := Cluster(pts, nil, Config{Eps: 1.2, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	if res.Assignment[len(pts)-1] != Noise || res.Assignment[len(pts)-2] != Noise {
		t.Error("isolated points should be noise")
	}
	// Purity check.
	counts := map[int]map[int]int{}
	for i, a := range res.Assignment {
		if a == Noise {
			continue
		}
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][pts[i].Label]++
	}
	for cluster, labelCounts := range counts {
		if len(labelCounts) != 1 {
			t.Errorf("cluster %d mixes labels: %v", cluster, labelCounts)
		}
	}
}

func TestDensityConnectedBridge(t *testing.T) {
	// Two blobs connected by a dense bridge must become one cluster —
	// the defining behaviour (and weakness) of density-connectedness
	// that Sec. 2.3 contrasts with DP clustering.
	pts := blobs([][]float64{{0, 0}, {10, 0}}, 60, 0.5, 3)
	for i := 0; i < 30; i++ {
		pts = append(pts, stream.Point{ID: int64(1000 + i), Vector: []float64{float64(i) / 3.0, 0}, Label: 0})
	}
	res, err := Cluster(pts, nil, Config{Eps: 1.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("bridged blobs should form one cluster, got %d", res.NumClusters)
	}
}

func TestWeightedCorePoints(t *testing.T) {
	// Three mutually-close points with large weights must form a
	// cluster even though their count is below MinPts.
	pts := []stream.Point{
		{ID: 0, Vector: []float64{0, 0}},
		{ID: 1, Vector: []float64{0.1, 0}},
		{ID: 2, Vector: []float64{0, 0.1}},
	}
	weights := []float64{5, 5, 5}
	res, err := Cluster(pts, weights, Config{Eps: 0.5, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("weighted points should form one cluster, got %d", res.NumClusters)
	}
	// Without weights they are all noise.
	res, err = Cluster(pts, nil, Config{Eps: 0.5, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("unweighted sparse points should be noise, got %d clusters", res.NumClusters)
	}
}

func TestAllNoise(t *testing.T) {
	pts := []stream.Point{
		{ID: 0, Vector: []float64{0, 0}},
		{ID: 1, Vector: []float64{100, 0}},
		{ID: 2, Vector: []float64{0, 100}},
	}
	res, err := Cluster(pts, nil, Config{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("scattered points should produce no clusters, got %d", res.NumClusters)
	}
	for i, a := range res.Assignment {
		if a != Noise {
			t.Errorf("point %d assigned to %d, want noise", i, a)
		}
	}
}
