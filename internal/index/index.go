// Package index provides the nearest-seed indexes behind EDMStream's
// per-point hot path. Every arriving point must find the cluster-cell
// whose seed is nearest (Sec. 4.1 of the paper); with thousands of
// live cells a linear scan per point dominates the insert cost, so
// this package offers a uniform grid hash over seed coordinates that
// answers radius-bounded nearest-seed probes by visiting only the
// neighboring buckets, plus a linear-scan fallback for streams the
// grid cannot bucket (Jaccard/token-set streams, and high-dimensional
// Euclidean streams where 3^d neighborhood probes stop paying off).
//
// Both implementations answer queries exactly — they differ only in
// which candidates they have to touch — so the clustering output is
// identical whichever index is selected (internal/core's equivalence
// tests assert this property).
package index

import "github.com/densitymountain/edmstream/internal/stream"

// SeedIndex indexes cluster-cell seed points by cell ID and answers
// the two nearest-neighbor queries the core algorithm needs. Seeds are
// immutable for the lifetime of a cell, so there is no update
// operation: cells are inserted once and removed once.
//
// Ties in distance are broken toward the lowest cell ID by every
// implementation, which keeps the algorithm's output independent of
// the index choice.
type SeedIndex interface {
	// Len returns the number of indexed seeds.
	Len() int
	// Insert adds the seed p of cell id to the index.
	Insert(id int64, p stream.Point)
	// Remove deletes cell id, whose seed is p, from the index.
	Remove(id int64, p stream.Point)
	// NearestWithin returns the indexed seed nearest to p among those
	// at distance at most r, or ok == false when no seed is that
	// close. onDist, when non-nil, is invoked with every (id,
	// distance) pair the index measures during the probe; the core
	// algorithm uses it to stamp distances onto cells for the
	// triangle-inequality filter (Theorem 2).
	NearestWithin(p stream.Point, r float64, onDist func(id int64, d float64)) (id int64, d float64, ok bool)
	// NearestWhere returns the indexed seed nearest to p among those
	// whose ID satisfies pred (a nil pred accepts every seed), or
	// ok == false when no admissible seed exists. It is unbounded in
	// distance and backs dependency searches (nearest cell with
	// higher density).
	NearestWhere(p stream.Point, pred func(id int64) bool) (id int64, d float64, ok bool)
	// View returns an epoch-frozen, read-only view of the index for
	// concurrent nearest-seed probes (the parallel route phase of
	// batched ingestion). The view shares the index's storage and is
	// valid only until the next Insert or Remove; probing a stale view
	// panics. Within that window any number of goroutines may probe
	// the view concurrently, each with its own RouteScratch, and every
	// probe answers exactly what NearestWithin would (same lowest-ID
	// tie-break) without invoking onDist callbacks.
	View() View
	// Kind returns a short identifier ("grid", "linear") used in
	// stats and benchmark reports.
	Kind() string
}
