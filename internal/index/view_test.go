package index

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// viewIndexes builds one Grid and one Linear index over the same
// random seed set.
func viewIndexes(t *testing.T, rng *rand.Rand, n, dim int, side float64) (*Grid, *Linear, []stream.Point) {
	t.Helper()
	g := NewGrid(side)
	l := NewLinear()
	seeds := make([]stream.Point, n)
	for i := range seeds {
		vec := make([]float64, dim)
		for d := range vec {
			vec[d] = rng.Float64()*20 - 10
		}
		seeds[i] = stream.Point{ID: int64(i), Vector: vec}
		g.Insert(int64(i), seeds[i])
		l.Insert(int64(i), seeds[i])
	}
	return g, l, seeds
}

// TestViewMatchesLive is the frozen-view exactness property: for both
// index kinds, across dimensionalities (including ones that push the
// grid onto its direct-scan fallback) and across interleaved
// mutations, a view probe must return exactly what the live
// NearestWithin returns — same ID, same distance, same tie-break —
// with the caller-private scratch (and its window cache) never going
// stale.
func TestViewMatchesLive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dim := range []int{1, 2, 3, 9} {
		g, l, _ := viewIndexes(t, rng, 300, dim, 1.0)
		var scratch RouteScratch
		for round := 0; round < 6; round++ {
			gv, lv := g.View(), l.View()
			for q := 0; q < 200; q++ {
				vec := make([]float64, dim)
				for d := range vec {
					vec[d] = rng.Float64()*24 - 12
				}
				p := stream.Point{Vector: vec}
				r := 0.5 + rng.Float64()*2
				for _, idx := range []struct {
					name string
					live SeedIndex
					view View
				}{{"grid", g, gv}, {"linear", l, lv}} {
					liveID, liveD, liveOK := idx.live.NearestWithin(p, r, nil)
					viewID, viewD, viewOK := idx.view.NearestWithin(p, r, &scratch)
					if liveID != viewID || liveD != viewD || liveOK != viewOK {
						t.Fatalf("dim %d round %d %s: view (%d, %v, %v) != live (%d, %v, %v)",
							dim, round, idx.name, viewID, viewD, viewOK, liveID, liveD, liveOK)
					}
				}
			}
			// Mutate between rounds: remove a few seeds and add a few
			// new ones, so the next round's fresh views (and the reused
			// scratch's epoch-keyed window cache) see a changed index.
			for m := 0; m < 5; m++ {
				id := int64(rng.Intn(300))
				if _, ok := l.pos[id]; ok {
					p := l.entries[l.pos[id]].pt
					g.Remove(id, p)
					l.Remove(id, p)
				}
				vec := make([]float64, dim)
				for d := range vec {
					vec[d] = rng.Float64()*20 - 10
				}
				nid := int64(1000 + round*10 + m)
				np := stream.Point{ID: nid, Vector: vec}
				g.Insert(nid, np)
				l.Insert(nid, np)
			}
		}
	}
}

// TestViewTokenProbes checks that view probes answer token-set
// queries (the vectorless side set) exactly like the live index.
func TestViewTokenProbes(t *testing.T) {
	g := NewGrid(0.6)
	l := NewLinear()
	tok := func(words ...string) stream.Point {
		return stream.Point{Tokens: distance.NewTokenSet(words...)}
	}
	sets := []stream.Point{
		tok("a", "b", "c"),
		tok("a", "b", "d"),
		tok("x", "y"),
	}
	for i, p := range sets {
		g.Insert(int64(i), p)
		l.Insert(int64(i), p)
	}
	var scratch RouteScratch
	gv, lv := g.View(), l.View()
	probes := []stream.Point{tok("a", "b", "c"), tok("a", "b"), tok("z"), {Vector: []float64{0, 0}}}
	for _, p := range probes {
		for _, idx := range []struct {
			live SeedIndex
			view View
		}{{g, gv}, {l, lv}} {
			liveID, liveD, liveOK := idx.live.NearestWithin(p, 0.6, nil)
			viewID, viewD, viewOK := idx.view.NearestWithin(p, 0.6, &scratch)
			if liveID != viewID || liveD != viewD || liveOK != viewOK {
				t.Fatalf("%s token probe: view (%d, %v, %v) != live (%d, %v, %v)",
					idx.live.Kind(), viewID, viewD, viewOK, liveID, liveD, liveOK)
			}
		}
	}
}

// TestViewStalePanics pins the epoch guard: probing a view after the
// underlying index changed must panic rather than silently return
// answers computed over mutated storage.
func TestViewStalePanics(t *testing.T) {
	for _, kind := range []string{"grid", "linear"} {
		var idx SeedIndex
		if kind == "grid" {
			idx = NewGrid(1.0)
		} else {
			idx = NewLinear()
		}
		idx.Insert(1, stream.Point{ID: 1, Vector: []float64{0, 0}})
		v := idx.View()
		idx.Insert(2, stream.Point{ID: 2, Vector: []float64{3, 3}})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: stale view probe did not panic", kind)
				}
			}()
			var s RouteScratch
			v.NearestWithin(stream.Point{Vector: []float64{0, 0}}, 1.0, &s)
		}()
	}
}

// TestViewConcurrentProbes exercises the concurrent-read contract
// under the race detector: many goroutines probe one frozen view, each
// with its own scratch, and every answer must match the live index.
func TestViewConcurrentProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, l, _ := viewIndexes(t, rng, 500, 2, 1.0)

	type probe struct {
		p stream.Point
		r float64
	}
	probes := make([]probe, 512)
	for i := range probes {
		probes[i] = probe{
			p: stream.Point{Vector: []float64{rng.Float64()*24 - 12, rng.Float64()*24 - 12}},
			r: 0.5 + rng.Float64()*1.5,
		}
	}
	for _, idx := range []SeedIndex{g, l} {
		want := make([][3]any, len(probes))
		for i, pr := range probes {
			id, d, ok := idx.NearestWithin(pr.p, pr.r, nil)
			want[i] = [3]any{id, d, ok}
		}
		v := idx.View()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var s RouteScratch
				for rep := 0; rep < 4; rep++ {
					for i := (w * 64) % len(probes); ; i = (i + 1) % len(probes) {
						pr := probes[i]
						id, d, ok := v.NearestWithin(pr.p, pr.r, &s)
						if got := ([3]any{id, d, ok}); got != want[i] {
							t.Errorf("%s concurrent probe %d: got %v want %v", idx.Kind(), i, got, want[i])
							return
						}
						if i == (w*64+len(probes)-1)%len(probes) {
							break
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
