package index

import (
	"math"
	"slices"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// View is an epoch-frozen, read-only nearest-seed view of a SeedIndex.
// It backs the parallel route phase of batched ingestion: the owner
// freezes the live index once per batch, a pool of workers probes the
// view concurrently to speculate each point's nearest cell, and the
// serial apply phase validates the speculations against whatever the
// index view could not see.
//
// A view shares the live index's storage — freezing copies no buckets
// and no entries — so it is only valid between mutations: the next
// Insert or Remove on the underlying index invalidates it, and probing
// a stale view panics (the epoch is checked on every probe). Within
// its validity window any number of goroutines may probe the same View
// concurrently, each with its own RouteScratch; probes return exactly
// what the live index's NearestWithin would — same candidates, same
// distances, same lowest-ID tie-break — but measure no onDist
// callbacks (distance stamping is a write and belongs to the owner).
type View interface {
	// NearestWithin answers the radius-bounded nearest-seed probe
	// against the frozen view, using s as the caller-private scratch.
	NearestWithin(p stream.Point, r float64, s *RouteScratch) (id int64, d float64, ok bool)
}

// RouteScratch is the per-goroutine scratch a View probe works in: the
// quantized bucket coordinates and window-walk cursor, plus a window
// cache so consecutive probes from the same bucket (bursty streams)
// reuse the occupied-bucket set instead of re-walking the 3^d window.
// The cache is keyed on the view's epoch, so it survives across
// batches as long as the underlying index has not changed, and can
// never serve stale buckets. A RouteScratch must not be shared between
// goroutines while a probe is in flight; the zero value is ready to
// use.
type RouteScratch struct {
	center, off, coords []int64

	winEpoch   uint64
	winM       int64
	winValid   bool
	winCenter  []int64
	winBuckets []*gridBucket
}

// nearestAcc accumulates the running best of a nearest-seed scan with
// the lowest-ID tie-break shared by every index implementation. It
// exists so the view probe can scan buckets from plain loops without
// allocating a closure per probe.
type nearestAcc struct {
	id    int64
	dist  float64
	found bool
}

// scan folds one bucket's entries into the accumulator.
func (a *nearestAcc) scan(b *gridBucket, vec []float64, r float64) {
	for i := range b.entries {
		en := &b.entries[i]
		d := distance.Euclid(en.vec, vec)
		if d <= r && (d < a.dist || (d == a.dist && en.id < a.id)) {
			a.id, a.dist, a.found = en.id, d, true
		}
	}
}

// gridView is the Grid's View: a generation-stamped handle onto the
// live bucket table. The struct is owned by the grid and reused by
// every View() call, so freezing allocates nothing.
type gridView struct {
	g     *Grid
	epoch uint64
}

// View implements SeedIndex. The returned view is valid until the next
// Insert or Remove on the grid.
func (g *Grid) View() View {
	g.view.epoch = g.gen
	return &g.view
}

// NearestWithin implements View. It mirrors Grid.NearestWithin — the
// (2m+1)^d window probe with the direct-scan fallback for sparse or
// high-dimensional grids — but keeps every piece of mutable probe
// state (coordinate buffers, window cache) in the caller's
// RouteScratch, so concurrent probes never touch shared memory. The
// bucket table itself is only read, which is safe because the epoch
// check guarantees no mutation has happened since the view was taken.
func (v *gridView) NearestWithin(p stream.Point, r float64, s *RouteScratch) (int64, float64, bool) {
	g := v.g
	if g.gen != v.epoch {
		panic("index: grid view probed after the underlying index changed")
	}
	if p.Vector == nil {
		// The vectorless side set is a plain map read; scanVectorless
		// uses no scratch, so concurrent view probes may share it.
		return g.scanVectorless(p, r, nil)
	}
	if g.nbuckets == 0 {
		return 0, 0, false
	}
	center := s.center[:0]
	for _, x := range p.Vector {
		center = append(center, int64(math.Floor(x/g.side)))
	}
	s.center = center
	d := len(center)
	acc := nearestAcc{dist: math.Inf(1)}

	m := int64(math.Ceil(r / g.side))
	if windowExceeds(2*m+1, d, g.nbuckets) {
		for _, b := range g.buckets {
			for ; b != nil; b = b.next {
				if chebyshev(b.coords, center) <= m {
					acc.scan(b, p.Vector, r)
				}
			}
		}
	} else {
		if !(s.winValid && s.winEpoch == v.epoch && s.winM == m && slices.Equal(s.winCenter, center)) {
			v.collectWindow(center, m, s)
		}
		for _, b := range s.winBuckets {
			acc.scan(b, p.Vector, r)
		}
	}
	if !acc.found {
		return 0, 0, false
	}
	return acc.id, acc.dist, true
}

// collectWindow walks the (2m+1)^d window around center with an
// odometer over the scratch buffers and caches the occupied buckets in
// the scratch, keyed on the view epoch.
func (v *gridView) collectWindow(center []int64, m int64, s *RouteScratch) {
	g := v.g
	d := len(center)
	off := resizeScratch(s.off, d)
	coords := resizeScratch(s.coords, d)
	s.off, s.coords = off, coords
	s.winBuckets = s.winBuckets[:0]
	for i := range off {
		off[i] = -m
	}
	for {
		for i := range coords {
			coords[i] = center[i] + off[i]
		}
		if b, ok := g.lookup(coords); ok {
			s.winBuckets = append(s.winBuckets, b)
		}
		i := 0
		for ; i < d; i++ {
			off[i]++
			if off[i] <= m {
				break
			}
			off[i] = -m
		}
		if i == d {
			break
		}
	}
	s.winCenter = append(s.winCenter[:0], center...)
	s.winM, s.winEpoch, s.winValid = m, v.epoch, true
}

// linearView is the Linear index's View. The linear scan keeps no
// probe state at all, so the view is the live NearestWithin minus the
// onDist callback, behind the same epoch guard.
type linearView struct {
	l     *Linear
	epoch uint64
}

// View implements SeedIndex. The returned view is valid until the next
// Insert or Remove on the index.
func (l *Linear) View() View {
	l.view.epoch = l.gen
	return &l.view
}

// NearestWithin implements View.
func (v *linearView) NearestWithin(p stream.Point, r float64, _ *RouteScratch) (int64, float64, bool) {
	if v.l.gen != v.epoch {
		panic("index: linear view probed after the underlying index changed")
	}
	return v.l.NearestWithin(p, r, nil)
}
