package index

import (
	"math"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Frozen is an immutable nearest-seed index mapping seeds to cluster
// IDs, built once from a published clustering snapshot and then read
// concurrently by any number of goroutines. It backs the read-only
// query path (Clusterer.Assign): a query finds the seed nearest to the
// probe point among those within the cell radius — the same rule, with
// the same lowest-cell-ID tie-break, the ingest path uses to absorb a
// point — and reports that seed's cluster.
//
// Queries never allocate: the grid probe keeps its bucket-coordinate
// scratch in fixed-size stack arrays (dimensions above
// MaxFrozenGridDim fall back to a flat scan, which needs no scratch at
// all), and the bucket table is an ordinary map read-only after
// Freeze, so no synchronization is required.
type Frozen struct {
	radius float64
	// dim is the vector dimensionality the grid is built for; -1 when
	// the grid is unused (no numeric seeds, inconsistent or oversized
	// dimensionality) and queries scan flat.
	dim int
	// grid maps hashed bucket coordinates to the entries whose seeds
	// quantize there. Hash collisions are benign: a colliding far seed
	// simply fails the radius check during the scan.
	grid     map[uint64][]frozenEntry
	nbuckets int
	// flat holds every numeric entry for the linear fallback.
	flat []frozenEntry
	// tokens holds token-set seeds (text streams), always scanned
	// linearly like the live index's vectorless side set.
	tokens []frozenTokenEntry
}

type frozenEntry struct {
	id      int64
	cluster int
	vec     []float64
}

type frozenTokenEntry struct {
	id      int64
	cluster int
	tokens  distance.TokenSet
}

// MaxFrozenGridDim is the largest vector dimensionality the frozen
// grid buckets; it matches the live index's auto-grid budget (probing
// 3^d neighbor buckets stops paying off beyond it).
const MaxFrozenGridDim = 8

// FrozenBuilder accumulates (seed, cluster) pairs and freezes them
// into an immutable query index.
type FrozenBuilder struct {
	f *Frozen
}

// NewFrozenBuilder starts a frozen index for the given cell radius
// (which is both the query radius and the grid bucket side).
func NewFrozenBuilder(radius float64) *FrozenBuilder {
	return &FrozenBuilder{f: &Frozen{radius: radius, dim: -1}}
}

// Add registers one seed with its cluster ID. Seeds are shared, not
// copied: callers must hand in immutable data (snapshot views qualify).
func (b *FrozenBuilder) Add(id int64, p stream.Point, cluster int) {
	f := b.f
	if p.Vector == nil {
		f.tokens = append(f.tokens, frozenTokenEntry{id: id, cluster: cluster, tokens: p.Tokens})
		return
	}
	if len(f.flat) == 0 {
		f.dim = len(p.Vector)
	} else if f.dim != len(p.Vector) {
		f.dim = -1
	}
	f.flat = append(f.flat, frozenEntry{id: id, cluster: cluster, vec: p.Vector})
}

// Freeze finalizes the index. The builder must not be used afterwards.
func (b *FrozenBuilder) Freeze() *Frozen {
	f := b.f
	b.f = nil
	if f.dim <= 0 || f.dim > MaxFrozenGridDim || !(f.radius > 0) {
		f.dim = -1
		return f
	}
	f.grid = make(map[uint64][]frozenEntry, len(f.flat))
	var coords [MaxFrozenGridDim]int64
	for _, en := range f.flat {
		for i, v := range en.vec {
			coords[i] = int64(math.Floor(v / f.radius))
		}
		h := hashCoords(coords[:f.dim])
		if _, ok := f.grid[h]; !ok {
			f.nbuckets++
		}
		f.grid[h] = append(f.grid[h], en)
	}
	return f
}

// Len returns the number of indexed seeds.
func (f *Frozen) Len() int { return len(f.flat) + len(f.tokens) }

// Assign classifies p: it returns the cluster of the seed nearest to p
// among those within the index radius, or ok == false when no seed is
// that close (the point would be an outlier). Safe for concurrent use
// from any number of goroutines; never allocates.
//
// The probe is exact, not approximate: a seed within radius r of p
// differs from p by at most r per axis, so with bucket side r its
// bucket lies within the 3^d window the probe enumerates (and the
// high-dimensional fallback scans every entry). A miss therefore
// always means no published seed is within the radius — a genuine
// outlier or a cell that postdates the snapshot — never a skipped
// bucket.
func (f *Frozen) Assign(p stream.Point) (cluster int, ok bool) {
	if p.Vector == nil {
		return f.assignTokens(p.Tokens)
	}
	if f.dim != len(p.Vector) || windowExceeds(3, f.dim, f.nbuckets) {
		return f.scanFlat(p.Vector)
	}
	var center, coords [MaxFrozenGridDim]int64
	d := f.dim
	for i, v := range p.Vector {
		center[i] = int64(math.Floor(v / f.radius))
	}
	var bestID int64
	var bestCluster int
	bestDist := math.Inf(1)
	found := false
	// Radius equals the bucket side, so the probe window is the 3^d
	// neighborhood, enumerated with an odometer over stack arrays.
	var off [MaxFrozenGridDim]int64
	for i := 0; i < d; i++ {
		off[i] = -1
	}
	for {
		for i := 0; i < d; i++ {
			coords[i] = center[i] + off[i]
		}
		for _, en := range f.grid[hashCoords(coords[:d])] {
			dist := distance.Euclid(en.vec, p.Vector)
			if dist <= f.radius && (dist < bestDist || (dist == bestDist && en.id < bestID)) {
				bestID, bestCluster, bestDist, found = en.id, en.cluster, dist, true
			}
		}
		i := 0
		for ; i < d; i++ {
			off[i]++
			if off[i] <= 1 {
				break
			}
			off[i] = -1
		}
		if i == d {
			break
		}
	}
	return bestCluster, found
}

// scanFlat is the linear fallback over every numeric seed.
func (f *Frozen) scanFlat(vec []float64) (int, bool) {
	var bestID int64
	var bestCluster int
	bestDist := math.Inf(1)
	found := false
	for i := range f.flat {
		en := &f.flat[i]
		d := distance.Euclid(en.vec, vec)
		if d <= f.radius && (d < bestDist || (d == bestDist && en.id < bestID)) {
			bestID, bestCluster, bestDist, found = en.id, en.cluster, d, true
		}
	}
	return bestCluster, found
}

// assignTokens scans the token-set side entries with the Jaccard
// distance.
func (f *Frozen) assignTokens(tokens distance.TokenSet) (int, bool) {
	var bestID int64
	var bestCluster int
	bestDist := math.Inf(1)
	found := false
	for i := range f.tokens {
		en := &f.tokens[i]
		d := distance.Jaccard(en.tokens, tokens)
		if d <= f.radius && (d < bestDist || (d == bestDist && en.id < bestID)) {
			bestID, bestCluster, bestDist, found = en.id, en.cluster, d, true
		}
	}
	return bestCluster, found
}
