package index

import (
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Linear is the scan-everything SeedIndex. It supports every point
// type the stream package knows (numeric vectors and token sets) and
// is the fallback for streams the grid cannot bucket. Insertion order
// is preserved (with swap-removal), matching the cache-friendly slice
// scan the core algorithm used before the index abstraction existed.
type Linear struct {
	entries []linearEntry
	pos     map[int64]int
	// gen counts mutations; it epoch-stamps the read-only views handed
	// out by View() (see view.go) so a stale view can be detected.
	gen  uint64
	view linearView
}

type linearEntry struct {
	id int64
	pt stream.Point
}

// NewLinear creates an empty linear index.
func NewLinear() *Linear {
	l := &Linear{pos: make(map[int64]int)}
	l.view.l = l
	return l
}

// Len implements SeedIndex.
func (l *Linear) Len() int { return len(l.entries) }

// Kind implements SeedIndex.
func (l *Linear) Kind() string { return "linear" }

// Insert implements SeedIndex.
func (l *Linear) Insert(id int64, p stream.Point) {
	l.gen++
	l.pos[id] = len(l.entries)
	l.entries = append(l.entries, linearEntry{id: id, pt: p})
}

// Remove implements SeedIndex (O(1) swap-remove).
func (l *Linear) Remove(id int64, _ stream.Point) {
	l.gen++
	i, ok := l.pos[id]
	if !ok {
		return
	}
	last := len(l.entries) - 1
	l.entries[i] = l.entries[last]
	l.pos[l.entries[i].id] = i
	l.entries = l.entries[:last]
	delete(l.pos, id)
}

// NearestWithin implements SeedIndex by scanning every entry.
func (l *Linear) NearestWithin(p stream.Point, r float64, onDist func(id int64, d float64)) (int64, float64, bool) {
	var bestID int64
	bestDist := math.Inf(1)
	found := false
	for i := range l.entries {
		en := &l.entries[i]
		d := en.pt.Distance(p)
		if onDist != nil {
			onDist(en.id, d)
		}
		if d <= r && (d < bestDist || (d == bestDist && en.id < bestID)) {
			bestID, bestDist, found = en.id, d, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// NearestWhere implements SeedIndex by scanning every entry.
func (l *Linear) NearestWhere(p stream.Point, pred func(id int64) bool) (int64, float64, bool) {
	var bestID int64
	bestDist := math.Inf(1)
	found := false
	for i := range l.entries {
		en := &l.entries[i]
		if pred != nil && !pred(en.id) {
			continue
		}
		d := en.pt.Distance(p)
		if math.IsInf(d, 1) {
			// Incomparable point types (numeric vs text) can never be
			// a nearest neighbor; mirroring the pre-index behavior,
			// they are not reported even when nothing else matches.
			continue
		}
		if d < bestDist || (d == bestDist && en.id < bestID) {
			bestID, bestDist, found = en.id, d, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestDist, true
}
