package index

import (
	"math"
	"slices"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Grid is a uniform spatial hash over seed coordinates. Space is
// partitioned into axis-aligned buckets of side `side` (the
// cluster-cell radius r), and only non-empty buckets are materialized,
// so memory is proportional to the number of seeds. A radius-r
// nearest-seed probe then touches at most the 3^d buckets neighboring
// the query point's bucket, and an unbounded nearest search expands
// bucket shells outward until no closer seed can exist.
//
// The grid only buckets numeric (Euclidean) seeds. Token-set seeds of
// degenerate mixed streams live in a side set: they are at +Inf
// distance from every numeric probe (so they never answer one), and
// token-set probes scan the side set linearly — exactly the answers
// the linear scan would give, keeping the index choice invisible in
// the clustering output even on mixed streams.
type Grid struct {
	side float64
	// buckets maps the hash of a bucket's integer coordinates to a
	// chain of buckets with that hash (collisions are resolved by
	// comparing coordinates exactly, so hashing is purely a lookup
	// accelerator — no string keys, no per-lookup formatting).
	buckets    map[uint64]*gridBucket
	nbuckets   int
	vectorless map[int64]stream.Point
	n          int
	// Probe scratch, reused across calls so the per-point hot path
	// does not allocate: centerBuf holds the query's bucket
	// coordinates, loBuf/hiBuf the per-axis window bounds, and
	// offBuf/coordBuf the box walker's cursor. They never overlap: a
	// probe uses centerBuf for its whole duration, window/shell
	// enumeration uses loBuf/hiBuf, and forBox (called beneath both)
	// uses offBuf/coordBuf.
	centerBuf, loBuf, hiBuf, offBuf, coordBuf []int64

	// Window cache: consecutive probes from the same bucket (bursty
	// streams) reuse the occupied-bucket set of the previous probe
	// instead of re-walking the (2m+1)^d window through the bucket map.
	// gen is bumped by every Insert/Remove, which is exactly when the
	// occupied-bucket set can change, so a hit is always exact.
	gen, winGen uint64
	winM        int64
	winCenter   []int64
	winBuckets  []*gridBucket
	winValid    bool

	// view is the reusable epoch-frozen read-only handle returned by
	// View() (see view.go); keeping it on the grid makes freezing
	// allocation-free.
	view gridView
}

type gridBucket struct {
	coords  []int64
	entries []gridEntry
	// next chains buckets whose coordinate hashes collide.
	next *gridBucket
}

type gridEntry struct {
	id  int64
	vec []float64
}

// NewGrid creates an empty grid with the given bucket side length,
// which must be positive. It should equal the radius used for
// NearestWithin probes: probes with r ≤ side stay within the 3^d
// neighborhood; larger radii widen the probe window proportionally.
func NewGrid(side float64) *Grid {
	if !(side > 0) {
		panic("index: grid bucket side must be positive")
	}
	g := &Grid{
		side:       side,
		buckets:    make(map[uint64]*gridBucket),
		vectorless: make(map[int64]stream.Point),
	}
	g.view.g = g
	return g
}

// Len implements SeedIndex.
func (g *Grid) Len() int { return g.n }

// Kind implements SeedIndex.
func (g *Grid) Kind() string { return "grid" }

// coordsOf quantizes a vector to integer bucket coordinates, writing
// them into the grid's center scratch buffer (valid until the next
// coordsOf call).
func (g *Grid) coordsOf(vec []float64) []int64 {
	coords := g.centerBuf[:0]
	for _, v := range vec {
		coords = append(coords, int64(math.Floor(v/g.side)))
	}
	g.centerBuf = coords
	return coords
}

// hashCoords mixes bucket coordinates into a 64-bit hash (FNV-1a over
// the coordinate words). Collisions are legal — lookup compares
// coordinates exactly — they only cost a chain hop.
func hashCoords(coords []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range coords {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// lookup returns the occupied bucket at coords, or nil.
func (g *Grid) lookup(coords []int64) (*gridBucket, bool) {
	for b := g.buckets[hashCoords(coords)]; b != nil; b = b.next {
		if slices.Equal(b.coords, coords) {
			return b, true
		}
	}
	return nil, false
}

// forAllBuckets invokes fn for every occupied bucket (chains
// included). It backs the direct-scan fallbacks of sparse or
// high-dimensional probes.
func (g *Grid) forAllBuckets(fn func(*gridBucket)) {
	for _, b := range g.buckets {
		for ; b != nil; b = b.next {
			fn(b)
		}
	}
}

// Insert implements SeedIndex.
func (g *Grid) Insert(id int64, p stream.Point) {
	g.gen++
	if p.Vector == nil {
		g.vectorless[id] = p
		g.n++
		return
	}
	coords := g.coordsOf(p.Vector)
	b, ok := g.lookup(coords)
	if !ok {
		// The bucket owns its coordinates: coords is scratch space.
		owned := append([]int64(nil), coords...)
		h := hashCoords(owned)
		b = &gridBucket{coords: owned, next: g.buckets[h]}
		g.buckets[h] = b
		g.nbuckets++
	}
	b.entries = append(b.entries, gridEntry{id: id, vec: p.Vector})
	g.n++
}

// Remove implements SeedIndex.
func (g *Grid) Remove(id int64, p stream.Point) {
	g.gen++
	if p.Vector == nil {
		if _, ok := g.vectorless[id]; ok {
			delete(g.vectorless, id)
			g.n--
		}
		return
	}
	coords := g.coordsOf(p.Vector)
	b, ok := g.lookup(coords)
	if !ok {
		return
	}
	for i := range b.entries {
		if b.entries[i].id == id {
			last := len(b.entries) - 1
			b.entries[i] = b.entries[last]
			b.entries = b.entries[:last]
			if len(b.entries) == 0 {
				g.unlinkBucket(b)
			}
			g.n--
			return
		}
	}
}

// unlinkBucket removes an emptied bucket from its hash chain.
func (g *Grid) unlinkBucket(b *gridBucket) {
	h := hashCoords(b.coords)
	cur := g.buckets[h]
	if cur == b {
		if b.next == nil {
			delete(g.buckets, h)
		} else {
			g.buckets[h] = b.next
		}
	} else {
		for ; cur != nil && cur.next != b; cur = cur.next {
		}
		if cur == nil {
			return
		}
		cur.next = b.next
	}
	b.next = nil
	g.nbuckets--
}

// NearestWithin implements SeedIndex. It probes the (2m+1)^d buckets
// with m = ceil(r/side) around the query — the 3^d neighborhood in the
// standard r == side configuration — or, when that enumeration would
// exceed the number of occupied buckets (high d, few cells), scans the
// occupied buckets directly and filters by Chebyshev bucket distance.
func (g *Grid) NearestWithin(p stream.Point, r float64, onDist func(id int64, d float64)) (int64, float64, bool) {
	if p.Vector == nil {
		// A token-set probe can only match the vectorless side set
		// (numeric seeds are at +Inf from it, as in the linear scan).
		return g.scanVectorless(p, r, onDist)
	}
	if g.nbuckets == 0 {
		return 0, 0, false
	}
	center := g.coordsOf(p.Vector)
	var bestID int64
	bestDist := math.Inf(1)
	found := false
	scan := func(b *gridBucket) {
		for i := range b.entries {
			en := &b.entries[i]
			d := distance.Euclid(en.vec, p.Vector)
			if onDist != nil {
				onDist(en.id, d)
			}
			if d <= r && (d < bestDist || (d == bestDist && en.id < bestID)) {
				bestID, bestDist, found = en.id, d, true
			}
		}
	}
	m := int64(math.Ceil(r / g.side))
	switch {
	case windowExceeds(2*m+1, len(center), g.nbuckets):
		g.forAllBuckets(func(b *gridBucket) {
			if chebyshev(b.coords, center) <= m {
				scan(b)
			}
		})
	case g.winValid && g.winGen == g.gen && g.winM == m && slices.Equal(g.winCenter, center):
		// Same bucket as the previous probe and no membership change
		// since: the cached occupied-bucket window is exact.
		for _, b := range g.winBuckets {
			scan(b)
		}
	default:
		g.winBuckets = g.winBuckets[:0]
		g.forWindowBuckets(center, m, func(b *gridBucket) {
			g.winBuckets = append(g.winBuckets, b)
			scan(b)
		})
		g.winCenter = append(g.winCenter[:0], center...)
		g.winM, g.winGen, g.winValid = m, g.gen, true
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// NearestWhere implements SeedIndex with an expanding-shell search:
// shell k holds the buckets at Chebyshev bucket distance exactly k
// from the query's bucket, and every seed in shell k is strictly
// farther than (k−1)·side, so the search can stop as soon as the
// current best distance rules the next shell out. When enumerating a
// shell would cost more than scanning the occupied buckets directly
// (sparse or high-dimensional grids), it falls back to one exact
// direct scan of the not-yet-visited buckets.
func (g *Grid) NearestWhere(p stream.Point, pred func(id int64) bool) (int64, float64, bool) {
	if p.Vector == nil {
		var bestID int64
		bestDist := math.Inf(1)
		found := false
		for id, q := range g.vectorless {
			if pred != nil && !pred(id) {
				continue
			}
			d := q.Distance(p)
			if math.IsInf(d, 1) {
				continue
			}
			if d < bestDist || (d == bestDist && id < bestID) {
				bestID, bestDist, found = id, d, true
			}
		}
		if !found {
			return 0, 0, false
		}
		return bestID, bestDist, true
	}
	if g.nbuckets == 0 {
		return 0, 0, false
	}
	center := g.coordsOf(p.Vector)
	var bestID int64
	bestDist := math.Inf(1)
	found := false
	scan := func(b *gridBucket) {
		for i := range b.entries {
			en := &b.entries[i]
			if pred != nil && !pred(en.id) {
				continue
			}
			d := distance.Euclid(en.vec, p.Vector)
			if d < bestDist || (d == bestDist && found && en.id < bestID) {
				bestID, bestDist, found = en.id, d, true
			}
		}
	}
	visited := 0
	for k := int64(0); ; k++ {
		if visited >= g.nbuckets {
			break
		}
		if found && float64(k-1)*g.side >= bestDist {
			break
		}
		if windowExceeds(2*k+1, len(center), g.nbuckets) {
			g.forAllBuckets(func(b *gridBucket) {
				if chebyshev(b.coords, center) >= k {
					scan(b)
				}
			})
			break
		}
		g.forShellBuckets(center, k, func(b *gridBucket) {
			visited++
			scan(b)
		})
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// scanVectorless answers a radius-bounded probe against the vectorless
// side set, reporting every measured distance through onDist like the
// main probe path does.
func (g *Grid) scanVectorless(p stream.Point, r float64, onDist func(id int64, d float64)) (int64, float64, bool) {
	var bestID int64
	bestDist := math.Inf(1)
	found := false
	for id, q := range g.vectorless {
		d := q.Distance(p)
		if onDist != nil {
			onDist(id, d)
		}
		if d <= r && (d < bestDist || (d == bestDist && id < bestID)) {
			bestID, bestDist, found = id, d, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// resizeScratch returns buf resized to d elements, reallocating only
// when the capacity grew (contents are overwritten by the caller).
func resizeScratch(buf []int64, d int) []int64 {
	if cap(buf) < d {
		return make([]int64, d)
	}
	return buf[:d]
}

// forWindowBuckets invokes fn for every occupied bucket whose
// coordinates are within Chebyshev distance m of center.
func (g *Grid) forWindowBuckets(center []int64, m int64, fn func(*gridBucket)) {
	d := len(center)
	lo := resizeScratch(g.loBuf, d)
	hi := resizeScratch(g.hiBuf, d)
	g.loBuf, g.hiBuf = lo, hi
	for i := range lo {
		lo[i], hi[i] = -m, m
	}
	g.forBox(center, lo, hi, fn)
}

// forShellBuckets invokes fn for every occupied bucket at Chebyshev
// distance exactly k from center. It enumerates only the shell
// surface — for each axis a, the two faces with offset ±k on a, axes
// before a strictly inside, axes after a unrestricted — so every
// surface offset is produced exactly once and the cost is the surface
// size, not the enclosing window.
func (g *Grid) forShellBuckets(center []int64, k int64, fn func(*gridBucket)) {
	d := len(center)
	if k == 0 || d == 0 {
		if k == 0 {
			if b, ok := g.lookup(center); ok {
				fn(b)
			}
		}
		return
	}
	lo := resizeScratch(g.loBuf, d)
	hi := resizeScratch(g.hiBuf, d)
	g.loBuf, g.hiBuf = lo, hi
	for a := 0; a < d; a++ {
		for _, s := range [2]int64{-k, k} {
			for j := 0; j < d; j++ {
				switch {
				case j == a:
					lo[j], hi[j] = s, s
				case j < a:
					lo[j], hi[j] = -(k - 1), k-1
				default:
					lo[j], hi[j] = -k, k
				}
			}
			g.forBox(center, lo, hi, fn)
		}
	}
}

// forBox invokes fn for every occupied bucket whose offset from center
// lies in the axis-aligned box [lo, hi] (per-axis inclusive bounds).
func (g *Grid) forBox(center, lo, hi []int64, fn func(*gridBucket)) {
	d := len(center)
	off := resizeScratch(g.offBuf, d)
	coords := resizeScratch(g.coordBuf, d)
	g.offBuf, g.coordBuf = off, coords
	for i := range off {
		if lo[i] > hi[i] {
			return
		}
		off[i] = lo[i]
	}
	for {
		for i := range coords {
			coords[i] = center[i] + off[i]
		}
		if b, ok := g.lookup(coords); ok {
			fn(b)
		}
		i := 0
		for ; i < d; i++ {
			off[i]++
			if off[i] <= hi[i] {
				break
			}
			off[i] = lo[i]
		}
		if i == d {
			return
		}
	}
}

// chebyshev returns the L∞ distance between two bucket coordinates.
func chebyshev(a, b []int64) int64 {
	var max int64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// windowExceeds reports whether width^d > cap, without overflowing.
func windowExceeds(width int64, d, cap int) bool {
	prod := int64(1)
	for i := 0; i < d; i++ {
		prod *= width
		if prod > int64(cap) {
			return true
		}
	}
	return false
}
