package index

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// frozenReference is the naive rule Frozen.Assign must reproduce: the
// cluster of the seed nearest to p within radius, ties to the lowest
// cell ID, +Inf across the numeric/token divide.
type frozenSeed struct {
	id      int64
	cluster int
	p       stream.Point
}

func frozenReference(seeds []frozenSeed, p stream.Point, radius float64) (int, bool) {
	best := -1
	bestDist := math.Inf(1)
	var bestID int64
	for _, s := range seeds {
		d := s.p.Distance(p)
		if d <= radius && (best == -1 || d < bestDist || (d == bestDist && s.id < bestID)) {
			best, bestDist, bestID = s.cluster, d, s.id
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

func buildFrozen(seeds []frozenSeed, radius float64) *Frozen {
	b := NewFrozenBuilder(radius)
	for _, s := range seeds {
		b.Add(s.id, s.p, s.cluster)
	}
	return b.Freeze()
}

// TestFrozenMatchesReference cross-checks the gridded frozen index
// against the naive scan on random seed sets and probes, including
// probes just inside and outside the radius.
func TestFrozenMatchesReference(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(dim) * 77))
		const radius = 0.5
		var seeds []frozenSeed
		for i := 0; i < 300; i++ {
			vec := make([]float64, dim)
			for d := range vec {
				vec[d] = rng.Float64() * 10
			}
			seeds = append(seeds, frozenSeed{id: int64(i), cluster: 1 + i%7, p: stream.Point{Vector: vec}})
		}
		f := buildFrozen(seeds, radius)
		if f.Len() != len(seeds) {
			t.Fatalf("dim %d: Len = %d, want %d", dim, f.Len(), len(seeds))
		}
		for q := 0; q < 500; q++ {
			vec := make([]float64, dim)
			for d := range vec {
				vec[d] = rng.Float64()*12 - 1
			}
			p := stream.Point{Vector: vec}
			gotID, gotOK := f.Assign(p)
			wantID, wantOK := frozenReference(seeds, p, radius)
			if gotOK != wantOK || (gotOK && gotID != wantID) {
				t.Fatalf("dim %d probe %v: Assign = (%d,%v), reference = (%d,%v)",
					dim, vec, gotID, gotOK, wantID, wantOK)
			}
		}
	}
}

// TestFrozenHighDimFallsBack checks that dimensionality above the grid
// budget uses the exact flat scan.
func TestFrozenHighDimFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const dim = MaxFrozenGridDim + 4
	var seeds []frozenSeed
	for i := 0; i < 100; i++ {
		vec := make([]float64, dim)
		for d := range vec {
			vec[d] = rng.Float64() * 4
		}
		seeds = append(seeds, frozenSeed{id: int64(i), cluster: i % 3, p: stream.Point{Vector: vec}})
	}
	f := buildFrozen(seeds, 1.0)
	for q := 0; q < 200; q++ {
		vec := make([]float64, dim)
		for d := range vec {
			vec[d] = rng.Float64() * 4
		}
		p := stream.Point{Vector: vec}
		gotID, gotOK := f.Assign(p)
		wantID, wantOK := frozenReference(seeds, p, 1.0)
		if gotOK != wantOK || (gotOK && gotID != wantID) {
			t.Fatalf("probe %d: Assign = (%d,%v), reference = (%d,%v)", q, gotID, gotOK, wantID, wantOK)
		}
	}
}

// TestFrozenTokenSeeds checks the token-set side: token probes match
// token seeds under Jaccard and never match numeric seeds.
func TestFrozenTokenSeeds(t *testing.T) {
	seeds := []frozenSeed{
		{id: 0, cluster: 1, p: stream.Point{Tokens: distance.NewTokenSet("a", "b", "c")}},
		{id: 1, cluster: 2, p: stream.Point{Tokens: distance.NewTokenSet("x", "y", "z")}},
		{id: 2, cluster: 3, p: stream.Point{Vector: []float64{0, 0}}},
	}
	f := buildFrozen(seeds, 0.5)
	if id, ok := f.Assign(stream.Point{Tokens: distance.NewTokenSet("a", "b", "c", "d")}); !ok || id != 1 {
		t.Fatalf("token probe = (%d,%v), want (1,true)", id, ok)
	}
	if _, ok := f.Assign(stream.Point{Tokens: distance.NewTokenSet("q", "r", "s")}); ok {
		t.Fatal("unrelated token probe matched")
	}
	if id, ok := f.Assign(stream.Point{Vector: []float64{0.1, 0}}); !ok || id != 3 {
		t.Fatalf("numeric probe = (%d,%v), want (3,true)", id, ok)
	}
}

// TestFrozenEmpty checks the degenerate empty index.
func TestFrozenEmpty(t *testing.T) {
	f := NewFrozenBuilder(1).Freeze()
	if _, ok := f.Assign(stream.Point{Vector: []float64{0}}); ok {
		t.Fatal("empty index assigned a point")
	}
	if _, ok := f.Assign(stream.Point{Tokens: distance.NewTokenSet("a")}); ok {
		t.Fatal("empty index assigned a token point")
	}
}

// TestFrozenAssignNoAlloc pins the zero-allocation query contract at
// the index level for both the gridded and the flat path.
func TestFrozenAssignNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var seeds []frozenSeed
	for i := 0; i < 500; i++ {
		seeds = append(seeds, frozenSeed{
			id: int64(i), cluster: i % 5,
			p: stream.Point{Vector: []float64{rng.Float64() * 20, rng.Float64() * 20}},
		})
	}
	f := buildFrozen(seeds, 0.5)
	probe := stream.Point{Vector: []float64{10, 10}}
	if allocs := testing.AllocsPerRun(200, func() { f.Assign(probe) }); allocs != 0 {
		t.Fatalf("grid Assign allocates %.1f per call", allocs)
	}
}
