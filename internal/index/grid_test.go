package index

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

func vec(coords ...float64) stream.Point {
	return stream.Point{Vector: coords}
}

func TestEmptyIndexes(t *testing.T) {
	for _, idx := range []SeedIndex{NewGrid(1.0), NewLinear()} {
		if idx.Len() != 0 {
			t.Fatalf("%s: empty index has Len %d", idx.Kind(), idx.Len())
		}
		if _, _, ok := idx.NearestWithin(vec(0, 0), 1, nil); ok {
			t.Fatalf("%s: NearestWithin on empty index returned ok", idx.Kind())
		}
		if _, _, ok := idx.NearestWhere(vec(0, 0), nil); ok {
			t.Fatalf("%s: NearestWhere on empty index returned ok", idx.Kind())
		}
	}
}

func TestGridInsertRemove(t *testing.T) {
	g := NewGrid(1.0)
	g.Insert(1, vec(0.5, 0.5))
	g.Insert(2, vec(5.5, 5.5))
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if id, d, ok := g.NearestWithin(vec(0.4, 0.5), 1, nil); !ok || id != 1 || math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("NearestWithin = (%d, %v, %v), want cell 1 at 0.1", id, d, ok)
	}
	g.Remove(1, vec(0.5, 0.5))
	if g.Len() != 1 {
		t.Fatalf("Len after remove = %d, want 1", g.Len())
	}
	if _, _, ok := g.NearestWithin(vec(0.4, 0.5), 1, nil); ok {
		t.Fatal("removed seed still found within radius")
	}
	if id, _, ok := g.NearestWhere(vec(0.4, 0.5), nil); !ok || id != 2 {
		t.Fatalf("NearestWhere after remove = (%d, %v), want cell 2", id, ok)
	}
	// Removing a seed twice, or one that was never inserted, is a no-op.
	g.Remove(1, vec(0.5, 0.5))
	g.Remove(99, vec(7, 7))
	if g.Len() != 1 {
		t.Fatalf("Len after no-op removes = %d, want 1", g.Len())
	}
}

func TestGridBucketBoundaries(t *testing.T) {
	g := NewGrid(1.0)
	// Seeds exactly on bucket boundaries, including negative coords.
	g.Insert(1, vec(0, 0))
	g.Insert(2, vec(1, 0))
	g.Insert(3, vec(-1, 0))
	g.Insert(4, vec(-2.5, 0))

	// A probe at distance exactly r must still find the seed (the
	// absorb condition of the core algorithm is d ≤ r inclusive).
	if id, d, ok := g.NearestWithin(vec(2, 0), 1, nil); !ok || id != 2 || d != 1 {
		t.Fatalf("exact-radius probe = (%d, %v, %v), want cell 2 at 1", id, d, ok)
	}
	// Equidistant seeds break the tie toward the lowest ID.
	if id, d, ok := g.NearestWithin(vec(0.5, 0), 1, nil); !ok || id != 1 || d != 0.5 {
		t.Fatalf("tie probe = (%d, %v, %v), want cell 1 at 0.5", id, d, ok)
	}
	// A probe sitting exactly on a boundary sees both sides.
	if id, _, ok := g.NearestWithin(vec(-1.8, 0), 1, nil); !ok || id != 4 {
		t.Fatalf("negative-coord probe = (%d, %v), want cell 4", id, ok)
	}
}

func TestGridNearestWhere(t *testing.T) {
	g := NewGrid(1.0)
	g.Insert(1, vec(0, 0))
	g.Insert(2, vec(10, 0))
	g.Insert(3, vec(10.5, 0))
	g.Insert(4, vec(-40, 0))

	// Unrestricted: nearest overall.
	if id, d, ok := g.NearestWhere(vec(0.25, 0), nil); !ok || id != 1 || d != 0.25 {
		t.Fatalf("NearestWhere = (%d, %v, %v), want cell 1", id, d, ok)
	}
	// Predicate excludes the near seed: the shell search must keep
	// expanding (far past the 3^d neighborhood) to the admissible one.
	not1 := func(id int64) bool { return id != 1 }
	if id, d, ok := g.NearestWhere(vec(0.25, 0), not1); !ok || id != 2 || d != 9.75 {
		t.Fatalf("NearestWhere(≠1) = (%d, %v, %v), want cell 2 at 9.75", id, d, ok)
	}
	// Nothing admissible.
	if _, _, ok := g.NearestWhere(vec(0, 0), func(int64) bool { return false }); ok {
		t.Fatal("NearestWhere with rejecting predicate returned ok")
	}
	// A probe far from every seed exercises the direct-scan fallback
	// (the shell window quickly exceeds the occupied bucket count).
	if id, _, ok := g.NearestWhere(vec(-39, 200), nil); !ok || id != 4 {
		t.Fatalf("far probe = (%d, %v), want cell 4", id, ok)
	}
}

func TestGridVectorlessEntries(t *testing.T) {
	tokens := func(toks ...string) stream.Point {
		set := map[string]struct{}{}
		for _, tok := range toks {
			set[tok] = struct{}{}
		}
		return stream.Point{Tokens: set}
	}
	g := NewGrid(0.5)
	l := NewLinear()
	for id, p := range map[int64]stream.Point{
		1: tokens("a", "b"),
		2: vec(1, 1),
		3: tokens("a", "c"),
	} {
		g.Insert(id, p)
		l.Insert(id, p)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	// Token-set entries never answer numeric probes...
	if id, _, ok := g.NearestWhere(vec(1, 1), nil); !ok || id != 2 {
		t.Fatalf("numeric NearestWhere = (%d, %v), want cell 2", id, ok)
	}
	// ...but token-set probes reach them, with the same answers the
	// linear scan gives (Jaccard distance, lowest-ID tie-break).
	probe := tokens("a", "b", "d")
	gid, gd, gok := g.NearestWithin(probe, 0.9, nil)
	lid, ld, lok := l.NearestWithin(probe, 0.9, nil)
	if !gok || gid != 1 || gok != lok || gid != lid || gd != ld {
		t.Fatalf("token probe: grid (%d, %v, %v) vs linear (%d, %v, %v)", gid, gd, gok, lid, ld, lok)
	}
	gid, gd, gok = g.NearestWhere(probe, func(id int64) bool { return id != 1 })
	lid, ld, lok = l.NearestWhere(probe, func(id int64) bool { return id != 1 })
	if !gok || gid != 3 || gok != lok || gid != lid || gd != ld {
		t.Fatalf("token NearestWhere: grid (%d, %v, %v) vs linear (%d, %v, %v)", gid, gd, gok, lid, ld, lok)
	}
	g.Remove(1, tokens("a", "b"))
	if g.Len() != 2 {
		t.Fatalf("Len after vectorless remove = %d, want 2", g.Len())
	}
	if _, _, ok := g.NearestWithin(tokens("a", "b"), 0.1, nil); ok {
		t.Fatal("removed token-set seed still found")
	}
}

func TestGridOnDistCallback(t *testing.T) {
	g := NewGrid(1.0)
	g.Insert(1, vec(0, 0))
	g.Insert(2, vec(0.5, 0))
	g.Insert(3, vec(20, 20)) // far outside the probe window
	seen := map[int64]float64{}
	if _, _, ok := g.NearestWithin(vec(0.25, 0), 1, func(id int64, d float64) { seen[id] = d }); !ok {
		t.Fatal("probe failed")
	}
	if _, ok := seen[1]; !ok {
		t.Fatal("onDist not called for cell 1")
	}
	if _, ok := seen[2]; !ok {
		t.Fatal("onDist not called for cell 2")
	}
	if _, ok := seen[3]; ok {
		t.Fatal("onDist called for a cell outside the probe window")
	}
}

// TestGridMatchesLinear cross-checks the grid against the linear scan
// on random point sets: every query must return the identical (id,
// distance) answer. This is the index-level half of the equivalence
// property (internal/core asserts the algorithm-level half).
func TestGridMatchesLinear(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(40 + dim)))
		side := 0.8
		g := NewGrid(side)
		l := NewLinear()
		n := 400
		pts := make([]stream.Point, 0, n)
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.Float64()*20 - 10
			}
			p := stream.Point{Vector: v}
			pts = append(pts, p)
			g.Insert(int64(i), p)
			l.Insert(int64(i), p)
		}
		// Random removals keep both sides in sync.
		for i := 0; i < n/5; i++ {
			id := int64(rng.Intn(n))
			g.Remove(id, pts[id])
			l.Remove(id, pts[id])
		}
		if g.Len() != l.Len() {
			t.Fatalf("dim %d: Len mismatch grid %d linear %d", dim, g.Len(), l.Len())
		}
		pred := func(id int64) bool { return id%3 != 0 }
		for q := 0; q < 200; q++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.Float64()*24 - 12
			}
			p := stream.Point{Vector: v}
			gid, gd, gok := g.NearestWithin(p, side, nil)
			lid, ld, lok := l.NearestWithin(p, side, nil)
			if gok != lok || (gok && (gid != lid || gd != ld)) {
				t.Fatalf("dim %d query %d: NearestWithin grid (%d,%v,%v) != linear (%d,%v,%v)",
					dim, q, gid, gd, gok, lid, ld, lok)
			}
			gid, gd, gok = g.NearestWhere(p, pred)
			lid, ld, lok = l.NearestWhere(p, pred)
			if gok != lok || (gok && (gid != lid || gd != ld)) {
				t.Fatalf("dim %d query %d: NearestWhere grid (%d,%v,%v) != linear (%d,%v,%v)",
					dim, q, gid, gd, gok, lid, ld, lok)
			}
		}
	}
}
