// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
// It is the classic offline clustering step used by CluStream-style
// two-phase stream algorithms (Sec. 7) and a convenience baseline for
// the examples and the data-generator tests.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes k-means.
type Config struct {
	// K is the number of clusters. Required.
	K int
	// MaxIterations bounds Lloyd's iterations (default 100).
	MaxIterations int
	// Seed seeds the k-means++ initialization.
	Seed int64
	// Tolerance stops the iteration when no centroid moves farther than
	// this (default 1e-6).
	Tolerance float64
}

func (c *Config) defaults() {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("kmeans: k must be at least 1, got %d", c.K)
	}
	return nil
}

// Result holds the clustering output.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Assignment is each point's cluster index.
	Assignment []int
	// Inertia is the sum of squared distances of points to their
	// centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Cluster runs k-means over the points' vectors.
func Cluster(points []stream.Point, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.defaults()
	n := len(points)
	if n == 0 {
		return Result{}, errors.New("kmeans: no points")
	}
	if cfg.K > n {
		return Result{}, fmt.Errorf("kmeans: k=%d exceeds the number of points %d", cfg.K, n)
	}
	dim := points[0].Dim()
	for i, p := range points {
		if p.Dim() != dim || p.IsText() {
			return Result{}, fmt.Errorf("kmeans: point %d has dimension %d (text=%v), want %d numeric", i, p.Dim(), p.IsText(), dim)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centroids := plusPlusInit(points, cfg.K, rng)
	assignment := make([]int, n)

	iterations := 0
	for ; iterations < cfg.MaxIterations; iterations++ {
		// Assignment step.
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for k, c := range centroids {
				if d := distance.SqEuclid(p.Vector, c); d < bestDist {
					best, bestDist = k, d
				}
			}
			assignment[i] = best
		}
		// Update step.
		sums := make([][]float64, cfg.K)
		counts := make([]int, cfg.K)
		for k := range sums {
			sums[k] = make([]float64, dim)
		}
		for i, p := range points {
			k := assignment[i]
			counts[k]++
			for d, v := range p.Vector {
				sums[k][d] += v
			}
		}
		moved := 0.0
		for k := range centroids {
			if counts[k] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[k] = append([]float64(nil), points[rng.Intn(n)].Vector...)
				moved = math.Inf(1)
				continue
			}
			next := make([]float64, dim)
			for d := range next {
				next[d] = sums[k][d] / float64(counts[k])
			}
			if d := distance.Euclid(next, centroids[k]); d > moved {
				moved = d
			}
			centroids[k] = next
		}
		if moved <= cfg.Tolerance {
			iterations++
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += distance.SqEuclid(p.Vector, centroids[assignment[i]])
	}
	return Result{Centroids: centroids, Assignment: assignment, Inertia: inertia, Iterations: iterations}, nil
}

// plusPlusInit picks k initial centroids with the k-means++ scheme.
func plusPlusInit(points []stream.Point, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)].Vector...))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := distance.SqEuclid(p.Vector, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)].Vector...))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range dists {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[chosen].Vector...))
	}
	return centroids
}
