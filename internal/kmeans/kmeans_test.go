package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func blobs(centers [][]float64, n int, sigma float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []stream.Point
	for label, c := range centers {
		for i := 0; i < n; i++ {
			vec := make([]float64, len(c))
			for d := range vec {
				vec[d] = c[d] + rng.NormFloat64()*sigma
			}
			pts = append(pts, stream.Point{ID: int64(len(pts)), Vector: vec, Label: label})
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{K: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{K: 0}).Validate(); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := Cluster(nil, Config{K: 1}); err == nil {
		t.Error("empty input should be rejected")
	}
	pts := blobs([][]float64{{0, 0}}, 3, 0.1, 1)
	if _, err := Cluster(pts, Config{K: 10}); err == nil {
		t.Error("k larger than n should be rejected")
	}
	if _, err := Cluster([]stream.Point{{Tokens: distance.NewTokenSet("a")}}, Config{K: 1}); err == nil {
		t.Error("text points should be rejected")
	}
}

func TestThreeBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts := blobs(centers, 60, 0.6, 2)
	res, err := Cluster(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Every true center must be close to some centroid.
	for _, c := range centers {
		best := math.Inf(1)
		for _, got := range res.Centroids {
			if d := distance.Euclid(c, got); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("no centroid near true center %v (nearest at distance %v)", c, best)
		}
	}
	// Assignments are consistent with labels.
	counts := map[int]map[int]int{}
	for i, a := range res.Assignment {
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][pts[i].Label]++
	}
	for cluster, labelCounts := range counts {
		best, total := 0, 0
		for _, c := range labelCounts {
			total += c
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.95*float64(total) {
			t.Errorf("cluster %d impure: %v", cluster, labelCounts)
		}
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v, want positive", res.Inertia)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestKEqualsN(t *testing.T) {
	pts := blobs([][]float64{{0, 0}}, 5, 1, 3)
	res, err := Cluster(pts, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-6 {
		// With k = n every point can have its own centroid; inertia
		// should collapse to (nearly) zero.
		t.Errorf("inertia with k=n should be ~0, got %v", res.Inertia)
	}
}

func TestIdenticalPoints(t *testing.T) {
	var pts []stream.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, stream.Point{ID: int64(i), Vector: []float64{3, 3}})
	}
	res, err := Cluster(pts, Config{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points should have zero inertia, got %v", res.Inertia)
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {6, 6}}, 40, 0.5, 5)
	a, err := Cluster(pts, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}
