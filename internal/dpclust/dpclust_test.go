package dpclust

import (
	"math"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// blobs generates k Gaussian blobs of n points each at the given
// centers.
func blobs(centers [][]float64, n int, sigma float64, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []stream.Point
	for label, c := range centers {
		for i := 0; i < n; i++ {
			vec := make([]float64, len(c))
			for d := range vec {
				vec[d] = c[d] + rng.NormFloat64()*sigma
			}
			pts = append(pts, stream.Point{ID: int64(len(pts)), Vector: vec, Label: label})
		}
	}
	return pts
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{CutoffDistance: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, cfg := range []Config{{}, {CutoffDistance: -1}, {CutoffDistance: 1, Tau: -1}, {CutoffDistance: 1, Xi: -1}} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
	if _, err := Cluster(nil, Config{CutoffDistance: 1}); err == nil {
		t.Error("empty input should be rejected")
	}
}

func TestClusterTwoBlobs(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {10, 10}}, 60, 0.6, 1)
	res, err := Cluster(pts, Config{CutoffDistance: 1.5, Tau: 4, Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Fatalf("found %d clusters, want 2 (peaks %v)", res.NumClusters(), res.Peaks)
	}
	// Clusters must match the generating blobs (up to label permutation).
	counts := map[int]map[int]int{}
	for i, a := range res.Assignment {
		if a == Noise {
			continue
		}
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][pts[i].Label]++
	}
	for cluster, labelCounts := range counts {
		best, total := 0, 0
		for _, c := range labelCounts {
			total += c
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.95*float64(total) {
			t.Errorf("cluster %d is impure: %v", cluster, labelCounts)
		}
	}
	// The decision graph has one entry per point, with exactly one
	// infinite delta (the global density maximum).
	graph := res.DecisionGraph()
	if len(graph) != len(pts) {
		t.Fatalf("decision graph has %d entries, want %d", len(graph), len(pts))
	}
	infs := 0
	for _, g := range graph {
		if math.IsInf(g[1], 1) {
			infs++
		}
	}
	if infs != 1 {
		t.Errorf("decision graph has %d infinite deltas, want 1", infs)
	}
}

func TestGaussianKernelDensity(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {8, 8}}, 40, 0.5, 2)
	res, err := Cluster(pts, Config{CutoffDistance: 1.0, Tau: 3, Xi: 0.5, GaussianKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Errorf("gaussian kernel found %d clusters, want 2", res.NumClusters())
	}
	for _, r := range res.Rho {
		if r < 0 || math.IsNaN(r) {
			t.Fatalf("invalid kernel density %v", r)
		}
	}
}

func TestOutliers(t *testing.T) {
	pts := blobs([][]float64{{0, 0}}, 80, 0.5, 3)
	// A few isolated far-away points are outliers: low density.
	for i := 0; i < 4; i++ {
		pts = append(pts, stream.Point{ID: int64(len(pts)), Vector: []float64{50 + float64(i)*20, -40}, Label: stream.NoLabel})
	}
	res, err := Cluster(pts, Config{CutoffDistance: 1.5, Tau: 5, Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := len(pts) - 4; i < len(pts); i++ {
		if res.Assignment[i] != Noise {
			t.Errorf("isolated point %d assigned to cluster %d, want noise", i, res.Assignment[i])
		}
	}
	if res.NumClusters() != 1 {
		t.Errorf("found %d clusters, want 1", res.NumClusters())
	}
}

func TestDependencyChainProperties(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {6, 0}}, 50, 0.5, 4)
	res, err := Cluster(pts, Config{CutoffDistance: 1.2, Tau: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		dep := res.Dependency[i]
		if dep == -1 {
			if !math.IsInf(res.Delta[i], 1) {
				t.Errorf("point %d has no dependency but finite delta %v", i, res.Delta[i])
			}
			continue
		}
		// The dependency has density at least as high.
		if res.Rho[dep] < res.Rho[i] {
			t.Errorf("point %d depends on a lower-density point", i)
		}
		// Delta is the actual distance to the dependency.
		if d := pts[i].Distance(pts[dep]); math.Abs(d-res.Delta[i]) > 1e-9 {
			t.Errorf("point %d delta %v != distance to dependency %v", i, res.Delta[i], d)
		}
		// Delta is minimal: no strictly denser point is closer.
		for j := range pts {
			if res.Rho[j] > res.Rho[i] && pts[i].Distance(pts[j]) < res.Delta[i]-1e-9 {
				t.Errorf("point %d has a closer higher-density point than its dependency", i)
			}
		}
	}
}

func TestSuggestCutoff(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {5, 5}}, 30, 0.5, 5)
	lo, err := SuggestCutoff(pts, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := SuggestCutoff(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 || hi < lo {
		t.Errorf("cutoff suggestions out of order: %v, %v", lo, hi)
	}
	if _, err := SuggestCutoff(pts[:1], 0.01); err == nil {
		t.Error("single point should be rejected")
	}
	if _, err := SuggestCutoff(pts, 1.5); err == nil {
		t.Error("quantile out of range should be rejected")
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []stream.Point{{ID: 0, Vector: []float64{1, 2}}}
	res, err := Cluster(pts, Config{CutoffDistance: 1, Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 || res.Assignment[0] != 0 {
		t.Errorf("single point should form one cluster: %+v", res)
	}
}
