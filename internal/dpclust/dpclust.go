// Package dpclust implements the batch Density Peaks clustering
// algorithm of Rodriguez & Laio (Science 2014) that EDMStream builds
// on (Sec. 2.1): every point gets a local density ρ (the number of
// points within the cutoff distance d_c) and a dependent distance δ
// (the distance to the nearest point with higher density); density
// peaks are the points with anomalously large ρ and δ, and every other
// point joins the cluster of its nearest higher-density neighbour.
//
// The package also exports the decision graph (the ρ–δ scatter used to
// pick the thresholds) and is used by the experiment harness for the
// Fig. 15 decision-graph comparison.
package dpclust

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Config parameterizes the batch DP clustering.
type Config struct {
	// CutoffDistance is d_c in Eq. (1). Required.
	CutoffDistance float64
	// Tau is the dependent-distance threshold: points with δ > Tau and
	// density above Xi are density peaks (cluster centers).
	Tau float64
	// Xi is the density threshold below which points are outliers
	// (ρ ≤ ξ). Zero keeps every point.
	Xi float64
	// GaussianKernel switches the density estimate from the hard cutoff
	// count of Eq. (1) to the smooth kernel Σ exp(−(d/d_c)²), which is
	// the variant Rodriguez & Laio recommend for small datasets.
	GaussianKernel bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CutoffDistance <= 0 {
		return fmt.Errorf("dpclust: cutoff distance d_c must be positive, got %v", c.CutoffDistance)
	}
	if c.Tau < 0 {
		return fmt.Errorf("dpclust: τ must be non-negative, got %v", c.Tau)
	}
	if c.Xi < 0 {
		return fmt.Errorf("dpclust: ξ must be non-negative, got %v", c.Xi)
	}
	return nil
}

// Noise is the cluster assignment of outlier points.
const Noise = -1

// Result holds the output of the clustering.
type Result struct {
	// Rho is each point's local density.
	Rho []float64
	// Delta is each point's dependent distance (+Inf for the global
	// density maximum).
	Delta []float64
	// Dependency is the index of each point's nearest higher-density
	// point (-1 for the global maximum).
	Dependency []int
	// Assignment is each point's cluster index (0-based) or Noise.
	Assignment []int
	// Peaks are the indexes of the density peaks, one per cluster, in
	// cluster order.
	Peaks []int
}

// NumClusters returns the number of clusters found.
func (r Result) NumClusters() int { return len(r.Peaks) }

// DecisionGraph returns the (ρ, δ) pairs of all points, which is the
// scatter plot used to choose τ and ξ (Fig. 2b).
func (r Result) DecisionGraph() [][2]float64 {
	out := make([][2]float64, len(r.Rho))
	for i := range r.Rho {
		out[i] = [2]float64{r.Rho[i], r.Delta[i]}
	}
	return out
}

// Cluster runs batch DP clustering over the points.
func Cluster(points []stream.Point, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := len(points)
	if n == 0 {
		return Result{}, errors.New("dpclust: no points")
	}

	// Each point counts itself (distance 0 < d_c, and exp(0) = 1 for the
	// kernel variant), so densities are always at least 1.
	rho := make([]float64, n)
	for i := range rho {
		rho[i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := points[i].Distance(points[j])
			if cfg.GaussianKernel {
				w := math.Exp(-(d / cfg.CutoffDistance) * (d / cfg.CutoffDistance))
				rho[i] += w
				rho[j] += w
			} else if d < cfg.CutoffDistance {
				rho[i]++
				rho[j]++
			}
		}
	}

	// Process points in descending density; each point's dependency is
	// its nearest already-processed (higher-density) point.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rho[order[a]] != rho[order[b]] {
			return rho[order[a]] > rho[order[b]]
		}
		return order[a] < order[b]
	})

	delta := make([]float64, n)
	dependency := make([]int, n)
	for i := range dependency {
		dependency[i] = -1
		delta[i] = math.Inf(1)
	}
	for rank, idx := range order {
		for prev := 0; prev < rank; prev++ {
			j := order[prev]
			if d := points[idx].Distance(points[j]); d < delta[idx] {
				delta[idx] = d
				dependency[idx] = j
			}
		}
	}

	// Density peaks: high density and large dependent distance. The
	// global maximum (infinite δ) is always a peak if it clears ξ.
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = Noise
	}
	var peaks []int
	for _, idx := range order {
		if rho[idx] <= cfg.Xi {
			continue
		}
		if delta[idx] > cfg.Tau {
			assignment[idx] = len(peaks)
			peaks = append(peaks, idx)
		}
	}
	// Remaining points inherit the cluster of their dependency,
	// processed in descending density so the dependency is resolved
	// first.
	for _, idx := range order {
		if assignment[idx] != Noise || rho[idx] <= cfg.Xi {
			continue
		}
		if dep := dependency[idx]; dep >= 0 {
			assignment[idx] = assignment[dep]
		}
	}

	return Result{Rho: rho, Delta: delta, Dependency: dependency, Assignment: assignment, Peaks: peaks}, nil
}

// SuggestCutoff returns the q-quantile of the pairwise distances, the
// rule of thumb Rodriguez & Laio give for choosing d_c (between 0.5%
// and 2% of the sorted pairwise distances).
func SuggestCutoff(points []stream.Point, q float64) (float64, error) {
	if len(points) < 2 {
		return 0, errors.New("dpclust: need at least two points to suggest d_c")
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("dpclust: quantile %v out of range (0,1)", q)
	}
	var dists []float64
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			dists = append(dists, points[i].Distance(points[j]))
		}
	}
	sort.Float64s(dists)
	idx := int(q * float64(len(dists)))
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	return dists[idx], nil
}
