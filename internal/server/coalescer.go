package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/obs"
)

// errDraining is returned to ingest requests that arrive (or are
// still queued unserviced) while the server shuts down.
var errDraining = errors.New("server is draining")

// ingestReq is one HTTP ingest request queued for coalescing.
type ingestReq struct {
	pts []edmstream.Point
	// enqueued is when the request entered the queue; the coalescer
	// reports the oldest request's queue time as the batch wait.
	enqueued time.Time
	// reply receives exactly one ingestReply once the request's
	// points are committed (or the commit failed). Buffered so the
	// coalescer never blocks on a slow or vanished client.
	reply chan ingestReply
}

type ingestReply struct {
	cells []int64
	err   error
}

// coalescer accumulates concurrently arriving ingest requests into
// single InsertBatchAssigned calls under single-writer ownership of
// the clusterer's write path. A batch is held open for at most the
// coalescing window after its first request and is flushed early when
// it reaches maxBatch points. Each request's per-point cell acks are
// carved out of the batch ack slice and delivered on its reply
// channel.
//
// The writer is no longer a dedicated goroutine: runOne performs one
// bounded pass (gather + flush one batch) and is scheduled through a
// tenant.Pool handle, whose state machine guarantees runOne never runs
// concurrently with itself. Every mutation of the coalescer's owned
// state (carry, reused slices, the engine, the WAL) happens inside
// runOne, so per-stream semantics are exactly the dedicated-goroutine
// ones while N streams share a bounded worker set.
type coalescer struct {
	c        *edmstream.Clusterer
	queue    chan *ingestReq
	window   time.Duration
	maxBatch int

	// wake schedules a runOne pass (the stream's pool-handle Wake).
	// Called by submit after every enqueue and by the janitor to
	// request a degraded-mode probe.
	wake func()

	// probeWanted is the janitor's probe request flag: runOne services
	// it first, under the same single-ownership the probe's WAL and
	// checkpoint writes require.
	probeWanted atomic.Bool

	// timer is the coalescing-window timer, reused across gathers.
	// Owned by runOne.
	timer *time.Timer

	// carry holds a request dequeued during gather that would push
	// the open batch past maxBatch; it becomes the trigger of the
	// next batch. With per-request point counts capped at maxBatch by
	// the HTTP layer, no committed batch ever exceeds maxBatch points.
	carry *ingestReq

	// stop is closed (once) to begin shutdown: the next runOne pass
	// drains whatever is queued, flushes, and closes done. Requests
	// still queued when the drain finishes get errDraining.
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	doneOnce sync.Once

	// onFlush, when non-nil, runs on the writer goroutine after every
	// committed batch (the server uses it to detect new evolution
	// events and wake long-pollers).
	onFlush func()

	// dur, when non-nil, is the durability subsystem: every gathered
	// batch is appended to the WAL and fsynced before it reaches the
	// engine, and committed point counts drive the checkpoint cadence.
	// Owned by the writer goroutine, like the clusterer.
	dur *durability

	// deg, when non-nil, is the stream's degraded-mode state machine:
	// an exhausted WAL retry budget flips it on (failing the batch and
	// everything queued behind it with errDegraded), and a janitor-
	// requested probe (probeWanted) flips it back off once the log
	// recovers.
	deg *degradedState

	// Telemetry: batch size in points, requests per batch, queue wait
	// of the oldest request in each batch, successful flush latency
	// (the admission estimator's service-time input), and totals.
	batchSize     *obs.Sample
	batchReqs     *obs.Sample
	batchWait     obs.Timing
	flushSeconds  obs.Timing
	batches       *obs.Counter
	pointsTotal   *obs.Counter
	pending       *obs.Gauge
	rejectsTotal  *obs.Counter
	clientCancels *obs.Counter

	// Reused across batches so a steady-state flush does not allocate
	// for the concatenation.
	pts  []edmstream.Point
	acks []int64
	reqs []*ingestReq
}

func newCoalescer(c *edmstream.Clusterer, cfg Config, reg *obs.Registry, labels string) *coalescer {
	return &coalescer{
		c:             c,
		queue:         make(chan *ingestReq, cfg.MaxPending),
		window:        cfg.CoalesceWindow,
		maxBatch:      cfg.MaxBatch,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		batchSize:     reg.Sample("edmserved_coalescer_batch_points", labels),
		batchReqs:     reg.Sample("edmserved_coalescer_batch_requests", labels),
		batchWait:     reg.Timing("edmserved_coalescer_batch_wait_seconds", labels),
		flushSeconds:  reg.Timing("edmserved_coalescer_flush_seconds", labels),
		batches:       reg.Counter("edmserved_coalescer_batches_total", labels),
		pointsTotal:   reg.Counter("edmserved_coalescer_points_total", labels),
		pending:       reg.Gauge("edmserved_coalescer_pending_requests", labels),
		rejectsTotal:  reg.Counter("edmserved_coalescer_rejects_total", labels),
		clientCancels: reg.Counter("edmserved_coalescer_client_cancels_total", labels),
	}
}

// submit queues one request's pre-validated points and waits for the
// commit ack. It is called from request goroutines; backpressure is a
// blocking send on the bounded queue. After the ack the returned cell
// slice is owned by the caller.
func (co *coalescer) submit(ctx context.Context, pts []edmstream.Point) ([]int64, error) {
	// Fast-fail once shutdown began: without this check the send
	// below could win a race against the closed stop channel and park
	// a request the drain pass has already run past.
	select {
	case <-co.stop:
		co.rejectsTotal.Inc()
		return nil, errDraining
	default:
	}
	req := &ingestReq{pts: pts, enqueued: time.Now(), reply: make(chan ingestReply, 1)}
	select {
	case co.queue <- req:
		co.pending.Add(1)
		if co.wake != nil {
			// Schedule a writer pass; Wake coalesces with a pass already
			// queued or re-arms one in flight, so a burst costs one wake.
			co.wake()
		}
	case <-co.stop:
		co.rejectsTotal.Inc()
		return nil, errDraining
	case <-ctx.Done():
		// A cancelled enqueue commits nothing; count the client-gone
		// case separately from deadline sheds so the operator can tell
		// impatient clients from an overloaded queue.
		if errors.Is(ctx.Err(), context.Canceled) {
			co.clientCancels.Inc()
		}
		return nil, ctx.Err()
	}
	// Once queued, the request is serviced even if the client goes
	// away: the commit is cheap and bounded by the flush cadence, and
	// completing it keeps "acknowledged implies applied" exact.
	select {
	case rep := <-req.reply:
		return rep.cells, rep.err
	case <-co.done:
		// The writer drained and exited; it may have serviced this
		// request just before exiting, so prefer a waiting reply.
		select {
		case rep := <-req.reply:
			return rep.cells, rep.err
		default:
			co.pending.Add(-1)
			co.rejectsTotal.Inc()
			return nil, errDraining
		}
	}
}

// runOne is one writer pass, executed with single-ownership by a
// tenant.Pool worker: service a requested degraded-mode recovery
// probe, then gather and flush at most one batch. It returns true when
// work is already queued behind it, in which case the pool re-queues
// the stream at the tail of the ready queue — round-robin across
// streams, so a hot tenant gets one batch per round and cannot starve
// the rest. Once stop is closed the pass drains everything queued and
// closes done; later wakes are harmless no-ops.
func (co *coalescer) runOne() bool {
	if co.probeWanted.CompareAndSwap(true, false) {
		co.probe()
	}
	select {
	case <-co.stop:
		co.drain()
		co.doneOnce.Do(func() { close(co.done) })
		return false
	default:
	}
	var first *ingestReq
	if co.carry != nil {
		first, co.carry = co.carry, nil
	} else {
		select {
		case first = <-co.queue:
		default:
			return false
		}
	}
	co.gather(first)
	co.flush()
	return co.carry != nil || len(co.queue) > 0
}

// probe attempts automatic recovery from degraded mode: reopen the WAL
// directory (recovery repairs whatever the failure left) and prove it
// writable with a fresh checkpoint of the current engine state — which
// also supersedes any ambiguous tail record a failed append may have
// landed. Only a full round-trip flips the server back to healthy.
func (co *coalescer) probe() {
	if co.deg == nil || co.dur == nil || !co.deg.isDegraded() {
		return
	}
	if co.dur.probe(co.c) {
		co.deg.exit()
	}
}

// estimateWait predicts the commit wait a request admitted now would
// see: the queued requests ahead of it, in batches of the observed
// requests-per-batch, each taking the observed flush latency. Called
// from request goroutines; every input is a lock-free instrument.
func (co *coalescer) estimateWait() time.Duration {
	pending := co.pending.Value()
	if pending <= 0 {
		return 0
	}
	fl := co.flushSeconds.Stats()
	if fl.WindowCount == 0 {
		return 0 // no service history yet; the queue-send deadline backstops
	}
	reqsPerBatch := co.batchReqs.Stats().P50
	if reqsPerBatch < 1 {
		reqsPerBatch = 1
	}
	batchesAhead := float64(pending)/reqsPerBatch + 1
	return time.Duration(batchesAhead * fl.P50 * float64(time.Second))
}

// gather collects requests for one batch: the triggering request,
// then whatever arrives within the coalescing window, up to maxBatch
// points. With a zero window it takes only what is already queued.
// The window wait holds the pool worker for at most the window — the
// bounded price of batching, identical to the dedicated-goroutine
// behavior.
func (co *coalescer) gather(first *ingestReq) {
	co.reqs = append(co.reqs[:0], first)
	npts := len(first.pts)

	if co.window <= 0 {
		for npts < co.maxBatch {
			select {
			case r := <-co.queue:
				if npts+len(r.pts) > co.maxBatch {
					co.carry = r
					return
				}
				co.reqs = append(co.reqs, r)
				npts += len(r.pts)
			default:
				return
			}
		}
		return
	}

	if co.timer == nil {
		co.timer = time.NewTimer(co.window)
	} else {
		co.timer.Reset(co.window)
	}
	defer func() {
		if !co.timer.Stop() {
			select {
			case <-co.timer.C:
			default:
			}
		}
	}()
	for npts < co.maxBatch {
		select {
		case r := <-co.queue:
			if npts+len(r.pts) > co.maxBatch {
				co.carry = r
				return
			}
			co.reqs = append(co.reqs, r)
			npts += len(r.pts)
		case <-co.timer.C:
			return
		case <-co.stop:
			return
		}
	}
}

// flush commits the gathered requests as one InsertBatchAssigned call
// and hands each request its slice of the acks.
func (co *coalescer) flush() {
	if len(co.reqs) == 0 {
		return
	}
	co.pts = co.pts[:0]
	oldest := co.reqs[0].enqueued
	for _, r := range co.reqs {
		co.pts = append(co.pts, r.pts...)
		if r.enqueued.Before(oldest) {
			oldest = r.enqueued
		}
	}
	co.pending.Add(-int64(len(co.reqs)))

	// Durable-before-acknowledged: the batch must be on the log (and,
	// unless WALNoSync, on disk) before the engine applies it and any
	// client sees a 200. A WAL failure fails the whole batch without
	// touching the engine — no client is ever acknowledged for points
	// that would not survive a crash. The retry budget lives inside
	// appendBatch; exhausting it flips the server into degraded mode,
	// and batches flushed while degraded fail fast without touching the
	// sick disk (the probe owns recovery attempts).
	begin := time.Now()
	var acks []int64
	var err error
	if co.dur != nil {
		if co.deg != nil && co.deg.isDegraded() {
			err = errDegraded
		} else if aerr := co.dur.appendBatch(co.pts); aerr != nil {
			if co.deg != nil {
				co.deg.enter(aerr)
			}
			err = fmt.Errorf("%w (%v)", errDegraded, aerr)
		}
	}
	if err == nil {
		insertBegin := time.Now()
		acks, err = co.c.InsertBatchAssigned(co.pts, co.acks[:0])
		co.acks = acks
		if err == nil && co.dur != nil {
			// The pure engine-apply time (no WAL, no fsync) feeds the
			// recovery-budget estimator: replay is this same work.
			co.dur.noteApply(len(co.pts), time.Since(insertBegin))
		}
	}

	co.batches.Inc()
	co.batchSize.Observe(float64(len(co.pts)))
	co.batchReqs.Observe(float64(len(co.reqs)))
	co.batchWait.Observe(time.Since(oldest))
	if err == nil {
		// Only successful flushes feed the admission estimator: a
		// degraded fast-fail takes microseconds and would talk the
		// estimate down exactly when the server cannot serve.
		co.flushSeconds.Observe(time.Since(begin))
		co.pointsTotal.Add(uint64(len(co.pts)))
		if co.dur != nil {
			co.dur.noteCommitted(co.c, len(co.pts))
		}
	}

	off := 0
	for _, r := range co.reqs {
		rep := ingestReply{err: err}
		if err == nil {
			// Owned copy: co.acks is reused by the next batch.
			rep.cells = append([]int64(nil), acks[off:off+len(r.pts)]...)
		}
		off += len(r.pts)
		r.reply <- rep
	}
	// Zero the request pointers so the reused backing array does not
	// pin request payloads until the slots happen to be overwritten.
	clear(co.reqs)
	co.reqs = co.reqs[:0]

	if co.onFlush != nil {
		co.onFlush()
	}
}

// drain services everything queued at shutdown: requests already
// accepted into the queue are committed (in maxBatch-bounded batches)
// so no accepted work is dropped, then the loop exits and any
// requests that arrive later get errDraining from submit.
func (co *coalescer) drain() {
	for {
		var first *ingestReq
		if co.carry != nil {
			first, co.carry = co.carry, nil
		} else {
			select {
			case first = <-co.queue:
			default:
				return
			}
		}
		co.reqs = append(co.reqs[:0], first)
		npts := len(first.pts)
	gather:
		for npts < co.maxBatch {
			select {
			case r := <-co.queue:
				if npts+len(r.pts) > co.maxBatch {
					co.carry = r
					break gather
				}
				co.reqs = append(co.reqs, r)
				npts += len(r.pts)
			default:
				break gather
			}
		}
		co.flush()
	}
}

// beginShutdown signals the writer to drain on its next pass. It
// returns immediately; the caller must Wake the stream's handle so a
// pass actually runs, then wait on done. Safe to call repeatedly.
func (co *coalescer) beginShutdown() {
	co.stopOnce.Do(func() { close(co.stop) })
}
