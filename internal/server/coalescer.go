package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/obs"
)

// errDraining is returned to ingest requests that arrive (or are
// still queued unserviced) while the server shuts down.
var errDraining = errors.New("server is draining")

// ingestReq is one HTTP ingest request queued for coalescing.
type ingestReq struct {
	pts []edmstream.Point
	// enqueued is when the request entered the queue; the coalescer
	// reports the oldest request's queue time as the batch wait.
	enqueued time.Time
	// reply receives exactly one ingestReply once the request's
	// points are committed (or the commit failed). Buffered so the
	// coalescer never blocks on a slow or vanished client.
	reply chan ingestReply
}

type ingestReply struct {
	cells []int64
	err   error
}

// coalescer accumulates concurrently arriving ingest requests into
// single InsertBatchAssigned calls on the one goroutine that owns the
// clusterer's write path. A batch is held open for at most the
// coalescing window after its first request and is flushed early when
// it reaches maxBatch points. Each request's per-point cell acks are
// carved out of the batch ack slice and delivered on its reply
// channel.
type coalescer struct {
	c        *edmstream.Clusterer
	queue    chan *ingestReq
	window   time.Duration
	maxBatch int

	// carry holds a request dequeued during gather that would push
	// the open batch past maxBatch; it becomes the trigger of the
	// next batch. With per-request point counts capped at maxBatch by
	// the HTTP layer, no committed batch ever exceeds maxBatch points.
	carry *ingestReq

	// stop is closed (once) to begin shutdown: the run loop drains
	// whatever is queued, flushes, and closes done on exit. Requests
	// still queued when the loop exits get errDraining.
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// onFlush, when non-nil, runs on the writer goroutine after every
	// committed batch (the server uses it to detect new evolution
	// events and wake long-pollers).
	onFlush func()

	// dur, when non-nil, is the durability subsystem: every gathered
	// batch is appended to the WAL and fsynced before it reaches the
	// engine, and committed point counts drive the checkpoint cadence.
	// Owned by the writer goroutine, like the clusterer.
	dur *durability

	// deg, when non-nil, is the server's degraded-mode state machine:
	// an exhausted WAL retry budget flips it on (failing the batch and
	// everything queued behind it with errDegraded), and the probe
	// ticker below flips it back off once the log recovers.
	deg *degradedState
	// probeEvery is the degraded-mode recovery probe cadence; zero
	// disables the ticker (servers without durability).
	probeEvery time.Duration

	// Telemetry: batch size in points, requests per batch, queue wait
	// of the oldest request in each batch, successful flush latency
	// (the admission estimator's service-time input), and totals.
	batchSize     *obs.Sample
	batchReqs     *obs.Sample
	batchWait     obs.Timing
	flushSeconds  obs.Timing
	batches       *obs.Counter
	pointsTotal   *obs.Counter
	pending       *obs.Gauge
	rejectsTotal  *obs.Counter
	clientCancels *obs.Counter

	// Reused across batches so a steady-state flush does not allocate
	// for the concatenation.
	pts  []edmstream.Point
	acks []int64
	reqs []*ingestReq
}

func newCoalescer(c *edmstream.Clusterer, cfg Config, reg *obs.Registry) *coalescer {
	return &coalescer{
		c:             c,
		queue:         make(chan *ingestReq, cfg.MaxPending),
		window:        cfg.CoalesceWindow,
		maxBatch:      cfg.MaxBatch,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		batchSize:     reg.Sample("edmserved_coalescer_batch_points", ""),
		batchReqs:     reg.Sample("edmserved_coalescer_batch_requests", ""),
		batchWait:     reg.Timing("edmserved_coalescer_batch_wait_seconds", ""),
		flushSeconds:  reg.Timing("edmserved_coalescer_flush_seconds", ""),
		batches:       reg.Counter("edmserved_coalescer_batches_total", ""),
		pointsTotal:   reg.Counter("edmserved_coalescer_points_total", ""),
		pending:       reg.Gauge("edmserved_coalescer_pending_requests", ""),
		rejectsTotal:  reg.Counter("edmserved_coalescer_rejects_total", ""),
		clientCancels: reg.Counter("edmserved_coalescer_client_cancels_total", ""),
	}
}

// submit queues one request's pre-validated points and waits for the
// commit ack. It is called from request goroutines; backpressure is a
// blocking send on the bounded queue. After the ack the returned cell
// slice is owned by the caller.
func (co *coalescer) submit(ctx context.Context, pts []edmstream.Point) ([]int64, error) {
	// Fast-fail once shutdown began: without this check the send
	// below could win a race against the closed stop channel and park
	// a request the drain pass has already run past.
	select {
	case <-co.stop:
		co.rejectsTotal.Inc()
		return nil, errDraining
	default:
	}
	req := &ingestReq{pts: pts, enqueued: time.Now(), reply: make(chan ingestReply, 1)}
	select {
	case co.queue <- req:
		co.pending.Add(1)
	case <-co.stop:
		co.rejectsTotal.Inc()
		return nil, errDraining
	case <-ctx.Done():
		// A cancelled enqueue commits nothing; count the client-gone
		// case separately from deadline sheds so the operator can tell
		// impatient clients from an overloaded queue.
		if errors.Is(ctx.Err(), context.Canceled) {
			co.clientCancels.Inc()
		}
		return nil, ctx.Err()
	}
	// Once queued, the request is serviced even if the client goes
	// away: the commit is cheap and bounded by the flush cadence, and
	// completing it keeps "acknowledged implies applied" exact.
	select {
	case rep := <-req.reply:
		return rep.cells, rep.err
	case <-co.done:
		// The run loop exited; it may have serviced this request just
		// before exiting, so prefer a waiting reply over the error.
		select {
		case rep := <-req.reply:
			return rep.cells, rep.err
		default:
			co.pending.Add(-1)
			co.rejectsTotal.Inc()
			return nil, errDraining
		}
	}
}

// run is the writer loop. It owns every mutating call on the
// clusterer for the life of the server.
func (co *coalescer) run() {
	defer close(co.done)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	// The degraded-mode recovery probe shares the writer goroutine (the
	// WAL has a single owner), waking on a ticker while the loop would
	// otherwise sit idle — exactly the state a degraded server is in,
	// since ingest is refused at the door.
	var probeC <-chan time.Time
	if co.dur != nil && co.probeEvery > 0 {
		ticker := time.NewTicker(co.probeEvery)
		defer ticker.Stop()
		probeC = ticker.C
	}
	for {
		var first *ingestReq
		if co.carry != nil {
			first, co.carry = co.carry, nil
		} else {
			select {
			case first = <-co.queue:
			case <-probeC:
				co.probe()
				continue
			case <-co.stop:
				co.drain()
				return
			}
		}
		co.gather(first, &timer)
		co.flush()
		select {
		case <-co.stop:
			co.drain()
			return
		default:
		}
	}
}

// probe attempts automatic recovery from degraded mode: reopen the WAL
// directory (recovery repairs whatever the failure left) and prove it
// writable with a fresh checkpoint of the current engine state — which
// also supersedes any ambiguous tail record a failed append may have
// landed. Only a full round-trip flips the server back to healthy.
func (co *coalescer) probe() {
	if co.deg == nil || co.dur == nil || !co.deg.isDegraded() {
		return
	}
	if co.dur.probe(co.c) {
		co.deg.exit()
	}
}

// estimateWait predicts the commit wait a request admitted now would
// see: the queued requests ahead of it, in batches of the observed
// requests-per-batch, each taking the observed flush latency. Called
// from request goroutines; every input is a lock-free instrument.
func (co *coalescer) estimateWait() time.Duration {
	pending := co.pending.Value()
	if pending <= 0 {
		return 0
	}
	fl := co.flushSeconds.Stats()
	if fl.WindowCount == 0 {
		return 0 // no service history yet; the queue-send deadline backstops
	}
	reqsPerBatch := co.batchReqs.Stats().P50
	if reqsPerBatch < 1 {
		reqsPerBatch = 1
	}
	batchesAhead := float64(pending)/reqsPerBatch + 1
	return time.Duration(batchesAhead * fl.P50 * float64(time.Second))
}

// gather collects requests for one batch: the triggering request,
// then whatever arrives within the coalescing window, up to maxBatch
// points. With a zero window it takes only what is already queued.
func (co *coalescer) gather(first *ingestReq, timer **time.Timer) {
	co.reqs = append(co.reqs[:0], first)
	npts := len(first.pts)

	if co.window <= 0 {
		for npts < co.maxBatch {
			select {
			case r := <-co.queue:
				if npts+len(r.pts) > co.maxBatch {
					co.carry = r
					return
				}
				co.reqs = append(co.reqs, r)
				npts += len(r.pts)
			default:
				return
			}
		}
		return
	}

	if *timer == nil {
		*timer = time.NewTimer(co.window)
	} else {
		(*timer).Reset(co.window)
	}
	defer func() {
		if !(*timer).Stop() {
			select {
			case <-(*timer).C:
			default:
			}
		}
	}()
	for npts < co.maxBatch {
		select {
		case r := <-co.queue:
			if npts+len(r.pts) > co.maxBatch {
				co.carry = r
				return
			}
			co.reqs = append(co.reqs, r)
			npts += len(r.pts)
		case <-(*timer).C:
			return
		case <-co.stop:
			return
		}
	}
}

// flush commits the gathered requests as one InsertBatchAssigned call
// and hands each request its slice of the acks.
func (co *coalescer) flush() {
	if len(co.reqs) == 0 {
		return
	}
	co.pts = co.pts[:0]
	oldest := co.reqs[0].enqueued
	for _, r := range co.reqs {
		co.pts = append(co.pts, r.pts...)
		if r.enqueued.Before(oldest) {
			oldest = r.enqueued
		}
	}
	co.pending.Add(-int64(len(co.reqs)))

	// Durable-before-acknowledged: the batch must be on the log (and,
	// unless WALNoSync, on disk) before the engine applies it and any
	// client sees a 200. A WAL failure fails the whole batch without
	// touching the engine — no client is ever acknowledged for points
	// that would not survive a crash. The retry budget lives inside
	// appendBatch; exhausting it flips the server into degraded mode,
	// and batches flushed while degraded fail fast without touching the
	// sick disk (the probe owns recovery attempts).
	begin := time.Now()
	var acks []int64
	var err error
	if co.dur != nil {
		if co.deg != nil && co.deg.isDegraded() {
			err = errDegraded
		} else if aerr := co.dur.appendBatch(co.pts); aerr != nil {
			if co.deg != nil {
				co.deg.enter(aerr)
			}
			err = fmt.Errorf("%w (%v)", errDegraded, aerr)
		}
	}
	if err == nil {
		insertBegin := time.Now()
		acks, err = co.c.InsertBatchAssigned(co.pts, co.acks[:0])
		co.acks = acks
		if err == nil && co.dur != nil {
			// The pure engine-apply time (no WAL, no fsync) feeds the
			// recovery-budget estimator: replay is this same work.
			co.dur.noteApply(len(co.pts), time.Since(insertBegin))
		}
	}

	co.batches.Inc()
	co.batchSize.Observe(float64(len(co.pts)))
	co.batchReqs.Observe(float64(len(co.reqs)))
	co.batchWait.Observe(time.Since(oldest))
	if err == nil {
		// Only successful flushes feed the admission estimator: a
		// degraded fast-fail takes microseconds and would talk the
		// estimate down exactly when the server cannot serve.
		co.flushSeconds.Observe(time.Since(begin))
		co.pointsTotal.Add(uint64(len(co.pts)))
		if co.dur != nil {
			co.dur.noteCommitted(co.c, len(co.pts))
		}
	}

	off := 0
	for _, r := range co.reqs {
		rep := ingestReply{err: err}
		if err == nil {
			// Owned copy: co.acks is reused by the next batch.
			rep.cells = append([]int64(nil), acks[off:off+len(r.pts)]...)
		}
		off += len(r.pts)
		r.reply <- rep
	}
	// Zero the request pointers so the reused backing array does not
	// pin request payloads until the slots happen to be overwritten.
	clear(co.reqs)
	co.reqs = co.reqs[:0]

	if co.onFlush != nil {
		co.onFlush()
	}
}

// drain services everything queued at shutdown: requests already
// accepted into the queue are committed (in maxBatch-bounded batches)
// so no accepted work is dropped, then the loop exits and any
// requests that arrive later get errDraining from submit.
func (co *coalescer) drain() {
	for {
		var first *ingestReq
		if co.carry != nil {
			first, co.carry = co.carry, nil
		} else {
			select {
			case first = <-co.queue:
			default:
				return
			}
		}
		co.reqs = append(co.reqs[:0], first)
		npts := len(first.pts)
	gather:
		for npts < co.maxBatch {
			select {
			case r := <-co.queue:
				if npts+len(r.pts) > co.maxBatch {
					co.carry = r
					break gather
				}
				co.reqs = append(co.reqs, r)
				npts += len(r.pts)
			default:
				break gather
			}
		}
		co.flush()
	}
}

// beginShutdown signals the run loop to drain and exit. It returns
// immediately; wait on done for completion. Safe to call repeatedly.
func (co *coalescer) beginShutdown() {
	co.stopOnce.Do(func() { close(co.stop) })
}
