package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/obs"
)

// ingestN posts n deterministic single-point requests and fails the
// test on any non-200.
func ingestN(t *testing.T, base string, n, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := offset + i
		body := fmt.Sprintf(`[{"vector":[%d,%d],"time":%g}]`, k%13*3, k%7*3, float64(k)/100)
		resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("ingest %d: %v", k, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d, want 200", k, resp.StatusCode)
		}
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(raw)
}

func archiveBlock(t *testing.T, base string) *archiveStats {
	t.Helper()
	var st statsResponse
	if err := json.Unmarshal([]byte(getBody(t, base+"/v1/stats")), &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.Server.Archive == nil {
		t.Fatal("stats carry no archive block despite a configured archive")
	}
	return st.Server.Archive
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestArchiveOutageNeverFailsIngest is the tentpole contract: with the
// remote hard-down, every ingest still acks 200, /healthz stays "ok"
// with an archive-lagging detail line, and after the heal the shipper
// catches the remote up on its own.
func TestArchiveOutageNeverFailsIngest(t *testing.T) {
	inner, err := archive.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := archive.NewFaultStore(inner)
	store.SetOutage(true) // born into an outage

	_, _, base := startServer(t, testOptions(), Config{
		DataDir:          t.TempDir(),
		WALSegmentBytes:  4 << 10,
		CheckpointEvery:  200,
		ArchiveStore:     store,
		ArchiveRetryBase: time.Millisecond,
		ArchiveRetryMax:  10 * time.Millisecond,
		ArchiveResync:    20 * time.Millisecond,
	})

	// Enough ingest to seal several segments and cross a checkpoint
	// boundary — all while the remote refuses every byte.
	ingestN(t, base, 250, 0)

	waitCond(t, "archive lag to surface", func() bool {
		st := archiveBlock(t, base)
		return st.Failed > 0 && st.Lagging
	})
	if body := getBody(t, base+"/healthz"); !strings.HasPrefix(body, "ok\n") || !strings.Contains(body, "archive-lagging") {
		t.Fatalf("healthz during outage = %q, want ok + archive-lagging detail", body)
	}

	store.SetOutage(false)
	waitCond(t, "shipper to catch up after heal", func() bool {
		st := archiveBlock(t, base)
		return !st.Lagging && st.LagRecords == 0 && st.Shipped > 0
	})
	if body := getBody(t, base+"/healthz"); strings.Contains(body, "archive-lagging") {
		t.Fatalf("healthz still lagging after catch-up: %q", body)
	}
	// The archive gauges export too.
	if m := getBody(t, base+"/metrics"); !strings.Contains(m, "edmserved_archive_shipped_objects") ||
		!strings.Contains(m, `edmserved_archive_lag_records{stream="default"} 0`) {
		t.Fatalf("metrics missing archive series:\n%s", m)
	}
}

// TestRestoreFromArchiveRoundTrip is the disaster path end to end: a
// durable server ships to the archive (compressed), its data dir is
// destroyed, and a fresh server restores from the archive into a state
// whose snapshot is byte-identical.
func TestRestoreFromArchiveRoundTrip(t *testing.T) {
	store, err := archive.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		DataDir:            t.TempDir(),
		WALSegmentBytes:    4 << 10,
		CheckpointEvery:    150,
		CheckpointCompress: true,
		ArchiveStore:       store,
		ArchiveRetryBase:   time.Millisecond,
		ArchiveRetryMax:    10 * time.Millisecond,
		ArchiveResync:      20 * time.Millisecond,
	}
	s1, _, base1 := startServer(t, testOptions(), cfg)
	ingestN(t, base1, 400, 0)
	snap1 := getBody(t, base1+"/v1/snapshot")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Total local loss: the second server starts with a brand-new empty
	// directory and only the archive to go on.
	cfg2 := cfg
	cfg2.DataDir = t.TempDir()
	cfg2.RestoreFromArchive = true
	_, _, base2 := startServer(t, testOptions(), cfg2)
	snap2 := getBody(t, base2+"/v1/snapshot")
	if snap1 != snap2 {
		t.Fatalf("restored snapshot differs from the acknowledged one:\n%s\nvs\n%s", snap1, snap2)
	}
	st := archiveBlock(t, base2)
	if st.Restore == nil || st.Restore.Checkpoints == 0 {
		t.Fatalf("stats carry no restore info: %+v", st)
	}
	// The restored server keeps serving: new ingest works and its WAL
	// ships onward.
	ingestN(t, base2, 20, 400)
}

// TestRestoreFromArchiveDefersToLocalState: RestoreFromArchive over a
// directory that already holds WAL state must not clobber it — the
// restore is skipped and the local log recovers as usual.
func TestRestoreFromArchiveDefersToLocalState(t *testing.T) {
	store, err := archive.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{
		DataDir:          dir,
		ArchiveStore:     store,
		ArchiveRetryBase: time.Millisecond,
		ArchiveResync:    20 * time.Millisecond,
	}
	s1, _, base1 := startServer(t, testOptions(), cfg)
	ingestN(t, base1, 50, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	cfg.RestoreFromArchive = true // same dir, now with local state
	s2, _, base2 := startServer(t, testOptions(), cfg)
	st := archiveBlock(t, base2)
	if !st.RestoreSkipped || st.Restore != nil {
		t.Fatalf("restore should have deferred to local state: %+v", st)
	}
	if got := s2.RecoveryInfo(); !got.HasCheckpoint && got.RecordsReplayable == 0 {
		t.Fatalf("local recovery found nothing: %+v", got)
	}
}

// TestRecoveryBudgetForcesCheckpoint drives the budget boundary with an
// injected replay rate: 600 points at 1000 pts/s estimate to 0.6s of
// replay, over a 500ms budget, so a checkpoint fires long before the
// point-count cadence would.
func TestRecoveryBudgetForcesCheckpoint(t *testing.T) {
	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30, // the point-count cadence never bites
		RecoveryBudget:  500 * time.Millisecond,
	}.withDefaults()
	d, err := openDurability(c, cfg, cfg.DataDir, "", obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.log.Close()
	d.replayRate = 1000

	d.noteCommitted(c, 400) // est 0.4s — under budget
	if got := d.budgetCkpts.Value(); got != 0 {
		t.Fatalf("budget checkpoint fired at 0.4s estimate: %d", got)
	}
	if d.sinceCkpt != 400 {
		t.Fatalf("sinceCkpt = %d, want 400", d.sinceCkpt)
	}
	d.noteCommitted(c, 200) // est 0.6s — over budget
	if got := d.budgetCkpts.Value(); got != 1 {
		t.Fatalf("budget checkpoints = %d, want 1", got)
	}
	if d.sinceCkpt != 0 || d.checkpoints.Value() != 1 {
		t.Fatalf("checkpoint did not reset the tail: sinceCkpt=%d ckpts=%d", d.sinceCkpt, d.checkpoints.Value())
	}

	// Without a measured replay rate the live apply EMA is the divisor.
	d.replayRate = 0
	d.noteApply(1000, time.Second) // 1000 pts/s
	d.noteCommitted(c, 700)        // est 0.7s — over budget again
	if got := d.budgetCkpts.Value(); got != 2 {
		t.Fatalf("budget checkpoints with EMA rate = %d, want 2", got)
	}
}

// TestArchiveConfigValidation pins the new knobs' validation rules.
func TestArchiveConfigValidation(t *testing.T) {
	dir := t.TempDir()
	bad := []Config{
		{ArchiveURL: dir},                                     // archive without DataDir
		{DataDir: dir, RestoreFromArchive: true},              // restore without archive
		{DataDir: dir, ArchiveQueue: 8},                       // shipper knob without archive
		{DataDir: dir, ArchiveRetryBase: time.Second},         // shipper knob without archive
		{CheckpointCompress: true},                            // compress without DataDir
		{RecoveryBudget: time.Second},                         // budget without DataDir
		{DataDir: dir, ArchiveURL: dir, ArchiveQueue: -1},     // negative queue
		{DataDir: dir, ArchiveURL: dir, ArchiveRetryBase: -1}, // negative backoff
		{DataDir: dir, ArchiveURL: dir, ArchiveResync: -1},    // negative resync
		{DataDir: dir, RecoveryBudget: -1},                    // negative budget
		{DataDir: dir, ArchiveURL: dir, ArchiveRetryBase: time.Second, ArchiveRetryMax: time.Millisecond}, // max < base
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not have: %+v", i, cfg)
		}
	}
	good := Config{DataDir: dir, ArchiveURL: dir, RecoveryBudget: 30 * time.Second, CheckpointCompress: true, RestoreFromArchive: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("good archive config rejected: %v", err)
	}
	// Defaults fill only when an archive is configured.
	if got := good.withDefaults(); got.ArchiveQueue != defaultArchiveQueue || got.ArchiveResync != defaultArchiveResync {
		t.Fatalf("archive defaults not filled: %+v", got)
	}
	if got := (Config{DataDir: dir}).withDefaults(); got.ArchiveQueue != 0 || got.ArchiveRetryBase != 0 {
		t.Fatalf("archive defaults leaked into an archiveless config: %+v", got)
	}
}

// TestArchiveShutdownDrainShipsFinalCheckpoint: a graceful shutdown's
// final checkpoint reaches the remote via the close-time drain, so the
// archive ends the session consistent with the acknowledged state.
func TestArchiveShutdownDrainShipsFinalCheckpoint(t *testing.T) {
	store, err := archive.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, _, base := startServer(t, testOptions(), Config{
		DataDir:          t.TempDir(),
		ArchiveStore:     store,
		ArchiveRetryBase: time.Millisecond,
		ArchiveResync:    20 * time.Millisecond,
	})
	ingestN(t, base, 30, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	keys, err := store.List("ckpt/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no checkpoint reached the remote by shutdown")
	}
	// A restore from this remote must reproduce the full acknowledged
	// state with no local directory at all.
	restored := t.TempDir()
	if _, err := archive.Restore(store, restored); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	c2 := recoverFresh(t, testOptions(), restored)
	if got := c2.Stats().Points; got != 30 {
		t.Fatalf("restored engine has %d points, want 30", got)
	}
}
