package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream/internal/obs"
)

// errDegraded is returned to ingest requests while the server sits in
// WAL-failure degraded mode: reads keep serving, writes are refused
// with a machine-readable 503 until the recovery probe reopens the log.
var errDegraded = errors.New("server is degraded: write-ahead log unavailable, ingest suspended")

// Machine-readable rejection reasons carried in errorResponse.Reason so
// clients can branch without parsing prose. See the README runbook for
// the retry guidance each one implies.
const (
	reasonOverloaded    = "overloaded"     // 429: retry after Retry-After
	reasonDegraded      = "degraded"       // 503: WAL down, recovery probe running
	reasonDraining      = "draining"       // 503: shutting down, go elsewhere
	reasonUnknownStream = "unknown_stream" // 404: stream never created; POST ingest creates it
)

// admission is the ingest admission controller plus the read-path
// concurrency guard. The ingest rule: estimate the commit wait a
// request admitted now would see — queued requests divided by the
// observed requests-per-batch, times the observed flush latency — and
// shed with 429 + Retry-After when the estimate exceeds the configured
// deadline. The estimate uses only live inputs (the pending gauge) and
// short-window distributions, so it tracks the queue as it drains and
// stops shedding on its own; admitted requests additionally carry the
// deadline as a context timeout on the queue send, the backstop for a
// cold start with no flush history yet.
type admission struct {
	deadline time.Duration

	// readSem bounds concurrently served read requests; its capacity
	// is MaxReadConcurrency.
	readSem chan struct{}

	estWait      *obs.Sample
	shedEstimate *obs.Counter
	shedTimeout  *obs.Counter
	shedDegraded *obs.Counter
	shedReads    *obs.Counter
}

func newAdmission(cfg Config, reg *obs.Registry) *admission {
	return &admission{
		deadline:     cfg.IngestDeadline,
		readSem:      make(chan struct{}, cfg.MaxReadConcurrency),
		estWait:      reg.Sample("edmserved_admission_estimated_wait_seconds", ""),
		shedEstimate: reg.Counter("edmserved_admission_shed_total", `reason="est_wait"`),
		shedTimeout:  reg.Counter("edmserved_admission_shed_total", `reason="queue_full"`),
		shedDegraded: reg.Counter("edmserved_admission_shed_total", `reason="degraded"`),
		shedReads:    reg.Counter("edmserved_admission_shed_total", `reason="read_concurrency"`),
	}
}

// degradedState is the WAL-failure degraded mode, owned by the writer
// goroutine (enter/exit) with an atomic mirror the HTTP handlers read.
// The state machine has two states and two edges:
//
//	healthy --[durable append exhausts its retry budget]--> degraded
//	degraded --[probe: WAL reopen + checkpoint succeed]--> healthy
//
// While degraded, ingest is refused at the door with 503 + reason
// "degraded" (and batches already queued fail the same way), reads and
// /healthz keep serving, and the writer goroutine probes the log
// directory every DegradedProbeInterval.
type degradedState struct {
	flag  atomic.Bool
	cause atomic.Pointer[string]
	since atomic.Int64 // unix nanos of the last enter

	gauge     *obs.Gauge
	entered   *obs.Counter
	recovered *obs.Counter
}

func newDegradedState(reg *obs.Registry, labels string) *degradedState {
	return &degradedState{
		gauge:     reg.Gauge("edmserved_degraded", labels),
		entered:   reg.Counter("edmserved_degraded_entered_total", labels),
		recovered: reg.Counter("edmserved_degraded_recovered_total", labels),
	}
}

func (d *degradedState) isDegraded() bool { return d.flag.Load() }

// reason returns the stored cause of the current (or last) degradation.
func (d *degradedState) reason() string {
	if s := d.cause.Load(); s != nil {
		return *s
	}
	return ""
}

// enter flips into degraded mode. Writer goroutine only.
func (d *degradedState) enter(cause error) {
	msg := cause.Error()
	d.cause.Store(&msg)
	d.since.Store(time.Now().UnixNano())
	if d.flag.CompareAndSwap(false, true) {
		d.entered.Inc()
		d.gauge.Add(1)
	}
}

// exit flips back to healthy. Writer goroutine only.
func (d *degradedState) exit() {
	if d.flag.CompareAndSwap(true, false) {
		d.recovered.Inc()
		d.gauge.Add(-1)
	}
}

// retryAfterSeconds turns a wait estimate into a Retry-After value,
// clamped to [1, 30] so clients neither hammer nor give up.
func retryAfterSeconds(est time.Duration) int {
	s := int(math.Ceil(est.Seconds()))
	if s < 1 {
		s = 1
	}
	if s > 30 {
		s = 30
	}
	return s
}

// shedError writes a load-shedding rejection: the Retry-After header
// plus a JSON body with the machine-readable reason and the same hint
// mirrored, so both header-aware and body-only clients get it.
func shedError(w http.ResponseWriter, status int, err error, reason string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, status, errorResponse{
		Error:             err.Error(),
		Reason:            reason,
		RetryAfterSeconds: retryAfter,
	})
}

// readGuard wraps a read handler with the bounded-concurrency
// semaphore: a request that cannot take a slot immediately is shed
// with 429 rather than queued — the reader's retry is cheaper than a
// pile of parked goroutines on a saturated process.
func (s *Server) readGuard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.adm.readSem <- struct{}{}:
			defer func() { <-s.adm.readSem }()
			h(w, r)
		default:
			s.adm.shedReads.Inc()
			shedError(w, http.StatusTooManyRequests,
				fmt.Errorf("read concurrency limit (%d) reached", cap(s.adm.readSem)),
				reasonOverloaded, 1)
		}
	}
}
