package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/tenant"
)

// DefaultStream is the stream the un-prefixed /v1/* endpoints alias.
// It is created eagerly at New from the caller-supplied clusterer,
// keeps the DataDir root as its WAL directory (the single-stream
// on-disk layout of earlier releases, unchanged), and is never evicted
// — the caller owns its engine and there is no factory to revive it
// through.
const DefaultStream = "default"

// Memory-footprint heuristic: what one stream charges against the
// global memory budget. A resident engine costs a base (coalescer
// queue, WAL buffers, snapshot double-buffering) plus a per-cell
// increment covering the cell struct, its seed point, cluster
// bookkeeping and its share of the dependency graph. Deliberately
// coarse — the budget is an eviction trigger, not an accountant.
const (
	streamBaseBytes    = 1 << 20 // 1 MiB per resident engine
	cellFootprintBytes = 1 << 10 // 1 KiB per (active or inactive) cell
)

// MinMemoryBudget is the smallest sensible Config.MemoryBudget: one
// engine's base footprint. A budget below it could never hold even the
// resident default stream and would evict every named stream on every
// sweep.
const MinMemoryBudget = streamBaseBytes

// stream is one tenant: an engine plus its private serving machinery —
// coalescer, durability (WAL in its own directory), degraded-mode
// state, archive shipper (its own key prefix in the shared store), and
// the event-notification plumbing. Everything the old single-tenant
// Server carried per-engine lives here; the Server keeps only the
// shared substrate (HTTP, admission, writer pool, registry, budget).
type stream struct {
	name   string
	labels string // `stream="<name>"`, on every per-stream instrument
	c      *edmstream.Clusterer
	coal   *coalescer
	dur    *durability
	deg    *degradedState

	ship           *archive.Shipper
	archiveM       *archiveMetrics
	restored       *archive.RestoreInfo
	restoreSkipped bool

	// handle is the stream's seat in the shared writer pool; retiring
	// it (pool.TryRetire) is the evictor's exclusivity gate.
	handle *tenant.Handle

	// shape is the stream's established modality/dimensionality
	// (pointShape): 0 until the first ingested point fixes it, -1 for
	// token sets, the vector dimensionality otherwise.
	shape atomic.Int64

	// events wakes this stream's /v1/events long-pollers; eventCursor
	// is the end cursor as of the last flush, owned by the writer.
	events      notifier
	eventCursor uint64

	// nextProbe paces degraded-mode recovery probes (unix nanos): the
	// janitor requests one only when now passes it.
	nextProbe atomic.Int64
}

// streamDir is the on-disk corner of DataDir a stream's WAL and
// checkpoints live in. The default stream keeps the DataDir root —
// exactly the single-stream layout of earlier releases, so existing
// data directories recover unchanged; named streams nest under
// streams/<name>/, which the WAL's directory scan ignores.
func streamDir(dataDir, name string) string {
	if dataDir == "" {
		return ""
	}
	if name == DefaultStream {
		return dataDir
	}
	return filepath.Join(dataDir, "streams", name)
}

// streamArchivePrefix is the stream's key prefix inside the shared
// object store; the default stream keeps the root (back-compat with
// archives shipped by earlier releases).
func streamArchivePrefix(name string) string {
	if name == DefaultStream {
		return ""
	}
	return "streams/" + name + "/"
}

// errNoFactory is returned when a named stream is addressed but the
// server was built without an engine factory (Config.NewEngine) —
// there is no way to construct its engine.
var errNoFactory = errors.New("server: named streams require an engine factory (Config.NewEngine)")

// buildStream is the registry's factory: construct (or revive) the
// named stream's engine and serving machinery. Revival and first
// creation are the same path — openDurability recovers whatever the
// stream's WAL directory holds, which for a revived stream is the
// eviction checkpoint plus any tail, so the revived engine is
// byte-identical to the evicted one.
func (s *Server) buildStream(name string) (*stream, error) {
	if s.cfg.NewEngine == nil {
		return nil, errNoFactory
	}
	c, err := s.cfg.NewEngine()
	if err != nil {
		return nil, fmt.Errorf("server: building engine for stream %q: %w", name, err)
	}
	return s.assembleStream(name, c)
}

// assembleStream wires one stream's serving machinery around its
// engine: archive restore + shipper (when configured), WAL recovery,
// degraded-mode state, coalescer, and a fresh writer-pool handle. Used
// for the eagerly built default stream and every factory-built named
// stream alike.
func (s *Server) assembleStream(name string, c *edmstream.Clusterer) (*stream, error) {
	st := &stream{
		name:   name,
		labels: `stream="` + name + `"`,
		c:      c,
	}
	dir := streamDir(s.cfg.DataDir, name)
	if dir != "" {
		if s.store != nil {
			store := archive.PrefixStore(s.store, streamArchivePrefix(name))
			if s.cfg.RestoreFromArchive {
				info, err := archive.Restore(store, dir)
				switch {
				case errors.Is(err, archive.ErrLocalState):
					// Local WAL state is the durability authority; the
					// restore defers to it rather than overwrite acked
					// records with an older remote view.
					st.restoreSkipped = true
				case err != nil:
					return nil, fmt.Errorf("server: restoring stream %q into %s from archive: %w", name, dir, err)
				default:
					st.restored = &info
				}
			}
			ship, err := archive.NewShipper(archive.ShipperOptions{
				Dir:         dir,
				Store:       store,
				QueueLen:    s.cfg.ArchiveQueue,
				RetryBase:   s.cfg.ArchiveRetryBase,
				RetryMax:    s.cfg.ArchiveRetryMax,
				ResyncEvery: s.cfg.ArchiveResync,
				Compress:    s.cfg.CheckpointCompress,
			})
			if err != nil {
				return nil, err
			}
			st.ship = ship
			st.archiveM = newArchiveMetrics(s.reg, st.labels)
		}
		dur, err := openDurability(c, s.cfg, dir, st.labels, s.reg, st.ship)
		if err != nil {
			if st.ship != nil {
				_ = st.ship.Close(time.Second)
			}
			return nil, err
		}
		st.dur = dur
		if st.ship != nil {
			// Started only after recovery: the first reconcile pass then
			// sees the recovered (and pruned) directory, not a moving one.
			st.ship.Start()
		}
	}
	st.deg = newDegradedState(s.reg, st.labels)
	st.coal = newCoalescer(c, s.cfg, s.reg, st.labels)
	st.coal.dur = st.dur
	st.coal.deg = st.deg
	st.coal.onFlush = st.flushHook
	_, st.eventCursor = c.EventsSince(^uint64(0))
	// A pre-fed or recovered clusterer that already published a
	// snapshot fixes the stream shape before the first ingest arrives.
	if snap := c.LastSnapshot(); len(snap.Clusters) > 0 && len(snap.Clusters[0].SeedPoints) > 0 {
		st.shape.Store(pointShape(snap.Clusters[0].SeedPoints[0]))
	}
	st.handle = s.pool.NewHandle(st.coal.runOne)
	st.coal.wake = st.handle.Wake
	return st, nil
}

// MemoryBytes estimates the stream's resident footprint for the global
// memory budget. Safe from any goroutine (engine stats are lock-free).
func (st *stream) MemoryBytes() int64 {
	es := st.c.Stats()
	return streamBaseBytes + int64(es.ActiveCells+es.InactiveCells)*cellFootprintBytes
}

// Evict checkpoints the stream to disk and releases its resources. The
// registry calls it with exclusive ownership: zero pins (no request
// holds the stream) and a retired pool handle (the writer can never
// run again), so the final checkpoint and close are race-free.
//
// Evict never fails the eviction: every acknowledged batch is already
// fsynced in the stream's WAL, so even if the final checkpoint or the
// log close errors, revival recovers the full acknowledged state by
// replay — the error only costs recovery time, and refusing to evict
// over it would wedge the stream (its writer handle is already
// retired). Failures are surfaced through the checkpoint-error and
// eviction counters instead.
func (st *stream) Evict() error {
	if st.dur != nil {
		// Best-effort final checkpoint + close; ckptErrors counts a
		// failed checkpoint inside.
		_ = st.dur.close(st.c)
	}
	if st.ship != nil {
		_ = st.ship.Close(5 * time.Second)
	}
	return nil
}

// flushHook runs under writer ownership after every committed batch:
// if the flush recorded new evolution events, wake this stream's
// long-pollers.
func (st *stream) flushHook() {
	if _, cur := st.c.EventsSince(^uint64(0)); cur != st.eventCursor {
		st.eventCursor = cur
		st.events.wake()
	}
}

// checkShape verifies every point against the stream's established
// shape. When learn is true (the ingest path) the first point of an
// unshaped stream fixes the shape; the assign path never learns —
// reads must not define the stream. Concurrent first ingests race on
// the CAS; exactly one shape wins and the loser's request is rejected
// like any other mismatch.
func (st *stream) checkShape(pts []edmstream.Point, learn bool) error {
	for i := range pts {
		ps := pointShape(pts[i])
		cur := st.shape.Load()
		if cur == 0 {
			if !learn {
				// Nothing established yet and reads cannot establish
				// it; the engine has no cells, so any probe is an
				// outlier anyway.
				continue
			}
			if st.shape.CompareAndSwap(0, ps) {
				continue
			}
			cur = st.shape.Load()
		}
		if ps != cur {
			return fmt.Errorf("point %d: stream serves %s points, got %s", i, shapeString(cur), shapeString(ps))
		}
	}
	return nil
}

// discoverStreams registers every named stream with on-disk (and,
// under RestoreFromArchive, remote) state so reads on it revive the
// engine instead of 404ing. Called once at New; unknown directory
// entries are skipped rather than failed — the scan must never stop a
// boot over a stray file.
func (s *Server) discoverStreams() error {
	if s.cfg.DataDir != "" {
		entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "streams"))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: scanning %s for streams: %w", filepath.Join(s.cfg.DataDir, "streams"), err)
		}
		for _, e := range entries {
			if e.IsDir() && tenant.ValidateName(e.Name()) == nil {
				s.streams.RegisterEvicted(e.Name())
			}
		}
	}
	if s.store != nil && s.cfg.RestoreFromArchive {
		// Disaster restore: the remote knows which named streams existed;
		// register them so their first touch restores + revives them.
		keys, err := s.store.List("streams/")
		if err != nil {
			return fmt.Errorf("server: listing archived streams: %w", err)
		}
		for _, k := range keys {
			rest := k[len("streams/"):]
			if i := indexByte(rest, '/'); i > 0 {
				if name := rest[:i]; tenant.ValidateName(name) == nil {
					s.streams.RegisterEvicted(name)
				}
			}
		}
	}
	return nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
