package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGracefulShutdownDropsNoAcceptedIngest is the shutdown
// regression test: writers hammer the ingest endpoint while the
// server shuts down mid-flight, and afterwards every point whose
// request was acknowledged (HTTP 200) must be present in the engine —
// an ack is a durability promise the drain must honor. Requests that
// straddle the shutdown may get 503 (not accepted, free to retry);
// what is never allowed is a 200 whose points are missing.
func TestGracefulShutdownDropsNoAcceptedIngest(t *testing.T) {
	s, c, base := startServer(t, testOptions(), Config{CoalesceWindow: 2 * time.Millisecond})

	const writers = 6
	const ptsPerReq = 25
	var acceptedPts atomic.Int64
	var rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := make([]map[string]any, ptsPerReq)
				for j := range req {
					req[j] = map[string]any{
						"vector": []float64{float64(w) * 3, float64(i%7) * 3},
						"time":   float64(i) / 1000,
					}
				}
				raw, _ := json.Marshal(req)
				resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(raw))
				if err != nil {
					// Connection-level failure after shutdown: nothing
					// was acknowledged.
					return
				}
				var ack ingestResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decodeErr != nil {
						t.Errorf("200 with undecodable ack: %v", decodeErr)
						return
					}
					acceptedPts.Add(int64(ack.Accepted))
				case http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					t.Errorf("unexpected ingest status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Let traffic build, then shut down while requests are in flight.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	got := c.Stats().Points
	want := acceptedPts.Load()
	if got != want {
		t.Fatalf("engine holds %d points but %d were acknowledged: acknowledged ingest was dropped (or phantom points appeared)", got, want)
	}
	if want == 0 {
		t.Fatal("test proved nothing: no request was acknowledged before shutdown")
	}
	t.Logf("acknowledged %d points across shutdown (%d requests rejected while draining), all present", want, rejected.Load())

	// After shutdown the server refuses new work but stays readable.
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader([]byte(`[{"vector":[0,0]}]`)))
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-shutdown ingest status %d, want 503 (or connection refused)", resp.StatusCode)
		}
	}
}

// TestShutdownReleasesLongPolls: a parked /v1/events long-poll must
// return promptly (empty page, not an error) when shutdown begins, so
// the HTTP drain is not held hostage by the poll timeout.
func TestShutdownReleasesLongPolls(t *testing.T) {
	s, _, base := startServer(t, testOptions(), Config{})

	type result struct {
		status int
		page   eventsResponse
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/events?cursor=0&wait=25s")
		if err != nil {
			done <- result{err: err}
			return
		}
		var p eventsResponse
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, page: p, err: err}
	}()
	time.Sleep(100 * time.Millisecond) // park the poll

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shutdown took %v: long-poll held the drain", elapsed)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("long-poll errored at shutdown: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Errorf("long-poll status %d at shutdown, want 200 empty page", res.status)
		}
		if len(res.page.Events) != 0 {
			t.Errorf("idle engine long-poll returned events: %+v", res.page)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll still parked after shutdown returned")
	}
}

// TestShutdownIdempotent: calling Shutdown twice is safe (the test
// cleanup in every other test relies on this).
func TestShutdownIdempotent(t *testing.T) {
	s, _, base := startServer(t, testOptions(), Config{})
	var ack ingestResponse
	postJSON(t, base+"/v1/ingest", []map[string]any{{"vector": []float64{1, 2}}}, &ack)
	if ack.Accepted != 1 {
		t.Fatalf("setup ingest failed: %+v", ack)
	}
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown %d: %v", i, err)
		}
		cancel()
	}
}

// TestHealthzReportsDraining: the health endpoint flips to 503 during
// shutdown so load balancers stop routing to a draining instance.
// (Exercised through the handler directly: the real listener is
// already closed to new connections at that point.)
func TestHealthzReportsDraining(t *testing.T) {
	s, _, base := startServer(t, testOptions(), Config{})
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", rec.Code)
	}
}
