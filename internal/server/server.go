package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/obs"
	"github.com/densitymountain/edmstream/internal/tenant"
	"github.com/densitymountain/edmstream/internal/wal"
)

// Server serves clusterers over HTTP. Create it with New, start it
// with Start (or drive its Handler directly in tests after
// StartDetached), and stop it with Shutdown, which drains accepted
// ingest work before returning.
//
// The server is multi-tenant: /v1/{stream}/... endpoints address named
// streams, lazily created on first ingest and evicted to disk under
// memory pressure, while the un-prefixed /v1/... endpoints alias the
// "default" stream built from the clusterer passed to New. The server
// takes ownership of every stream engine's write path: from New until
// Shutdown returns, no other goroutine may call a served clusterer's
// mutating methods. The lock-free read methods remain available to
// everyone.
type Server struct {
	c   *edmstream.Clusterer // the default stream's engine
	cfg Config

	adm  *admission
	reg  *obs.Registry
	mux  *http.ServeMux
	http *http.Server

	// pool is the bounded shared writer pool every stream's coalescer
	// is scheduled on; streams is the named-stream registry (lazy
	// creation, pin counting, checkpoint-backed LRU eviction); store is
	// the shared archive object store (nil without an archive), which
	// each stream views through its own key prefix.
	pool    *tenant.Pool
	streams *tenant.Registry[*stream]
	store   archive.ObjectStore

	// def is the default stream; the fields below alias its subsystems
	// for the single-stream API surface (RecoveryInfo) and the tests
	// that reach into them.
	def            *stream
	coal           *coalescer
	dur            *durability
	deg            *degradedState
	ship           *archive.Shipper
	archiveM       *archiveMetrics
	restored       *archive.RestoreInfo
	restoreSkipped bool

	// tenantOps maps "METHOD op" to the handler the /v1/{stream}/{op}
	// dispatcher invokes, pre-wrapped with the same per-endpoint
	// telemetry (and read guard) the default plane uses.
	tenantOps map[string]http.HandlerFunc

	streamsActive     *obs.Gauge
	streamsRegistered *obs.Gauge
	streamsMemory     *obs.Gauge
	streamsEvicted    *obs.Counter

	// start anchors the server's stream clock: points arriving
	// without an explicit timestamp are stamped with seconds since
	// start. Shared by every stream — tenants of one daemon live on
	// one clock.
	start time.Time

	draining atomic.Bool
	// drainCh is closed when Shutdown begins; long-poll sleeps select
	// on it so a poller that registered concurrently with the shutdown
	// wake cannot sleep through the HTTP drain.
	drainCh   chan struct{}
	drainOnce sync.Once

	listener net.Listener
	serveErr chan error
	started  atomic.Bool
	// runtimeStarted records that the writer pool and janitor were
	// actually launched; Shutdown only waits for coalescer drains in
	// that case (a failed Start never launches them, and waiting would
	// hang forever).
	runtimeStarted atomic.Bool

	janitorStop chan struct{}
	janitorDone chan struct{}
	janitorOnce sync.Once
}

// New builds a server whose default stream serves the given clusterer.
// The clusterer must already be constructed (its Options validated by
// edmstream.New); cfg is validated here.
//
// When cfg.DataDir is set, New also recovers the default stream from
// the write-ahead log in that directory — newest valid checkpoint plus
// the log tail replayed through the normal batch-ingest path — before
// any serving state (stream shape, event cursor) is derived from it.
// The clusterer should be freshly constructed in that case: recovery
// rebuilds the acknowledged state, and points fed in beforehand would
// make the recovered stream diverge from the log. Named streams keep
// their state under DataDir/streams/<name>/ and recover the same way
// on first touch.
func New(c *edmstream.Clusterer, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		c:           c,
		cfg:         cfg,
		reg:         obs.NewRegistry(),
		start:       time.Now(),
		drainCh:     make(chan struct{}),
		serveErr:    make(chan error, 1),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if cfg.DataDir != "" && cfg.archiveConfigured() {
		store := cfg.ArchiveStore
		if store == nil {
			var err error
			store, err = archive.OpenStore(cfg.ArchiveURL)
			if err != nil {
				return nil, fmt.Errorf("server: opening archive %q: %w", cfg.ArchiveURL, err)
			}
		}
		s.store = store
	}
	s.adm = newAdmission(cfg, s.reg)
	s.pool = tenant.NewPool(cfg.WriterPool)
	s.streamsActive = s.reg.Gauge("edmserved_streams_active", "")
	s.streamsRegistered = s.reg.Gauge("edmserved_streams_registered", "")
	s.streamsMemory = s.reg.Gauge("edmserved_streams_memory_bytes", "")
	s.streamsEvicted = s.reg.Counter("edmserved_streams_evicted_total", "")
	s.streams = tenant.NewRegistry(tenant.Config[*stream]{
		Factory:        s.buildStream,
		MaxStreams:     cfg.MaxStreams,
		MemoryBudget:   cfg.MemoryBudget,
		EvictIdleAfter: cfg.EvictIdleAfter,
		// Eviction requires a WAL: releasing an engine without durable
		// state would lose its acknowledged points.
		Evictable: cfg.DataDir != "",
		CanEvict: func(st *stream) bool {
			// The default stream is never evicted (the caller owns its
			// engine; there is no factory path that rebuilds that exact
			// object), and a degraded stream's WAL cannot take the
			// eviction checkpoint. TryRetire last: once it succeeds the
			// handle is permanently retired, so it must also be the
			// final word.
			if st.name == DefaultStream || st.deg.isDegraded() {
				return false
			}
			return s.pool.TryRetire(st.handle)
		},
		OnEvict: func(string) { s.streamsEvicted.Inc() },
	})
	def, err := s.assembleStream(DefaultStream, c)
	if err != nil {
		return nil, err
	}
	if err := s.streams.Adopt(DefaultStream, def); err != nil {
		def.shutdownClose(nil)
		return nil, err
	}
	s.def = def
	s.coal = def.coal
	s.dur = def.dur
	s.deg = def.deg
	s.ship = def.ship
	s.archiveM = def.archiveM
	s.restored = def.restored
	s.restoreSkipped = def.restoreSkipped
	if err := s.discoverStreams(); err != nil {
		def.shutdownClose(nil)
		return nil, err
	}

	s.mux = http.NewServeMux()
	// Default plane: the un-prefixed endpoints alias the default
	// stream (the pre-tenancy API, unchanged). Data-plane reads sit
	// behind the bounded-concurrency guard; the operator endpoints
	// (events, stats, healthz, metrics) stay exempt so an overloaded or
	// degraded server remains observable.
	s.route("POST /v1/ingest", "ingest", s.defaultPlane(s.handleIngest))
	s.route("POST /v1/assign", "assign", s.readGuard(s.defaultPlane(s.handleAssign)))
	s.route("GET /v1/snapshot", "snapshot", s.readGuard(s.defaultPlane(s.handleSnapshot)))
	s.route("GET /v1/clusters/{id}", "cluster", s.readGuard(s.defaultPlane(s.handleCluster)))
	s.route("GET /v1/events", "events", s.defaultPlane(s.handleEvents))
	s.route("GET /v1/stats", "stats", s.defaultPlane(s.handleStats))
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	// Stream admin. The literal /v1/streams patterns are strictly more
	// specific than the tenant wildcards below, so they win; the name
	// "streams" itself is reserved by tenant.ValidateName.
	s.route("GET /v1/streams", "streams", s.handleStreams)
	s.route("DELETE /v1/streams/{stream}", "streams", s.handleStreamDelete)
	// Tenant plane: one multi-segment wildcard per method, dispatched
	// on the first op segment. Registering concrete per-op patterns
	// like "GET /v1/{stream}/events" instead would conflict with
	// "GET /v1/clusters/{id}" (both match /v1/clusters/events, neither
	// more specific); the single wildcard is strictly less specific
	// than every literal route, so the mux resolves all of them.
	s.mux.HandleFunc("POST /v1/{stream}/{op...}", s.handleTenant)
	s.mux.HandleFunc("GET /v1/{stream}/{op...}", s.handleTenant)
	s.tenantOps = map[string]http.HandlerFunc{
		"POST ingest":  s.instrument("ingest", s.tenantPlane(s.handleIngest, true)),
		"POST assign":  s.instrument("assign", s.readGuard(s.tenantPlane(s.handleAssign, false))),
		"GET snapshot": s.instrument("snapshot", s.readGuard(s.tenantPlane(s.handleSnapshot, false))),
		"GET clusters": s.instrument("cluster", s.readGuard(s.tenantPlane(s.handleCluster, false))),
		"GET events":   s.instrument("events", s.tenantPlane(s.handleEvents, false)),
		"GET stats":    s.instrument("stats", s.tenantPlane(s.handleStats, false)),
	}
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout, // validated to exceed LongPollTimeout
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s, nil
}

// streamHandler is a handler bound to one pinned stream. rest carries
// the path remainder after the op segment (the cluster id); it is ""
// for ops that take none.
type streamHandler func(st *stream, w http.ResponseWriter, r *http.Request, rest string)

// defaultPlane adapts a stream handler to the un-prefixed endpoints:
// pin the default stream (always registered, never evicted) for the
// request's duration.
func (s *Server) defaultPlane(h streamHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, release, err := s.streams.Acquire(DefaultStream, false)
		if err != nil {
			s.acquireError(w, DefaultStream, err)
			return
		}
		defer release()
		h(st, w, r, r.PathValue("id"))
	}
}

// tenantPlane adapts a stream handler to the /v1/{stream}/... plane:
// validate the name, pin the stream — creating it when create is set
// (ingest) and transparently reviving it when it was evicted — and run
// the handler with the pin held, so the evictor can never pull the
// engine out from under a request.
func (s *Server) tenantPlane(h streamHandler, create bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("stream")
		if err := tenant.ValidateName(name); err != nil && name != DefaultStream {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		_, rest, _ := strings.Cut(r.PathValue("op"), "/")
		st, release, err := s.streams.Acquire(name, create)
		if err != nil {
			s.acquireError(w, name, err)
			return
		}
		defer release()
		h(st, w, r, rest)
	}
}

// handleTenant dispatches /v1/{stream}/{op...} on the first op
// segment. Unknown ops 404 like unrouted paths.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	op, rest, _ := strings.Cut(r.PathValue("op"), "/")
	h, ok := s.tenantOps[r.Method+" "+op]
	// clusters is the only op with a path remainder, and it requires one.
	if !ok || (rest != "") != (op == "clusters") {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown endpoint %s for stream %q", r.URL.Path, r.PathValue("stream")))
		return
	}
	h(w, r)
}

// acquireError maps a registry acquisition failure onto the HTTP
// surface.
func (s *Server) acquireError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, tenant.ErrUnknownStream):
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error:  fmt.Sprintf("%v (POST /v1/%s/ingest creates it)", err, name),
			Reason: reasonUnknownStream,
		})
	case errors.Is(err, tenant.ErrTooManyStreams):
		// The stream cap is a capacity limit like any other: 429 with
		// the overloaded reason, retry (or evict) and try again.
		shedError(w, http.StatusTooManyRequests, err, reasonOverloaded, 1)
	case errors.Is(err, tenant.ErrClosed):
		shedError(w, http.StatusServiceUnavailable, errDraining, reasonDraining, 1)
	case errors.Is(err, errNoFactory):
		httpError(w, http.StatusNotImplemented, err)
	default:
		// The factory failed (engine construction or WAL recovery): a
		// server-side fault, and the name stays revivable for a retry.
		httpError(w, http.StatusInternalServerError, err)
	}
}

// instrument wraps a handler with per-endpoint telemetry: request
// counts and latency quantiles under the endpoint label. The registry
// returns the same instruments for the same (name, labels) pair, so
// the default plane and the tenant plane of one endpoint share one
// series.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	labels := `endpoint="` + name + `"`
	requests := s.reg.Counter("edmserved_http_requests_total", labels)
	errCount := s.reg.Counter("edmserved_http_errors_total", labels)
	latency := s.reg.Timing("edmserved_http_request_duration_seconds", labels)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		latency.Observe(time.Since(begin))
		requests.Inc()
		if sw.status >= 400 {
			errCount.Inc()
		}
	}
}

// route registers an instrumented handler on the mux.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(name, h))
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler (every endpoint,
// telemetry included) for in-process use: tests and the e2e benchmark
// drive it through httptest or a private listener. The writer pool
// must be running — use Start, or StartDetached for handler-only
// serving.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's telemetry registry (the e2e benchmark
// reads coalescer distributions from it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// startRuntime launches the shared serving machinery: the writer pool
// and the janitor (eviction sweeps, degraded-mode probe scheduling,
// tenancy gauges).
func (s *Server) startRuntime() {
	s.runtimeStarted.Store(true)
	s.pool.Start()
	go s.janitor()
}

// Start listens on cfg.Addr and serves until Shutdown. It returns
// once the listener is bound (so callers may read Addr), with serving
// continuing on background goroutines.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.started.Store(false)
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	s.startRuntime()
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
	}()
	return nil
}

// StartDetached starts only the writer pool and janitor, for callers
// that drive Handler through their own listener (httptest servers).
func (s *Server) StartDetached() {
	if s.started.CompareAndSwap(false, true) {
		s.startRuntime()
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Err reports an asynchronous serve failure, if any (nil otherwise).
func (s *Server) Err() error {
	select {
	case err := <-s.serveErr:
		return err
	default:
		return nil
	}
}

// janitor is the shared background loop: it schedules degraded-mode
// recovery probes onto each sick stream's writer (the probe must run
// under the stream's single-writer ownership, so it is flagged and the
// handle woken rather than run here), runs eviction sweeps at the
// SweepInterval cadence, and refreshes the tenancy gauges. The tick is
// the finer of the two cadences so neither starves the other.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := s.cfg.SweepInterval
	if s.cfg.DegradedProbeInterval < tick {
		tick = s.cfg.DegradedProbeInterval
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	lastSweep := time.Now()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, st := range s.streams.Live() {
			if st.deg.isDegraded() && now.UnixNano() >= st.nextProbe.Load() {
				st.nextProbe.Store(now.Add(s.cfg.DegradedProbeInterval).UnixNano())
				st.coal.probeWanted.Store(true)
				st.handle.Wake()
			}
		}
		if now.Sub(lastSweep) >= s.cfg.SweepInterval {
			lastSweep = now
			s.streams.Sweep()
		}
		s.refreshTenancyGauges(s.streams.Stats())
	}
}

func (s *Server) refreshTenancyGauges(rs tenant.Stats) {
	s.streamsActive.Set(int64(rs.Live))
	s.streamsRegistered.Set(int64(rs.Registered))
	s.streamsMemory.Set(rs.MemoryBytes)
}

// Shutdown stops the server gracefully: new requests are rejected,
// long-polls return immediately, in-flight requests run to completion,
// and every ingest request accepted into any stream's coalescer queue
// is committed before the writer pool stops — an acknowledged (HTTP
// 200) ingest is never dropped, on any stream. The context bounds the
// wait for in-flight HTTP requests; the final coalescer drains are not
// abandoned on context expiry (bounded work: at most MaxPending queued
// requests per stream).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	for _, st := range s.streams.Live() {
		st.events.wake() // release long-pollers so the HTTP drain can finish
	}
	var httpErr error
	if s.listener != nil {
		httpErr = s.http.Shutdown(ctx)
	}
	// Stop the janitor before closing the registry so no eviction
	// races the shutdown's own stream teardown.
	if s.runtimeStarted.Load() {
		s.janitorOnce.Do(func() { close(s.janitorStop) })
		<-s.janitorDone
	}
	// In-flight requests are done (http.Shutdown returned), so the
	// registry is quiescent: close it, then drain and close every
	// stream that is still resident. Evicted streams need nothing —
	// their eviction already checkpointed and closed them.
	s.streams.Close()
	live := s.streams.Live()
	for _, st := range live {
		st.coal.beginShutdown()
		st.handle.Wake() // schedule the drain pass
	}
	if s.runtimeStarted.Load() {
		for _, st := range live {
			// Bounded work (at most the queued requests), so it is
			// awaited even past ctx expiry — abandoning it would break
			// the "acknowledged implies applied" contract.
			<-st.coal.done
		}
	}
	s.pool.Stop()
	for _, st := range live {
		if err := st.shutdownClose(st.c); err != nil && httpErr == nil {
			httpErr = err
		}
	}
	return httpErr
}

// shutdownClose releases one stream's durability and archive resources
// at server shutdown: final checkpoint + WAL close, then the shipper
// drain. c may be nil when the stream never served (boot-failure
// cleanup).
func (st *stream) shutdownClose(c *edmstream.Clusterer) error {
	var err error
	if st.dur != nil {
		// The writer pool has stopped, so the final checkpoint and
		// close are race-free. Every acknowledged batch is already on
		// disk — the checkpoint only shortens the next boot's replay.
		if c != nil {
			err = st.dur.close(c)
		} else {
			err = st.dur.close(st.c)
		}
	}
	if st.ship != nil {
		// After dur.close so the final checkpoint's seal/save
		// notifications are already queued; the drain gives each
		// pending upload one best-effort attempt.
		if serr := st.ship.Close(5 * time.Second); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// RecoveryInfo reports what the default stream's durability subsystem
// found and recovered at startup. Meaningful only when the server was
// configured with a DataDir; the zero value otherwise.
func (s *Server) RecoveryInfo() wal.RecoveryInfo {
	if s.dur == nil {
		return wal.RecoveryInfo{}
	}
	return s.dur.recovery
}

// streamNow returns the server's stream clock: seconds since start.
// Points without explicit timestamps are stamped with it.
func (s *Server) streamNow() float64 { return time.Since(s.start).Seconds() }

// ---- Handlers ----

func (s *Server) handleIngest(st *stream, w http.ResponseWriter, r *http.Request, _ string) {
	// Rejections are checked cheapest-first and before the body is read
	// — the whole point of shedding is to not spend work on requests
	// the server cannot serve.
	if s.draining.Load() {
		shedError(w, http.StatusServiceUnavailable, errDraining, reasonDraining, 1)
		return
	}
	if st.deg.isDegraded() {
		s.adm.shedDegraded.Inc()
		shedError(w, http.StatusServiceUnavailable, errDegraded, reasonDegraded,
			retryAfterSeconds(2*s.cfg.DegradedProbeInterval))
		return
	}
	// Admission rule: shed when the estimated commit wait already
	// exceeds the deadline, telling the client when the queue should
	// have drained. The estimate is observed either way so the
	// distribution shows the pressure that led to shedding.
	est := st.coal.estimateWait()
	s.adm.estWait.Observe(est.Seconds())
	if est > s.cfg.IngestDeadline {
		s.adm.shedEstimate.Inc()
		shedError(w, http.StatusTooManyRequests,
			fmt.Errorf("estimated commit wait %v exceeds the %v ingest deadline",
				est.Round(time.Millisecond), s.cfg.IngestDeadline),
			reasonOverloaded, retryAfterSeconds(est))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	pts, err := decodePoints(body, s.streamNow(), s.cfg.MaxBatch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := st.checkShape(pts, true); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(pts) == 0 {
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: 0, Cells: []int64{}})
		return
	}
	// The same deadline bounds the queue send, as a context timeout the
	// coalescer's enqueue select observes — the backstop for a full
	// queue the estimator had no history to predict.
	ctx := r.Context()
	if s.cfg.IngestDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.IngestDeadline)
		defer cancel()
	}
	cells, err := st.coal.submit(ctx, pts)
	switch {
	case errors.Is(err, errDraining):
		shedError(w, http.StatusServiceUnavailable, err, reasonDraining, 1)
		return
	case errors.Is(err, errDegraded):
		// The batch hit the WAL failure after this request was queued.
		s.adm.shedDegraded.Inc()
		shedError(w, http.StatusServiceUnavailable, err, reasonDegraded,
			retryAfterSeconds(2*s.cfg.DegradedProbeInterval))
		return
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		// The admission deadline, not the client's own: the queue stayed
		// full for the whole wait. Nothing was committed.
		s.adm.shedTimeout.Inc()
		shedError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest queue full: not admitted within the %v deadline", s.cfg.IngestDeadline),
			reasonOverloaded, retryAfterSeconds(st.coal.estimateWait()))
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Client went away while queued; nothing was committed for it.
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		// A commit error on pre-validated points is a server-side
		// failure, not the client's.
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: len(pts), Cells: cells})
}

func (s *Server) handleAssign(st *stream, w http.ResponseWriter, r *http.Request, _ string) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	pts, err := decodePoints(body, s.streamNow(), s.cfg.MaxBatch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := st.checkShape(pts, false); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ids := st.c.AssignBatch(pts, make([]int, 0, len(pts)))
	writeJSON(w, http.StatusOK, assignResponse{Clusters: ids})
}

func (s *Server) handleSnapshot(st *stream, w http.ResponseWriter, r *http.Request, _ string) {
	snap := st.c.LastSnapshot()
	resp := snapshotResponse{
		Time:         snap.Time,
		Tau:          snap.Tau,
		ActiveCells:  snap.ActiveCells,
		OutlierCells: snap.OutlierCells,
		Clusters:     make([]wireClusterSummary, 0, len(snap.Clusters)),
	}
	for i := range snap.Clusters {
		resp.Clusters = append(resp.Clusters, summarize(&snap.Clusters[i]))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCluster(st *stream, w http.ResponseWriter, r *http.Request, rawID string) {
	id, err := strconv.Atoi(rawID)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster id %q is not an integer", rawID))
		return
	}
	snap := st.c.LastSnapshot()
	cl, ok := snap.Cluster(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cluster %d in the published snapshot", id))
		return
	}
	resp := clusterResponse{
		wireClusterSummary: summarize(&cl),
		Members:            make([]wireSeed, 0, len(cl.CellIDs)),
	}
	for i, cid := range cl.CellIDs {
		seed := wireSeed{CellID: cid}
		p := cl.SeedPoints[i]
		if p.IsText() {
			seed.Tokens = p.Tokens.Tokens()
		} else {
			seed.Vector = p.Vector
		}
		resp.Members = append(resp.Members, seed)
	}
	writeJSON(w, http.StatusOK, resp)
}

func summarize(cl *edmstream.ClusterInfo) wireClusterSummary {
	return wireClusterSummary{
		ID:          cl.ID,
		PeakCellID:  cl.PeakCellID,
		PeakDensity: cl.PeakDensity,
		Cells:       len(cl.CellIDs),
		Weight:      cl.Weight,
		Points:      cl.Points,
	}
}

func (s *Server) handleEvents(st *stream, w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query()
	var cursor uint64
	if raw := q.Get("cursor"); raw != "" {
		var err error
		cursor, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("cursor %q is not a non-negative integer", raw))
			return
		}
	}
	var wait time.Duration
	if raw := q.Get("wait"); raw != "" {
		var err error
		wait, err = time.ParseDuration(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("wait %q is not a duration (try 30s)", raw))
			return
		}
	}
	if wait < 0 {
		wait = 0
	}
	if wait > s.cfg.LongPollTimeout {
		wait = s.cfg.LongPollTimeout
	}
	deadline := time.Now().Add(wait)

	for {
		evs, next := st.c.EventsSince(cursor)
		if len(evs) > 0 || wait <= 0 || s.draining.Load() {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: toWireEvents(evs)})
			return
		}
		// Long-poll: register for a wake-up, then re-check so an event
		// recorded between the check above and the registration is not
		// missed, then sleep until events, deadline or disconnect. The
		// pin held across the sleep keeps the stream resident — a
		// watched stream is not idle.
		ch := st.events.wait()
		if evs, next = st.c.EventsSince(cursor); len(evs) > 0 {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: toWireEvents(evs)})
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-s.drainCh:
			timer.Stop()
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		case <-timer.C:
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// statsResponse is the GET /v1/stats body: engine counters plus the
// server's own serving-side numbers, for the addressed stream.
type statsResponse struct {
	Engine edmstream.Stats `json:"engine"`
	Server serverStats     `json:"server"`
}

type serverStats struct {
	Stream         string           `json:"stream"`
	UptimeSeconds  float64          `json:"uptime_seconds"`
	StreamTime     float64          `json:"stream_time"`
	Tau            float64          `json:"tau"`
	Draining       bool             `json:"draining"`
	Degraded       bool             `json:"degraded"`
	DegradedReason string           `json:"degraded_reason,omitempty"`
	Coalescer      coalescerStats   `json:"coalescer"`
	Admission      admissionStats   `json:"admission"`
	Tenancy        tenancyStats     `json:"tenancy"`
	Durability     *durabilityStats `json:"durability,omitempty"`
	Archive        *archiveStats    `json:"archive,omitempty"`
}

// tenancyStats is the multi-tenant section of GET /v1/stats: the
// registry's aggregate view plus the writer pool's. Identical on every
// stream's stats (it is daemon-global).
type tenancyStats struct {
	StreamsLive       int     `json:"streams_live"`
	StreamsRegistered int     `json:"streams_registered"`
	MaxStreams        int     `json:"max_streams"`
	WriterPool        int     `json:"writer_pool"`
	WriterQueueDepth  int     `json:"writer_queue_depth"`
	MemoryBudget      int64   `json:"memory_budget_bytes"`
	MemoryEstimate    int64   `json:"memory_estimate_bytes"`
	Evictions         uint64  `json:"evictions"`
	Revivals          uint64  `json:"revivals"`
	EvictIdleAfterSec float64 `json:"evict_idle_after_seconds"`
}

// admissionStats is the load-shedding section of GET /v1/stats: how
// many requests were refused, why, and the commit-wait estimate
// distribution the ingest rule sheds on.
type admissionStats struct {
	DeadlineSeconds    float64 `json:"deadline_seconds"`
	ShedEstimatedWait  uint64  `json:"shed_estimated_wait"`
	ShedQueueFull      uint64  `json:"shed_queue_full"`
	ShedDegraded       uint64  `json:"shed_degraded"`
	ShedReads          uint64  `json:"shed_reads"`
	EstimatedWaitP50   float64 `json:"estimated_wait_p50_seconds"`
	EstimatedWaitP99   float64 `json:"estimated_wait_p99_seconds"`
	DegradedEntered    uint64  `json:"degraded_entered"`
	DegradedRecovered  uint64  `json:"degraded_recovered"`
	MaxReadConcurrency int     `json:"max_read_concurrency"`
}

// durabilityStats is the WAL section of GET /v1/stats, present only
// when the server runs with a DataDir. Counters come from the obs
// instruments the writer maintains; the recovery block is frozen at
// startup.
type durabilityStats struct {
	Records          uint64  `json:"records"`
	Bytes            uint64  `json:"bytes"`
	Checkpoints      uint64  `json:"checkpoints"`
	CheckpointErrors uint64  `json:"checkpoint_errors"`
	AppendRetries    int64   `json:"append_retries"`
	Reopens          int64   `json:"reopens"`
	ProbeFailures    uint64  `json:"probe_failures"`
	Segments         int64   `json:"segments"`
	NoSync           bool    `json:"no_sync"`
	FsyncP50Sec      float64 `json:"fsync_p50_seconds"`
	FsyncP99Sec      float64 `json:"fsync_p99_seconds"`

	// Recovery-time budget: how many checkpoints the budget (rather
	// than the point-count cadence) forced, the replay rate the
	// estimate divides by, and the budget itself (0 = disabled).
	BudgetCheckpoints    uint64  `json:"budget_checkpoints"`
	ReplayPointsPerSec   int64   `json:"replay_points_per_sec"`
	RecoveryBudgetSec    float64 `json:"recovery_budget_seconds"`
	EstimatedReplayMs    int64   `json:"estimated_replay_ms"`
	CheckpointCompressed bool    `json:"checkpoint_compressed"`

	Recovery recoveryStats `json:"recovery"`
}

type recoveryStats struct {
	HasCheckpoint      bool   `json:"has_checkpoint"`
	CheckpointSeq      uint64 `json:"checkpoint_seq"`
	CheckpointsSkipped int    `json:"checkpoints_skipped"`
	RecordsReplayed    int    `json:"records_replayed"`
	DroppedBytes       int64  `json:"dropped_bytes"`
	DroppedSegments    int    `json:"dropped_segments"`
	TruncatedSegment   string `json:"truncated_segment,omitempty"`
}

type coalescerStats struct {
	Batches          uint64  `json:"batches"`
	Points           uint64  `json:"points"`
	Rejects          uint64  `json:"rejects"`
	ClientCancels    uint64  `json:"client_cancels"`
	PendingRequests  int64   `json:"pending_requests"`
	BatchPointsP50   float64 `json:"batch_points_p50"`
	BatchPointsP90   float64 `json:"batch_points_p90"`
	BatchPointsP99   float64 `json:"batch_points_p99"`
	BatchPointsMax   float64 `json:"batch_points_max"`
	BatchRequestsP50 float64 `json:"batch_requests_p50"`
	BatchRequestsP99 float64 `json:"batch_requests_p99"`
	BatchWaitP50Sec  float64 `json:"batch_wait_p50_seconds"`
	BatchWaitP99Sec  float64 `json:"batch_wait_p99_seconds"`
	FlushP50Sec      float64 `json:"flush_p50_seconds"`
	FlushP99Sec      float64 `json:"flush_p99_seconds"`
}

func (s *Server) handleStats(st *stream, w http.ResponseWriter, r *http.Request, _ string) {
	size := st.coal.batchSize.Stats()
	reqs := st.coal.batchReqs.Stats()
	wait := st.coal.batchWait.Stats()
	flush := st.coal.flushSeconds.Stats()
	estWait := s.adm.estWait.Stats()
	rs := s.streams.Stats()
	s.refreshTenancyGauges(rs)
	resp := statsResponse{
		Engine: st.c.Stats(),
		Server: serverStats{
			Stream:         st.name,
			UptimeSeconds:  time.Since(s.start).Seconds(),
			StreamTime:     st.c.LastSnapshot().Time,
			Tau:            st.c.LastSnapshot().Tau,
			Draining:       s.draining.Load(),
			Degraded:       st.deg.isDegraded(),
			DegradedReason: degradedReasonIf(st.deg),
			Coalescer: coalescerStats{
				Batches:          st.coal.batches.Value(),
				Points:           st.coal.pointsTotal.Value(),
				Rejects:          st.coal.rejectsTotal.Value(),
				ClientCancels:    st.coal.clientCancels.Value(),
				PendingRequests:  st.coal.pending.Value(),
				BatchPointsP50:   size.P50,
				BatchPointsP90:   size.P90,
				BatchPointsP99:   size.P99,
				BatchPointsMax:   size.WindowMax,
				BatchRequestsP50: reqs.P50,
				BatchRequestsP99: reqs.P99,
				BatchWaitP50Sec:  wait.P50,
				BatchWaitP99Sec:  wait.P99,
				FlushP50Sec:      flush.P50,
				FlushP99Sec:      flush.P99,
			},
			Admission: admissionStats{
				DeadlineSeconds:    s.cfg.IngestDeadline.Seconds(),
				ShedEstimatedWait:  s.adm.shedEstimate.Value(),
				ShedQueueFull:      s.adm.shedTimeout.Value(),
				ShedDegraded:       s.adm.shedDegraded.Value(),
				ShedReads:          s.adm.shedReads.Value(),
				EstimatedWaitP50:   estWait.P50,
				EstimatedWaitP99:   estWait.P99,
				DegradedEntered:    st.deg.entered.Value(),
				DegradedRecovered:  st.deg.recovered.Value(),
				MaxReadConcurrency: cap(s.adm.readSem),
			},
			Tenancy: tenancyStats{
				StreamsLive:       rs.Live,
				StreamsRegistered: rs.Registered,
				MaxStreams:        s.cfg.MaxStreams,
				WriterPool:        s.pool.Workers(),
				WriterQueueDepth:  s.pool.QueueDepth(),
				MemoryBudget:      s.cfg.MemoryBudget,
				MemoryEstimate:    rs.MemoryBytes,
				Evictions:         rs.Evictions,
				Revivals:          rs.Revivals,
				EvictIdleAfterSec: s.cfg.EvictIdleAfter.Seconds(),
			},
		},
	}
	if d := st.dur; d != nil {
		fs := d.fsync.Stats()
		resp.Server.Durability = &durabilityStats{
			Records:          d.records.Value(),
			Bytes:            d.bytesTotal.Value(),
			Checkpoints:      d.checkpoints.Value(),
			CheckpointErrors: d.ckptErrors.Value(),
			// Live from the resilient log's atomics, not the gauges the
			// writer refreshes: a retry storm shows up here even between
			// appends.
			AppendRetries:        int64(d.log.Retries()),
			Reopens:              int64(d.log.Reopens()),
			ProbeFailures:        d.probeFailures.Value(),
			Segments:             d.segments.Value(),
			NoSync:               s.cfg.WALNoSync,
			FsyncP50Sec:          fs.P50,
			FsyncP99Sec:          fs.P99,
			BudgetCheckpoints:    d.budgetCkpts.Value(),
			ReplayPointsPerSec:   d.replayRateG.Value(),
			RecoveryBudgetSec:    s.cfg.RecoveryBudget.Seconds(),
			EstimatedReplayMs:    d.estReplayMs.Value(),
			CheckpointCompressed: s.cfg.CheckpointCompress,
			Recovery: recoveryStats{
				HasCheckpoint:      d.recovery.HasCheckpoint,
				CheckpointSeq:      d.recovery.CheckpointSeq,
				CheckpointsSkipped: d.recovery.CheckpointsSkipped,
				RecordsReplayed:    d.recovery.RecordsReplayable,
				DroppedBytes:       d.recovery.DroppedBytes,
				DroppedSegments:    d.recovery.DroppedSegments,
				TruncatedSegment:   d.recovery.TruncatedSegment,
			},
		}
	}
	if st.ship != nil {
		stats := st.ship.Stats()
		st.archiveM.refresh(stats)
		resp.Server.Archive = &archiveStats{
			Shipped:              stats.Shipped,
			ShippedBytes:         stats.ShippedBytes,
			ReadBytes:            stats.ReadBytes,
			Failed:               stats.Failed,
			Retried:              stats.Retried,
			Dropped:              stats.Dropped,
			Skipped:              stats.Skipped,
			Pruned:               stats.Pruned,
			LagObjects:           stats.LagObjects,
			LagRecords:           stats.LagRecords,
			LagSeconds:           stats.LagSeconds,
			Lagging:              stats.Lagging,
			LocalThroughSeq:      stats.LocalThroughSeq,
			ShippedThroughSeq:    stats.ShippedThroughSeq,
			ShippedCheckpointSeq: stats.ShippedCheckpointSeq,
			Restore:              st.restored,
			RestoreSkipped:       st.restoreSkipped,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamsResponse is the GET /v1/streams body.
type streamsResponse struct {
	Streams    []wireStreamInfo `json:"streams"`
	MaxStreams int              `json:"max_streams"`
}

type wireStreamInfo struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Pins        int     `json:"pins"`
	MemoryBytes int64   `json:"memory_bytes"`
	IdleSeconds float64 `json:"idle_seconds"`
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	infos := s.streams.Snapshot()
	resp := streamsResponse{Streams: make([]wireStreamInfo, 0, len(infos)), MaxStreams: s.cfg.MaxStreams}
	now := time.Now()
	for _, in := range infos {
		resp.Streams = append(resp.Streams, wireStreamInfo{
			Name:        in.Name,
			State:       in.State,
			Pins:        in.Pins,
			MemoryBytes: in.MemoryBytes,
			IdleSeconds: now.Sub(in.LastTouch).Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamDelete is the admin evictor: DELETE /v1/streams/{stream}
// checkpoints the named stream to disk and releases its memory; the
// name stays registered and the next touch revives it.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("stream")
	if name == DefaultStream {
		httpError(w, http.StatusBadRequest, errors.New("the default stream cannot be evicted"))
		return
	}
	evicted, err := s.streams.EvictNow(name)
	switch {
	case errors.Is(err, tenant.ErrUnknownStream):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), Reason: reasonUnknownStream})
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
	case !evicted:
		httpError(w, http.StatusConflict,
			fmt.Errorf("stream %q is busy (pinned, degraded, or its writer has queued work); retry", name))
	default:
		writeJSON(w, http.StatusOK, map[string]string{"stream": name, "state": "evicted"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	live := s.streams.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })
	degraded := false
	var details []string
	for _, st := range live {
		if st.deg.isDegraded() {
			// 200 on purpose: the read path is healthy and restarting
			// the process would not fix the disk. The detail line tells
			// orchestrators (and the runbook) which stream is refusing
			// writes.
			degraded = true
			details = append(details, fmt.Sprintf("stream %s: degraded (%s)", st.name, st.deg.reason()))
		}
		if st.ship != nil && st.ship.Lagging() {
			// A detail line, not a degradation: ingest acks never depend
			// on the remote, so a lagging archive stays 200 — operators
			// see the replica falling behind, orchestrators keep the pod.
			details = append(details, fmt.Sprintf("stream %s: archive-lagging", st.name))
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if degraded {
		fmt.Fprintln(w, "degraded")
	} else {
		fmt.Fprintln(w, "ok")
	}
	for _, d := range details {
		fmt.Fprintln(w, d)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	for _, st := range s.streams.Live() {
		if st.ship != nil {
			st.archiveM.refresh(st.ship.Stats())
		}
		if st.dur != nil {
			st.dur.syncRetryGauges()
		}
	}
	s.refreshTenancyGauges(s.streams.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// ---- Helpers ----

// degradedReasonIf returns the degradation cause only while degraded,
// so a recovered stream's stats stop carrying the stale error text.
func degradedReasonIf(d *degradedState) string {
	if !d.isDegraded() {
		return ""
	}
	return d.reason()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// notifier is a broadcast edge: wait returns a channel closed by the
// next wake, after which waiters re-check their condition.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	return n.ch
}

func (n *notifier) wake() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
	}
}
