package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/obs"
	"github.com/densitymountain/edmstream/internal/wal"
)

// Server serves one Clusterer over HTTP. Create it with New, start it
// with Start (or drive its Handler directly in tests), and stop it
// with Shutdown, which drains accepted ingest work before returning.
//
// The server takes ownership of the clusterer's write path: from New
// until Shutdown returns, no other goroutine may call the clusterer's
// mutating methods (Insert, InsertBatch, Snapshot, ...). The
// lock-free read methods remain available to everyone.
type Server struct {
	c   *edmstream.Clusterer
	cfg Config

	coal *coalescer
	dur  *durability
	adm  *admission
	deg  *degradedState
	reg  *obs.Registry
	mux  *http.ServeMux
	http *http.Server

	// ship is the archive shipper (nil without an archive); archiveM
	// mirrors its counters into the registry, restored records the
	// disaster restore New ran (nil if none), and restoreSkipped means
	// RestoreFromArchive found local WAL state and deferred to it.
	ship           *archive.Shipper
	archiveM       *archiveMetrics
	restored       *archive.RestoreInfo
	restoreSkipped bool

	// start anchors the server's stream clock: points arriving
	// without an explicit timestamp are stamped with seconds since
	// start.
	start time.Time

	// events wakes /v1/events long-pollers; eventCursor is the end
	// cursor as of the last flush, maintained on the writer goroutine
	// and used to detect that a flush recorded new events.
	events      notifier
	eventCursor uint64

	// shape is the stream's established modality/dimensionality
	// (pointShape): 0 until the first ingested point fixes it (or New
	// learns it from an already-published snapshot), -1 for token
	// sets, the vector dimensionality otherwise. Every ingest and
	// assign point is checked against it so a mismatched request gets
	// a 400 instead of reaching the engine's distance kernels.
	shape atomic.Int64

	draining atomic.Bool
	// drainCh is closed when Shutdown begins; long-poll sleeps select
	// on it so a poller that registered concurrently with the shutdown
	// wake cannot sleep through the HTTP drain.
	drainCh   chan struct{}
	drainOnce sync.Once

	listener net.Listener
	serveErr chan error
	started  atomic.Bool
	// coalStarted records that the coalescer run loop was actually
	// launched; Shutdown only waits for its drain in that case (a
	// failed Start never launches it, and waiting would hang forever).
	coalStarted atomic.Bool
}

// New builds a server for the given clusterer. The clusterer must
// already be constructed (its Options validated by edmstream.New);
// cfg is validated here.
//
// When cfg.DataDir is set, New also recovers the clusterer from the
// write-ahead log in that directory — newest valid checkpoint plus the
// log tail replayed through the normal batch-ingest path — before any
// serving state (stream shape, event cursor) is derived from it. The
// clusterer should be freshly constructed in that case: recovery
// rebuilds the acknowledged state, and points fed in beforehand would
// make the recovered stream diverge from the log.
func New(c *edmstream.Clusterer, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		c:        c,
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		start:    time.Now(),
		drainCh:  make(chan struct{}),
		serveErr: make(chan error, 1),
	}
	if cfg.DataDir != "" {
		if cfg.archiveConfigured() {
			store := cfg.ArchiveStore
			if store == nil {
				var err error
				store, err = archive.OpenStore(cfg.ArchiveURL)
				if err != nil {
					return nil, fmt.Errorf("server: opening archive %q: %w", cfg.ArchiveURL, err)
				}
			}
			if cfg.RestoreFromArchive {
				info, err := archive.Restore(store, cfg.DataDir)
				switch {
				case errors.Is(err, archive.ErrLocalState):
					// Local WAL state is the durability authority; the
					// restore defers to it rather than overwrite acked
					// records with an older remote view.
					s.restoreSkipped = true
				case err != nil:
					return nil, fmt.Errorf("server: restoring %s from archive: %w", cfg.DataDir, err)
				default:
					s.restored = &info
				}
			}
			ship, err := archive.NewShipper(archive.ShipperOptions{
				Dir:         cfg.DataDir,
				Store:       store,
				QueueLen:    cfg.ArchiveQueue,
				RetryBase:   cfg.ArchiveRetryBase,
				RetryMax:    cfg.ArchiveRetryMax,
				ResyncEvery: cfg.ArchiveResync,
				Compress:    cfg.CheckpointCompress,
			})
			if err != nil {
				return nil, err
			}
			s.ship = ship
			s.archiveM = newArchiveMetrics(s.reg)
		}
		dur, err := openDurability(c, cfg, s.reg, s.ship)
		if err != nil {
			if s.ship != nil {
				_ = s.ship.Close(time.Second)
			}
			return nil, err
		}
		s.dur = dur
		if s.ship != nil {
			// Started only after recovery: the first reconcile pass then
			// sees the recovered (and pruned) directory, not a moving one.
			s.ship.Start()
		}
	}
	s.adm = newAdmission(cfg, s.reg)
	s.deg = newDegradedState(s.reg)
	s.coal = newCoalescer(c, cfg, s.reg)
	s.coal.dur = s.dur
	s.coal.deg = s.deg
	s.coal.probeEvery = cfg.DegradedProbeInterval
	s.coal.onFlush = s.flushHook
	_, s.eventCursor = c.EventsSince(^uint64(0))
	// A pre-fed clusterer that already published a snapshot fixes the
	// stream shape before the first ingest arrives.
	if snap := c.LastSnapshot(); len(snap.Clusters) > 0 && len(snap.Clusters[0].SeedPoints) > 0 {
		s.shape.Store(pointShape(snap.Clusters[0].SeedPoints[0]))
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/ingest", "ingest", s.handleIngest)
	// Data-plane reads sit behind the bounded-concurrency guard; the
	// operator endpoints (events, stats, healthz, metrics) stay exempt
	// so an overloaded or degraded server remains observable.
	s.route("POST /v1/assign", "assign", s.readGuard(s.handleAssign))
	s.route("GET /v1/snapshot", "snapshot", s.readGuard(s.handleSnapshot))
	s.route("GET /v1/clusters/{id}", "cluster", s.readGuard(s.handleCluster))
	s.route("GET /v1/events", "events", s.handleEvents)
	s.route("GET /v1/stats", "stats", s.handleStats)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout, // validated to exceed LongPollTimeout
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s, nil
}

// route registers a handler wrapped with per-endpoint telemetry:
// request counts and latency quantiles under the endpoint label.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	labels := `endpoint="` + name + `"`
	requests := s.reg.Counter("edmserved_http_requests_total", labels)
	errCount := s.reg.Counter("edmserved_http_errors_total", labels)
	latency := s.reg.Timing("edmserved_http_request_duration_seconds", labels)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		latency.Observe(time.Since(begin))
		requests.Inc()
		if sw.status >= 400 {
			errCount.Inc()
		}
	})
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler (every endpoint,
// telemetry included) for in-process use: tests and the e2e benchmark
// drive it through httptest or a private listener. The coalescer must
// be running — use Start, or StartDetached for handler-only serving.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's telemetry registry (the e2e benchmark
// reads coalescer distributions from it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start listens on cfg.Addr and serves until Shutdown. It returns
// once the listener is bound (so callers may read Addr), with serving
// continuing on background goroutines.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.started.Store(false)
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	s.coalStarted.Store(true)
	go s.coal.run()
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
	}()
	return nil
}

// StartDetached starts only the coalescer, for callers that drive
// Handler through their own listener (httptest servers).
func (s *Server) StartDetached() {
	if s.started.CompareAndSwap(false, true) {
		s.coalStarted.Store(true)
		go s.coal.run()
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Err reports an asynchronous serve failure, if any (nil otherwise).
func (s *Server) Err() error {
	select {
	case err := <-s.serveErr:
		return err
	default:
		return nil
	}
}

// Shutdown stops the server gracefully: new ingest requests are
// rejected with 503, long-polls return immediately, in-flight
// requests run to completion, and every ingest request accepted into
// the coalescer queue is committed before the writer goroutine exits
// — an acknowledged (HTTP 200) ingest is never dropped. The context
// bounds the wait for in-flight HTTP requests; the final coalescer
// drain is not abandoned on context expiry (it is bounded work:
// at most MaxPending queued requests).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.events.wake() // release long-pollers so the HTTP drain can finish
	var httpErr error
	if s.listener != nil {
		httpErr = s.http.Shutdown(ctx)
	}
	s.coal.beginShutdown()
	if s.coalStarted.Load() {
		// The drain is bounded work (at most the queued requests), so
		// it is awaited even past ctx expiry — abandoning it would
		// break the "acknowledged implies applied" contract.
		<-s.coal.done
	}
	if s.dur != nil {
		// The writer goroutine has exited (or never ran), so the final
		// checkpoint and close are race-free. Every acknowledged batch
		// is already on disk — the checkpoint only shortens the next
		// boot's replay.
		if err := s.dur.close(s.c); err != nil && httpErr == nil {
			httpErr = err
		}
	}
	if s.ship != nil {
		// After dur.close so the final checkpoint's seal/save
		// notifications are already queued; the drain gives each pending
		// upload one best-effort attempt.
		if err := s.ship.Close(5 * time.Second); err != nil && httpErr == nil {
			httpErr = err
		}
	}
	return httpErr
}

// RecoveryInfo reports what the durability subsystem found and
// recovered at startup. Meaningful only when the server was configured
// with a DataDir; the zero value otherwise.
func (s *Server) RecoveryInfo() wal.RecoveryInfo {
	if s.dur == nil {
		return wal.RecoveryInfo{}
	}
	return s.dur.recovery
}

// streamNow returns the server's stream clock: seconds since start.
// Points without explicit timestamps are stamped with it.
func (s *Server) streamNow() float64 { return time.Since(s.start).Seconds() }

// checkShape verifies every point against the stream's established
// shape. When learn is true (the ingest path) the first point of an
// unshaped stream fixes the shape; the assign path never learns —
// reads must not define the stream. Concurrent first ingests race on
// the CAS; exactly one shape wins and the loser's request is rejected
// like any other mismatch.
func (s *Server) checkShape(pts []edmstream.Point, learn bool) error {
	for i := range pts {
		ps := pointShape(pts[i])
		cur := s.shape.Load()
		if cur == 0 {
			if !learn {
				// Nothing established yet and reads cannot establish
				// it; the engine has no cells, so any probe is an
				// outlier anyway.
				continue
			}
			if s.shape.CompareAndSwap(0, ps) {
				continue
			}
			cur = s.shape.Load()
		}
		if ps != cur {
			return fmt.Errorf("point %d: stream serves %s points, got %s", i, shapeString(cur), shapeString(ps))
		}
	}
	return nil
}

// flushHook runs on the writer goroutine after every committed batch:
// if the flush recorded new evolution events, wake the long-pollers.
func (s *Server) flushHook() {
	if _, cur := s.c.EventsSince(^uint64(0)); cur != s.eventCursor {
		s.eventCursor = cur
		s.events.wake()
	}
}

// ---- Handlers ----

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Rejections are checked cheapest-first and before the body is read
	// — the whole point of shedding is to not spend work on requests
	// the server cannot serve.
	if s.draining.Load() {
		shedError(w, http.StatusServiceUnavailable, errDraining, reasonDraining, 1)
		return
	}
	if s.deg.isDegraded() {
		s.adm.shedDegraded.Inc()
		shedError(w, http.StatusServiceUnavailable, errDegraded, reasonDegraded,
			retryAfterSeconds(2*s.cfg.DegradedProbeInterval))
		return
	}
	// Admission rule: shed when the estimated commit wait already
	// exceeds the deadline, telling the client when the queue should
	// have drained. The estimate is observed either way so the
	// distribution shows the pressure that led to shedding.
	est := s.coal.estimateWait()
	s.adm.estWait.Observe(est.Seconds())
	if est > s.cfg.IngestDeadline {
		s.adm.shedEstimate.Inc()
		shedError(w, http.StatusTooManyRequests,
			fmt.Errorf("estimated commit wait %v exceeds the %v ingest deadline",
				est.Round(time.Millisecond), s.cfg.IngestDeadline),
			reasonOverloaded, retryAfterSeconds(est))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	pts, err := decodePoints(body, s.streamNow(), s.cfg.MaxBatch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkShape(pts, true); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(pts) == 0 {
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: 0, Cells: []int64{}})
		return
	}
	// The same deadline bounds the queue send, as a context timeout the
	// coalescer's enqueue select observes — the backstop for a full
	// queue the estimator had no history to predict.
	ctx := r.Context()
	if s.cfg.IngestDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.IngestDeadline)
		defer cancel()
	}
	cells, err := s.coal.submit(ctx, pts)
	switch {
	case errors.Is(err, errDraining):
		shedError(w, http.StatusServiceUnavailable, err, reasonDraining, 1)
		return
	case errors.Is(err, errDegraded):
		// The batch hit the WAL failure after this request was queued.
		s.adm.shedDegraded.Inc()
		shedError(w, http.StatusServiceUnavailable, err, reasonDegraded,
			retryAfterSeconds(2*s.cfg.DegradedProbeInterval))
		return
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		// The admission deadline, not the client's own: the queue stayed
		// full for the whole wait. Nothing was committed.
		s.adm.shedTimeout.Inc()
		shedError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest queue full: not admitted within the %v deadline", s.cfg.IngestDeadline),
			reasonOverloaded, retryAfterSeconds(s.coal.estimateWait()))
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Client went away while queued; nothing was committed for it.
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		// A commit error on pre-validated points is a server-side
		// failure, not the client's.
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: len(pts), Cells: cells})
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	pts, err := decodePoints(body, s.streamNow(), s.cfg.MaxBatch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkShape(pts, false); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ids := s.c.AssignBatch(pts, make([]int, 0, len(pts)))
	writeJSON(w, http.StatusOK, assignResponse{Clusters: ids})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.c.LastSnapshot()
	resp := snapshotResponse{
		Time:         snap.Time,
		Tau:          snap.Tau,
		ActiveCells:  snap.ActiveCells,
		OutlierCells: snap.OutlierCells,
		Clusters:     make([]wireClusterSummary, 0, len(snap.Clusters)),
	}
	for i := range snap.Clusters {
		resp.Clusters = append(resp.Clusters, summarize(&snap.Clusters[i]))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster id %q is not an integer", r.PathValue("id")))
		return
	}
	snap := s.c.LastSnapshot()
	cl, ok := snap.Cluster(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cluster %d in the published snapshot", id))
		return
	}
	resp := clusterResponse{
		wireClusterSummary: summarize(&cl),
		Members:            make([]wireSeed, 0, len(cl.CellIDs)),
	}
	for i, cid := range cl.CellIDs {
		seed := wireSeed{CellID: cid}
		p := cl.SeedPoints[i]
		if p.IsText() {
			seed.Tokens = p.Tokens.Tokens()
		} else {
			seed.Vector = p.Vector
		}
		resp.Members = append(resp.Members, seed)
	}
	writeJSON(w, http.StatusOK, resp)
}

func summarize(cl *edmstream.ClusterInfo) wireClusterSummary {
	return wireClusterSummary{
		ID:          cl.ID,
		PeakCellID:  cl.PeakCellID,
		PeakDensity: cl.PeakDensity,
		Cells:       len(cl.CellIDs),
		Weight:      cl.Weight,
		Points:      cl.Points,
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var cursor uint64
	if raw := q.Get("cursor"); raw != "" {
		var err error
		cursor, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("cursor %q is not a non-negative integer", raw))
			return
		}
	}
	var wait time.Duration
	if raw := q.Get("wait"); raw != "" {
		var err error
		wait, err = time.ParseDuration(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("wait %q is not a duration (try 30s)", raw))
			return
		}
	}
	if wait < 0 {
		wait = 0
	}
	if wait > s.cfg.LongPollTimeout {
		wait = s.cfg.LongPollTimeout
	}
	deadline := time.Now().Add(wait)

	for {
		evs, next := s.c.EventsSince(cursor)
		if len(evs) > 0 || wait <= 0 || s.draining.Load() {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: toWireEvents(evs)})
			return
		}
		// Long-poll: register for a wake-up, then re-check so an event
		// recorded between the check above and the registration is not
		// missed, then sleep until events, deadline or disconnect.
		ch := s.events.wait()
		if evs, next = s.c.EventsSince(cursor); len(evs) > 0 {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: toWireEvents(evs)})
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-s.drainCh:
			timer.Stop()
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		case <-timer.C:
			writeJSON(w, http.StatusOK, eventsResponse{Cursor: next, Events: []wireEvent{}})
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// statsResponse is the GET /v1/stats body: engine counters plus the
// server's own serving-side numbers.
type statsResponse struct {
	Engine edmstream.Stats `json:"engine"`
	Server serverStats     `json:"server"`
}

type serverStats struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	StreamTime     float64          `json:"stream_time"`
	Tau            float64          `json:"tau"`
	Draining       bool             `json:"draining"`
	Degraded       bool             `json:"degraded"`
	DegradedReason string           `json:"degraded_reason,omitempty"`
	Coalescer      coalescerStats   `json:"coalescer"`
	Admission      admissionStats   `json:"admission"`
	Durability     *durabilityStats `json:"durability,omitempty"`
	Archive        *archiveStats    `json:"archive,omitempty"`
}

// admissionStats is the load-shedding section of GET /v1/stats: how
// many requests were refused, why, and the commit-wait estimate
// distribution the ingest rule sheds on.
type admissionStats struct {
	DeadlineSeconds    float64 `json:"deadline_seconds"`
	ShedEstimatedWait  uint64  `json:"shed_estimated_wait"`
	ShedQueueFull      uint64  `json:"shed_queue_full"`
	ShedDegraded       uint64  `json:"shed_degraded"`
	ShedReads          uint64  `json:"shed_reads"`
	EstimatedWaitP50   float64 `json:"estimated_wait_p50_seconds"`
	EstimatedWaitP99   float64 `json:"estimated_wait_p99_seconds"`
	DegradedEntered    uint64  `json:"degraded_entered"`
	DegradedRecovered  uint64  `json:"degraded_recovered"`
	MaxReadConcurrency int     `json:"max_read_concurrency"`
}

// durabilityStats is the WAL section of GET /v1/stats, present only
// when the server runs with a DataDir. Counters come from the obs
// instruments the writer goroutine maintains; the recovery block is
// frozen at startup.
type durabilityStats struct {
	Records          uint64  `json:"records"`
	Bytes            uint64  `json:"bytes"`
	Checkpoints      uint64  `json:"checkpoints"`
	CheckpointErrors uint64  `json:"checkpoint_errors"`
	AppendRetries    int64   `json:"append_retries"`
	Reopens          int64   `json:"reopens"`
	ProbeFailures    uint64  `json:"probe_failures"`
	Segments         int64   `json:"segments"`
	NoSync           bool    `json:"no_sync"`
	FsyncP50Sec      float64 `json:"fsync_p50_seconds"`
	FsyncP99Sec      float64 `json:"fsync_p99_seconds"`

	// Recovery-time budget: how many checkpoints the budget (rather
	// than the point-count cadence) forced, the replay rate the
	// estimate divides by, and the budget itself (0 = disabled).
	BudgetCheckpoints    uint64  `json:"budget_checkpoints"`
	ReplayPointsPerSec   int64   `json:"replay_points_per_sec"`
	RecoveryBudgetSec    float64 `json:"recovery_budget_seconds"`
	EstimatedReplayMs    int64   `json:"estimated_replay_ms"`
	CheckpointCompressed bool    `json:"checkpoint_compressed"`

	Recovery recoveryStats `json:"recovery"`
}

type recoveryStats struct {
	HasCheckpoint      bool   `json:"has_checkpoint"`
	CheckpointSeq      uint64 `json:"checkpoint_seq"`
	CheckpointsSkipped int    `json:"checkpoints_skipped"`
	RecordsReplayed    int    `json:"records_replayed"`
	DroppedBytes       int64  `json:"dropped_bytes"`
	DroppedSegments    int    `json:"dropped_segments"`
	TruncatedSegment   string `json:"truncated_segment,omitempty"`
}

type coalescerStats struct {
	Batches          uint64  `json:"batches"`
	Points           uint64  `json:"points"`
	Rejects          uint64  `json:"rejects"`
	ClientCancels    uint64  `json:"client_cancels"`
	PendingRequests  int64   `json:"pending_requests"`
	BatchPointsP50   float64 `json:"batch_points_p50"`
	BatchPointsP90   float64 `json:"batch_points_p90"`
	BatchPointsP99   float64 `json:"batch_points_p99"`
	BatchPointsMax   float64 `json:"batch_points_max"`
	BatchRequestsP50 float64 `json:"batch_requests_p50"`
	BatchRequestsP99 float64 `json:"batch_requests_p99"`
	BatchWaitP50Sec  float64 `json:"batch_wait_p50_seconds"`
	BatchWaitP99Sec  float64 `json:"batch_wait_p99_seconds"`
	FlushP50Sec      float64 `json:"flush_p50_seconds"`
	FlushP99Sec      float64 `json:"flush_p99_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	size := s.coal.batchSize.Stats()
	reqs := s.coal.batchReqs.Stats()
	wait := s.coal.batchWait.Stats()
	flush := s.coal.flushSeconds.Stats()
	estWait := s.adm.estWait.Stats()
	resp := statsResponse{
		Engine: s.c.Stats(),
		Server: serverStats{
			UptimeSeconds:  time.Since(s.start).Seconds(),
			StreamTime:     s.c.LastSnapshot().Time,
			Tau:            s.c.LastSnapshot().Tau,
			Draining:       s.draining.Load(),
			Degraded:       s.deg.isDegraded(),
			DegradedReason: degradedReasonIf(s.deg),
			Coalescer: coalescerStats{
				Batches:          s.coal.batches.Value(),
				Points:           s.coal.pointsTotal.Value(),
				Rejects:          s.coal.rejectsTotal.Value(),
				ClientCancels:    s.coal.clientCancels.Value(),
				PendingRequests:  s.coal.pending.Value(),
				BatchPointsP50:   size.P50,
				BatchPointsP90:   size.P90,
				BatchPointsP99:   size.P99,
				BatchPointsMax:   size.WindowMax,
				BatchRequestsP50: reqs.P50,
				BatchRequestsP99: reqs.P99,
				BatchWaitP50Sec:  wait.P50,
				BatchWaitP99Sec:  wait.P99,
				FlushP50Sec:      flush.P50,
				FlushP99Sec:      flush.P99,
			},
			Admission: admissionStats{
				DeadlineSeconds:    s.cfg.IngestDeadline.Seconds(),
				ShedEstimatedWait:  s.adm.shedEstimate.Value(),
				ShedQueueFull:      s.adm.shedTimeout.Value(),
				ShedDegraded:       s.adm.shedDegraded.Value(),
				ShedReads:          s.adm.shedReads.Value(),
				EstimatedWaitP50:   estWait.P50,
				EstimatedWaitP99:   estWait.P99,
				DegradedEntered:    s.deg.entered.Value(),
				DegradedRecovered:  s.deg.recovered.Value(),
				MaxReadConcurrency: cap(s.adm.readSem),
			},
		},
	}
	if d := s.dur; d != nil {
		fs := d.fsync.Stats()
		resp.Server.Durability = &durabilityStats{
			Records:          d.records.Value(),
			Bytes:            d.bytesTotal.Value(),
			Checkpoints:      d.checkpoints.Value(),
			CheckpointErrors: d.ckptErrors.Value(),
			// Live from the resilient log's atomics, not the gauges the
			// writer refreshes: a retry storm shows up here even between
			// appends.
			AppendRetries:        int64(d.log.Retries()),
			Reopens:              int64(d.log.Reopens()),
			ProbeFailures:        d.probeFailures.Value(),
			Segments:             d.segments.Value(),
			NoSync:               s.cfg.WALNoSync,
			FsyncP50Sec:          fs.P50,
			FsyncP99Sec:          fs.P99,
			BudgetCheckpoints:    d.budgetCkpts.Value(),
			ReplayPointsPerSec:   d.replayRateG.Value(),
			RecoveryBudgetSec:    s.cfg.RecoveryBudget.Seconds(),
			EstimatedReplayMs:    d.estReplayMs.Value(),
			CheckpointCompressed: s.cfg.CheckpointCompress,
			Recovery: recoveryStats{
				HasCheckpoint:      d.recovery.HasCheckpoint,
				CheckpointSeq:      d.recovery.CheckpointSeq,
				CheckpointsSkipped: d.recovery.CheckpointsSkipped,
				RecordsReplayed:    d.recovery.RecordsReplayable,
				DroppedBytes:       d.recovery.DroppedBytes,
				DroppedSegments:    d.recovery.DroppedSegments,
				TruncatedSegment:   d.recovery.TruncatedSegment,
			},
		}
	}
	if s.ship != nil {
		st := s.ship.Stats()
		s.archiveM.refresh(st)
		resp.Server.Archive = &archiveStats{
			Shipped:              st.Shipped,
			ShippedBytes:         st.ShippedBytes,
			ReadBytes:            st.ReadBytes,
			Failed:               st.Failed,
			Retried:              st.Retried,
			Dropped:              st.Dropped,
			Skipped:              st.Skipped,
			Pruned:               st.Pruned,
			LagObjects:           st.LagObjects,
			LagRecords:           st.LagRecords,
			LagSeconds:           st.LagSeconds,
			Lagging:              st.Lagging,
			LocalThroughSeq:      st.LocalThroughSeq,
			ShippedThroughSeq:    st.ShippedThroughSeq,
			ShippedCheckpointSeq: st.ShippedCheckpointSeq,
			Restore:              s.restored,
			RestoreSkipped:       s.restoreSkipped,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if s.deg.isDegraded() {
		// 200 on purpose: the read path is healthy and restarting the
		// process would not fix the disk. The body tells orchestrators
		// (and the runbook) that ingest is refusing writes.
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ok")
	if s.ship != nil && s.ship.Lagging() {
		// A detail line, not a degradation: ingest acks never depend on
		// the remote, so a lagging archive stays 200/"ok" — orchestrators
		// keep the pod, operators see the replica falling behind.
		fmt.Fprintln(w, "archive-lagging")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.ship != nil {
		s.archiveM.refresh(s.ship.Stats())
	}
	if s.dur != nil {
		s.dur.syncRetryGauges()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// ---- Helpers ----

// degradedReasonIf returns the degradation cause only while degraded,
// so a recovered server's stats stop carrying the stale error text.
func degradedReasonIf(d *degradedState) string {
	if !d.isDegraded() {
		return ""
	}
	return d.reason()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// notifier is a broadcast edge: wait returns a channel closed by the
// next wake, after which waiters re-check their condition.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	return n.ch
}

func (n *notifier) wake() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
	}
}
