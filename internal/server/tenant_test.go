package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
)

// tenantConfig is the base multi-tenant server configuration: an
// engine factory cloning the test options, so named streams can be
// created lazily.
func tenantConfig() Config {
	return Config{
		NewEngine: func() (*edmstream.Clusterer, error) { return edmstream.New(testOptions()) },
	}
}

// doReq runs one request and returns the status and decoded error
// body (zero-valued when the body is not an errorResponse).
func doReq(t *testing.T, method, url string, body []byte) (int, errorResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var e errorResponse
	_ = json.Unmarshal(raw, &e)
	return resp.StatusCode, e
}

// TestTenantIsolation: two named streams fed different data serve
// different clusterings; neither leaks into the other or into the
// default stream, and each tenant's full endpoint surface works under
// its prefix.
func TestTenantIsolation(t *testing.T) {
	_, _, base := startServer(t, testOptions(), tenantConfig())

	// Stream "alpha" gets the two-blob stream, "beta" a single blob at
	// a different spot, the default stream stays empty.
	alpha := twoBlobPoints(2000, 7)
	beta := make([]map[string]any, 2000)
	rng := rand.New(rand.NewSource(8))
	for i := range beta {
		beta[i] = map[string]any{
			"id":     i,
			"vector": []float64{30 + rng.NormFloat64()*0.5, -20 + rng.NormFloat64()*0.5},
			"time":   float64(i) / 1000,
		}
	}
	var ack ingestResponse
	if resp := postJSON(t, base+"/v1/alpha/ingest", alpha, &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha ingest status %d", resp.StatusCode)
	}
	if ack.Accepted != len(alpha) {
		t.Fatalf("alpha accepted %d of %d", ack.Accepted, len(alpha))
	}
	if resp := postJSON(t, base+"/v1/beta/ingest", beta, &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta ingest status %d", resp.StatusCode)
	}

	var alphaSnap, betaSnap snapshotResponse
	getJSON(t, base+"/v1/alpha/snapshot", &alphaSnap)
	getJSON(t, base+"/v1/beta/snapshot", &betaSnap)
	if len(alphaSnap.Clusters) < 2 {
		t.Errorf("alpha: %d clusters, want the two blobs", len(alphaSnap.Clusters))
	}
	if len(betaSnap.Clusters) == 0 {
		t.Error("beta: no clusters after ingest")
	}
	// Each stream accounted for exactly its own points.
	sum := func(snap snapshotResponse) (n int64) {
		for _, cl := range snap.Clusters {
			n += cl.Points
		}
		return n
	}
	if got := sum(alphaSnap); got > int64(len(alpha)) {
		t.Errorf("alpha clusters hold %d points, more than the %d ingested", got, len(alpha))
	}
	if got := sum(betaSnap); got > int64(len(beta)) {
		t.Errorf("beta clusters hold %d points, more than the %d ingested", got, len(beta))
	}

	// The default stream saw none of it.
	var defSnap snapshotResponse
	getJSON(t, base+"/v1/snapshot", &defSnap)
	if len(defSnap.Clusters) != 0 {
		t.Errorf("default stream has %d clusters; tenant data leaked", len(defSnap.Clusters))
	}

	// Per-tenant stats carry the stream name and that stream's counters.
	var st statsResponse
	getJSON(t, base+"/v1/alpha/stats", &st)
	if st.Server.Stream != "alpha" {
		t.Errorf("alpha stats says stream %q", st.Server.Stream)
	}
	if st.Server.Coalescer.Points != uint64(len(alpha)) {
		t.Errorf("alpha coalescer points = %d, want %d", st.Server.Coalescer.Points, len(alpha))
	}
	if st.Server.Tenancy.StreamsLive < 3 {
		t.Errorf("tenancy says %d live streams, want >= 3", st.Server.Tenancy.StreamsLive)
	}

	// Assign against alpha classifies near alpha's blobs, and beta's
	// points are outliers there.
	var asn assignResponse
	postJSON(t, base+"/v1/alpha/assign", alpha[:10], &asn)
	for i, id := range asn.Clusters {
		if id < 0 {
			t.Errorf("alpha point %d unassigned in alpha", i)
		}
	}
	postJSON(t, base+"/v1/alpha/assign", beta[:10], &asn)
	for i, id := range asn.Clusters {
		if id >= 0 {
			t.Errorf("beta point %d classified inside alpha's clustering (cluster %d)", i, id)
		}
	}
}

// TestDefaultStreamAlias pins satellite #1: the un-prefixed /v1/*
// endpoints and the /v1/default/* prefix address the same stream —
// data ingested through one is served through the other, byte for
// byte.
func TestDefaultStreamAlias(t *testing.T) {
	_, _, base := startServer(t, testOptions(), tenantConfig())

	pts := twoBlobPoints(1500, 3)
	var ack ingestResponse
	if resp := postJSON(t, base+"/v1/ingest", pts[:1000], &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("unprefixed ingest status %d", resp.StatusCode)
	}
	// The aliased prefix continues the same stream.
	if resp := postJSON(t, base+"/v1/default/ingest", pts[1000:], &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("prefixed ingest status %d", resp.StatusCode)
	}

	read := func(url string) []byte {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for _, ep := range []string{"/v1/snapshot", "/v1/events?cursor=0"} {
		plain := read(base + ep)
		aliased := read(base + strings.Replace(ep, "/v1/", "/v1/default/", 1))
		if !bytes.Equal(plain, aliased) {
			t.Errorf("%s differs between the un-prefixed and /v1/default/ planes:\n%s\nvs\n%s",
				ep, plain[:min(len(plain), 200)], aliased[:min(len(aliased), 200)])
		}
	}
}

// TestTenantErrorMapping pins the error surface the runbook documents:
// 400 invalid name, 404 unknown stream (reason unknown_stream), 429
// over the stream cap (reason overloaded), 404 unknown op, and 501
// when the server has no engine factory.
func TestTenantErrorMapping(t *testing.T) {
	cfg := tenantConfig()
	cfg.MaxStreams = 3 // default + two named
	_, _, base := startServer(t, testOptions(), cfg)

	pts, _ := json.Marshal(twoBlobPoints(10, 1))

	// Invalid names never reach the registry.
	for _, name := range []string{"UPPER", "-lead", "streams", "sp%20ace"} {
		if code, _ := doReq(t, "POST", base+"/v1/"+name+"/ingest", pts); code != http.StatusBadRequest {
			t.Errorf("ingest into invalid name %q: status %d, want 400", name, code)
		}
	}

	// Reads never create: an untouched name is 404 with the reason and
	// the creation hint.
	code, e := doReq(t, "GET", base+"/v1/ghost/snapshot", nil)
	if code != http.StatusNotFound || e.Reason != reasonUnknownStream {
		t.Errorf("unknown-stream read: status %d reason %q, want 404 %q", code, e.Reason, reasonUnknownStream)
	}
	if !strings.Contains(e.Error, "ingest") {
		t.Errorf("unknown-stream error %q should hint that ingest creates the stream", e.Error)
	}

	// Fill the cap, then the next new name sheds with 429.
	for _, name := range []string{"one", "two"} {
		if code, _ := doReq(t, "POST", base+"/v1/"+name+"/ingest", pts); code != http.StatusOK {
			t.Fatalf("ingest into %q: status %d", name, code)
		}
	}
	code, e = doReq(t, "POST", base+"/v1/three/ingest", pts)
	if code != http.StatusTooManyRequests || e.Reason != reasonOverloaded {
		t.Errorf("over-cap create: status %d reason %q, want 429 %q", code, e.Reason, reasonOverloaded)
	}
	// Existing streams keep working at the cap.
	if code, _ := doReq(t, "POST", base+"/v1/one/ingest", pts); code != http.StatusOK {
		t.Errorf("ingest into existing stream at cap: status %d, want 200", code)
	}

	// Unknown ops under a valid stream 404 like unrouted paths.
	if code, _ := doReq(t, "GET", base+"/v1/one/bogus", nil); code != http.StatusNotFound {
		t.Errorf("unknown op: status %d, want 404", code)
	}
	if code, _ := doReq(t, "GET", base+"/v1/one/snapshot/extra", nil); code != http.StatusNotFound {
		t.Errorf("snapshot with a path remainder: status %d, want 404", code)
	}

	// A factory-less server serves the default stream but cannot build
	// named ones: 501, not a silent new engine.
	_, _, base2 := startServer(t, testOptions(), Config{})
	if code, _ := doReq(t, "POST", base2+"/v1/named/ingest", pts); code != http.StatusNotImplemented {
		t.Errorf("named ingest without a factory: status %d, want 501", code)
	}
	if code, _ := doReq(t, "POST", base2+"/v1/ingest", pts); code != http.StatusOK {
		t.Errorf("default ingest without a factory: status %d, want 200", code)
	}
}

// TestStreamAdminEvictRevive drives the admin plane end to end:
// /v1/streams lists every stream with its state, DELETE evicts a named
// stream to disk, and the next touch revives it with a byte-identical
// snapshot. Also pins the evicted-streams counter and active-streams
// gauge (satellite #2).
func TestStreamAdminEvictRevive(t *testing.T) {
	cfg := tenantConfig()
	cfg.DataDir = t.TempDir()
	s, _, base := startServer(t, testOptions(), cfg)

	pts := twoBlobPoints(2000, 11)
	var ack ingestResponse
	if resp := postJSON(t, base+"/v1/tenant-a/ingest", pts, &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	before, err := json.Marshal(mustStream(t, s, "tenant-a").c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	var list streamsResponse
	getJSON(t, base+"/v1/streams", &list)
	states := map[string]string{}
	for _, in := range list.Streams {
		states[in.Name] = in.State
	}
	if states[DefaultStream] != "live" || states["tenant-a"] != "live" {
		t.Fatalf("stream list before eviction: %v", states)
	}

	// The default stream refuses eviction outright.
	if code, _ := doReq(t, "DELETE", base+"/v1/streams/"+DefaultStream, nil); code != http.StatusBadRequest {
		t.Errorf("DELETE default: status %d, want 400", code)
	}
	// Unknown names 404 with the reason.
	code, e := doReq(t, "DELETE", base+"/v1/streams/ghost", nil)
	if code != http.StatusNotFound || e.Reason != reasonUnknownStream {
		t.Errorf("DELETE unknown: status %d reason %q", code, e.Reason)
	}

	// Evict tenant-a. The writer handle goes idle as soon as the ingest
	// response lands, but give the pool a moment under -race.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = doReq(t, "DELETE", base+"/v1/streams/tenant-a", nil)
		if code == http.StatusOK {
			break
		}
		if code != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("DELETE tenant-a: status %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	getJSON(t, base+"/v1/streams", &list)
	for _, in := range list.Streams {
		if in.Name == "tenant-a" && in.State != "evicted" {
			t.Errorf("tenant-a state after eviction = %q", in.State)
		}
	}
	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, "edmserved_streams_evicted_total 1") {
		t.Errorf("metrics missing evicted counter:\n%.2000s", metrics)
	}
	if !strings.Contains(metrics, "edmserved_streams_active 1") {
		t.Errorf("metrics missing active gauge (only the default stream stays live):\n%.2000s", metrics)
	}
	if !strings.Contains(metrics, "edmserved_streams_registered 2") {
		t.Errorf("metrics missing registered gauge (evicted names stay registered):\n%.2000s", metrics)
	}

	// A read revives the stream transparently, and revival recovers the
	// exact evicted state: the eviction checkpoint plus WAL replay is
	// byte-identical to the engine that was released.
	resp, err := http.Get(base + "/v1/tenant-a/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revival read status %d", resp.StatusCode)
	}
	after, err := json.Marshal(mustStream(t, s, "tenant-a").c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("revived snapshot differs from the evicted one:\n%.300s\nvs\n%.300s", after, before)
	}
	var st statsResponse
	getJSON(t, base+"/v1/tenant-a/stats", &st)
	if st.Server.Tenancy.Evictions != 1 || st.Server.Tenancy.Revivals != 1 {
		t.Errorf("tenancy ledger = %d evictions / %d revivals, want 1/1",
			st.Server.Tenancy.Evictions, st.Server.Tenancy.Revivals)
	}
}

// TestStreamDiscoveryAfterRestart: a named stream's on-disk state
// survives a full server restart — the new process registers it from
// the directory scan, so a plain read (which never creates) revives it
// instead of 404ing.
func TestStreamDiscoveryAfterRestart(t *testing.T) {
	cfg := tenantConfig()
	cfg.DataDir = t.TempDir()
	s1, _, base1 := startServer(t, testOptions(), cfg)

	pts := twoBlobPoints(1500, 21)
	var ack ingestResponse
	if resp := postJSON(t, base1+"/v1/persist/ingest", pts, &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	before, _ := json.Marshal(mustStream(t, s1, "persist").c.Snapshot())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, _, base2 := startServer(t, testOptions(), cfg)
	var snap snapshotResponse
	if resp := getJSON(t, base2+"/v1/persist/snapshot", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart read status %d (discovery failed?)", resp.StatusCode)
	}
	after, _ := json.Marshal(mustStream(t, s2, "persist").c.Snapshot())
	if !bytes.Equal(before, after) {
		t.Errorf("recovered stream differs from pre-restart state")
	}
}

// TestHealthzPerStream pins satellite #2's health surface: a degraded
// named stream keeps /healthz at 200 but flips the first line to
// "degraded" and adds its per-stream detail line; the degraded stream
// also refuses admin eviction (its WAL cannot take the checkpoint).
func TestHealthzPerStream(t *testing.T) {
	cfg := tenantConfig()
	cfg.DataDir = t.TempDir()
	s, _, base := startServer(t, testOptions(), cfg)

	pts := twoBlobPoints(200, 5)
	var ack ingestResponse
	if resp := postJSON(t, base+"/v1/shaky/ingest", pts, &ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	body := getBody(t, base+"/healthz")
	if !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("healthy healthz = %q, want ok first line", body)
	}

	st := mustStream(t, s, "shaky")
	st.deg.enter(errors.New("disk on fire"))
	body = getBody(t, base+"/healthz")
	if !strings.HasPrefix(body, "degraded\n") {
		t.Errorf("degraded healthz first line wrong: %q", body)
	}
	if !strings.Contains(body, "stream shaky: degraded (disk on fire)") {
		t.Errorf("healthz missing the per-stream detail line: %q", body)
	}
	// Degraded streams cannot be evicted — the final checkpoint would
	// need the broken WAL.
	if code, _ := doReq(t, "DELETE", base+"/v1/streams/shaky", nil); code != http.StatusConflict {
		t.Errorf("DELETE degraded stream: status %d, want 409", code)
	}
	st.deg.exit()
	if body = getBody(t, base+"/healthz"); !strings.HasPrefix(body, "ok\n") {
		t.Errorf("recovered healthz = %q", body)
	}
}

// TestPerTenantDeterminism re-runs the network-path determinism pin
// through a tenant prefix: a single sequential writer on /v1/t1/*
// must land t1's engine in exactly the state direct InsertBatch calls
// produce — the writer-pool multiplexing may never reorder or batch
// one stream's requests differently. Noise traffic on a second stream
// runs concurrently to make the pool actually multiplex.
func TestPerTenantDeterminism(t *testing.T) {
	const (
		n     = 3000
		batch = 150
	)
	opts := edmstream.Options{Radius: 1.2, InitPoints: 200, IngestWorkers: 1}
	cfg := Config{
		NewEngine:      func() (*edmstream.Clusterer, error) { return edmstream.New(opts) },
		CoalesceWindow: time.Millisecond,
		WriterPool:     2,
	}
	s, _, base := startServer(t, opts, cfg)

	raws := twoBlobPoints(n, 42)
	direct, err := edmstream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var directAcks [][]int64
	for i := 0; i < n; i += batch {
		pts := make([]edmstream.Point, batch)
		for j, r := range raws[i : i+batch] {
			pts[j] = edmstream.Point{
				ID:     int64(r["id"].(int)),
				Vector: r["vector"].([]float64),
				Time:   r["time"].(float64),
				Label:  edmstream.NoLabel,
			}
		}
		acks, err := direct.InsertBatchAssigned(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		directAcks = append(directAcks, append([]int64(nil), acks...))
	}

	// Concurrent noise on a second stream, contending for the two pool
	// writers for the whole run.
	stop := make(chan struct{})
	var noise sync.WaitGroup
	noise.Add(1)
	go func() {
		defer noise.Done()
		other := twoBlobPoints(n, 43)
		for i := 0; ; i = (i + 100) % n {
			select {
			case <-stop:
				return
			default:
			}
			postJSON(t, base+"/v1/noise/ingest", other[i:i+100], nil)
		}
	}()

	for i := 0; i < n; i += batch {
		var ack ingestResponse
		resp := postJSON(t, base+"/v1/t1/ingest", raws[i:i+batch], &ack)
		if resp.StatusCode != http.StatusOK || ack.Accepted != batch {
			t.Fatalf("batch %d: status %d, ack %+v", i/batch, resp.StatusCode, ack)
		}
		want := directAcks[i/batch]
		for j := range want {
			if ack.Cells[j] != want[j] {
				t.Fatalf("batch %d point %d: cell ack %d (http) vs %d (direct)", i/batch, j, ack.Cells[j], want[j])
			}
		}
	}
	close(stop)
	noise.Wait()

	servedSnap, _ := json.Marshal(mustStream(t, s, "t1").c.Snapshot())
	directSnap, _ := json.Marshal(direct.Snapshot())
	if !bytes.Equal(directSnap, servedSnap) {
		t.Errorf("t1 final snapshot differs from the direct replay:\nhttp:   %.400s\ndirect: %.400s", servedSnap, directSnap)
	}
}

// TestEvictionInflightRace is satellite #3: writers on many streams
// race the budget/idle evictor and a mid-run shutdown, under -race.
// Every stream's recovered state after restart must equal a direct
// replay of exactly the batches its writer got acknowledged — eviction
// churn, revival and the drain may cost latency but never an
// acknowledged point, and never invent one.
func TestEvictionInflightRace(t *testing.T) {
	const (
		streams = 4
		batches = 40
		batch   = 50
	)
	cfg := tenantConfig()
	cfg.DataDir = t.TempDir()
	// A budget that cannot hold even one engine beyond the (unevictable)
	// default stream: every sweep evicts whatever named stream is idle,
	// so revival races ingest continuously. Sweeps run at 5ms.
	cfg.MemoryBudget = MinMemoryBudget
	cfg.EvictIdleAfter = 20 * time.Millisecond
	cfg.SweepInterval = 5 * time.Millisecond
	cfg.CoalesceWindow = 0
	s, _, base := startServer(t, testOptions(), cfg)

	// Per-stream deterministic input, distinct across streams.
	inputs := make([][][]map[string]any, streams)
	for i := range inputs {
		all := twoBlobPoints(batches*batch, int64(100+i))
		inputs[i] = make([][]map[string]any, batches)
		for b := range inputs[i] {
			inputs[i][b] = all[b*batch : (b+1)*batch]
		}
	}

	type ledger struct {
		acked []int // batch indexes definitely acknowledged, in order
		maybe int   // trailing batch lost to a transport error, -1 if none
	}
	ledgers := make([]ledger, streams)
	var wg sync.WaitGroup
	var stopped atomic.Bool
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", i)
			ledgers[i].maybe = -1
			for b := 0; b < batches; b++ {
				raw, _ := json.Marshal(inputs[i][b])
				for attempt := 0; ; attempt++ {
					resp, err := http.Post(base+"/v1/"+name+"/ingest", "application/json", bytes.NewReader(raw))
					if err != nil {
						// Transport error during the drain: the batch may or
						// may not have committed. Record the ambiguity and
						// stop this writer.
						ledgers[i].maybe = b
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						ledgers[i].acked = append(ledgers[i].acked, b)
					case resp.StatusCode == http.StatusServiceUnavailable:
						// Draining: a clean refusal, the batch was not applied.
						return
					case attempt < 50:
						time.Sleep(2 * time.Millisecond)
						continue
					default:
						// Shed past patience: skip the batch (it was not
						// applied) and move on.
					}
					break
				}
			}
		}(i)
	}

	// Chaos evictor: admin evictions race the janitor's sweeps and the
	// writers' revivals.
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(1))
		for !stopped.Load() {
			name := fmt.Sprintf("race-%d", rng.Intn(streams))
			_, _ = s.streams.EvictNow(name)
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the writers fight the evictor for a while, then drain the
	// server out from under the stragglers.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	stopped.Store(true)
	chaos.Wait()

	evictions := s.streams.Stats().Evictions
	if evictions == 0 {
		t.Error("no evictions happened; the race exercised nothing")
	}
	t.Logf("evictions during the race: %d", evictions)

	// Recover into a fresh server and compare every stream against a
	// direct replay of exactly its acknowledged batches.
	s2, _, _ := startServer(t, testOptions(), cfg)
	for i := 0; i < streams; i++ {
		name := fmt.Sprintf("race-%d", i)
		led := ledgers[i]
		if len(led.acked) == 0 && led.maybe != 0 {
			continue
		}
		got, _ := json.Marshal(mustStream(t, s2, name).c.Snapshot())

		replay := func(batchIdxs []int) []byte {
			ref, err := edmstream.New(testOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batchIdxs {
				pts := make([]edmstream.Point, batch)
				for j, r := range inputs[i][b] {
					pts[j] = edmstream.Point{
						ID:     int64(r["id"].(int)),
						Vector: r["vector"].([]float64),
						Time:   r["time"].(float64),
						Label:  edmstream.NoLabel,
					}
				}
				if _, err := ref.InsertBatchAssigned(pts, nil); err != nil {
					t.Fatal(err)
				}
			}
			raw, _ := json.Marshal(ref.Snapshot())
			return raw
		}
		want := replay(led.acked)
		if bytes.Equal(got, want) {
			continue
		}
		if led.maybe >= 0 {
			// The ambiguous final batch may have committed before the
			// connection died; either ledger is a correct outcome.
			if bytes.Equal(got, replay(append(append([]int{}, led.acked...), led.maybe))) {
				continue
			}
		}
		t.Errorf("stream %s: recovered state matches neither the acked ledger (%d batches, maybe=%d)",
			name, len(led.acked), led.maybe)
	}
}

// mustStream pins and immediately releases a stream, returning it for
// in-process inspection. Reads never create; the stream must exist.
func mustStream(t *testing.T, s *Server, name string) *stream {
	t.Helper()
	st, release, err := s.streams.Acquire(name, false)
	if err != nil {
		t.Fatalf("acquire %q: %v", name, err)
	}
	release()
	return st
}
