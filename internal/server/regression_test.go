package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
)

// TestShapeMismatchRejected: once the stream's modality and
// dimensionality are established, a request with a different shape is
// a 400 — it must never reach the engine's distance kernels, where a
// shorter vector panics the writer goroutine (linear index) or is
// silently truncated (grid index). The daemon must stay alive and
// keep serving well-formed requests afterwards.
func TestShapeMismatchRejected(t *testing.T) {
	// Force the linear index: it is the code path where a dimension
	// mismatch is a panic, not a silent truncation.
	opts := testOptions()
	opts.IndexPolicy = edmstream.IndexLinear
	_, c, base := startServer(t, opts, Config{})

	// Establish a 3-D stream.
	var ack ingestResponse
	resp := postJSON(t, base+"/v1/ingest",
		[]map[string]any{{"vector": []float64{1, 2, 3}, "time": 0.1}}, &ack)
	if resp.StatusCode != http.StatusOK || ack.Accepted != 1 {
		t.Fatalf("setup ingest: status %d, ack %+v", resp.StatusCode, ack)
	}

	bad := []map[string]any{
		{"vector": []float64{0.5, 0.5}},   // too short: the panic case
		{"vector": []float64{1, 2, 3, 4}}, // too long: the truncation case
		{"tokens": []string{"a", "b"}},    // modality flip
	}
	for i, p := range bad {
		for _, path := range []string{"/v1/ingest", "/v1/assign"} {
			resp := postJSON(t, base+path, []map[string]any{p}, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("mismatched point %d on %s: status %d, want 400", i, path, resp.StatusCode)
			}
		}
	}
	// Zero-dimension vectors never establish or match any shape.
	if resp := postJSON(t, base+"/v1/ingest", []map[string]any{{"vector": []float64{}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty vector: status %d, want 400", resp.StatusCode)
	}

	// The server survived: a well-formed request still lands.
	resp = postJSON(t, base+"/v1/ingest",
		[]map[string]any{{"vector": []float64{1.1, 2.1, 3.1}, "time": 0.2}}, &ack)
	if resp.StatusCode != http.StatusOK || ack.Accepted != 1 {
		t.Fatalf("post-mismatch ingest: status %d, ack %+v (writer goroutine dead?)", resp.StatusCode, ack)
	}
	if got := c.Stats().Points; got != 2 {
		t.Errorf("engine points = %d, want 2 (mismatched requests must not commit)", got)
	}
}

// TestMaxBatchEnforced: a single request may not exceed MaxBatch
// points (400), and no coalesced engine batch ever exceeds MaxBatch —
// a request that would overflow an open batch starts the next one.
func TestMaxBatchEnforced(t *testing.T) {
	const maxBatch = 100
	s, c, base := startServer(t, testOptions(), Config{
		MaxBatch:       maxBatch,
		CoalesceWindow: 5 * time.Millisecond,
	})

	// Oversized single request: rejected before queueing.
	big := make([]map[string]any, maxBatch+1)
	for i := range big {
		big[i] = map[string]any{"vector": []float64{float64(i % 7), 0}, "time": float64(i) / 1000}
	}
	if resp := postJSON(t, base+"/v1/ingest", big, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized request: status %d, want 400", resp.StatusCode)
	}
	if got := c.Stats().Points; got != 0 {
		t.Fatalf("oversized request committed %d points", got)
	}

	// Concurrent 60-point requests: pairs would exceed the cap, so
	// every committed batch must stay at or under it.
	const requests = 12
	errs := make(chan error, requests)
	for r := 0; r < requests; r++ {
		go func(r int) {
			req := make([]map[string]any, 60)
			for i := range req {
				req[i] = map[string]any{"vector": []float64{float64(r % 5), float64(i % 5)}, "time": float64(r*60+i) / 1000}
			}
			raw, _ := json.Marshal(req)
			resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(string(raw)))
			if err != nil {
				errs <- err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}(r)
	}
	for r := 0; r < requests; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Points; got != requests*60 {
		t.Fatalf("engine points = %d, want %d", got, requests*60)
	}
	if max := s.coal.batchSize.Stats().WindowMax; max > maxBatch {
		t.Errorf("a coalesced batch carried %g points, cap is %d", max, maxBatch)
	}
}

// TestShutdownAfterFailedStart: Shutdown must return promptly when
// Start failed (the coalescer loop never ran, so there is nothing to
// drain — and nothing that will ever close its done channel).
func TestShutdownAfterFailedStart(t *testing.T) {
	// Occupy a port so Start fails deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Config{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("Start on an occupied port succeeded")
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown after failed start: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung after a failed Start")
	}
}
