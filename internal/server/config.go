// Package server exposes an EDMStream clusterer over HTTP/JSON: the
// edmserved network daemon. It splits the engine's two personalities
// the way the engine itself does — a single-owner write path and a
// lock-free read path:
//
//   - Writes (POST /v1/ingest) flow through a request coalescer: one
//     writer goroutine owns the clusterer, accumulates concurrently
//     arriving requests into a bounded window, and commits them with a
//     single InsertBatchAssigned call, so the engine's parallel
//     speculative router sees real batches under concurrent load and
//     every request still gets its own per-point cell acks.
//   - Reads (POST /v1/assign, GET /v1/snapshot, /v1/clusters/{id},
//     /v1/events, /v1/stats) are served straight from the engine's
//     atomically published state on the request goroutine — they never
//     queue behind writes and never block them.
//
// GET /v1/events supports cursor-based long-polling against the
// engine's evolution log (EventsSince), GET /metrics exports
// operational telemetry (internal/obs) in Prometheus text format, and
// Shutdown drains accepted ingest work before returning so no
// acknowledged point is ever lost.
package server

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"github.com/densitymountain/edmstream"

	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/wal"
)

// Config configures the serving daemon. The zero value is usable for
// tests (loopback listener on an ephemeral port, sane coalescing
// window); every field has a default.
type Config struct {
	// Addr is the TCP listen address, e.g. ":8080" or
	// "127.0.0.1:0" (ephemeral port, the test default). Default
	// "127.0.0.1:8080".
	Addr string
	// CoalesceWindow is how long the ingest coalescer keeps a batch
	// open for more concurrently arriving requests after the first
	// one, trading a bounded latency increase for larger InsertBatch
	// calls. Zero flushes a batch as soon as no further request is
	// immediately available (minimum latency, still coalescing bursts
	// already queued); negative is invalid. Default 2ms.
	CoalesceWindow time.Duration
	// MaxBatch caps the number of points one coalesced InsertBatch
	// call may carry; a batch is flushed as soon as it reaches the
	// cap, window notwithstanding, and a request that would overflow
	// an open batch triggers the next one instead. It also caps a
	// single request's point count (larger requests are rejected with
	// 400 — split them client-side). Zero means the default 4096;
	// negative is invalid.
	MaxBatch int
	// MaxPending bounds the ingest queue: the number of HTTP requests
	// that may sit between acceptance and commit. A full queue makes
	// further ingest requests wait (backpressure), not fail. Zero
	// means the default 1024; negative is invalid.
	MaxPending int
	// LongPollTimeout caps how long GET /v1/events may hold a
	// long-poll open before returning an empty page; a request's wait
	// parameter is clamped to it. Zero means the default 30s;
	// negative is invalid.
	LongPollTimeout time.Duration
	// MaxBodyBytes caps the size of a request body. Zero means the
	// default 8 MiB; negative is invalid.
	MaxBodyBytes int64
	// DataDir enables durability: when non-empty, every coalesced
	// ingest batch is appended to a write-ahead log in this directory
	// and fsynced before it is committed and acknowledged, so an HTTP
	// 200 means the points survive a crash. On startup the server
	// recovers the engine from the newest checkpoint plus the log tail.
	// Empty (the default) serves purely in memory.
	DataDir string
	// WALSegmentBytes is the WAL's segment rotation threshold. Zero
	// means the log's default (64 MiB); negative is invalid. Ignored
	// without DataDir.
	WALSegmentBytes int64
	// WALNoSync disables the fsync-before-ack: acknowledged batches
	// reach the kernel but may be lost in a crash (the log is still
	// written and recovery still works over what survived). A
	// throughput escape hatch, not a default. Ignored without DataDir.
	WALNoSync bool
	// CheckpointEvery is how many committed points may pass between
	// engine checkpoints into the WAL; smaller means faster recovery,
	// larger means less checkpoint I/O. A final checkpoint is also
	// taken at graceful shutdown. Zero means the default 50000;
	// negative is invalid. Ignored without DataDir.
	CheckpointEvery int
	// ReadTimeout is the http.Server read timeout: the maximum time to
	// read a whole request, body included. Zero means the default 30s;
	// negative is invalid.
	ReadTimeout time.Duration
	// WriteTimeout is the http.Server write timeout. It must leave room
	// for /v1/events long-polls, so when set it has to exceed the
	// effective LongPollTimeout; zero means the default
	// LongPollTimeout + 30s. Negative is invalid.
	WriteTimeout time.Duration
	// IdleTimeout is how long an idle keep-alive connection is kept
	// open. Zero means the default 120s; negative is invalid.
	IdleTimeout time.Duration
	// IngestDeadline is the ingest admission deadline: a request whose
	// estimated commit wait (live queue depth times the observed flush
	// latency) exceeds it is shed with 429 + Retry-After before its
	// body is read, and a request that cannot enter the coalescer queue
	// within it is shed with 429 as well. Once admitted a request is
	// always serviced. Zero means the default 5s; negative is invalid.
	IngestDeadline time.Duration
	// MaxReadConcurrency bounds the number of read requests (assign,
	// snapshot, cluster) served at once; requests beyond it are shed
	// with 429 instead of piling onto a saturated process. Operator
	// endpoints (stats, healthz, metrics, events) are exempt so the
	// server stays observable under load. Zero means the default 256;
	// negative is invalid.
	MaxReadConcurrency int
	// DegradedProbeInterval is how often the writer goroutine, while
	// the server sits in WAL-failure degraded mode, probes the log
	// directory (reopen + checkpoint) to recover automatically. Zero
	// means the default 1s; negative is invalid. Ignored without
	// DataDir.
	DegradedProbeInterval time.Duration
	// WALRetryAttempts is the total number of tries (first attempt
	// included) a durable batch append gets before the failure flips
	// the server into degraded mode; between tries the WAL handle is
	// reopened and recovery repairs any torn tail. Zero means the
	// default 3; 1 disables retries; negative is invalid. Ignored
	// without DataDir.
	WALRetryAttempts int
	// WALFS is the filesystem the WAL runs on; nil means the real one.
	// The chaos drill and the fault-injection tests plug a wal.FaultFS
	// in here. Ignored without DataDir.
	WALFS wal.FS
	// ArchiveURL enables the remote archive: sealed WAL segments and
	// finished checkpoints are shipped asynchronously to this object
	// store ("file://<path>" or a plain directory path). The archive is
	// a disaster-recovery replica, never the ack authority: a remote
	// outage shows up as archive lag in /healthz and /v1/stats, it
	// never blocks or fails ingest. Requires DataDir.
	ArchiveURL string
	// ArchiveStore, when non-nil, is the object store to ship to,
	// overriding ArchiveURL resolution — the seam the disaster drill
	// uses to inject an archive.FaultStore. Requires DataDir.
	ArchiveStore archive.ObjectStore
	// ArchiveQueue bounds the shipper's notification queue; a full
	// queue drops notifications (repaired by resync) rather than ever
	// blocking the WAL writer. Zero means the default 64; negative is
	// invalid. Ignored without an archive.
	ArchiveQueue int
	// ArchiveRetryBase/ArchiveRetryMax shape the shipper's jittered
	// exponential backoff between upload attempts. Zero means the
	// defaults 100ms / 5s; negative is invalid. Ignored without an
	// archive.
	ArchiveRetryBase time.Duration
	ArchiveRetryMax  time.Duration
	// ArchiveResync is how often the shipper, after drops or failures,
	// rescans the WAL directory and ships whatever the remote is
	// missing. Zero means the default 30s; negative is invalid. Ignored
	// without an archive.
	ArchiveResync time.Duration
	// RecoveryBudget bounds estimated crash-recovery time: when the
	// WAL tail would take longer than this to replay (at the replay
	// rate measured during the last recovery, or the live ingest apply
	// rate before any recovery has run), a checkpoint is taken even if
	// CheckpointEvery has not been reached. Zero disables the budget;
	// negative is invalid. Requires DataDir.
	RecoveryBudget time.Duration
	// CheckpointCompress writes WAL checkpoints gzip-compressed (the
	// integrity header still describes the uncompressed payload, so
	// corruption detection is unchanged, and readers accept both
	// formats regardless of this setting). Requires DataDir.
	CheckpointCompress bool
	// RestoreFromArchive rebuilds an EMPTY data directory from the
	// archive before opening it: every remote checkpoint and segment is
	// downloaded and the normal recovery path replays the result. A
	// data directory that already holds WAL state fails the restore
	// (local state is the durability authority). Requires an archive.
	RestoreFromArchive bool
	// NewEngine is the engine factory behind the multi-tenant plane:
	// the first POST /v1/{stream}/ingest on a new name (and every
	// revival of an evicted one) builds the stream's clusterer through
	// it. Nil disables named streams — only the default stream (the
	// clusterer passed to New) is served, and /v1/{stream}/* requests
	// on other names fail with 501.
	NewEngine func() (*edmstream.Clusterer, error)
	// MaxStreams caps how many stream names the registry holds (live
	// plus evicted-but-revivable, the default stream included).
	// Creating past the cap is shed with 429 reason "overloaded". Zero
	// means the default 1024; negative is invalid.
	MaxStreams int
	// WriterPool bounds the shared writer goroutines every stream's
	// ingest path multiplexes over. Streams take turns batch-by-batch
	// (round-robin), so one hot tenant cannot starve the rest. Zero
	// means GOMAXPROCS; negative is invalid.
	WriterPool int
	// MemoryBudget is the global resident-footprint target in bytes:
	// when the estimated memory of all live streams exceeds it, the
	// janitor checkpoints the least-recently-used idle streams to disk
	// and releases them (they revive transparently on the next touch).
	// Zero disables budget-driven eviction. Must be at least
	// MinMemoryBudget (one engine's floor) and requires DataDir —
	// eviction without a WAL would lose data.
	MemoryBudget int64
	// EvictIdleAfter evicts any stream untouched for this long, budget
	// pressure or not. Zero disables idle eviction; negative is
	// invalid. Requires DataDir.
	EvictIdleAfter time.Duration
	// SweepInterval is the janitor cadence: how often the eviction
	// sweep (memory budget + idle age) runs. Zero means the default 1s;
	// negative is invalid.
	SweepInterval time.Duration
}

// Defaults.
const (
	defaultAddr            = "127.0.0.1:8080"
	defaultCoalesceWindow  = 2 * time.Millisecond
	defaultMaxBatch        = 4096
	defaultMaxPending      = 1024
	defaultLongPollTimeout = 30 * time.Second
	defaultMaxBodyBytes    = 8 << 20
	defaultCheckpointEvery = 50000

	defaultReadTimeout           = 30 * time.Second
	defaultIdleTimeout           = 120 * time.Second
	defaultWriteTimeoutSlack     = 30 * time.Second // added to LongPollTimeout
	defaultIngestDeadline        = 5 * time.Second
	defaultMaxReadConcurrency    = 256
	defaultDegradedProbeInterval = time.Second
	defaultWALRetryAttempts      = 3

	defaultArchiveQueue     = 64
	defaultArchiveRetryBase = 100 * time.Millisecond
	defaultArchiveRetryMax  = 5 * time.Second
	defaultArchiveResync    = 30 * time.Second

	defaultMaxStreams    = 1024
	defaultSweepInterval = time.Second
)

// archiveConfigured reports whether an archive destination is set.
func (c Config) archiveConfigured() bool {
	return c.ArchiveURL != "" || c.ArchiveStore != nil
}

// withDefaults returns a copy with defaults filled in. CoalesceWindow
// zero is preserved: it is the documented "no added wait" setting, not
// an unset marker (the default window only applies through
// DefaultConfig).
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = defaultAddr
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = defaultMaxBatch
	}
	if c.MaxPending == 0 {
		c.MaxPending = defaultMaxPending
	}
	if c.LongPollTimeout == 0 {
		c.LongPollTimeout = defaultLongPollTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = defaultCheckpointEvery
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = defaultReadTimeout
	}
	if c.WriteTimeout == 0 {
		// Long-poll aware: the write deadline starts when the request
		// headers are read, and an /v1/events response may legitimately
		// come LongPollTimeout later.
		c.WriteTimeout = c.LongPollTimeout + defaultWriteTimeoutSlack
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = defaultIdleTimeout
	}
	if c.IngestDeadline == 0 {
		c.IngestDeadline = defaultIngestDeadline
	}
	if c.MaxReadConcurrency == 0 {
		c.MaxReadConcurrency = defaultMaxReadConcurrency
	}
	if c.DegradedProbeInterval == 0 {
		c.DegradedProbeInterval = defaultDegradedProbeInterval
	}
	if c.WALRetryAttempts == 0 {
		c.WALRetryAttempts = defaultWALRetryAttempts
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = defaultMaxStreams
	}
	if c.WriterPool == 0 {
		c.WriterPool = runtime.GOMAXPROCS(0)
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = defaultSweepInterval
	}
	// The archive knobs only default when an archive is configured, so
	// a zero-valued (archiveless) Config stays exactly zero-valued.
	if c.archiveConfigured() {
		if c.ArchiveQueue == 0 {
			c.ArchiveQueue = defaultArchiveQueue
		}
		if c.ArchiveRetryBase == 0 {
			c.ArchiveRetryBase = defaultArchiveRetryBase
		}
		if c.ArchiveRetryMax == 0 {
			c.ArchiveRetryMax = defaultArchiveRetryMax
		}
		if c.ArchiveResync == 0 {
			c.ArchiveResync = defaultArchiveResync
		}
	}
	return c
}

// DefaultConfig returns the production defaults, including the 2ms
// coalescing window (a zero-valued Config keeps a zero window, which
// coalesces only what is already queued).
func DefaultConfig() Config {
	c := Config{CoalesceWindow: defaultCoalesceWindow}.withDefaults()
	return c
}

// Validate checks the configuration, rejecting nonsense values with
// errors naming the field and the constraint.
func (c Config) Validate() error {
	if c.CoalesceWindow < 0 {
		return fmt.Errorf("server: CoalesceWindow must be non-negative (0 flushes immediately), got %v", c.CoalesceWindow)
	}
	if c.CoalesceWindow > time.Minute {
		return fmt.Errorf("server: CoalesceWindow %v is absurd for a serving path (max 1m)", c.CoalesceWindow)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("server: MaxBatch must be non-negative (0 means the default %d), got %d", defaultMaxBatch, c.MaxBatch)
	}
	if c.MaxPending < 0 {
		return fmt.Errorf("server: MaxPending must be non-negative (0 means the default %d), got %d", defaultMaxPending, c.MaxPending)
	}
	if c.LongPollTimeout < 0 {
		return fmt.Errorf("server: LongPollTimeout must be non-negative (0 means the default %v), got %v", defaultLongPollTimeout, c.LongPollTimeout)
	}
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("server: MaxBodyBytes must be non-negative (0 means the default %d), got %d", int64(defaultMaxBodyBytes), c.MaxBodyBytes)
	}
	if c.Addr != "" {
		if _, _, err := net.SplitHostPort(c.Addr); err != nil {
			return fmt.Errorf("server: Addr %q is not a host:port listen address: %w", c.Addr, err)
		}
	}
	if c.WALSegmentBytes < 0 {
		return fmt.Errorf("server: WALSegmentBytes must be non-negative (0 means the WAL default), got %d", c.WALSegmentBytes)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("server: CheckpointEvery must be non-negative (0 means the default %d), got %d", defaultCheckpointEvery, c.CheckpointEvery)
	}
	if c.DataDir == "" && c.WALNoSync {
		return fmt.Errorf("server: WALNoSync is set but DataDir is empty — there is no WAL to skip syncing")
	}
	if c.ReadTimeout < 0 {
		return fmt.Errorf("server: ReadTimeout must be non-negative (0 means the default %v), got %v", defaultReadTimeout, c.ReadTimeout)
	}
	if c.WriteTimeout < 0 {
		return fmt.Errorf("server: WriteTimeout must be non-negative (0 means LongPollTimeout + %v), got %v", defaultWriteTimeoutSlack, c.WriteTimeout)
	}
	if c.WriteTimeout > 0 {
		// Compare against the effective long-poll cap so a custom
		// WriteTimeout cannot silently cut long-polls short.
		longPoll := c.LongPollTimeout
		if longPoll == 0 {
			longPoll = defaultLongPollTimeout
		}
		if c.WriteTimeout <= longPoll {
			return fmt.Errorf("server: WriteTimeout %v must exceed the %v LongPollTimeout or /v1/events long-polls die mid-hold", c.WriteTimeout, longPoll)
		}
	}
	if c.IdleTimeout < 0 {
		return fmt.Errorf("server: IdleTimeout must be non-negative (0 means the default %v), got %v", defaultIdleTimeout, c.IdleTimeout)
	}
	if c.IngestDeadline < 0 {
		return fmt.Errorf("server: IngestDeadline must be non-negative (0 means the default %v), got %v", defaultIngestDeadline, c.IngestDeadline)
	}
	if c.MaxReadConcurrency < 0 {
		return fmt.Errorf("server: MaxReadConcurrency must be non-negative (0 means the default %d), got %d", defaultMaxReadConcurrency, c.MaxReadConcurrency)
	}
	if c.DegradedProbeInterval < 0 {
		return fmt.Errorf("server: DegradedProbeInterval must be non-negative (0 means the default %v), got %v", defaultDegradedProbeInterval, c.DegradedProbeInterval)
	}
	if c.WALRetryAttempts < 0 {
		return fmt.Errorf("server: WALRetryAttempts must be non-negative (0 means the default %d), got %d", defaultWALRetryAttempts, c.WALRetryAttempts)
	}
	if c.ArchiveQueue < 0 {
		return fmt.Errorf("server: ArchiveQueue must be non-negative (0 means the default %d), got %d", defaultArchiveQueue, c.ArchiveQueue)
	}
	if c.ArchiveRetryBase < 0 {
		return fmt.Errorf("server: ArchiveRetryBase must be non-negative (0 means the default %v), got %v", defaultArchiveRetryBase, c.ArchiveRetryBase)
	}
	if c.ArchiveRetryMax < 0 {
		return fmt.Errorf("server: ArchiveRetryMax must be non-negative (0 means the default %v), got %v", defaultArchiveRetryMax, c.ArchiveRetryMax)
	}
	if c.ArchiveRetryBase > 0 && c.ArchiveRetryMax > 0 && c.ArchiveRetryMax < c.ArchiveRetryBase {
		return fmt.Errorf("server: ArchiveRetryMax %v must be at least ArchiveRetryBase %v", c.ArchiveRetryMax, c.ArchiveRetryBase)
	}
	if c.ArchiveResync < 0 {
		return fmt.Errorf("server: ArchiveResync must be non-negative (0 means the default %v), got %v", defaultArchiveResync, c.ArchiveResync)
	}
	if c.RecoveryBudget < 0 {
		return fmt.Errorf("server: RecoveryBudget must be non-negative (0 disables the budget), got %v", c.RecoveryBudget)
	}
	if c.archiveConfigured() && c.DataDir == "" {
		return fmt.Errorf("server: an archive is configured but DataDir is empty — there is no WAL to ship")
	}
	if !c.archiveConfigured() {
		if c.RestoreFromArchive {
			return fmt.Errorf("server: RestoreFromArchive is set but no archive is configured — there is nothing to restore from")
		}
		if c.ArchiveQueue > 0 || c.ArchiveRetryBase > 0 || c.ArchiveRetryMax > 0 || c.ArchiveResync > 0 {
			return fmt.Errorf("server: archive shipper knobs are set but no archive is configured — set ArchiveURL (or ArchiveStore)")
		}
	}
	if c.DataDir == "" {
		if c.CheckpointCompress {
			return fmt.Errorf("server: CheckpointCompress is set but DataDir is empty — there are no checkpoints to compress")
		}
		if c.RecoveryBudget > 0 {
			return fmt.Errorf("server: RecoveryBudget is set but DataDir is empty — there is no WAL to bound recovery for")
		}
	}
	if c.MaxStreams < 0 {
		return fmt.Errorf("server: MaxStreams must be non-negative (0 means the default %d), got %d", defaultMaxStreams, c.MaxStreams)
	}
	if c.MaxStreams == 1 && c.NewEngine != nil {
		return fmt.Errorf("server: MaxStreams 1 leaves room only for the default stream — the engine factory could never build a named one")
	}
	if c.WriterPool < 0 {
		return fmt.Errorf("server: WriterPool must be non-negative (0 means GOMAXPROCS), got %d", c.WriterPool)
	}
	if c.MemoryBudget < 0 {
		return fmt.Errorf("server: MemoryBudget must be non-negative (0 disables budget eviction), got %d", c.MemoryBudget)
	}
	if c.MemoryBudget > 0 {
		if c.MemoryBudget < MinMemoryBudget {
			return fmt.Errorf("server: MemoryBudget %d is below one engine's %d-byte floor — it would evict every stream on every sweep", c.MemoryBudget, int64(MinMemoryBudget))
		}
		if c.DataDir == "" {
			return fmt.Errorf("server: MemoryBudget is set but DataDir is empty — evicting a stream without a WAL would lose its data")
		}
	}
	if c.EvictIdleAfter < 0 {
		return fmt.Errorf("server: EvictIdleAfter must be non-negative (0 disables idle eviction), got %v", c.EvictIdleAfter)
	}
	if c.EvictIdleAfter > 0 && c.DataDir == "" {
		return fmt.Errorf("server: EvictIdleAfter is set but DataDir is empty — evicting a stream without a WAL would lose its data")
	}
	if c.SweepInterval < 0 {
		return fmt.Errorf("server: SweepInterval must be non-negative (0 means the default %v), got %v", defaultSweepInterval, c.SweepInterval)
	}
	return nil
}
