package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/densitymountain/edmstream"
)

// wirePoint is the JSON form of one stream point. Exactly one of
// vector/tokens must be present. Omitted time means "stamp with the
// server's stream clock at decode" (seconds since the server
// started); explicit times let a single writer replay a recorded
// stream deterministically. id and label are optional and preserved
// verbatim (the engine uses them only for error messages and
// evaluation).
type wirePoint struct {
	ID     *int64    `json:"id,omitempty"`
	Vector []float64 `json:"vector,omitempty"`
	Tokens []string  `json:"tokens,omitempty"`
	Time   *float64  `json:"time,omitempty"`
	Label  *int      `json:"label,omitempty"`
}

// toPoint converts a wire point, stamping omitted fields. now is the
// server's stream clock reading for this request.
func (w wirePoint) toPoint(now float64) edmstream.Point {
	p := edmstream.Point{Label: edmstream.NoLabel, Time: now}
	if w.ID != nil {
		p.ID = *w.ID
	}
	if w.Time != nil {
		p.Time = *w.Time
	}
	if w.Label != nil {
		p.Label = *w.Label
	}
	if w.Tokens != nil {
		p.Tokens = edmstream.NewTokenSet(w.Tokens...)
	} else {
		p.Vector = w.Vector
	}
	return p
}

// decodePoints reads an ingest or assign request body: either a JSON
// array of point objects or NDJSON (one point object per line; any
// whitespace separation works). Each decoded point is validated so a
// malformed request is rejected before it can poison a coalesced
// batch shared with other requests. maxPoints bounds the decoded
// count (0 = unbounded).
func decodePoints(r io.Reader, now float64, maxPoints int) ([]edmstream.Point, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()

	tok, err := dec.Token()
	if errors.Is(err, io.EOF) {
		return nil, errors.New("empty request body")
	}
	if err != nil {
		return nil, err
	}

	var pts []edmstream.Point
	add := func(w wirePoint) error {
		if w.Vector != nil && w.Tokens != nil {
			// toPoint prefers tokens, so catch the conflict here where
			// both halves are still visible.
			return fmt.Errorf("point %d: has both vector and tokens", len(pts))
		}
		if w.Tokens == nil && len(w.Vector) == 0 {
			return fmt.Errorf("point %d: vector must have at least one coordinate", len(pts))
		}
		p := w.toPoint(now)
		if err := p.Validate(); err != nil {
			return fmt.Errorf("point %d: %w", len(pts), err)
		}
		if maxPoints > 0 && len(pts) >= maxPoints {
			return fmt.Errorf("too many points in one request (max %d)", maxPoints)
		}
		pts = append(pts, p)
		return nil
	}

	if delim, ok := tok.(json.Delim); ok && delim == '[' {
		// JSON array body.
		for dec.More() {
			var w wirePoint
			if err := dec.Decode(&w); err != nil {
				return nil, fmt.Errorf("point %d: %w", len(pts), err)
			}
			if err := add(w); err != nil {
				return nil, err
			}
		}
		if _, err := dec.Token(); err != nil {
			return nil, err
		}
		return pts, nil
	}

	if delim, ok := tok.(json.Delim); ok && delim == '{' {
		// NDJSON (or a single bare object). The first object's opening
		// brace is already consumed, so rebuild it from the token
		// stream, then continue decoding whole objects.
		var first wirePoint
		if err := decodeOpenObject(dec, &first); err != nil {
			return nil, fmt.Errorf("point 0: %w", err)
		}
		if err := add(first); err != nil {
			return nil, err
		}
		for {
			var w wirePoint
			if err := dec.Decode(&w); errors.Is(err, io.EOF) {
				return pts, nil
			} else if err != nil {
				return nil, fmt.Errorf("point %d: %w", len(pts), err)
			}
			if err := add(w); err != nil {
				return nil, err
			}
		}
	}

	return nil, fmt.Errorf("request body must be a JSON array of points or NDJSON, got %v", tok)
}

// decodeOpenObject decodes the remainder of an object whose opening
// '{' token has already been consumed from dec.
func decodeOpenObject(dec *json.Decoder, w *wirePoint) error {
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		switch key {
		case "id":
			w.ID = new(int64)
			err = dec.Decode(w.ID)
		case "vector":
			err = dec.Decode(&w.Vector)
		case "tokens":
			err = dec.Decode(&w.Tokens)
		case "time":
			w.Time = new(float64)
			err = dec.Decode(w.Time)
		case "label":
			w.Label = new(int)
			err = dec.Decode(w.Label)
		default:
			return fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return err
		}
	}
	_, err := dec.Token() // closing '}'
	return err
}

// pointShape encodes a point's modality and dimensionality as one
// comparable value: -1 for token sets, the vector dimensionality
// otherwise (always > 0; zero-dimension vectors are rejected at
// decode). The engine's stream is homogeneous — one modality, one
// dimensionality, fixed by the first point — so the server checks
// every decoded point against the established shape instead of
// letting a mismatch reach the distance kernels (which would panic on
// a shorter vector or silently truncate a longer one).
func pointShape(p edmstream.Point) int64 {
	if p.IsText() {
		return -1
	}
	return int64(p.Dim())
}

// shapeString renders a shape for error messages.
func shapeString(shape int64) string {
	if shape == -1 {
		return "token-set"
	}
	return fmt.Sprintf("%d-dimensional vector", shape)
}

// wireEvent is the JSON form of one evolution event.
type wireEvent struct {
	Kind    string  `json:"kind"`
	Time    float64 `json:"time"`
	Sources []int   `json:"sources,omitempty"`
	Targets []int   `json:"targets,omitempty"`
}

func toWireEvents(evs []edmstream.Event) []wireEvent {
	out := make([]wireEvent, len(evs))
	for i, e := range evs {
		out[i] = wireEvent{Kind: string(e.Kind), Time: e.Time, Sources: e.Sources, Targets: e.Targets}
	}
	return out
}

// ingestResponse acknowledges one ingest request: the number of
// points committed and, aligned with the request's points, the ID of
// the cluster-cell each point landed in.
type ingestResponse struct {
	Accepted int     `json:"accepted"`
	Cells    []int64 `json:"cells"`
}

// assignResponse carries one cluster ID per request point; -1 marks
// an outlier (or no published snapshot yet). For a single-object
// request the clusters array still has exactly one entry.
type assignResponse struct {
	Clusters []int `json:"clusters"`
}

// wireClusterSummary is one cluster in the snapshot listing.
type wireClusterSummary struct {
	ID          int     `json:"id"`
	PeakCellID  int64   `json:"peak_cell_id"`
	PeakDensity float64 `json:"peak_density"`
	Cells       int     `json:"cells"`
	Weight      float64 `json:"weight"`
	Points      int64   `json:"points"`
}

// snapshotResponse is the GET /v1/snapshot body: the published
// clustering without per-cell payloads (GET /v1/clusters/{id} has
// those).
type snapshotResponse struct {
	Time         float64              `json:"time"`
	Tau          float64              `json:"tau"`
	ActiveCells  int                  `json:"active_cells"`
	OutlierCells int                  `json:"outlier_cells"`
	Clusters     []wireClusterSummary `json:"clusters"`
}

// wireSeed is one member cell of a cluster detail response.
type wireSeed struct {
	CellID int64     `json:"cell_id"`
	Vector []float64 `json:"vector,omitempty"`
	Tokens []string  `json:"tokens,omitempty"`
}

// clusterResponse is the GET /v1/clusters/{id} body.
type clusterResponse struct {
	wireClusterSummary
	Members []wireSeed `json:"members"`
}

// eventsResponse is the GET /v1/events body. Cursor is the next
// cursor to poll with; it only advances when new events are recorded.
type eventsResponse struct {
	Cursor uint64      `json:"cursor"`
	Events []wireEvent `json:"events"`
}

// errorResponse is the uniform error body. Shed responses (429/503)
// additionally carry a machine-readable reason ("overloaded",
// "degraded", "draining") and mirror the Retry-After header so
// body-only clients see the hint too.
type errorResponse struct {
	Error             string `json:"error"`
	Reason            string `json:"reason,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}
