package server

import (
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/obs"
)

// archiveMetrics mirrors the shipper's atomic counters into the obs
// registry. Everything is a Gauge refreshed with Set from whoever reads
// it (/metrics, /v1/stats): the shipper owns the real counters, and
// concurrent delta-Adds from multiple scrape goroutines would
// double-count.
type archiveMetrics struct {
	shipped       *obs.Gauge
	shippedBytes  *obs.Gauge
	readBytes     *obs.Gauge
	failed        *obs.Gauge
	retried       *obs.Gauge
	dropped       *obs.Gauge
	skipped       *obs.Gauge
	pruned        *obs.Gauge
	lagObjects    *obs.Gauge
	lagRecords    *obs.Gauge
	lagSecondsK   *obs.Gauge
	lagging       *obs.Gauge
	shippedSeq    *obs.Gauge
	shippedCkpSeq *obs.Gauge
}

func newArchiveMetrics(reg *obs.Registry, labels string) *archiveMetrics {
	return &archiveMetrics{
		shipped:       reg.Gauge("edmserved_archive_shipped_objects", labels),
		shippedBytes:  reg.Gauge("edmserved_archive_shipped_bytes", labels),
		readBytes:     reg.Gauge("edmserved_archive_read_bytes", labels),
		failed:        reg.Gauge("edmserved_archive_failed_uploads", labels),
		retried:       reg.Gauge("edmserved_archive_upload_retries", labels),
		dropped:       reg.Gauge("edmserved_archive_dropped_notifications", labels),
		skipped:       reg.Gauge("edmserved_archive_skipped_uploads", labels),
		pruned:        reg.Gauge("edmserved_archive_pruned_objects", labels),
		lagObjects:    reg.Gauge("edmserved_archive_lag_objects", labels),
		lagRecords:    reg.Gauge("edmserved_archive_lag_records", labels),
		lagSecondsK:   reg.Gauge("edmserved_archive_lag_seconds_x1000", labels),
		lagging:       reg.Gauge("edmserved_archive_lagging", labels),
		shippedSeq:    reg.Gauge("edmserved_archive_shipped_through_seq", labels),
		shippedCkpSeq: reg.Gauge("edmserved_archive_shipped_checkpoint_seq", labels),
	}
}

// refresh snapshots the shipper into the gauges. Safe from any
// goroutine.
func (m *archiveMetrics) refresh(st archive.ShipperStats) {
	m.shipped.Set(int64(st.Shipped))
	m.shippedBytes.Set(int64(st.ShippedBytes))
	m.readBytes.Set(int64(st.ReadBytes))
	m.failed.Set(int64(st.Failed))
	m.retried.Set(int64(st.Retried))
	m.dropped.Set(int64(st.Dropped))
	m.skipped.Set(int64(st.Skipped))
	m.pruned.Set(int64(st.Pruned))
	m.lagObjects.Set(st.LagObjects)
	m.lagRecords.Set(st.LagRecords)
	m.lagSecondsK.Set(int64(st.LagSeconds * 1000))
	if st.Lagging {
		m.lagging.Set(1)
	} else {
		m.lagging.Set(0)
	}
	m.shippedSeq.Set(int64(st.ShippedThroughSeq))
	m.shippedCkpSeq.Set(int64(st.ShippedCheckpointSeq))
}

// archiveStats is the archive section of GET /v1/stats, present only
// when an archive is configured.
type archiveStats struct {
	Shipped              uint64  `json:"shipped"`
	ShippedBytes         uint64  `json:"shipped_bytes"`
	ReadBytes            uint64  `json:"read_bytes"`
	Failed               uint64  `json:"failed"`
	Retried              uint64  `json:"retried"`
	Dropped              uint64  `json:"dropped"`
	Skipped              uint64  `json:"skipped"`
	Pruned               uint64  `json:"pruned"`
	LagObjects           int64   `json:"lag_objects"`
	LagRecords           int64   `json:"lag_records"`
	LagSeconds           float64 `json:"lag_seconds"`
	Lagging              bool    `json:"lagging"`
	LocalThroughSeq      uint64  `json:"local_through_seq"`
	ShippedThroughSeq    uint64  `json:"shipped_through_seq"`
	ShippedCheckpointSeq uint64  `json:"shipped_checkpoint_seq"`

	// Restore reports the disaster restore that built this data
	// directory, when RestoreFromArchive ran one; RestoreSkipped means
	// the flag was set but local WAL state made the restore a no-op.
	Restore        *archive.RestoreInfo `json:"restore,omitempty"`
	RestoreSkipped bool                 `json:"restore_skipped,omitempty"`
}
