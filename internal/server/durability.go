package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/archive"
	"github.com/densitymountain/edmstream/internal/obs"
	"github.com/densitymountain/edmstream/internal/wal"
)

// durability owns the server's write-ahead log. The coalescer's writer
// goroutine appends every gathered batch and fsyncs BEFORE the batch is
// committed to the engine and acknowledged, so an HTTP 200 means the
// points survive a crash; a checkpoint of the full engine state is
// taken every CheckpointEvery committed points so recovery replays a
// bounded tail.
//
// All mutating methods run on the writer goroutine (or, for close, on
// the Shutdown goroutine after the writer has exited). HTTP handlers
// never touch the log: they read the obs instruments and the immutable
// RecoveryInfo captured at open.
type durability struct {
	log       *wal.ResilientLog
	ckptEvery int
	sinceCkpt int
	recovery  wal.RecoveryInfo
	ckptBuf   bytes.Buffer

	// Recovery-time budget: a checkpoint is also taken when the points
	// appended since the last one would take longer than budget to
	// replay. The estimate uses the replay rate measured during this
	// boot's recovery, falling back to an EMA of the live engine apply
	// rate when recovery replayed nothing.
	budget     time.Duration
	replayRate float64 // points/second measured during recovery; 0 = unmeasured
	applyRate  float64 // EMA of live InsertBatchAssigned points/second

	fsync         obs.Timing
	ckptTime      obs.Timing
	records       *obs.Counter
	bytesTotal    *obs.Counter
	checkpoints   *obs.Counter
	ckptErrors    *obs.Counter
	probeFailures *obs.Counter
	segments      *obs.Gauge
	retries       *obs.Gauge // mirrors the resilient log's retry count
	reopens       *obs.Gauge // mirrors the resilient log's reopen count
	budgetCkpts   *obs.Counter
	estReplayMs   *obs.Gauge // estimated replay time of the current tail
	replayRateG   *obs.Gauge // points/second the estimate divides by
	// Recovery outcome, frozen after open (gauges so they export).
	recoverySeconds  *obs.Gauge
	recoveredRecords *obs.Gauge
	droppedBytes     *obs.Gauge
}

// openDurability opens (or creates) the WAL in dir (the stream's
// namespaced corner of DataDir) and brings the clusterer up to date:
// restore the newest valid checkpoint, then replay the log tail
// through the normal batch-ingest path. Engine determinism makes the
// result byte-identical to the uninterrupted run over the acknowledged
// prefix. labels tags every instrument with the owning stream.
func openDurability(c *edmstream.Clusterer, cfg Config, dir, labels string, reg *obs.Registry, ship *archive.Shipper) (*durability, error) {
	begin := time.Now()
	opts := wal.Options{
		Dir:                 dir,
		SegmentBytes:        cfg.WALSegmentBytes,
		NoSync:              cfg.WALNoSync,
		FS:                  cfg.WALFS,
		CompressCheckpoints: cfg.CheckpointCompress,
	}
	if ship != nil {
		opts.OnSegmentSealed = ship.NoteSegmentSealed
		opts.OnCheckpointSaved = ship.NoteCheckpointSaved
	}
	log, err := wal.OpenResilient(opts, wal.RetryPolicy{MaxAttempts: cfg.WALRetryAttempts})
	if err != nil {
		return nil, fmt.Errorf("server: opening WAL in %s: %w", dir, err)
	}
	if ck := log.Checkpoint(); ck != nil {
		if err := c.RestoreCheckpoint(bytes.NewReader(ck)); err != nil {
			log.Close()
			return nil, fmt.Errorf("server: restoring checkpoint from %s: %w", dir, err)
		}
	}
	replayBegin := time.Now()
	replayedPoints := 0
	err = log.Replay(func(seq uint64, payload []byte) error {
		pts, derr := decodeBatchRecord(payload)
		if derr != nil {
			return fmt.Errorf("record %d: %w", seq, derr)
		}
		if ierr := c.InsertBatch(pts); ierr != nil {
			return fmt.Errorf("record %d: replaying batch: %w", seq, ierr)
		}
		replayedPoints += len(pts)
		return nil
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("server: replaying WAL from %s: %w", dir, err)
	}
	var replayRate float64
	if dur := time.Since(replayBegin).Seconds(); replayedPoints > 0 && dur > 0 {
		replayRate = float64(replayedPoints) / dur
	}

	d := &durability{
		log:        log,
		ckptEvery:  cfg.CheckpointEvery,
		budget:     cfg.RecoveryBudget,
		replayRate: replayRate,
		// The replayed tail is NOT yet covered by a checkpoint: seed
		// the counter so the budget (and CheckpointEvery) see it.
		sinceCkpt:        replayedPoints,
		recovery:         log.Info(),
		fsync:            reg.Timing("edmserved_wal_fsync_seconds", labels),
		ckptTime:         reg.Timing("edmserved_wal_checkpoint_seconds", labels),
		records:          reg.Counter("edmserved_wal_records_total", labels),
		bytesTotal:       reg.Counter("edmserved_wal_bytes_total", labels),
		checkpoints:      reg.Counter("edmserved_wal_checkpoints_total", labels),
		ckptErrors:       reg.Counter("edmserved_wal_checkpoint_errors_total", labels),
		probeFailures:    reg.Counter("edmserved_wal_probe_failures_total", labels),
		segments:         reg.Gauge("edmserved_wal_segments", labels),
		retries:          reg.Gauge("edmserved_wal_append_retries", labels),
		reopens:          reg.Gauge("edmserved_wal_reopens", labels),
		budgetCkpts:      reg.Counter("edmserved_wal_budget_checkpoints_total", labels),
		estReplayMs:      reg.Gauge("edmserved_recovery_est_replay_ms", labels),
		replayRateG:      reg.Gauge("edmserved_recovery_replay_points_per_sec", labels),
		recoverySeconds:  reg.Gauge("edmserved_wal_recovery_seconds_x1000", labels),
		recoveredRecords: reg.Gauge("edmserved_wal_recovered_records", labels),
		droppedBytes:     reg.Gauge("edmserved_wal_recovery_dropped_bytes", labels),
	}
	d.segments.Add(int64(log.Stats().Segments))
	d.recoverySeconds.Add(time.Since(begin).Milliseconds())
	d.recoveredRecords.Add(int64(d.recovery.RecordsReplayable))
	d.droppedBytes.Add(d.recovery.DroppedBytes)
	d.replayRateG.Set(int64(replayRate))
	return d, nil
}

// appendBatch logs one gathered batch and makes it durable, riding the
// resilient log's bounded retry-with-backoff loop across transient
// disk faults. Called on the writer goroutine before the batch reaches
// the engine; an error means the retry budget is exhausted, the batch
// must NOT be committed or acknowledged, and the caller flips the
// server into degraded mode.
func (d *durability) appendBatch(pts []edmstream.Point) error {
	payload := encodeBatchRecord(pts)
	begin := time.Now()
	if _, err := d.log.AppendSync(payload); err != nil {
		d.syncRetryGauges()
		return err
	}
	d.fsync.Observe(time.Since(begin))
	d.records.Inc()
	d.bytesTotal.Add(uint64(len(payload)))
	d.syncSegmentGauge()
	d.syncRetryGauges()
	return nil
}

// probe is one degraded-mode recovery attempt: reopen the WAL
// directory and prove it writable end to end with a fresh engine
// checkpoint (which also supersedes any ambiguous tail record the
// failure left behind, so the log and the engine agree again). Returns
// true when the server may flip back to healthy.
func (d *durability) probe(c *edmstream.Clusterer) bool {
	if err := d.log.Reopen(); err != nil {
		d.probeFailures.Inc()
		d.syncRetryGauges()
		return false
	}
	d.syncRetryGauges()
	if !d.checkpoint(c) {
		d.probeFailures.Inc()
		return false
	}
	d.sinceCkpt = 0
	return true
}

// noteCommitted runs after a batch was committed to the engine; every
// CheckpointEvery committed points it snapshots the engine into the
// log, bounding the replay tail. A failed checkpoint is counted and
// retried at the next boundary — the log itself still covers
// everything, so durability is not at risk, only recovery time.
//
// With a RecoveryBudget, the boundary is ALSO crossed when the tail's
// estimated replay time (points since the last checkpoint divided by
// the measured replay rate) exceeds the budget: the point-count knob
// bounds checkpoint I/O, the budget bounds restart time, whichever
// bites first wins.
func (d *durability) noteCommitted(c *edmstream.Clusterer, points int) {
	d.sinceCkpt += points
	over := d.sinceCkpt >= d.ckptEvery
	budgetHit := false
	if !over && d.budget > 0 {
		if rate := d.recoveryRate(); rate > 0 {
			est := float64(d.sinceCkpt) / rate
			d.estReplayMs.Set(int64(est * 1000))
			budgetHit = est > d.budget.Seconds()
		}
	}
	if !over && !budgetHit {
		return
	}
	if d.checkpoint(c) {
		if budgetHit {
			d.budgetCkpts.Inc()
		}
		d.sinceCkpt = 0
		d.estReplayMs.Set(0)
	}
}

// recoveryRate is the points-per-second divisor for replay estimates:
// the rate measured during this boot's recovery when it replayed
// anything, otherwise the live apply-rate EMA (replay IS batch apply —
// it runs the same InsertBatch path without HTTP in front).
func (d *durability) recoveryRate() float64 {
	if d.replayRate > 0 {
		return d.replayRate
	}
	return d.applyRate
}

// noteApply feeds the apply-rate EMA from the coalescer's measured
// engine-insert timings. Writer goroutine only.
func (d *durability) noteApply(points int, dur time.Duration) {
	if points <= 0 || dur <= 0 {
		return
	}
	rate := float64(points) / dur.Seconds()
	const alpha = 0.2
	if d.applyRate == 0 {
		d.applyRate = rate
	} else {
		d.applyRate += alpha * (rate - d.applyRate)
	}
	if d.replayRate == 0 {
		d.replayRateG.Set(int64(d.applyRate))
	}
}

// checkpoint snapshots the engine state into the log, reporting
// success.
func (d *durability) checkpoint(c *edmstream.Clusterer) bool {
	begin := time.Now()
	d.ckptBuf.Reset()
	if err := c.WriteCheckpoint(&d.ckptBuf); err != nil {
		d.ckptErrors.Inc()
		return false
	}
	if err := d.log.SaveCheckpoint(d.ckptBuf.Bytes()); err != nil {
		d.ckptErrors.Inc()
		return false
	}
	d.ckptTime.Observe(time.Since(begin))
	d.checkpoints.Inc()
	d.syncSegmentGauge()
	return true
}

func (d *durability) syncSegmentGauge() {
	cur := d.log.Stats().Segments
	if delta := int64(cur) - d.segments.Value(); delta != 0 {
		d.segments.Add(delta)
	}
}

// syncRetryGauges mirrors the resilient log's retry/reopen counters
// into the registry. Set, not delta-Add: /metrics refreshes these from
// request goroutines too, and concurrent deltas would double-count.
func (d *durability) syncRetryGauges() {
	d.retries.Set(int64(d.log.Retries()))
	d.reopens.Set(int64(d.log.Reopens()))
}

// close takes a final checkpoint (so a restart replays nothing) and
// closes the log. Called after the writer goroutine has exited —
// receiving on the coalescer's done channel orders every writer-side
// log operation before this one.
func (d *durability) close(c *edmstream.Clusterer) error {
	if d.sinceCkpt > 0 {
		d.checkpoint(c)
	}
	return d.log.Close()
}

// ---- Batch record codec ----
//
// WAL record payloads are a hand-rolled little-endian encoding of the
// batch's points — no reflection, no maps, deterministic bytes:
//
//	u8  version (1)
//	u32 point count
//	per point:
//	  u64 id, u64 time bits, u64 label (two's complement), u8 kind
//	  kind 0 (vector): u32 dim, dim × u64 float bits
//	  kind 1 (tokens): u32 count, count × (u32 len, bytes), sorted

const batchRecordVersion = 1

const (
	pointKindVector = 0
	pointKindTokens = 1
)

// encodeBatchRecord serializes a batch for the WAL.
func encodeBatchRecord(pts []edmstream.Point) []byte {
	n := 5
	for i := range pts {
		n += 8 + 8 + 8 + 1 + 4
		if pts[i].Tokens != nil {
			for tok := range pts[i].Tokens {
				n += 4 + len(tok)
			}
		} else {
			n += 8 * len(pts[i].Vector)
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, batchRecordVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pts)))
	for i := range pts {
		p := &pts[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Time))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(p.Label)))
		if p.Tokens != nil {
			buf = append(buf, pointKindTokens)
			toks := p.Tokens.Tokens()
			sort.Strings(toks)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(toks)))
			for _, tok := range toks {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tok)))
				buf = append(buf, tok...)
			}
		} else {
			buf = append(buf, pointKindVector)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vector)))
			for _, v := range p.Vector {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	return buf
}

// decodeBatchRecord parses a WAL record payload back into points. The
// payload already passed the WAL's CRC, so errors here mean a version
// mismatch or an encoder bug, not disk corruption — but the bounds are
// checked anyway: recovery must never panic on any input.
func decodeBatchRecord(payload []byte) ([]edmstream.Point, error) {
	r := recordReader{buf: payload}
	version, err := r.u8()
	if err != nil {
		return nil, err
	}
	if version != batchRecordVersion {
		return nil, fmt.Errorf("batch record version %d, want %d", version, batchRecordVersion)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(count) > len(payload) { // each point takes well over a byte
		return nil, fmt.Errorf("batch record claims %d points in %d bytes", count, len(payload))
	}
	pts := make([]edmstream.Point, count)
	for i := range pts {
		p := &pts[i]
		var id, timeBits, label uint64
		if id, err = r.u64(); err == nil {
			if timeBits, err = r.u64(); err == nil {
				label, err = r.u64()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		p.ID = int64(id)
		p.Time = math.Float64frombits(timeBits)
		p.Label = int(int64(label))
		kind, err := r.u8()
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		n, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		switch kind {
		case pointKindVector:
			if int(n) > len(r.buf)/8+1 {
				return nil, fmt.Errorf("point %d claims %d coordinates in %d bytes", i, n, len(r.buf))
			}
			p.Vector = make([]float64, n)
			for j := range p.Vector {
				bits, err := r.u64()
				if err != nil {
					return nil, fmt.Errorf("point %d coordinate %d: %w", i, j, err)
				}
				p.Vector[j] = math.Float64frombits(bits)
			}
		case pointKindTokens:
			p.Tokens = make(edmstream.TokenSet, n)
			for j := 0; j < int(n); j++ {
				tok, err := r.str()
				if err != nil {
					return nil, fmt.Errorf("point %d token %d: %w", i, j, err)
				}
				p.Tokens.Add(tok)
			}
		default:
			return nil, fmt.Errorf("point %d has unknown kind %d", i, kind)
		}
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("batch record has %d trailing bytes", len(r.buf))
	}
	return pts, nil
}

// recordReader is a bounds-checked cursor over a record payload.
type recordReader struct{ buf []byte }

func (r *recordReader) u8() (byte, error) {
	if len(r.buf) < 1 {
		return 0, fmt.Errorf("truncated record")
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *recordReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("truncated record")
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *recordReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("truncated record")
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *recordReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.buf) {
		return "", fmt.Errorf("truncated record")
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}
