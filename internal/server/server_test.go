package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
)

// testOptions is a small, fast-initializing engine configuration.
func testOptions() edmstream.Options {
	return edmstream.Options{Radius: 1.5, InitPoints: 100, IngestWorkers: 1}
}

// startServer builds a clusterer + server, starts it on an ephemeral
// loopback port and registers a cleanup shutdown. Tests that shut
// down explicitly can still rely on the cleanup being a no-op second
// call.
func startServer(t *testing.T, opts edmstream.Options, cfg Config) (*Server, *edmstream.Clusterer, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	c, err := edmstream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, c, "http://" + s.Addr()
}

// twoBlobPoints builds a deterministic two-cluster stream with
// explicit timestamps.
func twoBlobPoints(n int, seed int64) []map[string]any {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 0}, {10, 10}}
	pts := make([]map[string]any, n)
	for i := range pts {
		c := centers[i%2]
		pts[i] = map[string]any{
			"id":     i,
			"vector": []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5},
			"time":   float64(i) / 1000,
		}
	}
	return pts
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func TestIngestAssignSnapshotRoundTrip(t *testing.T) {
	_, _, base := startServer(t, testOptions(), Config{})
	pts := twoBlobPoints(4000, 1)

	// Ingest in batches; every request gets one ack per point.
	for i := 0; i < len(pts); i += 500 {
		var ack ingestResponse
		resp := postJSON(t, base+"/v1/ingest", pts[i:i+500], &ack)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		if ack.Accepted != 500 || len(ack.Cells) != 500 {
			t.Fatalf("ack = accepted %d, %d cells; want 500/500", ack.Accepted, len(ack.Cells))
		}
		for _, id := range ack.Cells {
			if id < 0 {
				t.Fatalf("negative cell ack %d", id)
			}
		}
	}

	// The published snapshot shows the two blobs.
	var snap snapshotResponse
	if resp := getJSON(t, base+"/v1/snapshot", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if len(snap.Clusters) < 2 {
		t.Fatalf("snapshot has %d clusters, want >= 2", len(snap.Clusters))
	}
	if snap.ActiveCells == 0 || snap.Tau <= 0 {
		t.Errorf("snapshot missing engine state: %+v", snap)
	}

	// Assign classifies the two blob centers into different clusters.
	var assign assignResponse
	req := []map[string]any{
		{"vector": []float64{0, 0}},
		{"vector": []float64{10, 10}},
	}
	if resp := postJSON(t, base+"/v1/assign", req, &assign); resp.StatusCode != http.StatusOK {
		t.Fatalf("assign status %d", resp.StatusCode)
	}
	if len(assign.Clusters) != 2 {
		t.Fatalf("assign returned %d ids, want 2", len(assign.Clusters))
	}
	if assign.Clusters[0] < 0 || assign.Clusters[1] < 0 {
		t.Fatalf("blob centers classified as outliers: %v", assign.Clusters)
	}
	if assign.Clusters[0] == assign.Clusters[1] {
		t.Errorf("both blob centers in cluster %d", assign.Clusters[0])
	}

	// Cluster detail round-trip, and 404 for an unknown ID.
	var detail clusterResponse
	url := fmt.Sprintf("%s/v1/clusters/%d", base, snap.Clusters[0].ID)
	if resp := getJSON(t, url, &detail); resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster detail status %d", resp.StatusCode)
	}
	if detail.ID != snap.Clusters[0].ID || len(detail.Members) != snap.Clusters[0].Cells {
		t.Errorf("cluster detail mismatch: %+v vs summary %+v", detail.wireClusterSummary, snap.Clusters[0])
	}
	if len(detail.Members) == 0 || detail.Members[0].Vector == nil {
		t.Errorf("cluster members missing seeds: %+v", detail.Members)
	}
	if resp := getJSON(t, base+"/v1/clusters/999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cluster status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/v1/clusters/notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-integer cluster id status %d, want 400", resp.StatusCode)
	}

	// Stats: engine counters and coalescer telemetry are populated.
	var stats statsResponse
	if resp := getJSON(t, base+"/v1/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats.Engine.Points != int64(len(pts)) {
		t.Errorf("engine points = %d, want %d", stats.Engine.Points, len(pts))
	}
	if stats.Server.Coalescer.Batches == 0 || stats.Server.Coalescer.Points != uint64(len(pts)) {
		t.Errorf("coalescer stats wrong: %+v", stats.Server.Coalescer)
	}

	// Healthz.
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	// Metrics: every endpoint exposes latency quantiles.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, endpoint := range []string{"ingest", "assign", "snapshot", "cluster", "stats", "healthz"} {
		want := `edmserved_http_request_duration_seconds{endpoint="` + endpoint + `",quantile="0.99"}`
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	for _, series := range []string{
		"edmserved_coalescer_batch_points",
		"edmserved_coalescer_batch_wait_seconds",
		"edmserved_coalescer_batches_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}

func TestIngestNDJSONAndSingleObject(t *testing.T) {
	_, c, base := startServer(t, testOptions(), Config{})

	// NDJSON body.
	var body bytes.Buffer
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&body, `{"vector":[%d,0],"time":%g}`+"\n", i%3, float64(i)/1000)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Accepted != 10 {
		t.Fatalf("NDJSON ingest: status %d, ack %+v", resp.StatusCode, ack)
	}

	// Single bare object.
	resp, err = http.Post(base+"/v1/ingest", "application/json",
		strings.NewReader(`{"vector":[1,1],"time":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Accepted != 1 || len(ack.Cells) != 1 {
		t.Fatalf("single-object ingest: status %d, ack %+v", resp.StatusCode, ack)
	}
	if got := c.Stats().Points; got != 11 {
		t.Errorf("engine points = %d, want 11", got)
	}
}

func TestIngestRejectsMalformedBodies(t *testing.T) {
	_, c, base := startServer(t, testOptions(), Config{})
	cases := []string{
		``,                                // empty
		`not json`,                        // garbage
		`42`,                              // not array/object
		`[{"vector":[1,2]}, {"bogus":1}]`, // unknown field
		`[{}]`,                            // neither vector nor tokens
		`[{"vector":[1],"tokens":["a"]}]`, // both
		`[{"vector":[1,2],"time":-5}]`,    // negative time
		`{"vector":[1,2]} {"oops":true}`,  // NDJSON with bad second object
		`[{"vector":[1,2]}`,               // truncated array
	}
	for i, body := range cases {
		resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d (%q): status %d, want 400", i, body, resp.StatusCode)
		}
	}
	// No malformed request may have committed anything.
	if got := c.Stats().Points; got != 0 {
		t.Errorf("malformed requests committed %d points", got)
	}
}

func TestAssignBeforeSnapshotPublishes(t *testing.T) {
	_, _, base := startServer(t, testOptions(), Config{})
	var assign assignResponse
	resp := postJSON(t, base+"/v1/assign", []map[string]any{{"vector": []float64{0, 0}}}, &assign)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign status %d", resp.StatusCode)
	}
	if len(assign.Clusters) != 1 || assign.Clusters[0] != -1 {
		t.Errorf("assign before any snapshot = %v, want [-1]", assign.Clusters)
	}
}

func TestEventsCursorAndLongPoll(t *testing.T) {
	_, _, base := startServer(t, testOptions(), Config{CoalesceWindow: time.Millisecond})

	// Drive past initialization so events exist.
	pts := twoBlobPoints(3000, 2)
	var ack ingestResponse
	postJSON(t, base+"/v1/ingest", pts, &ack)

	var page eventsResponse
	if resp := getJSON(t, base+"/v1/events?cursor=0", &page); resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if len(page.Events) == 0 || page.Cursor == 0 {
		t.Fatalf("expected events after 3000 points, got %+v", page)
	}
	for _, e := range page.Events {
		if e.Kind == "" {
			t.Errorf("event without kind: %+v", e)
		}
	}

	// Re-polling at the returned cursor is empty and stable.
	var again eventsResponse
	getJSON(t, fmt.Sprintf("%s/v1/events?cursor=%d", base, page.Cursor), &again)
	if len(again.Events) != 0 || again.Cursor != page.Cursor {
		t.Fatalf("cursor not stable: %+v after cursor %d", again, page.Cursor)
	}

	// A cursor far past the end is empty, not an error.
	var past eventsResponse
	if resp := getJSON(t, base+"/v1/events?cursor=999999", &past); resp.StatusCode != http.StatusOK {
		t.Fatalf("past-the-end cursor status %d", resp.StatusCode)
	}
	if len(past.Events) != 0 || past.Cursor != page.Cursor {
		t.Errorf("past-the-end cursor = %+v, want empty at %d", past, page.Cursor)
	}

	// Long-poll: a waiting poll is woken by events from new ingestion
	// (a third blob emerges far from the first two).
	type pollResult struct {
		page eventsResponse
		err  error
	}
	done := make(chan pollResult, 1)
	go func() {
		var p eventsResponse
		resp, err := http.Get(fmt.Sprintf("%s/v1/events?cursor=%d&wait=30s", base, page.Cursor))
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
		}
		done <- pollResult{p, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park

	burst := make([]map[string]any, 600)
	for i := range burst {
		burst[i] = map[string]any{
			"vector": []float64{40 + float64(i%3)*0.1, 40},
			"time":   3.0 + float64(i)/1000,
		}
	}
	postJSON(t, base+"/v1/ingest", burst, &ack)

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("long-poll failed: %v", res.err)
		}
		if len(res.page.Events) == 0 || res.page.Cursor <= page.Cursor {
			t.Errorf("long-poll woke without new events: %+v", res.page)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("long-poll never woke despite new events")
	}

	// An explicit zero-wait poll returns immediately even with no news.
	start := time.Now()
	getJSON(t, fmt.Sprintf("%s/v1/events?cursor=%d", base, page.Cursor+100000), &again)
	if time.Since(start) > 2*time.Second {
		t.Error("no-wait poll blocked")
	}
}

// TestConcurrentIngestCoalesces drives concurrent writers and checks
// that the coalescer actually merges requests into multi-request
// batches (the reason the subsystem exists).
func TestConcurrentIngestCoalesces(t *testing.T) {
	s, c, base := startServer(t, testOptions(), Config{CoalesceWindow: 5 * time.Millisecond})

	const writers = 8
	const perWriter = 20
	const ptsPerReq = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				req := make([]map[string]any, ptsPerReq)
				for j := range req {
					req[j] = map[string]any{
						"vector": []float64{float64(w%4) * 5, float64(i%5) * 5},
						"time":   float64(w*perWriter+i) / 1000,
					}
				}
				raw, _ := json.Marshal(req)
				resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := writers * perWriter * ptsPerReq
	if got := c.Stats().Points; got != int64(total) {
		t.Fatalf("engine points = %d, want %d", got, total)
	}
	reqStats := s.coal.batchReqs.Stats()
	if reqStats.WindowMax < 2 {
		t.Errorf("no multi-request batch formed under %d concurrent writers (max %g)", writers, reqStats.WindowMax)
	}
	if batches := s.coal.batches.Value(); batches >= uint64(writers*perWriter) {
		t.Errorf("coalescer made %d batches for %d requests: nothing coalesced", batches, writers*perWriter)
	}
}
