package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/wal"
)

// overloadConfig is the pressure-cooker configuration the overload
// tests share: a tiny queue, a tight admission deadline and a fast
// recovery probe, so every shedding and degradation path fires within
// test time.
func overloadConfig(dir string, ffs *wal.FaultFS) Config {
	return Config{
		Addr:                  "127.0.0.1:0",
		CoalesceWindow:        time.Millisecond,
		MaxBatch:              64,
		MaxPending:            4,
		IngestDeadline:        40 * time.Millisecond,
		DataDir:               dir,
		WALFS:                 ffs,
		WALRetryAttempts:      2,
		DegradedProbeInterval: 15 * time.Millisecond,
		CheckpointEvery:       100000,
	}
}

// TestDegradedModeEntersAndRecovers walks the degraded-mode state
// machine over the network: a sticky WAL sync fault flips ingest into
// machine-readable 503s while reads and /healthz keep serving, and
// clearing the fault lets the recovery probe flip the server back
// without a restart.
func TestDegradedModeEntersAndRecovers(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	s, _, base := startServer(t, testOptions(), overloadConfig(t.TempDir(), ffs))

	ingest := func() *http.Response {
		raw, _ := json.Marshal([]map[string]any{{"vector": []float64{1, 2}}})
		resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := ingest(); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest status %d, want 200", resp.StatusCode)
	}

	// Kill the disk: the next durable append exhausts its retries and
	// the server degrades instead of wedging.
	ffs.Inject(wal.Fault{Op: "sync", Sticky: true})
	resp := ingest()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest with dead disk: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After header")
	}
	var shed errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatalf("decoding degraded 503 body: %v", err)
	}
	if shed.Reason != reasonDegraded {
		t.Errorf("degraded 503 reason = %q, want %q", shed.Reason, reasonDegraded)
	}
	if shed.RetryAfterSeconds < 1 {
		t.Errorf("degraded 503 retry_after_seconds = %d, want >= 1", shed.RetryAfterSeconds)
	}

	// Subsequent ingests are refused at the door (no WAL traffic).
	if resp := ingest(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while degraded: status %d, want 503", resp.StatusCode)
	}

	// Reads, health and stats keep serving while degraded.
	if resp := getJSON(t, base+"/v1/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("snapshot while degraded: status %d, want 200", resp.StatusCode)
	}
	raw, _ := json.Marshal([]map[string]any{{"vector": []float64{0, 0}}})
	aresp, err := http.Post(base+"/v1/assign", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("assign while degraded: %v", err)
	}
	if aresp.StatusCode != http.StatusOK {
		t.Errorf("assign while degraded: status %d, want 200", aresp.StatusCode)
	}
	aresp.Body.Close()
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hbody := make([]byte, 32)
	n, _ := hresp.Body.Read(hbody)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !bytes.Contains(hbody[:n], []byte("degraded")) {
		t.Errorf("healthz while degraded: status %d body %q, want 200 \"degraded\"", hresp.StatusCode, hbody[:n])
	}
	var stats statsResponse
	getJSON(t, base+"/v1/stats", &stats)
	if !stats.Server.Degraded || stats.Server.DegradedReason == "" {
		t.Errorf("stats while degraded: degraded=%v reason=%q", stats.Server.Degraded, stats.Server.DegradedReason)
	}

	// Heal the disk; the probe must recover the server automatically.
	ffs.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := ingest()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover within 5s (last ingest status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Server.Degraded {
		t.Error("stats still degraded after recovery")
	}
	if stats.Server.Admission.DegradedEntered < 1 || stats.Server.Admission.DegradedRecovered < 1 {
		t.Errorf("degraded transitions not counted: entered=%d recovered=%d",
			stats.Server.Admission.DegradedEntered, stats.Server.Admission.DegradedRecovered)
	}
	if s.deg.isDegraded() {
		t.Error("degraded flag still set after recovery")
	}
}

// TestOverloadAckInvariantExact is the ack-invariant property test:
// writers race load shedding, client cancellation, a disk that turns
// slow, then dead, then healthy, and finally a graceful drain — and
// the engine must end up holding exactly the points of the requests
// that saw an HTTP 200. Requests are driven through the handler
// in-process so every response status is observable even when its
// client context was cancelled (over a real socket the response would
// be lost and the accounting inherently racy).
func TestOverloadAckInvariantExact(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, overloadConfig(t.TempDir(), ffs))
	if err != nil {
		t.Fatal(err)
	}
	s.StartDetached()

	const writers = 8
	const ptsPerReq = 5
	var (
		acceptedPts   atomic.Int64
		shed429       atomic.Int64
		shed503       atomic.Int64
		postRecovery  atomic.Int64
		recoveredSeen atomic.Bool
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := make([]map[string]any, ptsPerReq)
				for j := range body {
					body[j] = map[string]any{"vector": []float64{float64(w), float64(i % 9)}}
				}
				raw, _ := json.Marshal(body)
				ctx := context.Background()
				var cancel context.CancelFunc
				var timer *time.Timer
				if i%3 == 0 {
					// A third of the traffic is impatient: cancel mid-flight
					// at a random moment, racing enqueue and commit.
					ctx, cancel = context.WithCancel(ctx)
					timer = time.AfterFunc(time.Duration(rng.Intn(4))*time.Millisecond, cancel)
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(raw)).WithContext(ctx)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if cancel != nil {
					timer.Stop()
					cancel()
				}
				switch rec.Code {
				case http.StatusOK:
					var ack ingestResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
						t.Errorf("200 with undecodable ack: %v", err)
						return
					}
					acceptedPts.Add(int64(ack.Accepted))
					if recoveredSeen.Load() {
						postRecovery.Add(1)
					}
				case http.StatusTooManyRequests:
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 missing Retry-After header")
						return
					}
					shed429.Add(1)
				case http.StatusServiceUnavailable:
					shed503.Add(1)
				default:
					t.Errorf("unexpected ingest status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	// Phase 1: healthy traffic.
	time.Sleep(60 * time.Millisecond)
	// Phase 2: the disk turns slow — each flush stalls past the 40ms
	// admission deadline, the queue fills, and enqueues shed with 429.
	ffs.Inject(wal.Fault{Op: "sync", Sticky: true, Delay: 60 * time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for shed429.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request was shed with 429 under a slow disk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	// Phase 3: the disk dies — the retry budget drains and the server
	// must flip to degraded.
	ffs.Inject(wal.Fault{Op: "sync", Sticky: true})
	deadline = time.Now().Add(5 * time.Second)
	for !s.deg.isDegraded() {
		if time.Now().After(deadline) {
			t.Fatal("server did not enter degraded mode under a dead disk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(40 * time.Millisecond) // collect degraded 503s
	// Phase 4: the disk heals — the probe must recover the server.
	ffs.Clear()
	deadline = time.Now().Add(5 * time.Second)
	for s.deg.isDegraded() {
		if time.Now().After(deadline) {
			t.Fatal("server did not recover after the fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recoveredSeen.Store(true)
	// Keep traffic flowing until the recovered server actually
	// acknowledges something (the flush-latency window still remembers
	// the slow disk, so the estimator sheds until the queue drains).
	deadline = time.Now().Add(5 * time.Second)
	for postRecovery.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request was acknowledged after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 5: graceful drain racing the writers.
	ctx, cancelShutdown := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelShutdown()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	got := int64(c.Stats().Points)
	want := acceptedPts.Load()
	if got != want {
		t.Fatalf("engine holds %d points but %d were acknowledged: the ack invariant broke under overload+faults", got, want)
	}
	if want == 0 {
		t.Fatal("test proved nothing: no request was acknowledged")
	}
	if shed429.Load() == 0 {
		t.Fatal("test proved nothing: no request saw a 429 overload shed")
	}
	if shed503.Load() == 0 {
		t.Fatal("test proved nothing: no request saw a 503")
	}
	t.Logf("acked %d points exactly (%d x 429, %d x 503, %d acks post-recovery, %d client cancels)",
		want, shed429.Load(), shed503.Load(), postRecovery.Load(), s.coal.clientCancels.Value())
}

// TestReadGuardSheds: with every read slot taken, a data-plane read is
// shed with 429 + Retry-After while the operator endpoints keep
// answering; freeing a slot restores service.
func TestReadGuardSheds(t *testing.T) {
	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Config{MaxReadConcurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.adm.readSem <- struct{}{}
	s.adm.readSem <- struct{}{}

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	rec := get("/v1/snapshot")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("snapshot with saturated read slots: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("read-guard 429 missing Retry-After")
	}
	var shed errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &shed); err != nil || shed.Reason != reasonOverloaded {
		t.Errorf("read-guard 429 reason = %q (err %v), want %q", shed.Reason, err, reasonOverloaded)
	}
	// Operator endpoints bypass the guard.
	if rec := get("/v1/stats"); rec.Code != http.StatusOK {
		t.Errorf("stats behind saturated read slots: status %d, want 200", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz behind saturated read slots: status %d, want 200", rec.Code)
	}
	<-s.adm.readSem
	if rec := get("/v1/snapshot"); rec.Code != http.StatusOK {
		t.Errorf("snapshot after freeing a slot: status %d, want 200", rec.Code)
	}
}

// TestClientCancelCounter: a client that gives up while its request
// is parked on a full queue gets a 503 and is counted in the
// edmserved_coalescer_client_cancels_total counter (the PR 6 metrics
// gap: this path used to return without incrementing anything).
func TestClientCancelCounter(t *testing.T) {
	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The coalescer is deliberately NOT started: the queue (capacity 1)
	// fills and stays full, so the second request parks in the enqueue
	// select until its context dies.
	s, err := New(c, Config{MaxPending: 1, IngestDeadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	send := func(ctx context.Context, done chan<- int) {
		raw, _ := json.Marshal([]map[string]any{{"vector": []float64{1, 1}}})
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(raw)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		done <- rec.Code
	}
	first := make(chan int, 1)
	go send(context.Background(), first) // fills the queue, waits for a reply

	// Wait until the queue is occupied so the next request must park.
	deadline := time.Now().Add(2 * time.Second)
	for s.coal.pending.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan int, 1)
	go send(ctx, second)
	time.Sleep(20 * time.Millisecond) // let it park on the full queue
	cancel()
	if code := <-second; code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled enqueue status %d, want 503", code)
	}
	if got := s.coal.clientCancels.Value(); got != 1 {
		t.Fatalf("client_cancels counter = %d, want 1", got)
	}

	// Drain: starting the coalescer services the first request, and the
	// counter must appear in /v1/stats.
	s.StartDetached()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request status %d, want 200", code)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Server.Coalescer.ClientCancels != 1 {
		t.Fatalf("stats client_cancels = %d, want 1", stats.Server.Coalescer.ClientCancels)
	}
	ctxSd, cancelSd := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelSd()
	if err := s.Shutdown(ctxSd); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestHTTPTimeoutsWired: New must arm every http.Server timeout, with
// the write timeout leaving room for the long-poll hold.
func TestHTTPTimeoutsWired(t *testing.T) {
	c, err := edmstream.New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, Config{LongPollTimeout: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.http.ReadTimeout != defaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", s.http.ReadTimeout, defaultReadTimeout)
	}
	if s.http.IdleTimeout != defaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", s.http.IdleTimeout, defaultIdleTimeout)
	}
	if s.http.ReadHeaderTimeout == 0 {
		t.Error("ReadHeaderTimeout unset")
	}
	if want := 7*time.Second + defaultWriteTimeoutSlack; s.http.WriteTimeout != want {
		t.Errorf("WriteTimeout = %v, want %v (LongPollTimeout + slack)", s.http.WriteTimeout, want)
	}
	if s.http.WriteTimeout <= 7*time.Second {
		t.Error("WriteTimeout does not clear the long-poll hold")
	}
}
