package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
	"github.com/densitymountain/edmstream/internal/obs"
)

// recoverFresh builds a fresh clusterer and recovers it from the WAL
// directory exactly the way a restarted server would.
func recoverFresh(t *testing.T, opts edmstream.Options, dir string) *edmstream.Clusterer {
	t.Helper()
	c, err := edmstream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := openDurability(c, Config{DataDir: dir}.withDefaults(), dir, "", obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("recovering from %s: %v", dir, err)
	}
	if err := d.log.Close(); err != nil {
		t.Fatalf("closing recovered log: %v", err)
	}
	return c
}

// checkpointBytes serializes an engine's complete state; two engines
// with equal bytes are indistinguishable.
func checkpointBytes(t *testing.T, c *edmstream.Clusterer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

// TestGracefulShutdownDurableAckOnDisk is the durable-mode variant of
// TestGracefulShutdownDropsNoAcceptedIngest: writers hammer ingest
// while the server shuts down, and afterwards every acknowledged point
// must be recoverable FROM DISK by a fresh process — the ack contract
// upgrades from "applied" to "durable". The recovered engine must not
// merely hold the right count: its serialized state must be
// byte-identical to the live engine's.
func TestGracefulShutdownDurableAckOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, c, base := startServer(t, testOptions(), Config{
		CoalesceWindow:  2 * time.Millisecond,
		DataDir:         dir,
		CheckpointEvery: 500,
	})

	const writers = 4
	const ptsPerReq = 25
	var acceptedPts atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := make([]map[string]any, ptsPerReq)
				for j := range req {
					req[j] = map[string]any{
						"vector": []float64{float64(w) * 3, float64(i%7) * 3},
						"time":   float64(i) / 1000,
					}
				}
				raw, _ := json.Marshal(req)
				resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(raw))
				if err != nil {
					return
				}
				var ack ingestResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decodeErr != nil {
						t.Errorf("200 with undecodable ack: %v", decodeErr)
						return
					}
					acceptedPts.Add(int64(ack.Accepted))
				case http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected ingest status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	want := acceptedPts.Load()
	if want == 0 {
		t.Fatal("test proved nothing: no request was acknowledged before shutdown")
	}
	if got := c.Stats().Points; got != want {
		t.Fatalf("live engine holds %d points but %d were acknowledged", got, want)
	}

	recovered := recoverFresh(t, testOptions(), dir)
	if got := recovered.Stats().Points; got != want {
		t.Fatalf("recovered engine holds %d points but %d were acknowledged: an acknowledged ingest did not survive on disk", got, want)
	}
	if !bytes.Equal(checkpointBytes(t, recovered), checkpointBytes(t, c)) {
		t.Fatal("recovered engine state differs from the live engine over the same acknowledged stream")
	}
}

// TestServerCrashRecoveryEquivalence models the crash (not the
// graceful exit): after a burst of acknowledged ingest the WAL
// directory is copied as-is — no final checkpoint, exactly what a
// SIGKILL would leave, since every acknowledged batch was fsynced —
// and a fresh engine recovered from the copy must be byte-identical
// to the live one.
func TestServerCrashRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, c, base := startServer(t, testOptions(), Config{
		DataDir:         dir,
		CheckpointEvery: 150, // several checkpoints plus a live tail
	})

	pts := twoBlobPoints(600, 1)
	for i := 0; i < len(pts); i += 50 {
		var ack ingestResponse
		resp := postJSON(t, base+"/v1/ingest", pts[i:i+50], &ack)
		if resp.StatusCode != http.StatusOK || ack.Accepted != 50 {
			t.Fatalf("ingest chunk %d: status %d, accepted %d", i/50, resp.StatusCode, ack.Accepted)
		}
	}

	// Freeze the crash image while the server is still running (no
	// writes are in flight: every request above was acknowledged, and
	// acknowledged means fsynced).
	crashDir := t.TempDir() + "/image"
	if err := os.CopyFS(crashDir, os.DirFS(dir)); err != nil {
		t.Fatalf("copying WAL dir: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	recovered := recoverFresh(t, testOptions(), crashDir)
	if got, want := recovered.Stats(), c.Stats(); got != want {
		t.Fatalf("recovered stats differ:\n  recovered %+v\n  live      %+v", got, want)
	}
	if !bytes.Equal(checkpointBytes(t, recovered), checkpointBytes(t, c)) {
		t.Fatal("crash-recovered engine state differs from the live engine")
	}

	// The graceful path through the original dir recovers identically.
	regraceful := recoverFresh(t, testOptions(), dir)
	if !bytes.Equal(checkpointBytes(t, regraceful), checkpointBytes(t, c)) {
		t.Fatal("shutdown-recovered engine state differs from the live engine")
	}
}

// TestStatsReportsDurability: /v1/stats carries the WAL section when
// (and only when) the server runs with a data dir.
func TestStatsReportsDurability(t *testing.T) {
	_, _, base := startServer(t, testOptions(), Config{DataDir: t.TempDir()})
	var ack ingestResponse
	postJSON(t, base+"/v1/ingest", twoBlobPoints(50, 2), &ack)
	if ack.Accepted != 50 {
		t.Fatalf("setup ingest: %+v", ack)
	}
	var stats statsResponse
	getJSON(t, base+"/v1/stats", &stats)
	d := stats.Server.Durability
	if d == nil {
		t.Fatal("durable server reports no durability stats")
	}
	if d.Records == 0 || d.Bytes == 0 || d.Segments == 0 {
		t.Fatalf("durability stats look idle after 50 acknowledged points: %+v", d)
	}
	if d.Recovery.HasCheckpoint || d.Recovery.RecordsReplayed != 0 {
		t.Fatalf("fresh dir should recover nothing: %+v", d.Recovery)
	}

	_, _, base2 := startServer(t, testOptions(), Config{})
	var stats2 statsResponse
	getJSON(t, base2+"/v1/stats", &stats2)
	if stats2.Server.Durability != nil {
		t.Fatal("in-memory server reports durability stats")
	}
}

// TestServerRecoveryAcrossRestart boots a second server on the same
// data dir and keeps ingesting: the recovered instance serves reads
// immediately and its recovery info reaches /v1/stats.
func TestServerRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, c1, base1 := startServer(t, testOptions(), Config{DataDir: dir, CheckpointEvery: 100})
	var ack ingestResponse
	postJSON(t, base1+"/v1/ingest", twoBlobPoints(400, 3), &ack)
	if ack.Accepted != 400 {
		t.Fatalf("first-life ingest: %+v", ack)
	}
	snap1 := c1.LastSnapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, c2, base2 := startServer(t, testOptions(), Config{DataDir: dir, CheckpointEvery: 100})
	if got := c2.Stats().Points; got != 400 {
		t.Fatalf("restarted server recovered %d points, want 400", got)
	}
	if !s2.RecoveryInfo().HasCheckpoint {
		t.Fatalf("restart found no checkpoint after a graceful shutdown: %+v", s2.RecoveryInfo())
	}
	// The published snapshot (the read path) survived the restart.
	snap2 := c2.LastSnapshot()
	if snap2.Time != snap1.Time || len(snap2.Clusters) != len(snap1.Clusters) {
		t.Fatalf("recovered snapshot differs: time %v vs %v, %d vs %d clusters",
			snap2.Time, snap1.Time, len(snap2.Clusters), len(snap1.Clusters))
	}
	// And the second life keeps ingesting on the same stream.
	postJSON(t, base2+"/v1/ingest", twoBlobPoints(100, 4), &ack)
	if ack.Accepted != 100 {
		t.Fatalf("second-life ingest: %+v", ack)
	}
	if got := c2.Stats().Points; got != 500 {
		t.Fatalf("engine holds %d points after the second life, want 500", got)
	}
}

// TestDurabilityConfigValidation covers the new Config fields.
func TestDurabilityConfigValidation(t *testing.T) {
	bad := []Config{
		{WALSegmentBytes: -1},
		{CheckpointEvery: -5},
		{WALNoSync: true}, // no DataDir to skip syncing
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated but should not", i, cfg)
		}
	}
	good := Config{DataDir: t.TempDir(), WALNoSync: true, WALSegmentBytes: 1 << 20, CheckpointEvery: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid durable config rejected: %v", err)
	}
	if got := (Config{}).withDefaults().CheckpointEvery; got != defaultCheckpointEvery {
		t.Errorf("CheckpointEvery default = %d, want %d", got, defaultCheckpointEvery)
	}
}

// TestBatchRecordCodec round-trips vector, token and labeled points
// through the WAL record encoding, and rejects truncations at every
// length — a decoder panic during recovery would turn a benign torn
// record into a crash loop.
func TestBatchRecordCodec(t *testing.T) {
	pts := []edmstream.Point{
		{ID: 1, Vector: []float64{1.5, -2.25, 0}, Label: 3, Time: 0.75},
		{ID: -9, Vector: []float64{0.125}, Label: edmstream.NoLabel, Time: 123.5},
		{ID: 42, Tokens: edmstream.NewTokenSet("gamma", "alpha", "beta"), Label: 0, Time: 2},
		{ID: 0, Tokens: edmstream.NewTokenSet(""), Label: -7, Time: 0},
	}
	raw := encodeBatchRecord(pts)
	got, err := decodeBatchRecord(raw)
	if err != nil {
		t.Fatalf("decodeBatchRecord: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		p, q := pts[i], got[i]
		if p.ID != q.ID || p.Label != q.Label || p.Time != q.Time {
			t.Fatalf("point %d scalars differ: %+v vs %+v", i, p, q)
		}
		if len(p.Vector) != len(q.Vector) {
			t.Fatalf("point %d vector length differs", i)
		}
		for j := range p.Vector {
			if p.Vector[j] != q.Vector[j] {
				t.Fatalf("point %d coordinate %d differs", i, j)
			}
		}
		if (p.Tokens == nil) != (q.Tokens == nil) || p.Tokens.Len() != q.Tokens.Len() {
			t.Fatalf("point %d tokens differ", i)
		}
		for _, tok := range p.Tokens.Tokens() {
			if !q.Tokens.Contains(tok) {
				t.Fatalf("point %d lost token %q", i, tok)
			}
		}
	}
	// Deterministic bytes: re-encoding the decoded batch is identical
	// (token sets are maps; the codec must sort).
	if !bytes.Equal(encodeBatchRecord(got), raw) {
		t.Fatal("batch record encoding is not deterministic")
	}
	// Every truncation errors cleanly.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeBatchRecord(raw[:cut]); err == nil {
			t.Fatalf("decodeBatchRecord accepted a record truncated to %d bytes", cut)
		}
	}
	if _, err := decodeBatchRecord(append(raw[:len(raw):len(raw)], 0)); err == nil {
		t.Fatal("decodeBatchRecord accepted trailing garbage")
	}
}
