package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
)

// TestDeterminismThroughNetworkPath: a single writer streaming an
// ordered batch sequence over HTTP must land the engine in exactly
// the state direct InsertBatch calls produce — byte-identical final
// snapshot, identical event log, identical per-point cell acks. This
// pins the whole network path (JSON wire decode, coalescer, commit):
// none of it may reorder, drop, re-stamp or otherwise perturb a
// deterministic stream.
func TestDeterminismThroughNetworkPath(t *testing.T) {
	const (
		n     = 6000
		batch = 250
	)
	opts := edmstream.Options{Radius: 1.2, InitPoints: 200, IngestWorkers: 1}

	// One deterministic drifting stream with explicit ids and times.
	rng := rand.New(rand.NewSource(99))
	type rawPoint struct {
		id   int64
		vec  [2]float64
		time float64
	}
	raws := make([]rawPoint, n)
	for i := range raws {
		cx, cy := 0.0, 0.0
		switch {
		case i%3 == 1:
			cx, cy = 8, 2
		case i%3 == 2:
			// A blob that drifts over the stream, driving adjust/split
			// style churn through the DP-Tree.
			cx, cy = 4+6*float64(i)/n, 9
		}
		raws[i] = rawPoint{
			id:   int64(i),
			vec:  [2]float64{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4},
			time: float64(i) / 1000,
		}
	}

	// Path A: direct library ingestion.
	direct, err := edmstream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var directAcks [][]int64
	for i := 0; i < n; i += batch {
		pts := make([]edmstream.Point, batch)
		for j, r := range raws[i : i+batch] {
			pts[j] = edmstream.Point{ID: r.id, Vector: []float64{r.vec[0], r.vec[1]}, Time: r.time, Label: edmstream.NoLabel}
		}
		acks, err := direct.InsertBatchAssigned(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		directAcks = append(directAcks, append([]int64(nil), acks...))
	}

	// Path B: the same batches, in order, through the HTTP server (a
	// nonzero coalescing window must be irrelevant for a single
	// sequential writer: each request is its own batch).
	served, _, base := startServer(t, opts, Config{CoalesceWindow: time.Millisecond})
	var httpAcks [][]int64
	for i := 0; i < n; i += batch {
		req := make([]map[string]any, batch)
		for j, r := range raws[i : i+batch] {
			req[j] = map[string]any{"id": r.id, "vector": []float64{r.vec[0], r.vec[1]}, "time": r.time}
		}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var ack ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ack.Accepted != batch {
			t.Fatalf("batch %d: status %d, ack %+v", i/batch, resp.StatusCode, ack)
		}
		httpAcks = append(httpAcks, ack.Cells)
	}

	// Per-request acks are identical along the whole stream.
	for b := range directAcks {
		if len(directAcks[b]) != len(httpAcks[b]) {
			t.Fatalf("batch %d: ack lengths differ (%d vs %d)", b, len(directAcks[b]), len(httpAcks[b]))
		}
		for j := range directAcks[b] {
			if directAcks[b][j] != httpAcks[b][j] {
				t.Fatalf("batch %d point %d: cell ack %d (http) vs %d (direct)", b, j, httpAcks[b][j], directAcks[b][j])
			}
		}
	}

	// Stop the server so the write path is quiescent, then compare the
	// final states byte for byte.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := served.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	servedC := served.c

	directSnap, err := json.Marshal(direct.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	servedSnap, err := json.Marshal(servedC.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directSnap, servedSnap) {
		t.Errorf("final snapshots differ:\nhttp:   %.400s\ndirect: %.400s", servedSnap, directSnap)
	}

	directEvents, err := json.Marshal(direct.Events())
	if err != nil {
		t.Fatal(err)
	}
	servedEvents, err := json.Marshal(servedC.Events())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directEvents, servedEvents) {
		t.Errorf("event logs differ:\nhttp:   %.400s\ndirect: %.400s", servedEvents, directEvents)
	}

	if a, b := direct.Stats(), servedC.Stats(); a != b {
		t.Errorf("stats differ:\nhttp:   %+v\ndirect: %+v", b, a)
	}
}
