package server

import (
	"strings"
	"testing"
	"time"

	"github.com/densitymountain/edmstream"
)

// newTestEngine is the factory the tenancy validation rows wire in;
// validation only checks nil-ness, so the engine itself never builds.
func newTestEngine() (*edmstream.Clusterer, error) {
	return edmstream.New(testOptions())
}

// TestConfigValidate is the options table test: every nonsense value
// is rejected with an error naming the field, and the documented
// defaults fill in for zero values.
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{}, // zero value: all defaults
		DefaultConfig(),
		{Addr: "127.0.0.1:0"},
		{Addr: ":8080"},
		{CoalesceWindow: 5 * time.Millisecond},
		{MaxBatch: 1},
		{MaxPending: 1},
		{LongPollTimeout: time.Second},
		{MaxBodyBytes: 1 << 10},
		{ReadTimeout: time.Second},
		{WriteTimeout: 45 * time.Second}, // clears the default long-poll hold
		{LongPollTimeout: time.Second, WriteTimeout: 2 * time.Second},
		{IdleTimeout: time.Minute},
		{IngestDeadline: time.Millisecond},
		{MaxReadConcurrency: 1},
		{DegradedProbeInterval: 10 * time.Millisecond},
		{WALRetryAttempts: 1},
		{MaxStreams: 2},
		{WriterPool: 2},
		{MemoryBudget: MinMemoryBudget, DataDir: "x"},
		{EvictIdleAfter: time.Minute, DataDir: "x"},
		{SweepInterval: 100 * time.Millisecond},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}

	bad := []struct {
		cfg  Config
		want string // substring the error must carry (the field name)
	}{
		{Config{CoalesceWindow: -time.Millisecond}, "CoalesceWindow"},
		{Config{CoalesceWindow: 2 * time.Minute}, "CoalesceWindow"},
		{Config{MaxBatch: -1}, "MaxBatch"},
		{Config{MaxPending: -5}, "MaxPending"},
		{Config{LongPollTimeout: -time.Second}, "LongPollTimeout"},
		{Config{MaxBodyBytes: -1}, "MaxBodyBytes"},
		{Config{Addr: "no-port"}, "Addr"},
		{Config{Addr: "1.2.3.4"}, "Addr"},
		{Config{ReadTimeout: -time.Second}, "ReadTimeout"},
		{Config{WriteTimeout: -time.Second}, "WriteTimeout"},
		// A write timeout inside the long-poll hold would kill every
		// /v1/events long-poll mid-wait.
		{Config{WriteTimeout: time.Second}, "WriteTimeout"},
		{Config{LongPollTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}, "WriteTimeout"},
		{Config{IdleTimeout: -time.Second}, "IdleTimeout"},
		{Config{IngestDeadline: -time.Millisecond}, "IngestDeadline"},
		{Config{MaxReadConcurrency: -1}, "MaxReadConcurrency"},
		{Config{DegradedProbeInterval: -time.Second}, "DegradedProbeInterval"},
		{Config{WALRetryAttempts: -1}, "WALRetryAttempts"},
		{Config{MaxStreams: -1}, "MaxStreams"},
		// A one-stream cap with a factory wired could never build the
		// named streams the factory exists for.
		{Config{MaxStreams: 1, NewEngine: newTestEngine}, "MaxStreams"},
		{Config{WriterPool: -1}, "WriterPool"},
		{Config{MemoryBudget: -1}, "MemoryBudget"},
		// A budget below one engine's floor evicts every stream on
		// every sweep; reject it up front.
		{Config{MemoryBudget: MinMemoryBudget - 1, DataDir: "x"}, "MemoryBudget"},
		// Eviction checkpoints to disk; without a DataDir it would lose
		// acknowledged data.
		{Config{MemoryBudget: MinMemoryBudget}, "MemoryBudget"},
		{Config{EvictIdleAfter: -time.Second}, "EvictIdleAfter"},
		{Config{EvictIdleAfter: time.Minute}, "EvictIdleAfter"},
		{Config{SweepInterval: -time.Second}, "SweepInterval"},
	}
	for i, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("bad config %d accepted: %+v", i, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("bad config %d: error %q does not name %s", i, err, tc.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	d := Config{}.withDefaults()
	if d.Addr != defaultAddr || d.MaxBatch != defaultMaxBatch ||
		d.MaxPending != defaultMaxPending || d.LongPollTimeout != defaultLongPollTimeout ||
		d.MaxBodyBytes != defaultMaxBodyBytes {
		t.Errorf("zero config defaults wrong: %+v", d)
	}
	// The zero window is a real setting (flush immediately), not an
	// unset marker; the production default comes from DefaultConfig.
	if d.CoalesceWindow != 0 {
		t.Errorf("zero CoalesceWindow must stay zero, got %v", d.CoalesceWindow)
	}
	if DefaultConfig().CoalesceWindow != defaultCoalesceWindow {
		t.Errorf("DefaultConfig window = %v, want %v", DefaultConfig().CoalesceWindow, defaultCoalesceWindow)
	}
	if d.ReadTimeout != defaultReadTimeout || d.IdleTimeout != defaultIdleTimeout ||
		d.IngestDeadline != defaultIngestDeadline || d.MaxReadConcurrency != defaultMaxReadConcurrency ||
		d.DegradedProbeInterval != defaultDegradedProbeInterval || d.WALRetryAttempts != defaultWALRetryAttempts {
		t.Errorf("resilience defaults wrong: %+v", d)
	}
	if want := d.LongPollTimeout + defaultWriteTimeoutSlack; d.WriteTimeout != want {
		t.Errorf("WriteTimeout default = %v, want LongPollTimeout + slack = %v", d.WriteTimeout, want)
	}
	if d.MaxStreams != defaultMaxStreams || d.WriterPool < 1 ||
		d.SweepInterval != defaultSweepInterval {
		t.Errorf("tenancy defaults wrong: MaxStreams=%d WriterPool=%d SweepInterval=%v",
			d.MaxStreams, d.WriterPool, d.SweepInterval)
	}
	// Zero budget / zero idle-eviction are real settings (disabled),
	// not unset markers.
	if d.MemoryBudget != 0 || d.EvictIdleAfter != 0 {
		t.Errorf("MemoryBudget/EvictIdleAfter must default to disabled, got %d/%v",
			d.MemoryBudget, d.EvictIdleAfter)
	}
}
