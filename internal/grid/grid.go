// Package grid provides the decayed density-grid substrate used by the
// grid-based stream clustering baselines (D-Stream and MR-Stream): the
// data space is partitioned into axis-aligned cells of a fixed side
// length, each non-empty cell maintains an exponentially decayed
// density, and neighbouring cells above a density threshold are grouped
// into clusters by the offline step.
package grid

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/densitymountain/edmstream/internal/stream"
)

// Key is the string encoding of a cell's integer coordinates. Only
// non-empty cells are materialized, so memory is proportional to the
// number of occupied cells, not to the full cross product.
type Key string

// Coords converts integer cell coordinates to a Key.
func Coords(coords []int) Key {
	var b strings.Builder
	for i, c := range coords {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return Key(b.String())
}

// ParseKey converts a Key back to integer coordinates.
func ParseKey(k Key) ([]int, error) {
	parts := strings.Split(string(k), ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("grid: bad key %q: %w", k, err)
		}
		out[i] = v
	}
	return out, nil
}

// Cell is one occupied grid cell with a decayed density.
type Cell struct {
	// Coords are the cell's integer coordinates.
	Coords []int
	// Density is the decayed density as of LastUpdate.
	Density float64
	// LastUpdate is the time Density refers to.
	LastUpdate float64
	// Created is the time the cell first received a point.
	Created float64
}

// DensityAt returns the decayed density at time now.
func (c *Cell) DensityAt(now float64, d stream.Decay) float64 {
	return c.Density * d.Freshness(now, c.LastUpdate)
}

// Grid is a sparse decayed density grid.
type Grid struct {
	size  float64
	decay stream.Decay
	cells map[Key]*Cell
}

// New creates a grid with the given cell side length.
func New(size float64, decay stream.Decay) (*Grid, error) {
	if size <= 0 {
		return nil, fmt.Errorf("grid: cell size must be positive, got %v", size)
	}
	return &Grid{size: size, decay: decay, cells: make(map[Key]*Cell)}, nil
}

// Size returns the cell side length.
func (g *Grid) Size() float64 { return g.size }

// NumCells returns the number of occupied cells.
func (g *Grid) NumCells() int { return len(g.cells) }

// CellOf returns the integer coordinates of the cell containing the
// vector.
func (g *Grid) CellOf(vec []float64) []int {
	coords := make([]int, len(vec))
	for i, v := range vec {
		coords[i] = int(math.Floor(v / g.size))
	}
	return coords
}

// Insert adds a point arriving at time now, creating its cell on
// demand, and returns the cell.
func (g *Grid) Insert(p stream.Point, now float64) *Cell {
	coords := g.CellOf(p.Vector)
	key := Coords(coords)
	c, ok := g.cells[key]
	if !ok {
		c = &Cell{Coords: coords, Created: now, LastUpdate: now}
		g.cells[key] = c
	}
	c.Density = c.DensityAt(now, g.decay) + 1
	c.LastUpdate = now
	return c
}

// Cells returns the occupied cells (shared references; callers must not
// retain them across Prune calls).
func (g *Grid) Cells() map[Key]*Cell { return g.cells }

// Prune removes cells whose decayed density at time now is below
// minDensity and returns how many were removed. This is the sporadic
// grid removal of D-Stream / MR-Stream.
func (g *Grid) Prune(now, minDensity float64) int {
	removed := 0
	for k, c := range g.cells {
		if c.DensityAt(now, g.decay) < minDensity {
			delete(g.cells, k)
			removed++
		}
	}
	return removed
}

// Center returns the center position of a cell.
func (g *Grid) Center(c *Cell) []float64 {
	out := make([]float64, len(c.Coords))
	for i, coord := range c.Coords {
		out[i] = (float64(coord) + 0.5) * g.size
	}
	return out
}

// Neighbors reports whether two cells are neighbours (their coordinates
// differ by at most 1 in every dimension and they are not the same
// cell).
func Neighbors(a, b *Cell) bool {
	if len(a.Coords) != len(b.Coords) {
		return false
	}
	same := true
	for i := range a.Coords {
		d := a.Coords[i] - b.Coords[i]
		if d < -1 || d > 1 {
			return false
		}
		if d != 0 {
			same = false
		}
	}
	return !same
}

// ConnectedComponents groups the given cells into clusters of mutually
// neighbouring cells and returns, for each input cell, the component
// index it belongs to.
func ConnectedComponents(cells []*Cell) []int {
	n := len(cells)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		comp[i] = next
		queue := []int{i}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for j := 0; j < n; j++ {
				if comp[j] == -1 && Neighbors(cells[cur], cells[j]) {
					comp[j] = next
					queue = append(queue, j)
				}
			}
		}
		next++
	}
	return comp
}

// TotalDensity sums the decayed densities of all occupied cells at time
// now.
func (g *Grid) TotalDensity(now float64) float64 {
	var sum float64
	for _, c := range g.cells {
		sum += c.DensityAt(now, g.decay)
	}
	return sum
}
