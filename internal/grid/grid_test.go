package grid

import (
	"math"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

func testDecay() stream.Decay { return stream.Decay{A: 0.998, Lambda: 1000} }

func TestKeyRoundTrip(t *testing.T) {
	coords := []int{3, -7, 0, 12}
	key := Coords(coords)
	got, err := ParseKey(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coords {
		if got[i] != coords[i] {
			t.Fatalf("round trip mismatch: %v -> %v", coords, got)
		}
	}
	if _, err := ParseKey(Key("1,x,3")); err == nil {
		t.Error("bad key should be rejected")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, testDecay()); err == nil {
		t.Error("zero cell size should be rejected")
	}
	if _, err := New(-1, testDecay()); err == nil {
		t.Error("negative cell size should be rejected")
	}
}

func TestInsertAndCellOf(t *testing.T) {
	g, err := New(1.0, testDecay())
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1.0 {
		t.Errorf("Size = %v", g.Size())
	}
	// Points in the same unit square share a cell; negative coordinates
	// floor correctly.
	g.Insert(stream.Point{Vector: []float64{0.2, 0.7}, Time: 0}, 0)
	g.Insert(stream.Point{Vector: []float64{0.9, 0.1}, Time: 0}, 0)
	g.Insert(stream.Point{Vector: []float64{-0.5, 0.5}, Time: 0}, 0)
	if g.NumCells() != 2 {
		t.Fatalf("NumCells = %d, want 2", g.NumCells())
	}
	coords := g.CellOf([]float64{-0.5, 0.5})
	if coords[0] != -1 || coords[1] != 0 {
		t.Errorf("CellOf(-0.5, 0.5) = %v, want [-1 0]", coords)
	}
	cell := g.Cells()[Coords([]int{0, 0})]
	if cell == nil {
		t.Fatal("cell (0,0) missing")
	}
	if math.Abs(cell.DensityAt(0, testDecay())-2) > 1e-9 {
		t.Errorf("cell density = %v, want 2", cell.Density)
	}
	center := g.Center(cell)
	if center[0] != 0.5 || center[1] != 0.5 {
		t.Errorf("cell center = %v, want (0.5, 0.5)", center)
	}
}

func TestDensityDecayAndPrune(t *testing.T) {
	d := testDecay()
	g, _ := New(1.0, d)
	g.Insert(stream.Point{Vector: []float64{0.5, 0.5}, Time: 0}, 0)
	g.Insert(stream.Point{Vector: []float64{5.5, 5.5}, Time: 0}, 0)
	// Keep refreshing only the first cell.
	for i := 1; i <= 100; i++ {
		g.Insert(stream.Point{Vector: []float64{0.5, 0.5}, Time: float64(i) / 100}, float64(i)/100)
	}
	now := 3.0
	if total := g.TotalDensity(now); total <= 0 {
		t.Fatalf("TotalDensity = %v", total)
	}
	removed := g.Prune(now, 0.5)
	if removed != 1 {
		t.Errorf("Prune removed %d cells, want 1 (the stale one)", removed)
	}
	if g.NumCells() != 1 {
		t.Errorf("NumCells after prune = %d, want 1", g.NumCells())
	}
}

func TestNeighborsAndConnectedComponents(t *testing.T) {
	mk := func(coords ...int) *Cell { return &Cell{Coords: coords} }
	a := mk(0, 0)
	b := mk(1, 1)
	c := mk(3, 3)
	d := mk(4, 3)
	if !Neighbors(a, b) {
		t.Error("diagonal cells should be neighbours")
	}
	if Neighbors(a, c) {
		t.Error("distant cells should not be neighbours")
	}
	if Neighbors(a, a) {
		t.Error("a cell is not its own neighbour")
	}
	if Neighbors(a, mk(0, 0, 0)) {
		t.Error("cells of different dimensionality are not neighbours")
	}
	comps := ConnectedComponents([]*Cell{a, b, c, d})
	if comps[0] != comps[1] {
		t.Error("a and b should share a component")
	}
	if comps[2] != comps[3] {
		t.Error("c and d should share a component")
	}
	if comps[0] == comps[2] {
		t.Error("the two pairs should be different components")
	}
	if got := ConnectedComponents(nil); len(got) != 0 {
		t.Errorf("empty input should give empty output, got %v", got)
	}
}
