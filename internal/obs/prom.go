package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// series, Samples as summaries with window quantiles and cumulative
// _count/_sum. Series of one metric family are emitted consecutively
// under a single # TYPE header, families in lexical order, series
// within a family in label order — the output is deterministic for a
// fixed set of registered metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	samples := make([]*Sample, 0, len(r.samples))
	for _, s := range r.samples {
		samples = append(samples, s)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		if counters[i].name != counters[j].name {
			return counters[i].name < counters[j].name
		}
		return counters[i].labels < counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].name != gauges[j].name {
			return gauges[i].name < gauges[j].name
		}
		return gauges[i].labels < gauges[j].labels
	})
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].name != samples[j].name {
			return samples[i].name < samples[j].name
		}
		return samples[i].labels < samples[j].labels
	})

	var b strings.Builder
	prevName := ""
	for _, c := range counters {
		if c.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s counter\n", c.name)
			prevName = c.name
		}
		fmt.Fprintf(&b, "%s %d\n", series(c.name, c.labels, ""), c.Value())
	}
	prevName = ""
	for _, g := range gauges {
		if g.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
			prevName = g.name
		}
		fmt.Fprintf(&b, "%s %d\n", series(g.name, g.labels, ""), g.Value())
	}
	prevName = ""
	buf := make([]float64, 0, slotCount*slotSamples)
	for _, s := range samples {
		if s.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s summary\n", s.name)
			prevName = s.name
		}
		st := s.statsInto(buf[:0])
		fmt.Fprintf(&b, "%s %g\n", series(s.name, s.labels, `quantile="0.5"`), st.P50)
		fmt.Fprintf(&b, "%s %g\n", series(s.name, s.labels, `quantile="0.9"`), st.P90)
		fmt.Fprintf(&b, "%s %g\n", series(s.name, s.labels, `quantile="0.99"`), st.P99)
		fmt.Fprintf(&b, "%s %g\n", series(s.name+"_sum", s.labels, ""), st.Sum)
		fmt.Fprintf(&b, "%s %d\n", series(s.name+"_count", s.labels, ""), st.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// series renders one sample line's name{labels} prefix, merging the
// metric's own labels with an extra label (the quantile).
func series(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}
