// Package obs provides the operational telemetry primitives behind
// the serving daemon's GET /metrics endpoint: lock-free counters,
// gauges and sliding-window latency/size distributions with quantile
// summaries, exported in Prometheus text exposition format.
//
// It is deliberately distinct from internal/metrics, which implements
// the paper-evaluation quality metrics (CMM, purity); obs measures the
// server, not the clustering.
//
// The distribution tracker follows the slot-rotation design of
// lock-free aggregative metrics libraries (see the hasansino/metrics
// reference in /root/related): observations land in one of a fixed
// ring of time slots through atomic operations only, stale slots are
// reclaimed in place by the first writer of a new period, and a read
// merges the live slots. Quantiles are computed exactly over the
// retained samples of the window (each slot keeps a bounded sample
// ring), so a freshly started server reports exact percentiles rather
// than estimator warm-up noise; under load the per-slot rings cap
// memory while still reflecting the most recent traffic. Writers
// never take a lock and never allocate.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; Registry.Counter hands out named instances.
type Counter struct {
	name, labels string
	v            atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, pool
// sizes). The zero value is ready to use.
type Gauge struct {
	name, labels string
	v            atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Window geometry: the sliding window is slotCount slots of
// slotNanos each (60 s total with the defaults), and each slot
// retains up to slotSamples observations for exact quantile reads.
// With more than slotSamples observations per slot the ring keeps the
// most recent ones — the window then reflects the freshest traffic,
// which is what an operational latency quantile is for.
const (
	slotCount   = 6
	slotNanos   = int64(10 * time.Second)
	slotSamples = 512
)

// sampleSlot is one time slot of a Sample's sliding window. All
// fields are accessed atomically; epoch identifies the wall-clock
// period the slot currently holds, and the first writer of a new
// period reclaims the slot in place (observations racing that
// rotation may land in a slot that is being reset and be dropped —
// an accepted telemetry-grade tradeoff, never a data race).
type sampleSlot struct {
	epoch atomic.Int64
	count atomic.Uint64
	sum   atomicFloat
	max   atomicFloat
	ring  [slotSamples]atomic.Uint64
}

// Sample tracks a sliding-window distribution of float64 observations
// (latencies in seconds, batch sizes, ...). Observe is lock-free and
// allocation-free; Stats merges the live slots. Create instances
// through Registry.Sample or Registry.Timing.
type Sample struct {
	name, labels string

	// totalCount and totalSum are cumulative (never reset), matching
	// the Prometheus summary convention where _count/_sum are
	// counters while quantiles describe the recent window.
	totalCount atomic.Uint64
	totalSum   atomicFloat

	slots [slotCount]sampleSlot

	// now returns the current wall clock in nanoseconds; tests inject
	// a fake to drive rotation deterministically.
	now func() int64
}

// Observe records one value.
func (s *Sample) Observe(v float64) {
	epoch := s.now() / slotNanos
	slot := &s.slots[int(epoch%slotCount)]
	for {
		e := slot.epoch.Load()
		if e == epoch {
			break
		}
		if e > epoch {
			// The slot already belongs to a newer period (clock skew
			// between goroutines); dropping the observation is safer
			// than polluting the newer slot.
			return
		}
		if slot.epoch.CompareAndSwap(e, epoch) {
			// Winner of the rotation reclaims the slot in place.
			slot.count.Store(0)
			slot.sum.store(0)
			slot.max.store(0)
			break
		}
	}
	n := slot.count.Add(1)
	slot.ring[(n-1)%slotSamples].Store(math.Float64bits(v))
	slot.sum.add(v)
	slot.max.storeMax(v)
	s.totalCount.Add(1)
	s.totalSum.add(v)
}

// Stats is a point-in-time summary of a Sample.
type Stats struct {
	// Count and Sum are cumulative over the Sample's lifetime.
	Count uint64
	Sum   float64
	// WindowCount, WindowMax and the quantiles describe the sliding
	// window (the last ~60 s of observations).
	WindowCount   uint64
	WindowMax     float64
	P50, P90, P99 float64
}

// Stats merges the live slots of the window into a summary. The
// quantiles are exact over the window's retained samples
// (nearest-rank); with zero observations in the window they are 0.
func (s *Sample) Stats() Stats {
	buf := make([]float64, 0, slotCount*slotSamples)
	return s.statsInto(buf)
}

// statsInto is Stats with a caller-provided scratch buffer (the
// Prometheus writer reuses one across metrics).
func (s *Sample) statsInto(buf []float64) Stats {
	st := Stats{Count: s.totalCount.Load(), Sum: s.totalSum.load()}
	nowEpoch := s.now() / slotNanos
	oldest := nowEpoch - slotCount + 1
	for i := range s.slots {
		slot := &s.slots[i]
		e := slot.epoch.Load()
		if e < oldest || e > nowEpoch {
			continue
		}
		n := slot.count.Load()
		if n == 0 {
			continue
		}
		st.WindowCount += n
		if m := slot.max.load(); m > st.WindowMax {
			st.WindowMax = m
		}
		retained := n
		if retained > slotSamples {
			retained = slotSamples
		}
		for j := uint64(0); j < retained; j++ {
			buf = append(buf, math.Float64frombits(slot.ring[j].Load()))
		}
	}
	if len(buf) == 0 {
		return st
	}
	insertionSort(buf)
	st.P50 = quantile(buf, 0.50)
	st.P90 = quantile(buf, 0.90)
	st.P99 = quantile(buf, 0.99)
	return st
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// insertionSort sorts in place. The slices are at most a few thousand
// elements and often nearly sorted run-to-run; avoiding sort.Float64s
// keeps the read path free of interface allocations.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Timing is a Sample observing durations, stored as float seconds
// (the Prometheus base unit for time).
type Timing struct {
	*Sample
}

// Observe records one duration.
func (t Timing) Observe(d time.Duration) { t.Sample.Observe(d.Seconds()) }

// atomicFloat is a float64 with atomic load/store/add/max built on
// its IEEE-754 bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry owns a set of named metrics and renders them in Prometheus
// text exposition format. Metric registration takes a lock;
// observation paths never do. Metric identity is (name, labels) —
// asking again for a registered pair returns the same instance.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	samples  map[string]*Sample

	// now is the clock injected into new Samples; tests replace it.
	now func() int64
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		samples:  map[string]*Sample{},
		now:      func() int64 { return time.Now().UnixNano() },
	}
}

// metricKey builds the identity key of a (name, labels) pair.
func metricKey(name, labels string) string { return name + "{" + labels + "}" }

// Counter returns the counter registered under (name, labels),
// creating it on first use. labels is the raw Prometheus label list
// without braces, e.g. `endpoint="ingest"`; empty for none.
func (r *Registry) Counter(name, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{name: name, labels: labels}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered under (name, labels), creating
// it on first use.
func (r *Registry) Gauge(name, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{name: name, labels: labels}
		r.gauges[k] = g
	}
	return g
}

// Sample returns the distribution tracker registered under (name,
// labels), creating it on first use.
func (r *Registry) Sample(name, labels string) *Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey(name, labels)
	s, ok := r.samples[k]
	if !ok {
		s = &Sample{name: name, labels: labels, now: r.now}
		r.samples[k] = s
	}
	return s
}

// Timing returns a duration-valued Sample registered under (name,
// labels). Durations are exported as float seconds.
func (r *Registry) Timing(name, labels string) Timing {
	return Timing{r.Sample(name, labels)}
}
