package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives Sample rotation deterministically.
type fakeClock struct {
	mu  sync.Mutex
	nan int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nan
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.nan += int64(d)
	c.mu.Unlock()
}

func newTestRegistry() (*Registry, *fakeClock) {
	r := NewRegistry()
	clk := &fakeClock{nan: slotNanos * 100} // away from epoch 0
	r.now = clk.now
	return r, clk
}

func TestCounterAndGauge(t *testing.T) {
	r, _ := newTestRegistry()
	c := r.Counter("requests_total", `endpoint="ingest"`)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("requests_total", `endpoint="ingest"`); again != c {
		t.Error("same (name, labels) should return the same counter")
	}
	if other := r.Counter("requests_total", `endpoint="assign"`); other == c {
		t.Error("different labels should return a different counter")
	}
	g := r.Gauge("pending", "")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestSampleExactQuantilesSmall(t *testing.T) {
	r, _ := newTestRegistry()
	s := r.Sample("batch_size", "")
	for v := 1; v <= 100; v++ {
		s.Observe(float64(v))
	}
	st := s.Stats()
	if st.Count != 100 || st.WindowCount != 100 {
		t.Fatalf("count = %d/%d, want 100/100", st.Count, st.WindowCount)
	}
	if st.Sum != 5050 {
		t.Errorf("sum = %g, want 5050", st.Sum)
	}
	if st.WindowMax != 100 {
		t.Errorf("max = %g, want 100", st.WindowMax)
	}
	// Nearest-rank over 1..100: exact.
	if st.P50 != 50 || st.P90 != 90 || st.P99 != 99 {
		t.Errorf("quantiles = %g/%g/%g, want 50/90/99", st.P50, st.P90, st.P99)
	}
}

func TestSampleWindowSlides(t *testing.T) {
	r, clk := newTestRegistry()
	s := r.Sample("latency", "")
	s.Observe(1000) // old outlier
	st := s.Stats()
	if st.P99 != 1000 {
		t.Fatalf("fresh observation not visible: %+v", st)
	}
	// Advance past the whole window: the outlier must age out of the
	// quantiles but stay in the cumulative count/sum.
	clk.advance(time.Duration(slotNanos * (slotCount + 1)))
	for i := 0; i < 50; i++ {
		s.Observe(1)
	}
	st = s.Stats()
	if st.P99 != 1 || st.WindowMax != 1 {
		t.Errorf("aged-out outlier still in window: %+v", st)
	}
	if st.Count != 51 || st.Sum != 1050 {
		t.Errorf("cumulative count/sum wrong: %+v", st)
	}
	if st.WindowCount != 50 {
		t.Errorf("window count = %d, want 50", st.WindowCount)
	}
}

func TestSampleRingKeepsRecent(t *testing.T) {
	r, _ := newTestRegistry()
	s := r.Sample("latency", "")
	// Overflow one slot's ring: early small values must be displaced
	// by the most recent ones.
	for i := 0; i < slotSamples; i++ {
		s.Observe(1)
	}
	for i := 0; i < slotSamples; i++ {
		s.Observe(2)
	}
	st := s.Stats()
	if st.P50 != 2 {
		t.Errorf("ring did not keep the most recent samples: p50 = %g", st.P50)
	}
	if st.WindowCount != 2*slotSamples {
		t.Errorf("window count = %d, want %d", st.WindowCount, 2*slotSamples)
	}
}

func TestTimingSeconds(t *testing.T) {
	r, _ := newTestRegistry()
	tm := r.Timing("request_seconds", "")
	tm.Observe(250 * time.Millisecond)
	if st := tm.Stats(); math.Abs(st.P50-0.25) > 1e-12 {
		t.Errorf("duration not stored as seconds: %+v", st)
	}
}

func TestEmptySampleStats(t *testing.T) {
	r, _ := newTestRegistry()
	s := r.Sample("empty", "")
	st := s.Stats()
	if st.Count != 0 || st.P50 != 0 || st.P99 != 0 || st.WindowMax != 0 {
		t.Errorf("empty sample should report zeros: %+v", st)
	}
}

func TestWritePrometheus(t *testing.T) {
	r, _ := newTestRegistry()
	r.Counter("edmserved_http_requests_total", `endpoint="ingest"`).Add(3)
	r.Counter("edmserved_http_requests_total", `endpoint="assign"`).Add(2)
	r.Gauge("edmserved_coalescer_pending", "").Set(1)
	s := r.Timing("edmserved_http_request_duration_seconds", `endpoint="ingest"`)
	s.Observe(10 * time.Millisecond)
	s.Observe(20 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE edmserved_http_requests_total counter\n",
		`edmserved_http_requests_total{endpoint="assign"} 2` + "\n",
		`edmserved_http_requests_total{endpoint="ingest"} 3` + "\n",
		"# TYPE edmserved_coalescer_pending gauge\n",
		"edmserved_coalescer_pending 1\n",
		"# TYPE edmserved_http_request_duration_seconds summary\n",
		`edmserved_http_request_duration_seconds{endpoint="ingest",quantile="0.5"} 0.01` + "\n",
		`edmserved_http_request_duration_seconds{endpoint="ingest",quantile="0.99"} 0.02` + "\n",
		`edmserved_http_request_duration_seconds_count{endpoint="ingest"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// The assign-labeled series sorts before ingest within the family,
	// and the family's TYPE header appears exactly once.
	if strings.Count(out, "# TYPE edmserved_http_requests_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	// Deterministic output for a fixed registry.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}
}

// TestConcurrentObserve exercises the lock-free paths under the race
// detector: concurrent writers on a shared Sample and Counter with a
// concurrent reader rendering the registry.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry() // real clock: exercises rotation under race
	s := r.Sample("lat", "")
	c := r.Counter("n", "")
	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				s.Observe(float64(i%100) / 1000)
				c.Inc()
			}
		}()
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WritePrometheus(&b)
				_ = s.Stats()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if c.Value() != 4*5000 {
		t.Errorf("counter lost increments: %d", c.Value())
	}
	if st := s.Stats(); st.Count != 4*5000 {
		t.Errorf("sample lost observations: %d", st.Count)
	}
}
