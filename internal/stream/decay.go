package stream

import (
	"fmt"
	"math"
)

// Decay is the exponential time-decay model of Sec. 3.1, Eq. (3):
//
//	f_i(t) = a^{λ·(t − t_i)}
//
// with 0 < a < 1 and λ > 0 (the paper uses a = 0.998, λ = 1 so that
// a^λ = 0.998 and freshness lies in (0, 1]).
type Decay struct {
	// A is the decay base a in Eq. (3). Must be in (0, 1).
	A float64
	// Lambda is the decay exponent λ in Eq. (3). Must be > 0.
	Lambda float64
}

// DefaultDecay is the paper's decay setting (a = 0.998, λ = 1).
func DefaultDecay() Decay { return Decay{A: 0.998, Lambda: 1} }

// Validate checks that the decay parameters are in their legal ranges.
func (d Decay) Validate() error {
	if !(d.A > 0 && d.A < 1) {
		return fmt.Errorf("stream: decay base a = %v out of range (0,1)", d.A)
	}
	if !(d.Lambda > 0) || math.IsInf(d.Lambda, 0) || math.IsNaN(d.Lambda) {
		return fmt.Errorf("stream: decay exponent λ = %v must be positive and finite", d.Lambda)
	}
	return nil
}

// Rate returns a^λ, the per-second decay factor.
func (d Decay) Rate() float64 { return math.Pow(d.A, d.Lambda) }

// Freshness returns the freshness a^{λ(now−then)} of an event that
// happened at time then, observed at time now (Eq. 3). For now < then
// (out-of-order observation) the freshness is clamped to 1 so that
// stale observers never inflate densities.
func (d Decay) Freshness(now, then float64) float64 {
	if now <= then {
		return 1
	}
	return math.Pow(d.A, d.Lambda*(now-then))
}

// Scale decays a density value recorded at time then forward to time
// now, i.e. returns ρ·a^{λ(now−then)} (the first term of Eq. 8).
func (d Decay) Scale(rho, now, then float64) float64 {
	return rho * d.Freshness(now, then)
}

// WindowSum returns the paper's approximation of the steady-state sum
// of freshness over an unbounded stream arriving at fixed rate v
// points/second:
//
//	Σ_{i=1..∞} a^{λ(t_n − t_i)} ≈ v / (1 − a^λ)
//
// (Sec. 4.3). The approximation treats all points arriving within one
// second as equally fresh; SteadyStateWeight is the exact discrete sum.
func (d Decay) WindowSum(v float64) float64 {
	return v / (1 - d.Rate())
}

// SteadyStateWeight returns the exact steady-state total freshness of
// an unbounded stream arriving at fixed rate v points/second, i.e. the
// geometric sum Σ_{k=0..∞} a^{λ·k/v} = 1/(1 − a^{λ/v}). For the
// paper's nominal parameters (a = 0.998, λ = 1, v = 1000) it agrees
// with the v/(1−a^λ) approximation to within 0.1%; unlike the
// approximation it stays correct when λ is of the same order as v
// (the per-point decay equivalent this repository defaults to), which
// keeps the active threshold a rate-independent fraction of the total
// stream weight (the Fig. 14 experiment relies on that).
func (d Decay) SteadyStateWeight(v float64) float64 {
	perPoint := math.Pow(d.A, d.Lambda/v)
	if perPoint >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - perPoint)
}

// ActiveThreshold returns the density above which a cluster-cell is
// considered active (Sec. 4.3): the fraction β of the steady-state
// total stream weight. For the paper's nominal parameters it equals
// β·v/(1−a^λ).
func (d Decay) ActiveThreshold(beta, v float64) float64 {
	return beta * d.SteadyStateWeight(v)
}

// BetaRange returns the legal range (lo, hi) for β at stream rate v:
// the threshold must exceed the density of a single fresh point (so a
// brand-new cell is inactive) and β must stay below 1 (Sec. 4.3).
func (d Decay) BetaRange(v float64) (lo, hi float64) {
	return 1 / d.SteadyStateWeight(v), 1
}

// DeleteDelay returns ΔTdel, the minimum time (in seconds) an inactive
// cluster-cell must go without absorbing any point before it can be
// deleted safely (Theorem 3, Eq. 10). The bound is the time it takes
// the active-threshold density β·v/(1−a^λ) to decay below 1 (the
// density of a brand-new cell):
//
//	ΔTdel > log_a(1 / ActiveThreshold(β, v)) / λ
//
// which for the paper's nominal parameters equals Eq. 10 up to its
// approximation of the steady-state weight. The paper's Eq. 10 also
// divides by an extra factor v because its proof (Eq. 12–14) measures
// elapsed time in point arrivals; with this package's clock in seconds
// that factor drops out, and the stated property (the threshold density
// decays below 1 within ΔTdel) holds exactly, which is what the
// reservoir-size bound of Fig. 16 builds on.
func (d Decay) DeleteDelay(beta, v float64) float64 {
	threshold := d.ActiveThreshold(beta, v)
	if threshold <= 1 {
		return 0
	}
	return math.Log(threshold) / (d.Lambda * math.Log(1/d.A))
}

// ReservoirBound returns the theoretical upper bound ΔTdel·v + 1/β on
// the number of inactive cluster-cells held in the outlier reservoir
// (end of Sec. 4.4), used by the Fig. 16 experiment.
func (d Decay) ReservoirBound(beta, v float64) float64 {
	return d.DeleteDelay(beta, v)*v + 1/beta
}
