package stream

import (
	"math"
	"sort"
)

// MacroCluster is the common macro-level cluster representation every
// algorithm in this repository can report: a cluster identifier plus
// the set of representative centers that make up the cluster (cell
// seeds for EDMStream, micro-cluster centers for DenStream/DBSTREAM,
// grid centers for D-Stream/MR-Stream).
type MacroCluster struct {
	// ID identifies the cluster. EDMStream keeps IDs stable across
	// updates so evolution can be tracked; baselines may renumber.
	ID int
	// Centers are the representative positions belonging to the
	// cluster. Never empty.
	Centers [][]float64
	// Weight is the total (decayed) weight of the cluster.
	Weight float64
}

// Clusterer is the minimal interface the evaluation harness drives.
// All five stream clustering algorithms (EDMStream, DenStream,
// D-Stream, DBSTREAM, MR-Stream) implement it.
type Clusterer interface {
	// Name returns the algorithm name used in reports.
	Name() string
	// Insert consumes the next stream point. An error indicates the
	// point was rejected (e.g. malformed); the clusterer's state is
	// unchanged in that case.
	Insert(p Point) error
	// Clusters returns the current macro-clusters at time now.
	Clusters(now float64) []MacroCluster
}

// AssignToClusters maps each point to the macro-cluster with the
// nearest center, returning a parallel slice of cluster IDs. Points
// farther than maxDist from every center (when maxDist > 0) are
// labeled as noise (-1). It is the shared offline assignment step used
// to score every algorithm on an equal footing.
func AssignToClusters(points []Point, clusters []MacroCluster, maxDist float64) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = assignOne(p, clusters, maxDist)
	}
	return out
}

func assignOne(p Point, clusters []MacroCluster, maxDist float64) int {
	best := -1
	bestDist := math.Inf(1)
	for _, c := range clusters {
		for _, center := range c.Centers {
			if len(center) != len(p.Vector) {
				continue
			}
			d := sqDist(p.Vector, center)
			if d < bestDist {
				bestDist = d
				best = c.ID
			}
		}
	}
	if best == -1 {
		return -1
	}
	if maxDist > 0 && math.Sqrt(bestDist) > maxDist {
		return -1
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SortClusters orders clusters by ID so reports are deterministic.
func SortClusters(cs []MacroCluster) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
}

// TotalWeight sums the weights of all clusters.
func TotalWeight(cs []MacroCluster) float64 {
	var w float64
	for _, c := range cs {
		w += c.Weight
	}
	return w
}
