package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes points to w in the layout produced by cmd/datagen:
// one row per point, columns [time, label, x1..xd]. Text points are
// not supported by the CSV layout and are rejected.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	for _, p := range points {
		if p.IsText() {
			return fmt.Errorf("stream: point %d is a text point; CSV layout supports numeric points only", p.ID)
		}
		row := make([]string, 0, 2+len(p.Vector))
		row = append(row, strconv.FormatFloat(p.Time, 'g', -1, 64))
		row = append(row, strconv.Itoa(p.Label))
		for _, v := range p.Vector {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("stream: writing CSV row for point %d: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses points from r in the layout written by WriteCSV.
// Point IDs are assigned sequentially in row order.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var points []Point
	rowNum := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: reading CSV row %d: %w", rowNum, err)
		}
		if len(row) < 3 {
			return nil, fmt.Errorf("stream: CSV row %d has %d columns, need at least 3 (time, label, x1)", rowNum, len(row))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("stream: CSV row %d: bad time %q: %w", rowNum, row[0], err)
		}
		label, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("stream: CSV row %d: bad label %q: %w", rowNum, row[1], err)
		}
		vec := make([]float64, len(row)-2)
		for i, s := range row[2:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: CSV row %d: bad coordinate %d %q: %w", rowNum, i, s, err)
			}
			vec[i] = v
		}
		p := Point{ID: int64(rowNum), Time: t, Label: label, Vector: vec}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		points = append(points, p)
		rowNum++
	}
	return points, nil
}
