package stream

import (
	"errors"
	"fmt"
)

// Source produces the points of a data stream in arrival order.
// Implementations are not required to be safe for concurrent use.
type Source interface {
	// Next returns the next point and true, or a zero Point and false
	// when the stream is exhausted.
	Next() (Point, bool)
}

// Sized is implemented by sources that know how many points they will
// emit in total.
type Sized interface {
	// Len returns the total number of points the source will emit.
	Len() int
}

// SliceSource replays a fixed slice of points. It implements Source
// and Sized.
type SliceSource struct {
	points []Point
	next   int
}

// NewSliceSource returns a Source that yields the given points in
// order. The slice is not copied; callers must not mutate it while the
// source is in use.
func NewSliceSource(points []Point) *SliceSource {
	return &SliceSource{points: points}
}

// Next implements Source.
func (s *SliceSource) Next() (Point, bool) {
	if s.next >= len(s.points) {
		return Point{}, false
	}
	p := s.points[s.next]
	s.next++
	return p, true
}

// Len implements Sized.
func (s *SliceSource) Len() int { return len(s.points) }

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.next = 0 }

// RateStamper wraps a Source and overwrites each point's ID and Time so
// that points arrive at a fixed rate of v points per second starting at
// startTime (the paper fixes v = 1000 pt/s unless stated otherwise,
// Sec. 6.1). Point i (0-based) is stamped with t = startTime + i/v.
type RateStamper struct {
	src   Source
	rate  float64
	start float64
	count int64
}

// NewRateStamper wraps src with fixed-rate timestamps. rate must be
// positive.
func NewRateStamper(src Source, rate, startTime float64) (*RateStamper, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("stream: rate %v must be positive", rate)
	}
	if src == nil {
		return nil, errors.New("stream: nil source")
	}
	return &RateStamper{src: src, rate: rate, start: startTime}, nil
}

// Rate returns the configured arrival rate in points per second.
func (r *RateStamper) Rate() float64 { return r.rate }

// Next implements Source.
func (r *RateStamper) Next() (Point, bool) {
	p, ok := r.src.Next()
	if !ok {
		return Point{}, false
	}
	p.ID = r.count
	p.Time = r.start + float64(r.count)/r.rate
	r.count++
	return p, true
}

// Len implements Sized when the underlying source does.
func (r *RateStamper) Len() int {
	if s, ok := r.src.(Sized); ok {
		return s.Len()
	}
	return 0
}

// Collect drains up to max points from the source (all points if max
// <= 0) and returns them as a slice.
func Collect(src Source, max int) []Point {
	var out []Point
	if s, ok := src.(Sized); ok && s.Len() > 0 {
		n := s.Len()
		if max > 0 && max < n {
			n = max
		}
		out = make([]Point, 0, n)
	}
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		p, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// Window is a sliding horizon of the most recent points, used by the
// evaluation harness to compute cluster quality (CMM) over the recent
// past, as is standard for stream clustering evaluation.
type Window struct {
	capacity int
	points   []Point
}

// NewWindow returns a window holding at most capacity points.
// capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{capacity: capacity}
}

// Add appends a point, evicting the oldest if the window is full.
func (w *Window) Add(p Point) {
	if len(w.points) == w.capacity {
		copy(w.points, w.points[1:])
		w.points[len(w.points)-1] = p
		return
	}
	w.points = append(w.points, p)
}

// Points returns the points currently in the window, oldest first. The
// returned slice is owned by the window and must not be modified.
func (w *Window) Points() []Point { return w.points }

// Len returns the number of points currently held.
func (w *Window) Len() int { return len(w.points) }

// Capacity returns the maximum number of points the window holds.
func (w *Window) Capacity() int { return w.capacity }
