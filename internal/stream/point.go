// Package stream provides the data-stream abstractions shared by every
// clustering algorithm in this repository: timestamped points, the
// exponential decay model of Sec. 3.1, stream sources with
// rate-controlled timestamping, and the common Clusterer interface the
// evaluation harness drives.
package stream

import (
	"errors"
	"fmt"
	"math"

	"github.com/densitymountain/edmstream/internal/distance"
)

// NoLabel marks a point without ground-truth class information.
const NoLabel = -1

// Point is a single element of a data stream (Sec. 3.1): a
// d-dimensional attribute vector together with its arrival timestamp.
// For text streams (the news use case of Sec. 6.2.2) the vector is
// empty and Tokens carries the term set instead.
type Point struct {
	// ID is a unique, monotonically increasing identifier assigned by
	// the stream source.
	ID int64
	// Vector is the d-dimensional attribute vector. Nil for text points.
	Vector []float64
	// Tokens is the term set of a text point. Nil for numeric points.
	Tokens distance.TokenSet
	// Label is the ground-truth class used only for evaluation
	// (CMM, purity). NoLabel if unknown.
	Label int
	// Time is the arrival timestamp in seconds (logical stream time).
	Time float64
}

// IsText reports whether the point carries a token set instead of a
// numeric vector.
func (p Point) IsText() bool { return p.Tokens != nil }

// Dim returns the dimensionality of the point's vector (0 for text
// points).
func (p Point) Dim() int { return len(p.Vector) }

// Validate checks that the point is well formed: it must carry either
// a finite numeric vector or a non-nil token set, and a finite,
// non-negative timestamp.
func (p Point) Validate() error {
	if p.Vector == nil && p.Tokens == nil {
		return errors.New("stream: point has neither vector nor tokens")
	}
	if p.Vector != nil && p.Tokens != nil {
		return errors.New("stream: point has both vector and tokens")
	}
	for i, v := range p.Vector {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: point %d has non-finite coordinate %d (%v)", p.ID, i, v)
		}
	}
	if math.IsNaN(p.Time) || math.IsInf(p.Time, 0) || p.Time < 0 {
		return fmt.Errorf("stream: point %d has invalid timestamp %v", p.ID, p.Time)
	}
	return nil
}

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	q := p
	if p.Vector != nil {
		q.Vector = append([]float64(nil), p.Vector...)
	}
	if p.Tokens != nil {
		q.Tokens = p.Tokens.Clone()
	}
	return q
}

// Distance returns the distance between two points: Euclidean for
// numeric points and Jaccard for text points. Mixing a numeric and a
// text point returns +Inf, which keeps them maximally separated
// without panicking on malformed streams.
func (p Point) Distance(q Point) float64 {
	switch {
	case p.IsText() && q.IsText():
		return distance.Jaccard(p.Tokens, q.Tokens)
	case !p.IsText() && !q.IsText():
		return distance.Euclid(p.Vector, q.Vector)
	default:
		return math.Inf(1)
	}
}
