package stream

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/distance"
)

func TestPointValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Point
		wantErr bool
	}{
		{"valid numeric", Point{Vector: []float64{1, 2}, Time: 0}, false},
		{"valid text", Point{Tokens: distance.NewTokenSet("a"), Time: 1}, false},
		{"neither", Point{Time: 0}, true},
		{"both", Point{Vector: []float64{1}, Tokens: distance.NewTokenSet("a")}, true},
		{"nan coord", Point{Vector: []float64{math.NaN()}}, true},
		{"inf coord", Point{Vector: []float64{math.Inf(1)}}, true},
		{"negative time", Point{Vector: []float64{1}, Time: -1}, true},
		{"nan time", Point{Vector: []float64{1}, Time: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{ID: 7, Vector: []float64{1, 2, 3}, Label: 2, Time: 1.5}
	q := p.Clone()
	q.Vector[0] = 99
	if p.Vector[0] == 99 {
		t.Error("Clone shares the vector backing array")
	}
	tp := Point{Tokens: distance.NewTokenSet("a", "b")}
	tq := tp.Clone()
	tq.Tokens.Add("c")
	if tp.Tokens.Contains("c") {
		t.Error("Clone shares the token set")
	}
}

func TestPointDistance(t *testing.T) {
	a := Point{Vector: []float64{0, 0}}
	b := Point{Vector: []float64{3, 4}}
	if got := a.Distance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("numeric Distance = %v, want 5", got)
	}
	ta := Point{Tokens: distance.NewTokenSet("x", "y")}
	tb := Point{Tokens: distance.NewTokenSet("y", "z")}
	if got := ta.Distance(tb); math.Abs(got-(1-1.0/3.0)) > 1e-12 {
		t.Errorf("text Distance = %v, want 2/3", got)
	}
	if got := a.Distance(ta); !math.IsInf(got, 1) {
		t.Errorf("mixed Distance = %v, want +Inf", got)
	}
}

func TestDecayValidate(t *testing.T) {
	if err := DefaultDecay().Validate(); err != nil {
		t.Fatalf("default decay invalid: %v", err)
	}
	bad := []Decay{{A: 0, Lambda: 1}, {A: 1, Lambda: 1}, {A: 1.5, Lambda: 1}, {A: 0.5, Lambda: 0}, {A: 0.5, Lambda: -1}, {A: 0.5, Lambda: math.NaN()}}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", d)
		}
	}
}

func TestDecayFreshness(t *testing.T) {
	d := DefaultDecay()
	if got := d.Freshness(10, 10); got != 1 {
		t.Errorf("Freshness(now=then) = %v, want 1", got)
	}
	if got := d.Freshness(5, 10); got != 1 {
		t.Errorf("Freshness(now<then) = %v, want 1 (clamped)", got)
	}
	// One second of decay at a=0.998, λ=1 should give 0.998.
	if got := d.Freshness(11, 10); math.Abs(got-0.998) > 1e-12 {
		t.Errorf("Freshness after 1s = %v, want 0.998", got)
	}
	// Freshness decreases monotonically with age.
	prev := 1.0
	for age := 1.0; age <= 100; age++ {
		f := d.Freshness(age, 0)
		if f >= prev {
			t.Fatalf("freshness not strictly decreasing at age %v: %v >= %v", age, f, prev)
		}
		prev = f
	}
}

func TestDecayWindowSumAndThreshold(t *testing.T) {
	d := DefaultDecay()
	v := 1000.0
	// v/(1-a^λ) = 1000/0.002 = 500000.
	if got := d.WindowSum(v); math.Abs(got-500000) > 1e-6 {
		t.Errorf("WindowSum = %v, want 500000", got)
	}
	// The exact steady-state weight agrees with the paper's
	// approximation to within 0.1% for the nominal parameters.
	if got := d.SteadyStateWeight(v); math.Abs(got-500000)/500000 > 1e-3 {
		t.Errorf("SteadyStateWeight = %v, want ~500000", got)
	}
	beta := 0.0021
	want := beta * d.SteadyStateWeight(v)
	if got := d.ActiveThreshold(beta, v); math.Abs(got-want) > 1e-9 {
		t.Errorf("ActiveThreshold = %v, want %v", got, want)
	}
	if math.Abs(want-1050)/1050 > 1e-3 {
		t.Errorf("nominal active threshold = %v, want ~1050 (the paper's value)", want)
	}
	lo, hi := d.BetaRange(v)
	if !(lo < beta && beta < hi) {
		t.Errorf("paper's beta=0.0021 not in legal range (%v, %v)", lo, hi)
	}
	// The threshold is (nearly) independent of the rate when expressed
	// as a fraction of the steady-state weight under per-point decay.
	fast := Decay{A: 0.998, Lambda: 1000}
	t1 := fast.ActiveThreshold(beta, 1000)
	fast10 := Decay{A: 0.998, Lambda: 10000}
	t10 := fast10.ActiveThreshold(beta, 10000)
	if math.Abs(t1-t10)/t1 > 1e-6 {
		t.Errorf("per-point-equivalent thresholds differ across rates: %v vs %v", t1, t10)
	}
}

func TestDecayDeleteDelayAndReservoirBound(t *testing.T) {
	d := DefaultDecay()
	v, beta := 1000.0, 0.0021
	dt := d.DeleteDelay(beta, v)
	if dt <= 0 || math.IsInf(dt, 0) || math.IsNaN(dt) {
		t.Fatalf("DeleteDelay = %v, want positive finite", dt)
	}
	// Verify Theorem 3 numerically: after ΔTdel seconds of decay, a
	// cell that started exactly at the active threshold has density
	// below 1 and can be deleted safely.
	start := d.ActiveThreshold(beta, v)
	decayed := d.Scale(start, dt, 0)
	if decayed >= 1+1e-9 {
		t.Errorf("after ΔTdel=%v the threshold density decays to %v, want < 1", dt, decayed)
	}
	bound := d.ReservoirBound(beta, v)
	if bound < dt*v {
		t.Errorf("ReservoirBound = %v smaller than ΔTdel·v = %v", bound, dt*v)
	}
}

// Property: uniform decay preserves the density order of any two
// values — the premise behind Theorem 1 (density filter).
func TestDecayOrderPreservationQuick(t *testing.T) {
	d := DefaultDecay()
	prop := func(r1, r2 float64, dtU uint16) bool {
		rho1 := math.Abs(r1)
		rho2 := math.Abs(r2)
		if math.IsInf(rho1, 0) || math.IsInf(rho2, 0) || math.IsNaN(rho1) || math.IsNaN(rho2) {
			return true
		}
		dt := float64(dtU%1000) / 10
		s1 := d.Scale(rho1, dt, 0)
		s2 := d.Scale(rho2, dt, 0)
		if rho1 < rho2 {
			return s1 <= s2
		}
		if rho1 > rho2 {
			return s1 >= s2
		}
		return s1 == s2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Scale is multiplicative over consecutive intervals, which
// is what makes lazy density updates (Eq. 8) exact.
func TestDecayScaleCompositionQuick(t *testing.T) {
	d := DefaultDecay()
	prop := func(rhoU uint16, aU, bU uint8) bool {
		rho := float64(rhoU) / 100
		t1 := float64(aU) / 10
		t2 := t1 + float64(bU)/10
		direct := d.Scale(rho, t2, 0)
		twoStep := d.Scale(d.Scale(rho, t1, 0), t2, t1)
		return math.Abs(direct-twoStep) < 1e-9*(1+direct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSliceSourceAndRateStamper(t *testing.T) {
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{Vector: []float64{float64(i)}, Label: i % 2}
	}
	src := NewSliceSource(pts)
	if src.Len() != 10 {
		t.Fatalf("Len = %d, want 10", src.Len())
	}
	rs, err := NewRateStamper(src, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(rs, 0)
	if len(got) != 10 {
		t.Fatalf("collected %d points, want 10", len(got))
	}
	for i, p := range got {
		wantT := float64(i) / 1000
		if math.Abs(p.Time-wantT) > 1e-12 {
			t.Errorf("point %d time = %v, want %v", i, p.Time, wantT)
		}
		if p.ID != int64(i) {
			t.Errorf("point %d ID = %d, want %d", i, p.ID, i)
		}
	}
	// Exhausted source returns false.
	if _, ok := rs.Next(); ok {
		t.Error("expected exhausted source")
	}
	// Invalid rates are rejected.
	if _, err := NewRateStamper(NewSliceSource(pts), 0, 0); err == nil {
		t.Error("rate 0 should be rejected")
	}
	if _, err := NewRateStamper(nil, 1, 0); err == nil {
		t.Error("nil source should be rejected")
	}
}

func TestCollectMax(t *testing.T) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{Vector: []float64{float64(i)}}
	}
	got := Collect(NewSliceSource(pts), 7)
	if len(got) != 7 {
		t.Errorf("Collect(max=7) returned %d points", len(got))
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(Point{ID: int64(i), Vector: []float64{float64(i)}})
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	pts := w.Points()
	for i, want := range []int64{2, 3, 4} {
		if pts[i].ID != want {
			t.Errorf("window[%d].ID = %d, want %d", i, pts[i].ID, want)
		}
	}
	if w.Capacity() != 3 {
		t.Errorf("Capacity = %d, want 3", w.Capacity())
	}
	// Degenerate capacity is clamped to 1.
	w2 := NewWindow(0)
	w2.Add(Point{Vector: []float64{1}})
	w2.Add(Point{Vector: []float64{2}})
	if w2.Len() != 1 {
		t.Errorf("zero-capacity window Len = %d, want 1", w2.Len())
	}
}

func TestAssignToClusters(t *testing.T) {
	clusters := []MacroCluster{
		{ID: 1, Centers: [][]float64{{0, 0}, {1, 0}}, Weight: 2},
		{ID: 2, Centers: [][]float64{{10, 10}}, Weight: 1},
	}
	points := []Point{
		{Vector: []float64{0.2, 0.1}},
		{Vector: []float64{9.5, 10.2}},
		{Vector: []float64{100, 100}},
	}
	got := AssignToClusters(points, clusters, 0)
	want := []int{1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("assignment[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// With a maximum distance, the far point becomes noise.
	got = AssignToClusters(points, clusters, 5)
	if got[2] != -1 {
		t.Errorf("far point assignment = %d, want -1 (noise)", got[2])
	}
	// No clusters at all: everything is noise.
	got = AssignToClusters(points, nil, 0)
	for i, g := range got {
		if g != -1 {
			t.Errorf("assignment[%d] with no clusters = %d, want -1", i, g)
		}
	}
}

func TestSortClustersAndTotalWeight(t *testing.T) {
	cs := []MacroCluster{{ID: 3, Weight: 1}, {ID: 1, Weight: 2}, {ID: 2, Weight: 3}}
	SortClusters(cs)
	for i, want := range []int{1, 2, 3} {
		if cs[i].ID != want {
			t.Errorf("sorted[%d].ID = %d, want %d", i, cs[i].ID, want)
		}
	}
	if got := TotalWeight(cs); math.Abs(got-6) > 1e-12 {
		t.Errorf("TotalWeight = %v, want 6", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := []Point{
		{ID: 0, Time: 0, Label: 1, Vector: []float64{1.5, -2.25}},
		{ID: 1, Time: 0.001, Label: NoLabel, Vector: []float64{3, 4}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip length %d, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].Label != pts[i].Label || math.Abs(got[i].Time-pts[i].Time) > 1e-12 {
			t.Errorf("row %d mismatch: got %+v want %+v", i, got[i], pts[i])
		}
		for j := range pts[i].Vector {
			if got[i].Vector[j] != pts[i].Vector[j] {
				t.Errorf("row %d coord %d mismatch", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Point{{Tokens: distance.NewTokenSet("a")}}); err == nil {
		t.Error("text point should not be writable to CSV")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1.0,notalabel,2.0\n")); err == nil {
		t.Error("bad label should be rejected")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1.0,1\n")); err == nil {
		t.Error("row without coordinates should be rejected")
	}
	if _, err := ReadCSV(bytes.NewBufferString("x,1,2.0\n")); err == nil {
		t.Error("bad time should be rejected")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1.0,1,zz\n")); err == nil {
		t.Error("bad coordinate should be rejected")
	}
}
