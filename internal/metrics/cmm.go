// Package metrics provides the cluster-quality measures used in the
// paper's evaluation: the stream-aware CMM (Cluster Mapping Measure,
// Kremer et al., KDD 2011) that Sec. 6.4 relies on, plus the classic
// external criteria (purity, pairwise F-measure, Rand index, NMI) as
// secondary measures.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/densitymountain/edmstream/internal/stream"
)

// CMMConfig configures the CMM computation.
type CMMConfig struct {
	// K is the number of neighbours used for the connectivity
	// statistic (default 5).
	K int
	// Decay is the freshness model used to weight points; the paper
	// evaluates CMM with the same decay model the algorithms use.
	Decay stream.Decay
	// Now is the evaluation time; point weights are their freshness at
	// this time. If zero, the largest point timestamp is used.
	Now float64
}

func (c *CMMConfig) defaults(points []stream.Point) {
	if c.K <= 0 {
		c.K = 5
	}
	if c.Decay == (stream.Decay{}) {
		c.Decay = stream.DefaultDecay()
	}
	if c.Now == 0 {
		for _, p := range points {
			if p.Time > c.Now {
				c.Now = p.Time
			}
		}
	}
}

// CMM computes the Cluster Mapping Measure of the clustering given by
// assignment against the ground-truth labels carried by the points.
// assignment[i] is the cluster id of points[i], with -1 meaning the
// point was left unclustered (noise). Ground-truth noise is marked by
// stream.NoLabel. The result is in [0, 1]; 1 means no faults.
//
// The implementation follows Kremer et al.: faults are missed points
// (true class members left unclustered), misplaced points (members of a
// cluster whose mapped class differs from the point's class) and noise
// inclusion (true noise placed inside a cluster). Each fault is
// penalized in proportion to the point's connectivity to the relevant
// class and weighted by the point's freshness under the decay model.
func CMM(points []stream.Point, assignment []int, cfg CMMConfig) (float64, error) {
	if len(points) == 0 {
		return 0, errors.New("metrics: CMM of an empty point set is undefined")
	}
	if len(points) != len(assignment) {
		return 0, fmt.Errorf("metrics: %d points but %d assignments", len(points), len(assignment))
	}
	cfg.defaults(points)

	// Group point indexes by ground-truth class (noise excluded).
	byClass := map[int][]int{}
	for i, p := range points {
		if p.Label != stream.NoLabel {
			byClass[p.Label] = append(byClass[p.Label], i)
		}
	}

	conn := newConnectivity(points, byClass, cfg.K)

	// Map each cluster to the ground-truth class with the largest
	// freshness-weighted membership.
	clusterClassWeight := map[int]map[int]float64{}
	for i, p := range points {
		cid := assignment[i]
		if cid < 0 || p.Label == stream.NoLabel {
			continue
		}
		if clusterClassWeight[cid] == nil {
			clusterClassWeight[cid] = map[int]float64{}
		}
		clusterClassWeight[cid][p.Label] += cfg.Decay.Freshness(cfg.Now, p.Time)
	}
	clusterMap := map[int]int{}
	for cid, classes := range clusterClassWeight {
		best, bestW := stream.NoLabel, -1.0
		// Deterministic tie-break: smallest class id wins.
		ids := make([]int, 0, len(classes))
		for cl := range classes {
			ids = append(ids, cl)
		}
		sort.Ints(ids)
		for _, cl := range ids {
			if classes[cl] > bestW {
				best, bestW = cl, classes[cl]
			}
		}
		clusterMap[cid] = best
	}

	// Normalization term: the freshness-weighted connectivity of every
	// object to its own class (noise objects count with connectivity 1,
	// since the worst thing that can happen to them — being pulled deep
	// into a cluster — carries penalty at most 1).
	var penaltySum, connSum float64
	for i, p := range points {
		w := cfg.Decay.Freshness(cfg.Now, p.Time)
		if p.Label == stream.NoLabel {
			connSum += w
		} else {
			connSum += w * conn.con(i, p.Label)
		}
	}

	anyFault := false
	for i, p := range points {
		w := cfg.Decay.Freshness(cfg.Now, p.Time)
		cid := assignment[i]
		switch {
		case p.Label == stream.NoLabel && cid < 0:
			// True noise left unclustered: not a fault.
			continue
		case p.Label == stream.NoLabel && cid >= 0:
			// Noise inclusion: penalize by connectivity to the mapped
			// class of the receiving cluster.
			mapped, ok := clusterMap[cid]
			if !ok || mapped == stream.NoLabel {
				continue
			}
			penaltySum += w * conn.con(i, mapped)
			anyFault = true
		case cid < 0:
			// Missed point: a class member left unclustered.
			penaltySum += w * conn.con(i, p.Label)
			anyFault = true
		default:
			mapped, ok := clusterMap[cid]
			if !ok {
				mapped = stream.NoLabel
			}
			if mapped == p.Label {
				continue
			}
			// Misplaced point.
			cOwn := conn.con(i, p.Label)
			var cMapped float64
			if mapped != stream.NoLabel {
				cMapped = conn.con(i, mapped)
			}
			penaltySum += w * cOwn * (1 - cMapped)
			anyFault = true
		}
	}

	if !anyFault || connSum == 0 {
		// No faults: perfect score.
		return 1, nil
	}
	cmm := 1 - penaltySum/connSum
	if cmm < 0 {
		cmm = 0
	}
	if cmm > 1 {
		cmm = 1
	}
	return cmm, nil
}

// connectivity precomputes the average k-NN distance of every class and
// lazily evaluates point-to-class connectivities.
type connectivity struct {
	points  []stream.Point
	byClass map[int][]int
	k       int
	// classKnn is the average over class members of their average
	// distance to their k nearest neighbours within the class.
	classKnn map[int]float64
}

func newConnectivity(points []stream.Point, byClass map[int][]int, k int) *connectivity {
	c := &connectivity{points: points, byClass: byClass, k: k, classKnn: map[int]float64{}}
	for class, members := range byClass {
		if len(members) <= 1 {
			c.classKnn[class] = 0
			continue
		}
		// For large classes, sample members to keep CMM evaluation
		// affordable inside the stream loop; the statistic is an
		// average, so sampling preserves it.
		sample := members
		const maxSample = 200
		if len(sample) > maxSample {
			step := len(sample) / maxSample
			reduced := make([]int, 0, maxSample)
			for i := 0; i < len(sample); i += step {
				reduced = append(reduced, sample[i])
			}
			sample = reduced
		}
		var sum float64
		for _, idx := range sample {
			sum += c.knnDist(idx, members)
		}
		c.classKnn[class] = sum / float64(len(sample))
	}
	return c
}

// knnDist returns the average distance from points[idx] to its k
// nearest neighbours among members (excluding itself).
func (c *connectivity) knnDist(idx int, members []int) float64 {
	dists := make([]float64, 0, len(members))
	for _, j := range members {
		if j == idx {
			continue
		}
		dists = append(dists, c.points[idx].Distance(c.points[j]))
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	k := c.k
	if k > len(dists) {
		k = len(dists)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += dists[i]
	}
	return sum / float64(k)
}

// con returns the connectivity of points[idx] to the given class:
// 1 when the point is at least as tightly embedded as an average class
// member, decreasing toward 0 as the point sits farther from the class.
func (c *connectivity) con(idx, class int) float64 {
	members, ok := c.byClass[class]
	if !ok || len(members) == 0 {
		return 0
	}
	classAvg := c.classKnn[class]
	pointKnn := c.knnDist(idx, members)
	if pointKnn <= classAvg || pointKnn == 0 {
		return 1
	}
	if math.IsInf(pointKnn, 0) {
		return 0
	}
	if classAvg == 0 {
		// Degenerate class (single point or duplicates): connectivity
		// decays with the raw distance.
		return 1 / (1 + pointKnn)
	}
	return classAvg / pointKnn
}
