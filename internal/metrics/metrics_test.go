package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/stream"
)

// twoBlobs builds two well separated Gaussian blobs with ground truth
// labels 0 and 1, n points each.
func twoBlobs(n int, seed int64) []stream.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]stream.Point, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, stream.Point{
			ID:     int64(len(pts)),
			Vector: []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5},
			Label:  0,
			Time:   float64(len(pts)) / 1000,
		})
		pts = append(pts, stream.Point{
			ID:     int64(len(pts)),
			Vector: []float64{10 + rng.NormFloat64()*0.5, 10 + rng.NormFloat64()*0.5},
			Label:  1,
			Time:   float64(len(pts)) / 1000,
		})
	}
	return pts
}

func perfectAssignment(pts []stream.Point) []int {
	a := make([]int, len(pts))
	for i, p := range pts {
		a[i] = p.Label + 100 // cluster ids need not equal class ids
	}
	return a
}

func TestCMMPerfectClustering(t *testing.T) {
	pts := twoBlobs(50, 1)
	got, err := CMM(pts, perfectAssignment(pts), CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("CMM of perfect clustering = %v, want 1", got)
	}
}

func TestCMMAllMerged(t *testing.T) {
	pts := twoBlobs(50, 2)
	assignment := make([]int, len(pts))
	for i := range assignment {
		assignment[i] = 7 // everything in one cluster
	}
	got, err := CMM(pts, assignment, CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got >= 0.9 {
		t.Errorf("CMM of fully merged clustering = %v, want clearly below a perfect score", got)
	}
	perfect, _ := CMM(pts, perfectAssignment(pts), CMMConfig{})
	if got >= perfect {
		t.Errorf("merged CMM %v should be below perfect CMM %v", got, perfect)
	}
}

func TestCMMAllNoise(t *testing.T) {
	pts := twoBlobs(30, 3)
	assignment := make([]int, len(pts))
	for i := range assignment {
		assignment[i] = -1
	}
	got, err := CMM(pts, assignment, CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.1 {
		t.Errorf("CMM with every point missed = %v, want near 0", got)
	}
}

func TestCMMNoiseInclusion(t *testing.T) {
	pts := twoBlobs(40, 4)
	// Add true-noise points scattered far away, then force them into
	// cluster 0; this must lower CMM relative to leaving them out.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		pts = append(pts, stream.Point{
			ID:     int64(len(pts)),
			Vector: []float64{rng.Float64()*40 - 20, rng.Float64()*40 - 20},
			Label:  stream.NoLabel,
			Time:   float64(len(pts)) / 1000,
		})
	}
	clean := make([]int, len(pts))
	dirty := make([]int, len(pts))
	for i, p := range pts {
		if p.Label == stream.NoLabel {
			clean[i] = -1
			dirty[i] = 100 // shoved into the cluster mapped to class 0
		} else {
			clean[i] = p.Label + 100
			dirty[i] = p.Label + 100
		}
	}
	cmmClean, err := CMM(pts, clean, CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cmmDirty, err := CMM(pts, dirty, CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cmmClean != 1 {
		t.Errorf("CMM with noise excluded = %v, want 1", cmmClean)
	}
	if !(cmmDirty < cmmClean) {
		t.Errorf("noise inclusion should lower CMM: dirty %v, clean %v", cmmDirty, cmmClean)
	}
}

func TestCMMMisplacedWorseThanPerfect(t *testing.T) {
	pts := twoBlobs(50, 5)
	misplaced := perfectAssignment(pts)
	// Move 20% of class-0 points into the cluster mapped to class 1.
	moved := 0
	for i, p := range pts {
		if p.Label == 0 && moved < 20 {
			misplaced[i] = 1 + 100
			moved++
		}
	}
	cmmPerfect, _ := CMM(pts, perfectAssignment(pts), CMMConfig{})
	cmmMisplaced, err := CMM(pts, misplaced, CMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !(cmmMisplaced < cmmPerfect) {
		t.Errorf("misplacing points should lower CMM: %v vs %v", cmmMisplaced, cmmPerfect)
	}
}

func TestCMMFreshnessWeighting(t *testing.T) {
	// Misplacing stale points must hurt less than misplacing fresh
	// points — that is the whole reason the paper uses CMM.
	rng := rand.New(rand.NewSource(6))
	var pts []stream.Point
	n := 200
	for i := 0; i < n; i++ {
		label := i % 2
		base := float64(label) * 10
		pts = append(pts, stream.Point{
			ID:     int64(i),
			Vector: []float64{base + rng.NormFloat64()*0.5, base + rng.NormFloat64()*0.5},
			Label:  label,
			Time:   float64(i), // one point per second: early points are stale at evaluation time
		})
	}
	mkAssign := func(misplaceOld bool) []int {
		a := make([]int, len(pts))
		misplaced := 0
		for i, p := range pts {
			a[i] = p.Label + 100
		}
		for i := range pts {
			idx := i
			if !misplaceOld {
				idx = len(pts) - 1 - i
			}
			if pts[idx].Label == 0 && misplaced < 20 {
				a[idx] = 1 + 100
				misplaced++
			}
		}
		return a
	}
	cfg := CMMConfig{Decay: stream.Decay{A: 0.9, Lambda: 1}, Now: float64(n)}
	oldMisplaced, err := CMM(pts, mkAssign(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshMisplaced, err := CMM(pts, mkAssign(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(oldMisplaced > freshMisplaced) {
		t.Errorf("misplacing stale points (CMM=%v) should hurt less than misplacing fresh points (CMM=%v)", oldMisplaced, freshMisplaced)
	}
}

func TestCMMErrors(t *testing.T) {
	if _, err := CMM(nil, nil, CMMConfig{}); err == nil {
		t.Error("empty input should error")
	}
	pts := twoBlobs(5, 1)
	if _, err := CMM(pts, []int{1, 2}, CMMConfig{}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

// Property: CMM is always within [0, 1] for random assignments.
func TestCMMRangeQuick(t *testing.T) {
	pts := twoBlobs(30, 7)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assignment := make([]int, len(pts))
		for i := range assignment {
			assignment[i] = rng.Intn(4) - 1
		}
		v, err := CMM(pts, assignment, CMMConfig{})
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPurity(t *testing.T) {
	pts := twoBlobs(50, 8)
	p, err := Purity(pts, perfectAssignment(pts))
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("purity of perfect clustering = %v, want 1", p)
	}
	merged := make([]int, len(pts))
	p, err = Purity(pts, merged)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Errorf("purity of merged balanced clustering = %v, want 0.5", p)
	}
	if _, err := Purity(pts, make([]int, 3)); err == nil {
		t.Error("mismatched lengths should error")
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = -1
	}
	if _, err := Purity(pts, all); err == nil {
		t.Error("purity with no clustered points should error")
	}
}

func TestRandIndexAndFMeasure(t *testing.T) {
	pts := twoBlobs(40, 9)
	perfect := perfectAssignment(pts)
	ri, err := RandIndex(pts, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("Rand index of perfect clustering = %v, want 1", ri)
	}
	f1, err := FMeasure(pts, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 {
		t.Errorf("F-measure of perfect clustering = %v, want 1", f1)
	}
	merged := make([]int, len(pts))
	riM, _ := RandIndex(pts, merged)
	f1M, _ := FMeasure(pts, merged)
	if riM >= ri || f1M >= f1 {
		t.Errorf("merged clustering should score lower: rand %v, f1 %v", riM, f1M)
	}
	// A clustering that puts each point alone: recall collapses, F1 low.
	singletons := make([]int, len(pts))
	for i := range singletons {
		singletons[i] = i
	}
	f1S, err := FMeasure(pts, singletons)
	if err != nil {
		t.Fatal(err)
	}
	if f1S != 0 {
		t.Errorf("F-measure of all-singleton clustering = %v, want 0", f1S)
	}
}

func TestNMI(t *testing.T) {
	pts := twoBlobs(40, 10)
	perfect := perfectAssignment(pts)
	nmi, err := NMI(pts, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-9 {
		t.Errorf("NMI of perfect clustering = %v, want 1", nmi)
	}
	merged := make([]int, len(pts))
	nmiM, err := NMI(pts, merged)
	if err != nil {
		t.Fatal(err)
	}
	if nmiM > 0.01 {
		t.Errorf("NMI of merged clustering = %v, want ~0", nmiM)
	}
}

// Property: Rand index, F-measure, purity and NMI stay within [0,1]
// for arbitrary assignments.
func TestExternalMetricRangesQuick(t *testing.T) {
	pts := twoBlobs(25, 11)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assignment := make([]int, len(pts))
		for i := range assignment {
			assignment[i] = rng.Intn(5) - 1
		}
		check := func(v float64, err error) bool {
			if err != nil {
				// Degenerate assignments (e.g. everything noise) may
				// legitimately error; that is not a range violation.
				return true
			}
			return v >= 0 && v <= 1 && !math.IsNaN(v)
		}
		ok := true
		v, err := Purity(pts, assignment)
		ok = ok && check(v, err)
		v, err = RandIndex(pts, assignment)
		ok = ok && check(v, err)
		v, err = FMeasure(pts, assignment)
		ok = ok && check(v, err)
		v, err = NMI(pts, assignment)
		ok = ok && check(v, err)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPairsConsistency(t *testing.T) {
	pts := twoBlobs(20, 12)
	pc, err := Pairs(pts, perfectAssignment(pts))
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(pts))
	total := n * (n - 1) / 2
	if got := pc.TP + pc.FP + pc.FN + pc.TN; math.Abs(got-total) > 1e-9 {
		t.Errorf("pair counts sum to %v, want %v", got, total)
	}
	if pc.FP != 0 || pc.FN != 0 {
		t.Errorf("perfect clustering should have FP=FN=0, got %+v", pc)
	}
}
