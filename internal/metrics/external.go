package metrics

import (
	"errors"
	"fmt"
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// contingency builds the cluster-by-class contingency counts for a
// clustering (assignment, -1 = unclustered) against ground-truth labels
// (stream.NoLabel = noise). Unclustered points and noise points are
// excluded, matching the usual convention for external criteria.
func contingency(points []stream.Point, assignment []int) (table map[int]map[int]int, clusterSizes, classSizes map[int]int, n int, err error) {
	if len(points) != len(assignment) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: %d points but %d assignments", len(points), len(assignment))
	}
	table = map[int]map[int]int{}
	clusterSizes = map[int]int{}
	classSizes = map[int]int{}
	for i, p := range points {
		cid := assignment[i]
		if cid < 0 || p.Label == stream.NoLabel {
			continue
		}
		if table[cid] == nil {
			table[cid] = map[int]int{}
		}
		table[cid][p.Label]++
		clusterSizes[cid]++
		classSizes[p.Label]++
		n++
	}
	return table, clusterSizes, classSizes, n, nil
}

// Purity returns the weighted average, over clusters, of the fraction
// of each cluster's points belonging to its majority class.
func Purity(points []stream.Point, assignment []int) (float64, error) {
	table, _, _, n, err := contingency(points, assignment)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, errors.New("metrics: purity of an empty clustering is undefined")
	}
	var correct int
	for _, classes := range table {
		best := 0
		for _, cnt := range classes {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(n), nil
}

// PairCounts holds the pair-counting statistics behind the Rand index
// and the pairwise F-measure.
type PairCounts struct {
	// TP: pairs in the same cluster and the same class.
	TP float64
	// FP: pairs in the same cluster but different classes.
	FP float64
	// FN: pairs in different clusters but the same class.
	FN float64
	// TN: pairs in different clusters and different classes.
	TN float64
}

// Pairs computes the pair-counting statistics of the clustering.
func Pairs(points []stream.Point, assignment []int) (PairCounts, error) {
	table, clusterSizes, classSizes, n, err := contingency(points, assignment)
	if err != nil {
		return PairCounts{}, err
	}
	if n < 2 {
		return PairCounts{}, errors.New("metrics: pair counting needs at least 2 clustered points")
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }

	var sameBoth float64
	for _, classes := range table {
		for _, cnt := range classes {
			sameBoth += choose2(cnt)
		}
	}
	var sameCluster, sameClass float64
	for _, s := range clusterSizes {
		sameCluster += choose2(s)
	}
	for _, s := range classSizes {
		sameClass += choose2(s)
	}
	total := choose2(n)
	tp := sameBoth
	fp := sameCluster - sameBoth
	fn := sameClass - sameBoth
	tn := total - tp - fp - fn
	return PairCounts{TP: tp, FP: fp, FN: fn, TN: tn}, nil
}

// RandIndex returns (TP+TN)/(TP+FP+FN+TN).
func RandIndex(points []stream.Point, assignment []int) (float64, error) {
	pc, err := Pairs(points, assignment)
	if err != nil {
		return 0, err
	}
	total := pc.TP + pc.FP + pc.FN + pc.TN
	if total == 0 {
		return 0, errors.New("metrics: no pairs")
	}
	return (pc.TP + pc.TN) / total, nil
}

// FMeasure returns the pairwise F1 score (harmonic mean of pairwise
// precision and recall).
func FMeasure(points []stream.Point, assignment []int) (float64, error) {
	pc, err := Pairs(points, assignment)
	if err != nil {
		return 0, err
	}
	if pc.TP == 0 {
		return 0, nil
	}
	precision := pc.TP / (pc.TP + pc.FP)
	recall := pc.TP / (pc.TP + pc.FN)
	return 2 * precision * recall / (precision + recall), nil
}

// NMI returns the normalized mutual information between clustering and
// ground truth, normalized by the arithmetic mean of the entropies.
func NMI(points []stream.Point, assignment []int) (float64, error) {
	table, clusterSizes, classSizes, n, err := contingency(points, assignment)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, errors.New("metrics: NMI of an empty clustering is undefined")
	}
	nf := float64(n)
	var mi float64
	for cid, classes := range table {
		for class, cnt := range classes {
			pij := float64(cnt) / nf
			pi := float64(clusterSizes[cid]) / nf
			pj := float64(classSizes[class]) / nf
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	entropy := func(sizes map[int]int) float64 {
		var h float64
		for _, s := range sizes {
			p := float64(s) / nf
			h -= p * math.Log(p)
		}
		return h
	}
	hc, hl := entropy(clusterSizes), entropy(classSizes)
	if hc == 0 && hl == 0 {
		return 1, nil
	}
	denom := (hc + hl) / 2
	if denom == 0 {
		return 0, nil
	}
	nmi := mi / denom
	if nmi < 0 {
		nmi = 0
	}
	if nmi > 1 {
		nmi = 1
	}
	return nmi, nil
}
