// Package microcluster provides the decayed cluster-feature (CF)
// vector summaries used by the micro-cluster based stream clustering
// baselines (DenStream and DBSTREAM). A micro-cluster maintains the
// exponentially decayed weight, linear sum and squared sum of the
// points it absorbed, from which its center and radius follow in O(d).
package microcluster

import (
	"fmt"
	"math"

	"github.com/densitymountain/edmstream/internal/stream"
)

// MicroCluster is a decayed CF vector.
type MicroCluster struct {
	// ID identifies the micro-cluster.
	ID int64
	// Weight is the decayed number of points, as of LastUpdate.
	Weight float64
	// LS is the decayed per-dimension linear sum, as of LastUpdate.
	LS []float64
	// SS is the decayed sum of squared norms, as of LastUpdate.
	SS float64
	// LastUpdate is the time the decayed statistics refer to.
	LastUpdate float64
	// Created is the creation time (needed by DenStream's outlier
	// pruning rule).
	Created float64
}

// New creates a micro-cluster seeded by a single point.
func New(id int64, p stream.Point) (*MicroCluster, error) {
	if p.IsText() || len(p.Vector) == 0 {
		return nil, fmt.Errorf("microcluster: point %d has no numeric vector", p.ID)
	}
	mc := &MicroCluster{
		ID:         id,
		Weight:     1,
		LS:         append([]float64(nil), p.Vector...),
		LastUpdate: p.Time,
		Created:    p.Time,
	}
	mc.SS = sqNorm(p.Vector)
	return mc, nil
}

func sqNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// DecayTo scales the statistics forward to time now.
func (m *MicroCluster) DecayTo(now float64, d stream.Decay) {
	if now <= m.LastUpdate {
		return
	}
	f := d.Freshness(now, m.LastUpdate)
	m.Weight *= f
	m.SS *= f
	for i := range m.LS {
		m.LS[i] *= f
	}
	m.LastUpdate = now
}

// Insert folds a point arriving at time now into the micro-cluster.
func (m *MicroCluster) Insert(p stream.Point, now float64, d stream.Decay) {
	m.DecayTo(now, d)
	m.Weight++
	m.SS += sqNorm(p.Vector)
	for i := range m.LS {
		m.LS[i] += p.Vector[i]
	}
}

// WeightAt returns the decayed weight at time now without mutating the
// micro-cluster.
func (m *MicroCluster) WeightAt(now float64, d stream.Decay) float64 {
	return m.Weight * d.Freshness(now, m.LastUpdate)
}

// Center returns the weighted centroid.
func (m *MicroCluster) Center() []float64 {
	c := make([]float64, len(m.LS))
	if m.Weight == 0 {
		return c
	}
	for i, v := range m.LS {
		c[i] = v / m.Weight
	}
	return c
}

// Radius returns the RMS deviation of the absorbed points from the
// center (the usual micro-cluster radius definition). Numerical noise
// is clamped to zero.
func (m *MicroCluster) Radius() float64 {
	if m.Weight == 0 {
		return 0
	}
	center := m.Center()
	variance := m.SS/m.Weight - sqNorm(center)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// DistanceToPoint returns the Euclidean distance from the center to p.
func (m *MicroCluster) DistanceToPoint(p stream.Point) float64 {
	var s float64
	c := m.Center()
	for i := range c {
		d := c[i] - p.Vector[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistanceToCenter returns the Euclidean distance between two
// micro-cluster centers.
func (m *MicroCluster) DistanceToCenter(o *MicroCluster) float64 {
	a, b := m.Center(), o.Center()
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// RadiusIfInserted returns the radius the micro-cluster would have
// after absorbing p at time now, without modifying the micro-cluster.
// DenStream uses it to decide whether a point fits an existing
// micro-cluster.
func (m *MicroCluster) RadiusIfInserted(p stream.Point, now float64, d stream.Decay) float64 {
	f := d.Freshness(now, m.LastUpdate)
	w := m.Weight*f + 1
	ss := m.SS*f + sqNorm(p.Vector)
	var centerSq float64
	for i := range m.LS {
		c := (m.LS[i]*f + p.Vector[i]) / w
		centerSq += c * c
	}
	variance := ss/w - centerSq
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}
