package microcluster

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func testDecay() stream.Decay { return stream.Decay{A: 0.998, Lambda: 1000} }

func TestNewRejectsTextAndEmpty(t *testing.T) {
	if _, err := New(1, stream.Point{Tokens: distance.NewTokenSet("a")}); err == nil {
		t.Error("text point should be rejected")
	}
	if _, err := New(1, stream.Point{}); err == nil {
		t.Error("empty point should be rejected")
	}
}

func TestCenterAndRadius(t *testing.T) {
	d := testDecay()
	mc, err := New(1, stream.Point{Vector: []float64{0, 0}, Time: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Insert symmetric points around (1,1) at the same instant: center
	// moves to the centroid, radius is the RMS deviation.
	pts := [][]float64{{2, 0}, {0, 2}, {2, 2}}
	for _, v := range pts {
		mc.Insert(stream.Point{Vector: v, Time: 0}, 0, d)
	}
	center := mc.Center()
	if math.Abs(center[0]-1) > 1e-9 || math.Abs(center[1]-1) > 1e-9 {
		t.Errorf("center = %v, want (1,1)", center)
	}
	if r := mc.Radius(); math.Abs(r-math.Sqrt(2)) > 1e-9 {
		t.Errorf("radius = %v, want sqrt(2)", r)
	}
	if w := mc.WeightAt(0, d); math.Abs(w-4) > 1e-9 {
		t.Errorf("weight = %v, want 4", w)
	}
}

func TestDecayReducesWeightNotCenter(t *testing.T) {
	d := testDecay()
	mc, _ := New(1, stream.Point{Vector: []float64{3, 4}, Time: 0})
	mc.Insert(stream.Point{Vector: []float64{5, 6}, Time: 0}, 0, d)
	centerBefore := mc.Center()
	wBefore := mc.WeightAt(0, d)
	mc.DecayTo(2, d)
	wAfter := mc.WeightAt(2, d)
	if !(wAfter < wBefore) {
		t.Errorf("weight did not decay: %v -> %v", wBefore, wAfter)
	}
	centerAfter := mc.Center()
	for i := range centerBefore {
		if math.Abs(centerBefore[i]-centerAfter[i]) > 1e-9 {
			t.Errorf("decay moved the center: %v -> %v", centerBefore, centerAfter)
		}
	}
	// Decay into the past is a no-op.
	w := mc.Weight
	mc.DecayTo(1, d)
	if mc.Weight != w {
		t.Error("decay into the past changed the weight")
	}
}

func TestRadiusIfInserted(t *testing.T) {
	d := testDecay()
	mc, _ := New(1, stream.Point{Vector: []float64{0, 0}, Time: 0})
	mc.Insert(stream.Point{Vector: []float64{0.2, 0}, Time: 0}, 0, d)
	// The hypothetical radius must match the actual radius after the
	// insertion, and the probe must not mutate the micro-cluster.
	p := stream.Point{Vector: []float64{0.4, 0.2}, Time: 0}
	want := mc.RadiusIfInserted(p, 0, d)
	wBefore := mc.Weight
	if mc.Weight != wBefore {
		t.Fatal("RadiusIfInserted mutated the micro-cluster")
	}
	mc.Insert(p, 0, d)
	if got := mc.Radius(); math.Abs(got-want) > 1e-9 {
		t.Errorf("RadiusIfInserted = %v, actual radius after insert = %v", want, got)
	}
}

func TestDistances(t *testing.T) {
	a, _ := New(1, stream.Point{Vector: []float64{0, 0}, Time: 0})
	b, _ := New(2, stream.Point{Vector: []float64{3, 4}, Time: 0})
	if got := a.DistanceToCenter(b); math.Abs(got-5) > 1e-9 {
		t.Errorf("DistanceToCenter = %v, want 5", got)
	}
	if got := a.DistanceToPoint(stream.Point{Vector: []float64{0, 2}}); math.Abs(got-2) > 1e-9 {
		t.Errorf("DistanceToPoint = %v, want 2", got)
	}
}

// Property: the radius is never negative and never NaN, even under
// heavy decay (where the variance estimate can go slightly negative
// numerically).
func TestRadiusNonNegativeQuick(t *testing.T) {
	d := testDecay()
	prop := func(coords [6]int8, gap uint8) bool {
		mc, err := New(1, stream.Point{Vector: []float64{float64(coords[0]), float64(coords[1])}, Time: 0})
		if err != nil {
			return false
		}
		mc.Insert(stream.Point{Vector: []float64{float64(coords[2]), float64(coords[3])}, Time: 0}, 0, d)
		mc.Insert(stream.Point{Vector: []float64{float64(coords[4]), float64(coords[5])}, Time: 0}, 0, d)
		mc.DecayTo(float64(gap)/10, d)
		r := mc.Radius()
		return r >= 0 && !math.IsNaN(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
