package text

import (
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

func TestDefaultTopics(t *testing.T) {
	topics := DefaultTopics()
	if len(topics) != 7 {
		t.Fatalf("DefaultTopics returned %d topics, want 7", len(topics))
	}
	names := map[string]bool{}
	for _, tp := range topics {
		if tp.Name == "" || len(tp.Tags) == 0 || tp.Popularity == nil {
			t.Errorf("topic %+v incomplete", tp.Name)
		}
		if names[tp.Name] {
			t.Errorf("duplicate topic name %q", tp.Name)
		}
		names[tp.Name] = true
	}
	// Every topic referenced by the scripted events must exist.
	for _, e := range NewsEvents() {
		for _, name := range e.Topics {
			if !names[name] {
				t.Errorf("event %v references unknown topic %q", e.Kind, name)
			}
		}
		if e.Fraction <= 0 || e.Fraction >= 1 {
			t.Errorf("event %v fraction %v outside (0,1)", e.Kind, e.Fraction)
		}
	}
}

func TestNewsStream(t *testing.T) {
	pts, topics, err := NewsStream(NewsConfig{N: 5000, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5000 {
		t.Fatalf("generated %d documents, want 5000", len(pts))
	}
	labelCounts := map[int]int{}
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			t.Fatalf("document %d invalid: %v", i, err)
		}
		if !p.IsText() {
			t.Fatalf("document %d is not a text point", i)
		}
		if p.Tokens.Len() == 0 {
			t.Fatalf("document %d is empty", i)
		}
		if p.Label != stream.NoLabel && (p.Label < 0 || p.Label >= len(topics)) {
			t.Fatalf("document %d has label %d outside topic range", i, p.Label)
		}
		labelCounts[p.Label]++
	}
	// The major scripted topics should all receive documents.
	for idx, tp := range topics {
		if labelCounts[idx] == 0 {
			t.Errorf("topic %s received no documents", tp.Name)
		}
	}
}

func TestNewsStreamTopicCoherence(t *testing.T) {
	pts, topics, err := NewsStream(NewsConfig{N: 4000, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Average Jaccard distance within a topic must be clearly smaller
	// than across unrelated topics (e.g. a Google topic vs an Apple
	// topic), otherwise Jaccard-based clustering cannot work.
	byLabel := map[int][]stream.Point{}
	for _, p := range pts {
		if p.Label != stream.NoLabel {
			byLabel[p.Label] = append(byLabel[p.Label], p)
		}
	}
	idxByName := map[string]int{}
	for i, tp := range topics {
		idxByName[tp.Name] = i
	}
	wearable := byLabel[idxByName["google-wearable"]]
	apple := byLabel[idxByName["apple-5c"]]
	if len(wearable) < 10 || len(apple) < 10 {
		t.Skip("not enough documents for coherence check")
	}
	avg := func(a, b []stream.Point) float64 {
		var sum float64
		n := 0
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				sum += distance.Jaccard(a[i].Tokens, b[j].Tokens)
				n++
			}
		}
		return sum / float64(n)
	}
	intra := avg(wearable, wearable)
	inter := avg(wearable, apple)
	if intra >= inter {
		t.Errorf("topics not coherent: intra distance %v >= inter distance %v", intra, inter)
	}
}

func TestNewsStreamScriptedPopularity(t *testing.T) {
	pts, topics, err := NewsStream(NewsConfig{N: 8000, Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idxByName := map[string]int{}
	for i, tp := range topics {
		idxByName[tp.Name] = i
	}
	countIn := func(name string, lo, hi float64) int {
		idx := idxByName[name]
		n := 0
		for i, p := range pts {
			frac := float64(i) / float64(len(pts))
			if frac >= lo && frac < hi && p.Label == idx {
				n++
			}
		}
		return n
	}
	// Chromecast is active early and gone after 0.3.
	if countIn("google-chromecast", 0, 0.2) == 0 {
		t.Error("chromecast topic missing early in the stream")
	}
	if countIn("google-chromecast", 0.3, 1.0) != 0 {
		t.Error("chromecast topic still active after its scripted fade-out")
	}
	// Smartwatch only appears after its scripted split point (0.45).
	if countIn("google-smartwatch", 0, 0.45) != 0 {
		t.Error("smartwatch topic appears before its scripted split")
	}
	if countIn("google-smartwatch", 0.5, 1.0) == 0 {
		t.Error("smartwatch topic missing after its scripted split")
	}
	// Apple-Samsung only appears after 0.65.
	if countIn("apple-samsung", 0, 0.65) != 0 {
		t.Error("apple-samsung topic appears before its scripted split")
	}
}

func TestNewsStreamErrors(t *testing.T) {
	if _, _, err := NewsStream(NewsConfig{N: 10}, []Topic{}); err == nil {
		t.Error("empty topic list should be rejected")
	}
	if _, _, err := NewsStream(NewsConfig{N: 10}, []Topic{{Name: "x", Popularity: window(0, 1, 1)}}); err == nil {
		t.Error("topic without tags should be rejected")
	}
	if _, _, err := NewsStream(NewsConfig{N: 10}, []Topic{{Name: "x", Tags: []string{"a"}}}); err == nil {
		t.Error("topic without popularity should be rejected")
	}
}

func TestNewsStreamDeterminism(t *testing.T) {
	a, _, err := NewsStream(NewsConfig{N: 500, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewsStream(NewsConfig{N: 500, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Tokens.Len() != b[i].Tokens.Len() {
			t.Fatalf("same seed produced different documents at %d", i)
		}
	}
}

func TestPopularityShapes(t *testing.T) {
	w := window(0.2, 0.4, 1.5)
	if w(0.1) != 0 || w(0.3) != 1.5 || w(0.5) != 0 {
		t.Error("window shape wrong")
	}
	r := ramp(0.2, 0.4, 0.8, 1.0)
	if r(0.1) != 0 || r(0.9) != 0 {
		t.Error("ramp boundaries wrong")
	}
	if !(r(0.25) > 0 && r(0.25) < 1.0) || r(0.5) != 1.0 {
		t.Error("ramp interior wrong")
	}
	f := fade(0.0, 0.5, 1.0, 2.0)
	if f(0.25) != 2.0 || !(f(0.75) > 0 && f(0.75) < 2.0) {
		t.Error("fade interior wrong")
	}
}
