// Package text provides the synthetic news stream that stands in for
// the NADS dataset of the paper's news-recommendation use case
// (Sec. 6.2.2, Fig. 8, Table 3). Documents are small term sets compared
// with the Jaccard distance; topics have scripted popularity schedules
// so that the same kinds of cluster evolution the paper reports
// (Chromecast news merging into the wearables topic, the smartwatch
// topic splitting out of wearables, Apple-vs-Samsung splitting from the
// iPhone 5c topic, the Microsoft mobile-suite topic merging into the
// Nokia-acquisition topic) happen at known points of the stream.
package text

import (
	"fmt"
	"math/rand"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// Topic is a news topic: a label, the tag terms that identify it (the
// analogue of the cluster tags shown in Fig. 8), and a broader
// vocabulary its documents draw filler terms from.
type Topic struct {
	// Name identifies the topic in reports.
	Name string
	// Tags are the high-frequency terms every document of the topic
	// contains with high probability.
	Tags []string
	// Vocabulary is the pool of additional terms documents sample from.
	Vocabulary []string
	// Popularity maps a stream fraction in [0,1] to the topic's
	// relative popularity (>= 0). Topics with zero popularity emit no
	// documents at that point of the stream.
	Popularity func(frac float64) float64
}

// NewsEventKind names the scripted evolution activities in the news
// stream.
type NewsEventKind string

// Scripted news-stream evolution activities (Table 3 analogues).
const (
	NewsMerge NewsEventKind = "merge"
	NewsSplit NewsEventKind = "split"
)

// NewsEvent is one scripted topic evolution, expressed against stream
// fractions like gen.SDSEvent.
type NewsEvent struct {
	Kind     NewsEventKind
	Fraction float64
	// Topics names the topics involved (source topics for a merge,
	// original topic and breakaway topic for a split).
	Topics []string
}

// NewsConfig parameterizes the news stream generator.
type NewsConfig struct {
	// N is the number of documents (the real NADS has 422,937; tests
	// and benches use a scaled-down stream).
	N int
	// Seed seeds the deterministic random generator.
	Seed int64
	// TermsPerDoc is the number of terms per document in addition to
	// the topic tags (default 6).
	TermsPerDoc int
	// NoiseFraction is the fraction of documents made of random terms
	// only (default 0.02).
	NoiseFraction float64
}

func (c *NewsConfig) defaults() {
	if c.N <= 0 {
		c.N = 422937
	}
	if c.TermsPerDoc <= 0 {
		c.TermsPerDoc = 6
	}
	if c.NoiseFraction <= 0 {
		c.NoiseFraction = 0.02
	}
}

// window returns a popularity function that is `level` inside
// [from,to) and 0 elsewhere.
func window(from, to, level float64) func(float64) float64 {
	return func(f float64) float64 {
		if f >= from && f < to {
			return level
		}
		return 0
	}
}

// ramp returns a popularity function that rises linearly from 0 at
// `from` to `level` at `to`, staying at `level` afterwards until `end`.
func ramp(from, to, end, level float64) func(float64) float64 {
	return func(f float64) float64 {
		switch {
		case f < from || f >= end:
			return 0
		case f < to:
			return level * (f - from) / (to - from)
		default:
			return level
		}
	}
}

// fade returns a popularity function at `level` from `from`, decaying
// linearly to 0 between `to` and `end`.
func fade(from, to, end, level float64) func(float64) float64 {
	return func(f float64) float64 {
		switch {
		case f < from || f >= end:
			return 0
		case f < to:
			return level
		default:
			return level * (1 - (f-to)/(end-to))
		}
	}
}

// DefaultTopics returns the scripted topic set mirroring Fig. 8 /
// Table 3. Fractions: the Chromecast topic fades into the wearables
// topic around 0.25 (its tags converge on the wearable tags), the
// smartwatch topic splits out of wearables at 0.45, the Apple-Samsung
// patent topic splits from the iPhone 5c topic at 0.65, and the
// Microsoft mobile-suite topic merges into the Nokia topic at 0.85.
func DefaultTopics() []Topic {
	vocabTech := []string{"launch", "update", "market", "device", "report", "release", "ces", "review", "rumor", "sales", "app", "cloud", "platform", "developer", "conference"}
	return []Topic{
		{
			Name:       "google-chromecast",
			Tags:       []string{"google", "chromecast", "tv"},
			Vocabulary: vocabTech,
			Popularity: fade(0, 0.15, 0.25, 1.0),
		},
		{
			Name:       "google-wearable",
			Tags:       []string{"google", "wearable", "sdk"},
			Vocabulary: vocabTech,
			Popularity: fade(0.05, 0.70, 0.80, 1.2),
		},
		{
			Name:       "google-smartwatch",
			Tags:       []string{"google", "smartwatch", "android", "wear"},
			Vocabulary: vocabTech,
			Popularity: ramp(0.45, 0.55, 1.0, 1.2),
		},
		{
			Name:       "apple-5c",
			Tags:       []string{"apple", "iphone", "5c"},
			Vocabulary: vocabTech,
			Popularity: fade(0, 0.70, 0.85, 1.0),
		},
		{
			Name:       "apple-samsung",
			Tags:       []string{"apple", "samsung", "patent", "court"},
			Vocabulary: vocabTech,
			Popularity: ramp(0.65, 0.75, 1.0, 1.1),
		},
		{
			Name:       "ms-mobile-suit",
			Tags:       []string{"microsoft", "mobile", "office", "suite"},
			Vocabulary: vocabTech,
			Popularity: fade(0.40, 0.80, 0.88, 0.9),
		},
		{
			Name:       "ms-nokia",
			Tags:       []string{"microsoft", "nokia", "acquisition", "phones"},
			Vocabulary: vocabTech,
			Popularity: ramp(0.55, 0.65, 1.0, 1.1),
		},
	}
}

// NewsEvents returns the scripted evolution schedule for the default
// topics.
func NewsEvents() []NewsEvent {
	return []NewsEvent{
		{Kind: NewsMerge, Fraction: 0.25, Topics: []string{"google-chromecast", "google-wearable"}},
		{Kind: NewsSplit, Fraction: 0.45, Topics: []string{"google-wearable", "google-smartwatch"}},
		{Kind: NewsSplit, Fraction: 0.65, Topics: []string{"apple-5c", "apple-samsung"}},
		{Kind: NewsMerge, Fraction: 0.85, Topics: []string{"ms-mobile-suit", "ms-nokia"}},
	}
}

// NewsStream generates a synthetic news document stream over the given
// topics (DefaultTopics if nil). Ground-truth label i refers to
// topics[i]; noise documents carry stream.NoLabel.
func NewsStream(cfg NewsConfig, topics []Topic) ([]stream.Point, []Topic, error) {
	cfg.defaults()
	if topics == nil {
		topics = DefaultTopics()
	}
	if len(topics) == 0 {
		return nil, nil, fmt.Errorf("text: no topics given")
	}
	for i, tp := range topics {
		if len(tp.Tags) == 0 {
			return nil, nil, fmt.Errorf("text: topic %d (%s) has no tags", i, tp.Name)
		}
		if tp.Popularity == nil {
			return nil, nil, fmt.Errorf("text: topic %d (%s) has no popularity schedule", i, tp.Name)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fillerPool := []string{"today", "week", "year", "company", "people", "world", "business", "money", "video", "photo", "story", "news"}

	points := make([]stream.Point, 0, cfg.N)
	weights := make([]float64, len(topics))
	for i := 0; i < cfg.N; i++ {
		frac := float64(i) / float64(cfg.N)
		if rng.Float64() < cfg.NoiseFraction {
			doc := distance.NewTokenSet()
			for len(doc) < cfg.TermsPerDoc {
				doc.Add(fillerPool[rng.Intn(len(fillerPool))] + fmt.Sprint(rng.Intn(1000)))
			}
			points = append(points, stream.Point{Tokens: doc, Label: stream.NoLabel})
			continue
		}
		var total float64
		for t, tp := range topics {
			weights[t] = tp.Popularity(frac)
			if weights[t] < 0 {
				weights[t] = 0
			}
			total += weights[t]
		}
		if total == 0 {
			// No topic active at this fraction: emit filler noise.
			doc := distance.NewTokenSet()
			for len(doc) < cfg.TermsPerDoc {
				doc.Add(fillerPool[rng.Intn(len(fillerPool))])
			}
			points = append(points, stream.Point{Tokens: doc, Label: stream.NoLabel})
			continue
		}
		u := rng.Float64() * total
		topicIdx := len(topics) - 1
		var cum float64
		for t := range topics {
			cum += weights[t]
			if u <= cum {
				topicIdx = t
				break
			}
		}
		tp := topics[topicIdx]
		doc := distance.NewTokenSet()
		for _, tag := range tp.Tags {
			if rng.Float64() < 0.9 {
				doc.Add(tag)
			}
		}
		for j := 0; j < cfg.TermsPerDoc; j++ {
			if len(tp.Vocabulary) > 0 && rng.Float64() < 0.7 {
				doc.Add(tp.Vocabulary[rng.Intn(len(tp.Vocabulary))])
			} else {
				doc.Add(fillerPool[rng.Intn(len(fillerPool))])
			}
		}
		if doc.Len() == 0 {
			doc.Add(tp.Tags[0])
		}
		points = append(points, stream.Point{Tokens: doc, Label: topicIdx})
	}
	return points, topics, nil
}
