package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/stream"
)

// roundTrip encodes e into a checkpoint and decodes it into a fresh
// engine under the same configuration.
func roundTrip(t *testing.T, e *EDMStream) *EDMStream {
	t.Helper()
	var buf bytes.Buffer
	if err := e.EncodeCheckpoint(&buf); err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	restored, err := DecodeCheckpoint(e.Config(), &buf)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	return restored
}

// checkpointRun is batchRun with a checkpoint+restore inserted after
// `cut` points: the engine is serialized, thrown away, rebuilt from
// the checkpoint and fed the remainder of the stream. Its output must
// be byte-identical to an uninterrupted run.
func checkpointRun(t *testing.T, cfg Config, pts []stream.Point, batchSize, snapEvery, cut int) (*EDMStream, []Snapshot) {
	t.Helper()
	if snapEvery%batchSize != 0 || cut%batchSize != 0 {
		t.Fatalf("snapEvery %d and cut %d must be multiples of batchSize %d", snapEvery, cut, batchSize)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", cfg.IndexPolicy, err)
	}
	var snaps []Snapshot
	for i := 0; i < len(pts); i += batchSize {
		end := i + batchSize
		if end > len(pts) {
			end = len(pts)
		}
		if err := e.InsertBatch(pts[i:end]); err != nil {
			t.Fatalf("InsertBatch(points %d:%d): %v", i, end, err)
		}
		if end%snapEvery == 0 {
			snaps = append(snaps, e.Snapshot())
		}
		if end == cut {
			e = roundTrip(t, e)
		}
	}
	snaps = append(snaps, e.Snapshot())
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	return e, snaps
}

// TestCheckpointReplayEquivalence is the durability property test: for
// random streams, batch sizes, both index policies and both τ modes, a
// run interrupted by checkpoint+restore must be byte-identical to an
// uninterrupted run — same snapshots (cluster IDs, peaks, members,
// weights), same cells, same evolution events, same statistics and
// same τ. The cut points cover the initialization phase (the engine is
// checkpointed before the DP-Tree exists) and steady state.
func TestCheckpointReplayEquivalence(t *testing.T) {
	streams := map[string][]stream.Point{
		"bursty":  burstyStream(7, 3000, 3, 0.15),
		"shuffed": burstyStream(42, 2500, 4, 0.3),
	}
	cfgs := map[string]Config{
		"static": {
			Radius: 0.8, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
		"adaptive": {
			Radius: 0.8, AdaptiveTau: true, Tau: 2.5, InitPoints: 200,
			EvolutionInterval: 0.25, SweepInterval: 0.2,
		},
	}
	batchSizes := []int{25, 250}
	const snapEvery = 500

	for sname, pts := range streams {
		for cname, cfg := range cfgs {
			for _, policy := range []IndexPolicy{IndexGrid, IndexLinear} {
				cfg := cfg
				cfg.IndexPolicy = policy
				for _, bs := range batchSizes {
					ref, refSnaps := batchRun(t, cfg, pts, bs, snapEvery)
					// 2·bs lands inside the initialization phase for
					// the small batch size (before InitPoints have
					// arrived); 1500 is steady state for both.
					for _, cut := range []int{2 * bs, 1500} {
						name := fmt.Sprintf("%s/%s/%s/bs%d/cut%d", sname, cname, policy, bs, cut)
						t.Run(name, func(t *testing.T) {
							ck, ckSnaps := checkpointRun(t, cfg, pts, bs, snapEvery, cut)
							compareSnapshots(t, ckSnaps, refSnaps)
							compareCells(t, ck, ref)
							compareEvents(t, ck.Events(), ref.Events())
							if cs, rs := ck.Stats(), ref.Stats(); cs != rs {
								t.Fatalf("stats differ:\n  checkpointed %+v\n  reference    %+v", cs, rs)
							}
							if ck.Tau() != ref.Tau() || ck.Alpha() != ref.Alpha() {
								t.Fatalf("τ/α differ: checkpointed (%v, %v), reference (%v, %v)",
									ck.Tau(), ck.Alpha(), ref.Tau(), ref.Alpha())
							}
							if ck.Now() != ref.Now() {
								t.Fatalf("stream clock differs: checkpointed %v, reference %v", ck.Now(), ref.Now())
							}
						})
					}
				}
			}
		}
	}
}

// TestCheckpointDeterministicBytes asserts the encoding itself is
// deterministic: encoding, decoding and re-encoding yields the exact
// same bytes. The WAL layer relies on this — a recovered engine's next
// checkpoint must not differ just because it went through a restore.
func TestCheckpointDeterministicBytes(t *testing.T) {
	pts := burstyStream(11, 2000, 3, 0.2)
	cfg := Config{Radius: 0.8, AdaptiveTau: true, Tau: 2.5, InitPoints: 200,
		EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, _ := batchRun(t, cfg, pts, 100, 1000)

	var first bytes.Buffer
	if err := e.EncodeCheckpoint(&first); err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	restored, err := DecodeCheckpoint(e.Config(), bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	var second bytes.Buffer
	if err := restored.EncodeCheckpoint(&second); err != nil {
		t.Fatalf("re-EncodeCheckpoint: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("checkpoint bytes differ after a decode/encode round trip (%d vs %d bytes)",
			first.Len(), second.Len())
	}
}

// TestCheckpointPublishedState asserts the read-side state survives a
// restore verbatim: the published snapshot (weights were normalized at
// refresh time and cannot be recomputed later), the event log with its
// cursor arithmetic, and the mirrored statistics.
func TestCheckpointPublishedState(t *testing.T) {
	pts := burstyStream(3, 2200, 3, 0.2)
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, MaxEvents: 8,
		EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, _ := batchRun(t, cfg, pts, 100, 1100)
	restored := roundTrip(t, e)

	a, b := e.LastSnapshot(), restored.LastSnapshot()
	compareSnapshots(t, []Snapshot{a}, []Snapshot{b})
	for i := range a.Clusters {
		if a.Clusters[i].PeakDensity != b.Clusters[i].PeakDensity {
			t.Fatalf("cluster %d peak density differs: %v vs %v",
				i, a.Clusters[i].PeakDensity, b.Clusters[i].PeakDensity)
		}
	}

	// Event cursors must agree even when MaxEvents trimmed the log.
	ea, ca := e.EventsSince(0)
	eb, cb := restored.EventsSince(0)
	if ca != cb {
		t.Fatalf("event cursors differ: %d vs %d", ca, cb)
	}
	compareEvents(t, ea, eb)
	if sa, sb := e.Stats(), restored.Stats(); sa != sb {
		t.Fatalf("published stats differ:\n  original %+v\n  restored %+v", sa, sb)
	}
}

// TestCheckpointTokenStream exercises the token-set seed codec: text
// points carry map-backed token sets that must round-trip through the
// checkpoint's sorted-slice encoding.
func TestCheckpointTokenStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	pts := make([]stream.Point, 1200)
	for i := range pts {
		toks := distance.NewTokenSet(vocab[rng.Intn(4)], vocab[4+rng.Intn(4)], vocab[rng.Intn(8)])
		pts[i] = stream.Point{ID: int64(i), Tokens: toks, Label: stream.NoLabel, Time: float64(i) / 1000}
	}
	cfg := Config{Radius: 0.6, Tau: 0.9, InitPoints: 100,
		EvolutionInterval: 0.25, SweepInterval: 0.2}

	ref, refSnaps := batchRun(t, cfg, pts, 50, 600)
	ck, ckSnaps := checkpointRun(t, cfg, pts, 50, 600, 600)
	compareSnapshots(t, ckSnaps, refSnaps)
	compareCells(t, ck, ref)
	compareEvents(t, ck.Events(), ref.Events())
}

// TestCheckpointConfigMismatch asserts a checkpoint refuses to restore
// under a different configuration instead of silently diverging.
func TestCheckpointConfigMismatch(t *testing.T) {
	pts := burstyStream(9, 800, 2, 0.2)
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200,
		EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, _ := batchRun(t, cfg, pts, 100, 400)

	var buf bytes.Buffer
	if err := e.EncodeCheckpoint(&buf); err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	other := cfg
	other.Radius = 0.9
	if _, err := DecodeCheckpoint(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("DecodeCheckpoint accepted a checkpoint written under a different radius")
	}
}

// TestCheckpointCorruption asserts a flipped payload byte is caught by
// the CRC and a truncated checkpoint is caught by the length prefix —
// recovery must never build an engine from damaged state.
func TestCheckpointCorruption(t *testing.T) {
	pts := burstyStream(13, 800, 2, 0.2)
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200,
		EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, _ := batchRun(t, cfg, pts, 100, 400)

	var buf bytes.Buffer
	if err := e.EncodeCheckpoint(&buf); err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodeCheckpoint(cfg, bytes.NewReader(flipped)); err == nil {
		t.Fatal("DecodeCheckpoint accepted a corrupted payload")
	}

	for _, cut := range []int{4, 19, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeCheckpoint(cfg, bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("DecodeCheckpoint accepted a checkpoint truncated to %d bytes", cut)
		}
	}
}
