package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/densitymountain/edmstream/internal/stream"
)

func testDecay() stream.Decay { return stream.Decay{A: 0.998, Lambda: 1000} }

func numericPoint(id int64, t float64, coords ...float64) stream.Point {
	return stream.Point{ID: id, Time: t, Vector: coords, Label: stream.NoLabel}
}

func TestCellAbsorbMatchesRecomputation(t *testing.T) {
	// Incrementally absorbing points (Eq. 8) must equal recomputing the
	// density from scratch as the sum of freshness values (Eq. 6).
	d := testDecay()
	c := newCell(1, numericPoint(0, 0, 0, 0))
	arrivals := []float64{0.001, 0.002, 0.01, 0.5, 0.5, 1.2, 3.0}
	for i, at := range arrivals {
		c.absorb(at, d)
		now := at
		want := d.Freshness(now, 0) // the seed point
		for _, prev := range arrivals[:i+1] {
			want += d.Freshness(now, prev)
		}
		got := c.Density(now, d)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("after %d absorbs: density %v, want %v", i+1, got, want)
		}
	}
	if c.Count() != int64(1+len(arrivals)) {
		t.Errorf("Count = %d, want %d", c.Count(), 1+len(arrivals))
	}
}

func TestCellDensityDecaysWithoutAbsorption(t *testing.T) {
	d := testDecay()
	c := newCell(1, numericPoint(0, 0, 1, 1))
	d0 := c.Density(0, d)
	d1 := c.Density(1, d)
	d2 := c.Density(2, d)
	if !(d0 > d1 && d1 > d2) {
		t.Errorf("density should decay monotonically: %v, %v, %v", d0, d1, d2)
	}
	if d0 != 1 {
		t.Errorf("initial density = %v, want 1", d0)
	}
}

func TestCellDistances(t *testing.T) {
	c1 := newCell(1, numericPoint(0, 0, 0, 0))
	c2 := newCell(2, numericPoint(1, 0, 3, 4))
	if got := c1.distanceToCell(c2); math.Abs(got-5) > 1e-12 {
		t.Errorf("distanceToCell = %v, want 5", got)
	}
	if got := c1.distanceToPoint(numericPoint(9, 0, 0, 2)); math.Abs(got-2) > 1e-12 {
		t.Errorf("distanceToPoint = %v, want 2", got)
	}
}

func TestHigherRanked(t *testing.T) {
	d := testDecay()
	a := newCell(1, numericPoint(0, 0, 0, 0))
	b := newCell(2, numericPoint(1, 0, 1, 1))
	// Same density: the lower ID wins the tie-break.
	if !higherRanked(a, b, 0, d) {
		t.Error("tie-break should rank the lower cell ID higher")
	}
	if higherRanked(b, a, 0, d) {
		t.Error("tie-break must be antisymmetric")
	}
	// Give b more density: it must outrank a.
	b.absorb(0.001, d)
	if !higherRanked(b, a, 0.001, d) {
		t.Error("denser cell should outrank")
	}
}

// Property: higherRanked is a strict total order on any set of cells
// at any observation time (antisymmetric and total), which is what the
// DP-Tree's single-root invariant relies on.
func TestHigherRankedTotalOrderQuick(t *testing.T) {
	d := testDecay()
	prop := func(rhoA, rhoB uint16, now uint8) bool {
		a := newCell(1, numericPoint(0, 0, 0, 0))
		b := newCell(2, numericPoint(1, 0, 1, 1))
		a.rho = 1 + float64(rhoA%1000)
		b.rho = 1 + float64(rhoB%1000)
		at := float64(now) / 10
		ab := higherRanked(a, b, at, d)
		ba := higherRanked(b, a, at, d)
		return ab != ba
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCellAccessors(t *testing.T) {
	p := numericPoint(7, 1.5, 2, 3)
	c := newCell(42, p)
	if c.ID() != 42 {
		t.Errorf("ID = %d", c.ID())
	}
	if c.Seed().Vector[0] != 2 || c.Seed().Vector[1] != 3 {
		t.Errorf("Seed = %v", c.Seed())
	}
	if c.Active() {
		t.Error("new cell should be inactive")
	}
	if !math.IsInf(c.Delta(), 1) {
		t.Errorf("new cell Delta = %v, want +Inf", c.Delta())
	}
	if c.Dependency() != nil {
		t.Error("new cell should have no dependency")
	}
	// The seed is cloned: mutating the original point must not leak in.
	p.Vector[0] = 99
	if c.Seed().Vector[0] == 99 {
		t.Error("cell seed aliases the caller's point")
	}
}
