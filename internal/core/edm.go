package core

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"github.com/densitymountain/edmstream/internal/index"
	"github.com/densitymountain/edmstream/internal/stream"
)

// EDMStream is the density-mountain stream clustering algorithm of
// Sec. 4. It consumes a timestamped point stream through Insert (or
// InsertBatch, which amortizes the per-point bookkeeping) and can be
// queried at any time for the current clustering (Snapshot), the
// decision graph (DecisionGraph) and the cluster evolution log
// (Events).
//
// Concurrency: all mutating methods (Insert, InsertBatch, Snapshot,
// Clusters, Refresh, DecisionGraph, ...) must be called from a single
// owner goroutine. The read-only serving methods — LastSnapshot,
// Assign, AssignBatch, Events and Stats — are safe to call from any
// number of goroutines concurrently with ingestion: they work off
// state the owner publishes through atomic pointers and never block
// or race the write path.
type EDMStream struct {
	cfg Config

	tree *dpTree
	res  *reservoir
	// cells indexes every cluster-cell (active and inactive) by ID in
	// a dense ID-indexed slab (see cellSlab).
	cells cellSlab
	// seedIdx indexes every cell's seed for nearest-seed probes. It is
	// resolved lazily from the first point (grid for low-dimensional
	// Euclidean streams, linear scan otherwise — see IndexPolicy).
	seedIdx index.SeedIndex
	// lnDecay is λ·ln(1/a), the per-second log-density decay rate used
	// to maintain Cell.logNorm.
	lnDecay float64

	nextCellID int64
	now        float64

	tuner   tauTuner
	tracker *evolutionTracker

	initialized   bool
	lastSweep     float64
	lastEvolution float64

	// pub is the atomically published read side: the latest clustering
	// snapshot plus the holder of its lazily built query index. Readers
	// (LastSnapshot, Assign) load it without locking; the owner stores
	// a fresh value at every clustering refresh.
	pub atomic.Pointer[published]

	stats Stats
	// mirror and statsShadow implement the race-free Stats view:
	// statsShadow is the owner's copy of the last published counters,
	// and mirror holds one atomic per field, stored only when a value
	// changed (publishStats) so concurrent Stats readers never race the
	// plain counters on the hot path.
	mirror      statsMirror
	statsShadow Stats

	// fullExtract, when set, replaces the incremental cluster
	// extraction with the from-scratch rebuild (the PR 2 behavior):
	// msdSubtrees walk, per-refresh membership sets and per-refresh
	// seed clones. Output is byte-identical; only the refresh cost
	// differs. It exists as the baseline for the serve benchmark and
	// the equivalence property tests.
	fullExtract bool

	// onProbe is the reusable nearest-seed distance callback: it stamps
	// measured distances onto cells for the triangle-inequality filter.
	// probeStamp parameterizes it per probe so the hot path does not
	// allocate a closure per insert.
	onProbe    func(id int64, d float64)
	probeStamp int64

	// Parallel route phase (see route.go). workers is the resolved
	// ingest worker count (Config.IngestWorkers, with 0 mapped to
	// GOMAXPROCS at construction); pool holds the lazily started
	// persistent worker pool, routed and job the phase's reusable
	// buffers and shared state; batchNew, while non-nil, collects
	// every cell created since the current batch's route snapshot was
	// frozen (addCell appends to it) so the apply phase can validate
	// speculations against them, with batchNewBuf keeping its backing
	// array across batches.
	workers     int
	pool        *routePool
	routed      []routedPoint
	job         routeJob
	batchNew    []*Cell
	batchNewBuf []*Cell

	// acks, while non-nil, collects the ID of the cluster-cell that
	// absorbed (or was seeded by) each ingested point, in point order.
	// Set only for the duration of an InsertBatchAssigned call; the
	// plain Insert/InsertBatch paths leave it nil and pay nothing.
	acks *[]int64

	// Scratch buffers reused across calls so steady-state ingestion
	// does not allocate: one backs single-point Inserts, demote/repair
	// back the sweep, ordered backs sortedCells, deltas backs the
	// adaptive-τ retune and part the partition handed to the evolution
	// tracker.
	one     [1]stream.Point
	demote  []*Cell
	repair  []*Cell
	ordered []*Cell
	deltas  []float64
	part    []obsCluster
}

// published is one atomically swapped read-side state: an immutable
// snapshot view and the holder of its query index. The snapshot's
// slices are shared with the engine's persistent cluster views and
// with whatever the readers currently hold — all of it read-only by
// contract — so publishing is O(clusters), not O(cells).
type published struct {
	snap Snapshot
	// assign holds the frozen query index for this snapshot, built
	// lazily by the first Assign call and then shared. When membership
	// did not change between refreshes the holder itself is carried
	// forward, so steady-state refreshes never invalidate the index.
	assign *assignHolder
}

type assignHolder struct {
	frozen atomic.Pointer[index.Frozen]
}

// statsMirror holds the atomically readable copy of every Stats field,
// updated by publishStats at the end of each public mutating call.
type statsMirror struct {
	points, cellsCreated                                         atomic.Int64
	activeCells, inactiveCells                                   atomic.Int64
	promotions, demotions, deletions                             atomic.Int64
	depCandidates, filteredDensity, filteredTriangle, depRelinks atomic.Int64
	depUpdateNanos, assignNanos                                  atomic.Int64
	seedCandidates, evolutionEvents                              atomic.Int64
	speculativeRoutes, speculationMisses                         atomic.Int64
}

// New creates an EDMStream instance with the given configuration.
func New(cfg Config) (*EDMStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e := &EDMStream{
		cfg:     cfg,
		tree:    newDPTree(cfg.Decay),
		res:     newReservoir(),
		lnDecay: cfg.Decay.Lambda * math.Log(1/cfg.Decay.A),
		tracker: newEvolutionTracker(cfg.MaxEvents),
		workers: cfg.IngestWorkers,
	}
	if e.workers == 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.tree.slab = &e.cells
	e.onProbe = func(id int64, d float64) {
		c := e.cells.get(id)
		c.lastDist = d
		c.lastDistStamp = e.probeStamp
		e.stats.SeedCandidates++
	}
	return e, nil
}

// maxAutoGridDim is the largest stream dimensionality for which
// IndexAuto still selects the grid index: beyond it, enumerating the
// 3^d neighboring buckets costs more than it saves over the linear
// scan on realistic cell counts.
const maxAutoGridDim = 8

// ensureIndex resolves the nearest-seed index from the first observed
// point: grid for Euclidean streams within the policy's
// dimensionality budget, linear scan otherwise. The grid is shared
// with the DP-Tree, whose dependency searches use it to expand bucket
// shells instead of scanning every active cell.
func (e *EDMStream) ensureIndex(p stream.Point) {
	if e.seedIdx != nil {
		return
	}
	useGrid := false
	switch e.cfg.IndexPolicy {
	case IndexGrid:
		useGrid = !p.IsText()
	case IndexLinear:
	default: // IndexAuto
		useGrid = !p.IsText() && p.Dim() > 0 && p.Dim() <= maxAutoGridDim
	}
	if useGrid {
		g := index.NewGrid(e.cfg.Radius)
		e.seedIdx = g
		e.tree.accel = g
	} else {
		e.seedIdx = index.NewLinear()
	}
}

// IndexKind reports which nearest-seed index the stream resolved to
// ("grid", "linear", or "" before the first point).
func (e *EDMStream) IndexKind() string {
	if e.seedIdx == nil {
		return ""
	}
	return e.seedIdx.Kind()
}

// addCell registers a newly created cell in the cell slab and the seed
// index, and stamps its decay-normalized log-density key. While a
// routed batch is being applied the cell is also recorded in batchNew:
// it postdates the batch's route snapshot, so speculation validation
// must consider it.
func (e *EDMStream) addCell(c *Cell) {
	e.ensureIndex(c.seed)
	e.cells.put(c)
	e.seedIdx.Insert(c.id, c.seed)
	e.refreshLogNorm(c)
	if e.batchNew != nil {
		e.batchNew = append(e.batchNew, c)
	}
}

// removeCell unregisters a deleted cell.
func (e *EDMStream) removeCell(c *Cell) {
	e.seedIdx.Remove(c.id, c.seed)
	e.cells.remove(c.id)
}

// refreshLogNorm recomputes c's decay-normalized log-density key after
// its stored density changed (see Cell.logNorm).
func (e *EDMStream) refreshLogNorm(c *Cell) {
	c.logNorm = math.Log(c.rho) + e.lnDecay*c.rhoTime
}

// Name implements stream.Clusterer.
func (e *EDMStream) Name() string { return "EDMStream" }

// Config returns the effective configuration (defaults applied).
func (e *EDMStream) Config() Config { return e.cfg }

// Now returns the latest stream time observed.
func (e *EDMStream) Now() float64 { return e.now }

// Stats returns a copy of the internal counters. It is safe to call
// from any goroutine concurrently with ingestion. Called from the
// owner goroutine, the values are exact as of the end of its most
// recent public call; a concurrent reader racing the owner sees each
// counter individually no staler than the owner's previous call, but
// the fields are loaded independently and may mix two adjacent
// publications.
func (e *EDMStream) Stats() Stats {
	m := &e.mirror
	return Stats{
		Points:               m.points.Load(),
		CellsCreated:         m.cellsCreated.Load(),
		ActiveCells:          int(m.activeCells.Load()),
		InactiveCells:        int(m.inactiveCells.Load()),
		Promotions:           m.promotions.Load(),
		Demotions:            m.demotions.Load(),
		Deletions:            m.deletions.Load(),
		DependencyCandidates: m.depCandidates.Load(),
		FilteredByDensity:    m.filteredDensity.Load(),
		FilteredByTriangle:   m.filteredTriangle.Load(),
		DependencyRelinks:    m.depRelinks.Load(),
		DependencyUpdateTime: time.Duration(m.depUpdateNanos.Load()),
		AssignTime:           time.Duration(m.assignNanos.Load()),
		SeedCandidates:       m.seedCandidates.Load(),
		EvolutionEvents:      m.evolutionEvents.Load(),
		SpeculativeRoutes:    m.speculativeRoutes.Load(),
		SpeculationMisses:    m.speculationMisses.Load(),
	}
}

// publishStats copies the owner's plain counters into the atomic
// mirror so concurrent Stats readers never touch the hot-path fields.
// Only fields whose value changed are stored, which keeps the cost of
// a single-point Insert at a handful of atomic stores.
func (e *EDMStream) publishStats() {
	s := e.stats
	s.ActiveCells = e.tree.size()
	s.InactiveCells = e.res.size()
	s.EvolutionEvents = int64(e.tracker.total())
	o := &e.statsShadow
	m := &e.mirror
	if s.Points != o.Points {
		m.points.Store(s.Points)
	}
	if s.CellsCreated != o.CellsCreated {
		m.cellsCreated.Store(s.CellsCreated)
	}
	if s.ActiveCells != o.ActiveCells {
		m.activeCells.Store(int64(s.ActiveCells))
	}
	if s.InactiveCells != o.InactiveCells {
		m.inactiveCells.Store(int64(s.InactiveCells))
	}
	if s.Promotions != o.Promotions {
		m.promotions.Store(s.Promotions)
	}
	if s.Demotions != o.Demotions {
		m.demotions.Store(s.Demotions)
	}
	if s.Deletions != o.Deletions {
		m.deletions.Store(s.Deletions)
	}
	if s.DependencyCandidates != o.DependencyCandidates {
		m.depCandidates.Store(s.DependencyCandidates)
	}
	if s.FilteredByDensity != o.FilteredByDensity {
		m.filteredDensity.Store(s.FilteredByDensity)
	}
	if s.FilteredByTriangle != o.FilteredByTriangle {
		m.filteredTriangle.Store(s.FilteredByTriangle)
	}
	if s.DependencyRelinks != o.DependencyRelinks {
		m.depRelinks.Store(s.DependencyRelinks)
	}
	if s.DependencyUpdateTime != o.DependencyUpdateTime {
		m.depUpdateNanos.Store(int64(s.DependencyUpdateTime))
	}
	if s.AssignTime != o.AssignTime {
		m.assignNanos.Store(int64(s.AssignTime))
	}
	if s.SeedCandidates != o.SeedCandidates {
		m.seedCandidates.Store(s.SeedCandidates)
	}
	if s.EvolutionEvents != o.EvolutionEvents {
		m.evolutionEvents.Store(s.EvolutionEvents)
	}
	if s.SpeculativeRoutes != o.SpeculativeRoutes {
		m.speculativeRoutes.Store(s.SpeculativeRoutes)
	}
	if s.SpeculationMisses != o.SpeculationMisses {
		m.speculationMisses.Store(s.SpeculationMisses)
	}
	e.statsShadow = s
}

// Tau returns the cluster-separation threshold currently in effect.
func (e *EDMStream) Tau() float64 { return e.tuner.tau }

// Alpha returns the balance parameter of the adaptive τ objective
// (meaningful after initialization when AdaptiveTau is enabled).
func (e *EDMStream) Alpha() float64 { return e.tuner.alpha }

// activeThreshold returns the density above which a cell is active.
func (e *EDMStream) activeThreshold() float64 {
	return e.cfg.Decay.ActiveThreshold(e.cfg.Beta, e.cfg.Rate)
}

// ReservoirBound returns the theoretical upper bound on the outlier
// reservoir size for the configured parameters (Sec. 4.4), used by the
// Fig. 16 experiment.
func (e *EDMStream) ReservoirBound() float64 {
	return e.cfg.DeleteDelay*e.cfg.Rate + 1/e.cfg.Beta
}

// Insert consumes one stream point. Implements stream.Clusterer.
func (e *EDMStream) Insert(p stream.Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.one[0] = p
	e.ingest(e.one[:], nil)
	e.publishStats()
	return nil
}

// InsertBatch consumes a batch of stream points in order. It is
// equivalent to inserting the points one by one — identical cells,
// snapshots and evolution events — but amortizes the per-point
// bookkeeping: validation runs up front for the whole batch, and runs
// of consecutive points absorbed by the same active cell share one
// density-band dependency update, one log-density refresh and one
// density-band rebucket instead of one each per point.
//
// When more than one ingest worker is configured (Config.IngestWorkers;
// the default is GOMAXPROCS) and the batch is large enough to pay for
// the join, the routing work — finding each point's nearest seed,
// which dominates the ingest cost — runs first on a parallel worker
// pool against an epoch-frozen view of the seed index, and the serial
// apply phase validates each speculation against the state it has
// changed since (see route.go). The clustering output is byte-identical
// for every worker count.
//
// Validation is all-or-nothing: if any point is invalid the whole
// batch is rejected with no state change. An empty batch is a no-op.
func (e *EDMStream) InsertBatch(pts []stream.Point) error {
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			return fmt.Errorf("core: batch point %d rejected: %w", i, err)
		}
	}
	e.ingest(pts, e.routeBatch(pts))
	e.publishStats()
	return nil
}

// InsertBatchAssigned consumes a batch exactly like InsertBatch —
// identical validation, routing, clustering output — and additionally
// records, per point, the ID of the cluster-cell that absorbed it (the
// new cell's ID when the point seeded one). dst is overwritten,
// reusing its backing array, and returned; pass nil to allocate. On
// error (any invalid point rejects the whole batch with no state
// change) the returned slice is dst truncated to zero length.
//
// The recorded IDs name the cells at absorption time: a maintenance
// sweep later in the same batch may deactivate or delete an acked
// cell, and cell IDs are not cluster IDs (use Assign against a
// published snapshot for cluster membership). The serving daemon uses
// this call to hand each coalesced ingest request its per-point acks.
func (e *EDMStream) InsertBatchAssigned(pts []stream.Point, dst []int64) ([]int64, error) {
	dst = dst[:0]
	for i := range pts {
		if err := pts[i].Validate(); err != nil {
			return dst, fmt.Errorf("core: batch point %d rejected: %w", i, err)
		}
	}
	if cap(dst) < len(pts) {
		dst = make([]int64, 0, len(pts))
	}
	e.acks = &dst
	e.ingest(pts, e.routeBatch(pts))
	e.acks = nil
	e.publishStats()
	return dst, nil
}

// absorbRun tracks a run of consecutive points absorbed by the same
// active cell. The run's dependency maintenance is deferred to
// flushRun: because all densities decay at the same rate, the density
// bands of the individual absorptions tile the run's combined band
// exactly in the decay-normalized log domain, so one update over
// [logBefore, logNorm) at the run's final time links exactly the cells
// the per-point updates would have linked.
type absorbRun struct {
	cell *Cell
	// logBefore is cell.logNorm before the run's first absorption (the
	// lower edge of the combined density band).
	logBefore float64
	// stamp is stats.Points at the run's last probe; it keys the
	// triangle-inequality filter's distance stamps.
	stamp int64
	// last is the stream time of the run's last absorption.
	last float64
}

// ingest drives the point loop shared by Insert and InsertBatch. All
// points must be pre-validated. Runs of consecutive points absorbed by
// the same active cell are coalesced; every other event — new cells,
// inactive-cell absorptions (which may cross the promotion threshold
// at a specific point), sweeps, evolution checks and initialization —
// flushes the open run first so it observes exactly the state a
// point-by-point ingestion would have produced.
//
// routed, when non-nil, carries one pre-computed speculation per point
// from the parallel route phase; each is validated (and repaired or
// re-routed when the apply phase invalidated it) by resolveRouted
// instead of probing the live index. Cells created while applying a
// routed batch are collected in batchNew for that validation.
func (e *EDMStream) ingest(pts []stream.Point, routed []routedPoint) {
	var run absorbRun
	detailed := e.cfg.DetailedStats
	if routed != nil {
		if e.batchNewBuf == nil {
			// batchNew non-nil is the "collecting" flag addCell checks,
			// so the buffer must exist even before any cell is recorded.
			e.batchNewBuf = make([]*Cell, 0, 16)
		}
		e.batchNew = e.batchNewBuf[:0]
	}
	for i := range pts {
		p := pts[i]
		if p.Time > e.now {
			e.now = p.Time
		}
		now := e.now
		e.stats.Points++
		e.ensureIndex(p)

		var start time.Time
		if detailed {
			start = time.Now()
		}
		var cell *Cell
		var absorbed bool
		if routed != nil {
			cell, absorbed = e.resolveRouted(p, routed[i])
		} else {
			cell, _, absorbed = e.nearestSeed(p)
		}
		if detailed {
			e.stats.AssignTime += time.Since(start)
		}

		switch {
		case !absorbed:
			// No cell's seed is within Radius: the point seeds a new
			// cluster-cell, cached in the outlier reservoir because of
			// its low density.
			e.flushRun(&run)
			c := newCell(e.nextCellID, p)
			c.seed.Time = now
			c.lastAbsorb = now
			c.rhoTime = now
			e.nextCellID++
			e.addCell(c)
			e.res.add(c)
			e.stats.CellsCreated++
			if e.initialized {
				e.maybePromote(c, now)
			}
			cell = c
		case cell == run.cell:
			// Same active cell as the open run: fold the point in and
			// leave the dependency maintenance to the flush.
			cell.absorb(now, e.cfg.Decay)
			run.stamp = e.stats.Points
			run.last = now
		case e.initialized && cell.active:
			e.flushRun(&run)
			run = absorbRun{cell: cell, logBefore: cell.logNorm, stamp: e.stats.Points, last: now}
			cell.absorb(now, e.cfg.Decay)
		default:
			// Inactive (or pre-initialization) cells cross the
			// promotion threshold at a specific point, so their
			// absorptions are never coalesced.
			e.flushRun(&run)
			cell.absorb(now, e.cfg.Decay)
			e.refreshLogNorm(cell)
			if e.initialized {
				e.maybePromote(cell, now)
			}
		}
		if e.acks != nil {
			// Ack the cell the point landed in: the absorbing cell, or
			// the cell the point just seeded. The ID names the cell at
			// absorption time; a later sweep may delete it.
			*e.acks = append(*e.acks, cell.id)
		}

		if !e.initialized {
			if e.stats.Points >= int64(e.cfg.InitPoints) {
				e.finalizeInit(now)
			}
			continue
		}

		if now-e.lastSweep >= e.cfg.SweepInterval {
			e.flushRun(&run)
			e.sweep(now)
			e.lastSweep = now
		}
		if e.cfg.EvolutionInterval > 0 && now-e.lastEvolution >= e.cfg.EvolutionInterval {
			e.flushRun(&run)
			e.refreshClustering(now)
			e.lastEvolution = now
		}
	}
	e.flushRun(&run)
	if routed != nil {
		// Zero the recorded pointers before truncating: the backing
		// array survives into the next batch and must not pin cells —
		// possibly already deleted — until it happens to be overwritten.
		clear(e.batchNew)
		e.batchNewBuf = e.batchNew[:0]
		e.batchNew = nil
	}
}

// flushRun applies the deferred maintenance of an open absorption run:
// the cell's log-density key is refreshed, it moves to its current
// density bucket, and one density-band dependency update covers every
// absorption of the run.
func (e *EDMStream) flushRun(run *absorbRun) {
	c := run.cell
	if c == nil {
		return
	}
	run.cell = nil
	e.refreshLogNorm(c)
	e.tree.rebucket(c)
	var start time.Time
	if e.cfg.DetailedStats {
		start = time.Now()
	}
	e.updateDependenciesBand(c, run.logBefore, run.last, run.stamp)
	if e.cfg.DetailedStats {
		e.stats.DependencyUpdateTime += time.Since(start)
	}
}

// nearestSeed returns the cell whose seed is closest to p among those
// within the cell radius, with the distance; ok is false when no cell
// can absorb the point. The per-cell distances measured during the
// probe are stamped onto the cells so the triangle-inequality filter
// can reuse them at no extra cost; with the grid index only the cells
// in the probed buckets are stamped, which merely narrows where that
// filter applies (Theorem 2 skips are optional, never required).
func (e *EDMStream) nearestSeed(p stream.Point) (*Cell, float64, bool) {
	e.probeStamp = e.stats.Points
	id, d, ok := e.seedIdx.NearestWithin(p, e.cfg.Radius, e.onProbe)
	if !ok {
		return nil, 0, false
	}
	return e.cells.get(id), d, true
}

// logBandSlack widens the density filter's log-domain band to absorb
// the rounding of the log transform: a candidate within the slack of a
// band edge is examined rather than skipped, which keeps the filter
// conservative (skipping is only ever an optimization, per Theorem 1).
const logBandSlack = 1e-6

// updateDependenciesBand restores the DP-Tree invariants after cell c
// absorbed one or more points, the last at stream time now, applying
// the density filter (Theorem 1) and the triangle-inequality filter
// (Theorem 2) to skip cells whose dependency cannot have changed.
//
// The density band is expressed directly in the decay-normalized log
// domain: every cell decays at the same rate, so densities at a common
// time compare exactly as the cells' logNorm keys do. logBefore is c's
// key before the absorption(s); c.logNorm is its refreshed key. Using
// the stored keys (instead of re-deriving the band from densities at
// now) costs no logarithms and makes consecutive per-point bands tile
// a coalesced run's combined band float-exactly.
func (e *EDMStream) updateDependenciesBand(c *Cell, logBefore, now float64, stamp int64) {
	distToC := c.lastDist
	haveDistToC := c.lastDistStamp == stamp

	examine := func(o *Cell) {
		if e.cfg.Filters&FilterTriangle != 0 && haveDistToC && o.lastDistStamp == stamp {
			// Theorem 2: ||p,s_o| − |p,s_c|| is a lower bound on
			// |s_o,s_c|; if it already exceeds o's dependent distance,
			// c cannot become o's new dependency.
			if math.Abs(o.lastDist-distToC) > o.delta {
				e.stats.FilteredByTriangle++
				return
			}
		}
		if !e.tree.outranks(c, o, now) {
			return
		}
		if d, below := o.distanceBelow(c, o.delta); below {
			e.tree.link(o, c, d)
			e.stats.DependencyRelinks++
		}
	}

	e.stats.DependencyCandidates += int64(len(e.tree.list) - 1)
	if e.cfg.Filters&FilterDensity != 0 {
		// Theorem 1: only cells whose density lies in the band the
		// absorption(s) moved c across can see their dependency move —
		// c outranked everything below the band already, and still
		// does not outrank anything at or above it. The band is a range
		// of logNorm keys (the slack absorbs log rounding, erring
		// toward examining), so only the density buckets covering the
		// band are enumerated — every skipped cell is filtered by
		// density without being touched.
		bandLo := logBefore - logBandSlack
		bandHi := c.logNorm + logBandSlack
		examined := int64(0)
		inBand := func(bucket []*Cell) {
			for _, o := range bucket {
				if o == c {
					continue
				}
				examined++
				if o.logNorm < bandLo || o.logNorm >= bandHi {
					e.stats.FilteredByDensity++
					continue
				}
				examine(o)
			}
		}
		// Enumerate the bucket range when it is narrow; otherwise walk
		// the occupied buckets instead. Both enumerate a superset of
		// the band; the per-cell check above stays authoritative.
		loF := math.Floor(bandLo / densBucketWidth)
		hiF := math.Floor(bandHi / densBucketWidth)
		if hiF-loF < float64(len(e.tree.byDensity)) {
			for b := int64(loF); b <= int64(hiF); b++ {
				inBand(e.tree.byDensity[b])
			}
		} else {
			for b, bucket := range e.tree.byDensity {
				if f := float64(b); f >= loF && f <= hiF {
					inBand(bucket)
				}
			}
		}
		e.stats.FilteredByDensity += int64(len(e.tree.list)-1) - examined
	} else {
		for _, o := range e.tree.list {
			if o != c {
				examine(o)
			}
		}
	}

	// c's own dependency: absorbing only raises c's decay-normalized
	// rank, so its higher-density set can only have shrunk. A root
	// stays a root (nothing re-enters the shrunk set); a linked cell
	// keeps its dependency if that dependency still outranks it (the
	// nearest member of a set remains nearest in any subset), and
	// recomputes from scratch otherwise.
	if c.dep != nil && !e.tree.outranks(c.dep, c, now) {
		e.tree.computeDependency(c, now)
	}
}

// maybePromote moves an inactive cell into the DP-Tree once its timely
// density reaches the active threshold (cluster-cell emergence,
// Sec. 4.3).
func (e *EDMStream) maybePromote(c *Cell, now float64) {
	if c.active || c.Density(now, e.cfg.Decay) < e.activeThreshold() {
		return
	}
	var start time.Time
	if e.cfg.DetailedStats {
		start = time.Now()
	}
	e.res.remove(c)
	e.tree.insert(c)
	e.tree.computeDependency(c, now)
	e.tree.retargetLower(c, now)
	e.stats.Promotions++
	if e.cfg.DetailedStats {
		e.stats.DependencyUpdateTime += time.Since(start)
	}
}

// sweep performs periodic maintenance: active cells whose density
// decayed below the threshold are moved (with their whole subtree) to
// the outlier reservoir (cluster-cell decay, Sec. 4.3), and inactive
// cells that have not absorbed points for ΔTdel are deleted
// (memory recycling, Sec. 4.4).
//
// Below-threshold cells are found through the density band index: in
// the decay-normalized log domain the threshold at `now` is a single
// key, so the sweep enumerates the occupied density buckets and scans
// cells only in those at or below the key — cells in higher buckets
// (the vast majority on a healthy stream) are never touched, and the
// occupied-bucket count is typically far below the cell count. Cells
// within the rounding slack of the key fall through to the exact
// density comparison.
func (e *EDMStream) sweep(now float64) {
	threshold := e.activeThreshold()
	key := math.Log(threshold) + e.lnDecay*now
	hiBucket := densBucketOf(key + logBandSlack)
	demote := e.demote[:0]
	for b, bucket := range e.tree.byDensity {
		if b > hiBucket {
			continue
		}
		for _, c := range bucket {
			if c.logNorm < key-logBandSlack {
				demote = append(demote, c)
			} else if c.logNorm < key+logBandSlack && c.Density(now, e.cfg.Decay) < threshold {
				demote = append(demote, c)
			}
		}
	}
	// Bucket iteration order is not deterministic; demotion order is.
	slices.SortFunc(demote, func(a, b *Cell) int { return cmp.Compare(a.id, b.id) })

	// Because every cell's dependency outranks it, a demoted cell's
	// dependents are below the threshold too and are demoted in the
	// same sweep — so demotions cannot orphan an active cell, and
	// cells that were already roots need no dependency search. The
	// repair pass below is defensive: it recomputes only cells that
	// verifiably lost their dependency to a demotion (possible in
	// principle at the rounding slack's edge), not every dep-less cell.
	repair := e.repair[:0]
	for _, c := range demote {
		for _, child := range c.children {
			repair = append(repair, child)
		}
		e.tree.remove(c)
		e.res.add(c)
		e.stats.Demotions++
	}
	for _, c := range repair {
		if c.active && c.dep == nil {
			e.tree.computeDependency(c, now)
		}
	}
	e.demote = demote[:0]
	e.repair = repair[:0]

	for _, c := range e.res.expire(now, e.cfg.DeleteDelay) {
		e.removeCell(c)
		e.stats.Deletions++
	}
}

// finalizeInit ends the initialization phase (Sec. 4.1): dependencies
// of all cached cells are computed to draw the decision graph, τ⁰ is
// chosen (by the configured selector or the static Tau), α is fitted,
// qualifying cells enter the DP-Tree and the first clustering snapshot
// is taken.
func (e *EDMStream) finalizeInit(now float64) {
	graph, deltas := e.initialDecisionGraph(now)

	tau0 := e.cfg.Tau
	if tau0 <= 0 {
		tau0 = e.cfg.TauSelector(graph)
	}
	if tau0 <= 0 {
		// Degenerate selector output: fall back to three times the mean
		// finite dependent distance, which separates only clearly
		// isolated mountains.
		var sum float64
		var n int
		for _, d := range deltas {
			sum += d
			n++
		}
		if n > 0 {
			tau0 = 3 * sum / float64(n)
		} else {
			tau0 = e.cfg.Radius * 4
		}
	}
	e.tuner.initialize(tau0, e.cfg.Alpha, deltas)

	// Cells that already meet the density threshold enter the DP-Tree
	// (in cell-ID order, so the active list — and everything downstream
	// of its iteration order — is deterministic).
	threshold := e.activeThreshold()
	for _, c := range e.sortedCells() {
		if c.Density(now, e.cfg.Decay) >= threshold {
			e.res.remove(c)
			e.tree.insert(c)
		}
	}
	for _, c := range e.tree.list {
		e.tree.computeDependency(c, now)
	}

	e.initialized = true
	e.lastSweep = now
	e.lastEvolution = now
	e.refreshClustering(now)
}

// sortedCells returns every cached cell ordered by ID. The slab is
// ID-indexed, so the order falls out of a linear walk; the returned
// slice is scratch owned by the engine and valid until the next call.
func (e *EDMStream) sortedCells() []*Cell {
	cells := e.ordered[:0]
	for _, c := range e.cells.byID {
		if c != nil {
			cells = append(cells, c)
		}
	}
	e.ordered = cells[:0]
	return cells
}

// initialDecisionGraph computes (ρ, δ) for every cached cell against
// all other cached cells, which is the decision graph shown to the
// user (or to the TauSelector heuristic) at initialization time. The
// per-cell dependency search goes through the seed index, so on
// gridded streams initialization is no longer quadratic in the cell
// count.
func (e *EDMStream) initialDecisionGraph(now float64) ([]DecisionPoint, []float64) {
	cells := e.sortedCells()
	graph := make([]DecisionPoint, 0, len(cells))
	var deltas []float64
	for _, c := range cells {
		best := math.Inf(1)
		if e.seedIdx != nil {
			cid := c.id
			if _, d, ok := e.seedIdx.NearestWhere(c.seed, func(id int64) bool {
				return id != cid && e.tree.outranks(e.cells.get(id), c, now)
			}); ok {
				best = d
			}
		}
		graph = append(graph, DecisionPoint{CellID: c.id, Rho: c.Density(now, e.cfg.Decay), Delta: best})
		if !math.IsInf(best, 1) {
			deltas = append(deltas, best)
		}
	}
	return graph, deltas
}

// DecisionGraph returns the current decision graph: the (ρ, δ) pair of
// every active cell (Fig. 15). Before initialization it is computed
// over all cached cells.
func (e *EDMStream) DecisionGraph() []DecisionPoint {
	now := e.now
	if !e.initialized {
		graph, _ := e.initialDecisionGraph(now)
		return graph
	}
	graph := make([]DecisionPoint, 0, e.tree.size())
	for _, c := range e.tree.list {
		graph = append(graph, DecisionPoint{CellID: c.id, Rho: c.Density(now, e.cfg.Decay), Delta: c.delta})
	}
	return graph
}

// refreshClustering recomputes τ (if adaptive), brings the cluster
// partition up to date, lets the evolution tracker diff it against the
// previous partition when membership changed, and atomically publishes
// the resulting snapshot for the read side.
//
// The extraction is incremental: only subtrees whose dependency links
// changed since the last refresh are reprocessed (see extract.go), the
// evolution diff is skipped entirely when no membership moved, and the
// published member views (CellIDs, SeedPoints) are reused from the
// previous refresh for clusters that did not change. With fullExtract
// set, the PR 2 from-scratch rebuild runs instead (identical output).
func (e *EDMStream) refreshClustering(now float64) {
	e.sweep(now)
	e.lastSweep = now

	if e.cfg.AdaptiveTau {
		deltas := e.deltas[:0]
		for _, c := range e.tree.list {
			deltas = append(deltas, c.delta)
		}
		e.deltas = deltas[:0]
		e.tuner.retune(deltas)
	}
	tau := e.tuner.tau

	if e.fullExtract {
		e.refreshClusteringFull(now, tau)
		return
	}

	changed := e.tree.extract(tau)
	clusters := e.tree.clusters
	if changed {
		part := e.part[:0]
		for _, cl := range clusters {
			// A cluster whose views are stale is exactly one whose
			// membership changed since the last refresh; the tracker
			// settles the others without touching their members.
			chg := !cl.viewsValid
			cl.buildViews()
			part = append(part, obsCluster{ids: cl.ids, prevID: cl.id, changed: chg})
		}
		e.part = part[:0]
		ids := e.tracker.observe(now, part)
		for i, cl := range clusters {
			cl.id = ids[i]
		}
		e.tree.partChanged = false
	}

	// lnNow is the decay-normalization offset at snapshot time: a
	// cell's timely density is exp(logNorm − lnNow), one exp instead of
	// one Pow per member (see Cell.logNorm).
	lnNow := e.lnDecay * now
	infos := make([]ClusterInfo, 0, len(clusters))
	for _, cl := range clusters {
		cl.buildViews()
		peak := cl.peak
		info := ClusterInfo{
			ID:          cl.id,
			PeakCellID:  peak.id,
			PeakDensity: math.Exp(peak.logNorm - lnNow),
			CellIDs:     cl.ids,
			SeedPoints:  cl.seeds,
		}
		// Member order (and with it the CellIDs ↔ SeedPoints
		// correspondence and the float summation order of Weight) is
		// fixed by cell ID so snapshots are fully deterministic.
		for _, c := range cl.members {
			info.Weight += math.Exp(c.logNorm - lnNow)
			info.Points += c.count
		}
		infos = append(infos, info)
	}
	sortClusterInfo(infos)
	e.publishSnapshot(now, tau, infos, changed)
}

// refreshClusteringFull is the preserved PR 2 refresh: a from-scratch
// msdSubtrees walk with per-refresh membership structures and seed
// clones, and an unconditional evolution diff. Its output is
// byte-identical to the incremental path; it exists as the baseline
// the serve benchmark and the equivalence property tests compare
// against.
func (e *EDMStream) refreshClusteringFull(now, tau float64) {
	// The incremental dirty set is not consumed on this path; drain it
	// so it cannot grow without bound (and cannot pin deleted cells).
	for _, c := range e.tree.dirty {
		c.dirtyMark = false
	}
	e.tree.dirty = e.tree.dirty[:0]
	e.tree.extractValid = false

	subtrees := e.tree.msdSubtrees(tau)
	peaks := make([]*Cell, 0, len(subtrees))
	members := make([][]*Cell, 0, len(subtrees))
	for peak, cells := range subtrees {
		peaks = append(peaks, peak)
		members = append(members, cells)
	}
	// Deterministic order (by peak cell id) before the tracker assigns
	// IDs.
	order := make([]int, len(peaks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return peaks[order[a]].id < peaks[order[b]].id })
	partition := make([]obsCluster, len(order))
	for i, idx := range order {
		sort.Slice(members[idx], func(a, b int) bool { return members[idx][a].id < members[idx][b].id })
		ids := make([]int64, len(members[idx]))
		for j, c := range members[idx] {
			ids[j] = c.id
		}
		partition[i] = obsCluster{ids: ids, changed: true}
	}
	ids := e.tracker.observe(now, partition)

	lnNow := e.lnDecay * now
	clusters := make([]ClusterInfo, 0, len(order))
	for i, idx := range order {
		peak := peaks[idx]
		info := ClusterInfo{
			ID:          ids[i],
			PeakCellID:  peak.id,
			PeakDensity: math.Exp(peak.logNorm - lnNow),
			CellIDs:     partition[i].ids,
		}
		for _, c := range members[idx] {
			// Clone the seed per refresh, as the PR 2 path did.
			info.SeedPoints = append(info.SeedPoints, c.seed.Clone())
			info.Weight += math.Exp(c.logNorm - lnNow)
			info.Points += c.count
		}
		clusters = append(clusters, info)
	}
	sortClusterInfo(clusters)
	e.publishSnapshot(now, tau, clusters, true)
}

// publishSnapshot atomically swaps in the new read-side state. When
// membership did not change, the previous snapshot's query-index
// holder is carried forward, so steady-state refreshes never
// invalidate a built index.
func (e *EDMStream) publishSnapshot(now, tau float64, clusters []ClusterInfo, changed bool) {
	pub := &published{snap: Snapshot{
		Time:         now,
		Tau:          tau,
		Clusters:     clusters,
		OutlierCells: e.res.size(),
		ActiveCells:  e.tree.size(),
	}}
	if prev := e.pub.Load(); prev != nil && !changed {
		pub.assign = prev.assign
	} else {
		pub.assign = &assignHolder{}
	}
	e.pub.Store(pub)
}

// Refresh recomputes the clustering at the latest observed stream time
// and publishes it, returning the published (read-only) snapshot
// view. It is the refresh primitive behind Snapshot, exposed so
// benchmarks and serving loops can trigger a refresh without paying
// for Snapshot's defensive deep copy. The returned snapshot shares
// its slices with the published state and must be treated as
// read-only.
func (e *EDMStream) Refresh() Snapshot {
	if !e.initialized {
		e.finalizeInit(e.now)
	} else {
		e.refreshClustering(e.now)
		e.lastEvolution = e.now
	}
	e.publishStats()
	if pub := e.pub.Load(); pub != nil {
		return pub.snap
	}
	return Snapshot{}
}

// Snapshot refreshes and returns the current clustering. It forces
// initialization if the stream is still in its init phase. The result
// is an independent deep copy the caller may hold or mutate freely;
// serving loops that only read should prefer LastSnapshot, which
// returns the shared published view without copying.
func (e *EDMStream) Snapshot() Snapshot {
	return e.Refresh().clone()
}

// LastSnapshot returns the most recent published snapshot without
// recomputing the clustering. It is safe to call from any goroutine
// concurrently with ingestion. The returned snapshot is a shared
// read-only view: callers must not modify its slices (use Snapshot
// for an owned copy).
func (e *EDMStream) LastSnapshot() Snapshot {
	if pub := e.pub.Load(); pub != nil {
		return pub.snap
	}
	return Snapshot{}
}

// Clusters implements stream.Clusterer: it refreshes the clustering at
// time now and reports the macro-clusters. Like Snapshot it returns
// owned data (MacroCluster centers alias the deep copy, not the shared
// published views), so harness code may mutate the result freely.
func (e *EDMStream) Clusters(now float64) []stream.MacroCluster {
	if now > e.now {
		e.now = now
	}
	return e.Snapshot().MacroClusters()
}

// Events returns the cluster evolution log recorded so far. It is safe
// to call from any goroutine concurrently with ingestion.
func (e *EDMStream) Events() []Event {
	return e.tracker.logView()
}

// EventsSince returns the evolution events with sequence number >=
// cursor together with the next cursor, supporting resumable,
// incremental consumption of the log. Sequence numbers start at 0 and
// are assigned in log order; the returned cursor is the sequence
// number one past the last event recorded so far, so passing it back
// yields exactly the events recorded in between — and it only advances
// when new events are recorded, never from an intervening refresh that
// detected no activity.
//
// A cursor at or past the end returns an empty slice (never an error)
// with the current end cursor: EventsSince(0) on a fresh engine is
// (nil, 0). When Config.MaxEvents trims the log, a cursor pointing
// into the trimmed prefix resumes at the oldest retained event — the
// skipped events are unrecoverable, exactly as with Events.
//
// Like Events it is safe to call from any goroutine concurrently with
// ingestion.
func (e *EDMStream) EventsSince(cursor uint64) ([]Event, uint64) {
	return e.tracker.eventsSince(cursor)
}

// SetFullExtraction switches the engine to the from-scratch cluster
// extraction (the PR 2 refresh path) when on is true. The clustering
// output is byte-identical to the incremental default; only the
// refresh cost differs. It exists for benchmarking and for the
// incremental-vs-full equivalence tests, and must be set before the
// first point is ingested.
func (e *EDMStream) SetFullExtraction(on bool) { e.fullExtract = on }

// Assign classifies a point against the most recent published
// snapshot: it returns the ID of the cluster whose member cell's seed
// is nearest to p within the cell radius, or ok == false when no
// cluster claims the point (it would be an outlier) or no snapshot has
// been published yet. It is safe to call from any number of goroutines
// concurrently with ingestion, never blocks the write path, and does
// not allocate.
//
// The classification is against the published snapshot, not the live
// cells: a point near a cell that emerged after the last refresh is
// not matched until the next refresh publishes it.
func (e *EDMStream) Assign(p stream.Point) (int, bool) {
	pub := e.pub.Load()
	if pub == nil {
		return 0, false
	}
	return e.frozenIndex(pub).Assign(p)
}

// AssignBatch classifies every point in pts against one consistent
// published snapshot, overwriting dst (reusing its backing) with one
// cluster ID per point and returning it; outliers get AssignOutlier.
// Like Assign it is safe for concurrent use.
func (e *EDMStream) AssignBatch(pts []stream.Point, dst []int) []int {
	dst = dst[:0]
	pub := e.pub.Load()
	if pub == nil {
		for range pts {
			dst = append(dst, AssignOutlier)
		}
		return dst
	}
	idx := e.frozenIndex(pub)
	for i := range pts {
		if id, ok := idx.Assign(pts[i]); ok {
			dst = append(dst, id)
		} else {
			dst = append(dst, AssignOutlier)
		}
	}
	return dst
}

// AssignOutlier is the cluster ID AssignBatch reports for points no
// cluster claims.
const AssignOutlier = -1

// frozenIndex returns the query index for the published state,
// building it on first use. Concurrent first queries may build it
// twice; the CAS keeps exactly one and the loser's work is discarded
// (the index derives deterministically from the immutable snapshot,
// so both candidates are interchangeable).
func (e *EDMStream) frozenIndex(pub *published) *index.Frozen {
	if f := pub.assign.frozen.Load(); f != nil {
		return f
	}
	b := index.NewFrozenBuilder(e.cfg.Radius)
	for ci := range pub.snap.Clusters {
		cl := &pub.snap.Clusters[ci]
		for i, id := range cl.CellIDs {
			b.Add(id, cl.SeedPoints[i], cl.ID)
		}
	}
	f := b.Freeze()
	if !pub.assign.frozen.CompareAndSwap(nil, f) {
		f = pub.assign.frozen.Load()
	}
	return f
}

// CheckInvariants validates the DP-Tree invariants; it returns an error
// describing the first violation, or nil. It exists for tests and
// debugging.
func (e *EDMStream) CheckInvariants() error {
	if msg := e.tree.checkInvariants(e.now); msg != "" {
		return fmt.Errorf("core: invariant violation: %s", msg)
	}
	live := 0
	for id, c := range e.cells.byID {
		if c == nil {
			continue
		}
		live++
		if c.id != int64(id) {
			return fmt.Errorf("core: cell slab slot %d holds cell id %d", id, c.id)
		}
		if c.active {
			if c.treeIdx < 0 || c.treeIdx >= len(e.tree.list) || e.tree.list[c.treeIdx] != c {
				return fmt.Errorf("core: active cell %d missing from DP-Tree", id)
			}
		} else {
			if _, ok := e.res.cells[c.id]; !ok {
				return fmt.Errorf("core: inactive cell %d missing from reservoir", id)
			}
		}
	}
	if live != e.cells.len() {
		return fmt.Errorf("core: cell slab count %d does not match live slots %d", e.cells.len(), live)
	}
	if e.tree.size()+e.res.size() != e.cells.len() {
		return fmt.Errorf("core: tree (%d) + reservoir (%d) != total cells (%d)", e.tree.size(), e.res.size(), e.cells.len())
	}
	if e.seedIdx != nil && e.seedIdx.Len() != e.cells.len() {
		return fmt.Errorf("core: seed index size %d != cell slab size %d", e.seedIdx.Len(), e.cells.len())
	}
	if e.seedIdx == nil && e.cells.len() > 0 {
		return fmt.Errorf("core: %d cells registered without a seed index", e.cells.len())
	}
	if !e.fullExtract {
		if msg := e.tree.clusterBookkeepingInvariants(); msg != "" {
			return fmt.Errorf("core: invariant violation: %s", msg)
		}
	}
	return nil
}
