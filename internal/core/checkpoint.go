package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"github.com/densitymountain/edmstream/internal/distance"
	"github.com/densitymountain/edmstream/internal/index"
	"github.com/densitymountain/edmstream/internal/stream"
)

// This file implements engine-state checkpoints: EncodeCheckpoint
// serializes every piece of state that influences future output, and
// DecodeCheckpoint rebuilds an engine that continues the stream
// byte-identically to one that was never checkpointed (the
// checkpoint_equiv_test.go property). The durability layer
// (internal/wal) persists these checkpoints so recovery only replays
// the log tail written after the last one.
//
// What must be stored exactly (and why) versus what is rebuilt:
//
//   - The active-cell list order: the adaptive-τ retune collects
//     dependent distances in list order and the objective sums floats
//     in that order, so the order is part of the output.
//   - The extraction dirty list (IDs, in order) and each cell's
//     children order: they drive which subtrees the next incremental
//     extraction reprocesses and in what order.
//   - The incremental cluster partition (peak, members, stable ID,
//     view validity) plus extractTau/extractValid/partChanged: the
//     strongness-flip fast path in link() compares against extractTau,
//     and the tracker diff only runs when membership moved.
//   - The full Stats block: Stats.Points doubles as the probe stamp
//     for the triangle-inequality filter (lastDistStamp).
//   - The published snapshot verbatim: its cluster weights were
//     computed with the decay normalization of their refresh time and
//     cannot be re-derived later.
//
// Rebuilt instead of stored: the seed index (inserting cells in ID
// order is exact because every index search breaks distance ties
// toward the lowest cell ID), the density-band buckets (per-candidate
// examination is order-independent and every sweep sorts by ID), the
// logNorm keys (a pure function of rho/rhoTime), and the extraction
// epoch stamps (only equality within one pass matters).

// ckptMagic identifies a checkpoint payload; the trailing byte is the
// format version.
var ckptMagic = [8]byte{'E', 'D', 'M', 'C', 'K', 'P', '1'}

// ckptPoint is the serializable form of a stream.Point. Token sets are
// flattened to sorted slices so the encoding is deterministic and
// avoids gob's handling of struct{}-valued maps.
type ckptPoint struct {
	ID        int64
	Vector    []float64
	Tokens    []string
	HasTokens bool
	Label     int
	Time      float64
}

func toCkptPoint(p stream.Point) ckptPoint {
	cp := ckptPoint{ID: p.ID, Label: p.Label, Time: p.Time}
	if p.Vector != nil {
		cp.Vector = append([]float64(nil), p.Vector...)
	}
	if p.Tokens != nil {
		cp.HasTokens = true
		cp.Tokens = make([]string, 0, len(p.Tokens))
		for tok := range p.Tokens {
			cp.Tokens = append(cp.Tokens, tok)
		}
		sort.Strings(cp.Tokens)
	}
	return cp
}

func (cp ckptPoint) point() stream.Point {
	p := stream.Point{ID: cp.ID, Label: cp.Label, Time: cp.Time}
	if cp.Vector != nil {
		p.Vector = append([]float64(nil), cp.Vector...)
	}
	if cp.HasTokens {
		p.Tokens = make(distance.TokenSet, len(cp.Tokens))
		for _, tok := range cp.Tokens {
			p.Tokens.Add(tok)
		}
	}
	return p
}

// ckptCell is the serializable form of a Cell. Dependencies are stored
// by ID (-1 for none) and children as an ID list preserving slice
// order.
type ckptCell struct {
	ID            int64
	Seed          ckptPoint
	Rho           float64
	RhoTime       float64
	LastAbsorb    float64
	Count         int64
	Active        bool
	DepID         int64
	Delta         float64
	ChildIDs      []int64
	LastDist      float64
	LastDistStamp int64
}

// ckptCluster is one incremental MSD cluster: its peak, member IDs in
// members-slice order, the tracker-assigned stable ID and whether the
// snapshot-facing views were valid.
type ckptCluster struct {
	PeakID     int64
	MemberIDs  []int64
	ID         int
	ViewsValid bool
}

type ckptClusterInfo struct {
	ID          int
	PeakCellID  int64
	PeakDensity float64
	CellIDs     []int64
	SeedPoints  []ckptPoint
	Weight      float64
	Points      int64
}

type ckptSnapshot struct {
	Time         float64
	Tau          float64
	Clusters     []ckptClusterInfo
	OutlierCells int
	ActiveCells  int
}

// ckptPrev is one tracker prev entry (cluster ID -> sorted member cell
// IDs), stored as a sorted slice for deterministic encoding.
type ckptPrev struct {
	ClusterID int
	CellIDs   []int64
}

// ckptState is the complete serialized engine state.
type ckptState struct {
	Fingerprint string

	Now           float64
	NextCellID    int64
	Initialized   bool
	LastSweep     float64
	LastEvolution float64
	TunerTau      float64
	TunerAlpha    float64
	IndexKind     string

	Cells     []ckptCell
	ActiveIDs []int64
	DirtyIDs  []int64

	Clusters       []ckptCluster
	ClustersSorted bool
	ExtractTau     float64
	ExtractValid   bool
	PartChanged    bool

	Stats Stats

	TrackerNextID int
	TrackerPrev   []ckptPrev
	TrackerEvents []Event
	TrackerBase   uint64

	HasSnapshot bool
	Snapshot    ckptSnapshot
}

// fingerprint summarizes every configuration field that influences
// clustering output or observable statistics; a checkpoint only
// restores into an engine configured identically. %g/%v round-trip
// float64 exactly (shortest unique representation). IngestWorkers is
// excluded — the output is byte-identical for every worker count — and
// TauSelector is excluded because it only runs at initialization,
// which the checkpoint has already passed through (an uninitialized
// checkpoint re-runs the selector of the restoring engine, which the
// caller supplies along with the rest of the configuration).
func (c Config) fingerprint() string {
	return fmt.Sprintf("radius=%g decayA=%g decayL=%g beta=%g rate=%g tau=%g adaptive=%t alpha=%g init=%d filters=%d evolution=%g sweep=%g delete=%g maxevents=%d index=%s detailed=%t",
		c.Radius, c.Decay.A, c.Decay.Lambda, c.Beta, c.Rate, c.Tau,
		c.AdaptiveTau, c.Alpha, c.InitPoints, c.Filters,
		c.EvolutionInterval, c.SweepInterval, c.DeleteDelay, c.MaxEvents,
		c.IndexPolicy, c.DetailedStats)
}

// EncodeCheckpoint writes the engine's complete state to w: a magic
// header, a length-prefixed gob payload and a CRC-32 trailer. A stream
// resumed from the checkpoint by DecodeCheckpoint produces output
// byte-identical to one that was never interrupted. Owner goroutine
// only.
func (e *EDMStream) EncodeCheckpoint(w io.Writer) error {
	st := ckptState{
		Fingerprint:   e.cfg.fingerprint(),
		Now:           e.now,
		NextCellID:    e.nextCellID,
		Initialized:   e.initialized,
		LastSweep:     e.lastSweep,
		LastEvolution: e.lastEvolution,
		TunerTau:      e.tuner.tau,
		TunerAlpha:    e.tuner.alpha,
		IndexKind:     e.IndexKind(),

		ClustersSorted: e.tree.clustersSorted,
		ExtractTau:     e.tree.extractTau,
		ExtractValid:   e.tree.extractValid,
		PartChanged:    e.tree.partChanged,

		Stats: e.stats,

		TrackerNextID: e.tracker.nextClusterID,
		TrackerEvents: e.tracker.events,
		TrackerBase:   e.tracker.base,
	}

	// Cells in ID order (the slab is ID-indexed).
	for _, c := range e.cells.byID {
		if c == nil {
			continue
		}
		cc := ckptCell{
			ID:            c.id,
			Seed:          toCkptPoint(c.seed),
			Rho:           c.rho,
			RhoTime:       c.rhoTime,
			LastAbsorb:    c.lastAbsorb,
			Count:         c.count,
			Active:        c.active,
			DepID:         -1,
			Delta:         c.delta,
			LastDist:      c.lastDist,
			LastDistStamp: c.lastDistStamp,
		}
		if c.dep != nil {
			cc.DepID = c.dep.id
		}
		for _, child := range c.children {
			cc.ChildIDs = append(cc.ChildIDs, child.id)
		}
		st.Cells = append(st.Cells, cc)
	}

	for _, c := range e.tree.list {
		st.ActiveIDs = append(st.ActiveIDs, c.id)
	}
	// The dirty list may hold cells that were deleted after being
	// marked; extract() skips them (they are inactive), so only
	// slab-live entries need to survive, in order.
	for _, c := range e.tree.dirty {
		if e.cells.get(c.id) == c {
			st.DirtyIDs = append(st.DirtyIDs, c.id)
		}
	}

	for _, cl := range e.tree.clusters {
		kc := ckptCluster{PeakID: cl.peak.id, ID: cl.id, ViewsValid: cl.viewsValid}
		for _, c := range cl.members {
			kc.MemberIDs = append(kc.MemberIDs, c.id)
		}
		st.Clusters = append(st.Clusters, kc)
	}

	for id, cells := range e.tracker.prev {
		st.TrackerPrev = append(st.TrackerPrev, ckptPrev{ClusterID: id, CellIDs: cells})
	}
	sort.Slice(st.TrackerPrev, func(a, b int) bool {
		return st.TrackerPrev[a].ClusterID < st.TrackerPrev[b].ClusterID
	})

	if pub := e.pub.Load(); pub != nil {
		st.HasSnapshot = true
		st.Snapshot = ckptSnapshot{
			Time:         pub.snap.Time,
			Tau:          pub.snap.Tau,
			OutlierCells: pub.snap.OutlierCells,
			ActiveCells:  pub.snap.ActiveCells,
		}
		for _, ci := range pub.snap.Clusters {
			kci := ckptClusterInfo{
				ID:          ci.ID,
				PeakCellID:  ci.PeakCellID,
				PeakDensity: ci.PeakDensity,
				CellIDs:     ci.CellIDs,
				Weight:      ci.Weight,
				Points:      ci.Points,
			}
			for _, p := range ci.SeedPoints {
				kci.SeedPoints = append(kci.SeedPoints, toCkptPoint(p))
			}
			st.Snapshot.Clusters = append(st.Snapshot.Clusters, kci)
		}
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	var header [20]byte
	copy(header[:8], ckptMagic[:])
	binary.LittleEndian.PutUint64(header[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: writing checkpoint payload: %w", err)
	}
	return nil
}

// maxCheckpointBytes bounds a checkpoint payload a reader will accept,
// protecting recovery from allocating on a corrupt length prefix.
const maxCheckpointBytes = 1 << 32

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint and
// returns a fresh engine holding exactly the encoded state. cfg must
// match the configuration of the engine that wrote the checkpoint
// (compared by fingerprint; a mismatch is an error, because replaying
// under different parameters would silently produce a different
// clustering).
func DecodeCheckpoint(cfg Config, r io.Reader) (*EDMStream, error) {
	var header [20]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	if !bytes.Equal(header[:8], ckptMagic[:]) {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", header[:8])
	}
	n := binary.LittleEndian.Uint64(header[8:16])
	if n > maxCheckpointBytes {
		return nil, fmt.Errorf("core: checkpoint payload length %d exceeds limit", n)
	}
	sum := binary.LittleEndian.Uint32(header[16:20])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("core: checkpoint CRC mismatch (stored %08x, computed %08x)", sum, got)
	}
	var st ckptState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}

	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if fp := e.cfg.fingerprint(); fp != st.Fingerprint {
		return nil, fmt.Errorf("core: checkpoint configuration mismatch:\n  checkpoint: %s\n  engine:     %s", st.Fingerprint, fp)
	}
	if err := e.restore(&st); err != nil {
		return nil, err
	}
	return e, nil
}

// restore loads the decoded state into a freshly constructed engine.
func (e *EDMStream) restore(st *ckptState) error {
	e.now = st.Now
	e.nextCellID = st.NextCellID
	e.initialized = st.Initialized
	e.lastSweep = st.LastSweep
	e.lastEvolution = st.LastEvolution
	e.tuner.tau = st.TunerTau
	e.tuner.alpha = st.TunerAlpha

	// The index kind is restored rather than re-resolved: ensureIndex
	// decides from the first-ever point, which may belong to a cell
	// that has since been deleted (mixed streams under IndexAuto).
	switch st.IndexKind {
	case "grid":
		g := index.NewGrid(e.cfg.Radius)
		e.seedIdx = g
		e.tree.accel = g
	case "linear":
		e.seedIdx = index.NewLinear()
	case "":
		if len(st.Cells) > 0 {
			return fmt.Errorf("core: checkpoint holds %d cells but no index kind", len(st.Cells))
		}
	default:
		return fmt.Errorf("core: checkpoint has unknown index kind %q", st.IndexKind)
	}

	// Pass 1: materialize cells in ID order. Inserting into the seed
	// index in ID order is exact: every index search resolves distance
	// ties toward the lowest cell ID, so insertion order is not
	// observable.
	for i := range st.Cells {
		cc := &st.Cells[i]
		if e.cells.get(cc.ID) != nil {
			return fmt.Errorf("core: checkpoint repeats cell %d", cc.ID)
		}
		c := &Cell{
			id:            cc.ID,
			seed:          cc.Seed.point(),
			rho:           cc.Rho,
			rhoTime:       cc.RhoTime,
			lastAbsorb:    cc.LastAbsorb,
			count:         cc.Count,
			delta:         cc.Delta,
			lastDist:      cc.LastDist,
			lastDistStamp: cc.LastDistStamp,
		}
		e.cells.put(c)
		e.seedIdx.Insert(c.id, c.seed)
		e.refreshLogNorm(c)
	}

	// Pass 2: wire dependency links and children (slice order
	// preserved — it drives extraction walk order).
	for i := range st.Cells {
		cc := &st.Cells[i]
		c := e.cells.get(cc.ID)
		if cc.DepID >= 0 {
			dep := e.cells.get(cc.DepID)
			if dep == nil {
				return fmt.Errorf("core: cell %d depends on missing cell %d", cc.ID, cc.DepID)
			}
			c.dep = dep
		}
		for _, childID := range cc.ChildIDs {
			child := e.cells.get(childID)
			if child == nil {
				return fmt.Errorf("core: cell %d lists missing child %d", cc.ID, childID)
			}
			child.childIdx = len(c.children)
			c.children = append(c.children, child)
		}
	}

	// Active cells in list order (the order the adaptive-τ retune and
	// the full extraction iterate in); everything else parks in the
	// reservoir.
	for i, id := range st.ActiveIDs {
		c := e.cells.get(id)
		if c == nil {
			return fmt.Errorf("core: active list names missing cell %d", id)
		}
		c.active = true
		c.treeIdx = i
		e.tree.list = append(e.tree.list, c)
		e.tree.densInsert(c)
	}
	for i := range st.Cells {
		if c := e.cells.get(st.Cells[i].ID); !c.active {
			e.res.add(c)
		}
	}

	for _, id := range st.DirtyIDs {
		c := e.cells.get(id)
		if c == nil {
			return fmt.Errorf("core: dirty list names missing cell %d", id)
		}
		c.dirtyMark = true
		e.tree.dirty = append(e.tree.dirty, c)
	}

	for i := range st.Clusters {
		kc := &st.Clusters[i]
		peak := e.cells.get(kc.PeakID)
		if peak == nil {
			return fmt.Errorf("core: cluster %d has missing peak cell %d", kc.ID, kc.PeakID)
		}
		cl := &msdCluster{peak: peak, id: kc.ID}
		peak.leads = cl
		for j, mid := range kc.MemberIDs {
			c := e.cells.get(mid)
			if c == nil {
				return fmt.Errorf("core: cluster %d has missing member cell %d", kc.ID, mid)
			}
			c.cluster = cl
			c.memberIdx = j
			cl.members = append(cl.members, c)
		}
		if kc.ViewsValid {
			cl.buildViews()
		}
		e.tree.clusters = append(e.tree.clusters, cl)
	}
	e.tree.clustersSorted = st.ClustersSorted
	e.tree.extractTau = st.ExtractTau
	e.tree.extractValid = st.ExtractValid
	e.tree.partChanged = st.PartChanged

	e.stats = st.Stats

	t := e.tracker
	t.nextClusterID = st.TrackerNextID
	for _, pe := range st.TrackerPrev {
		t.prev[pe.ClusterID] = pe.CellIDs
	}
	t.events = st.TrackerEvents
	t.base = st.TrackerBase
	t.publish()

	if st.HasSnapshot {
		snap := Snapshot{
			Time:         st.Snapshot.Time,
			Tau:          st.Snapshot.Tau,
			OutlierCells: st.Snapshot.OutlierCells,
			ActiveCells:  st.Snapshot.ActiveCells,
		}
		for _, kci := range st.Snapshot.Clusters {
			ci := ClusterInfo{
				ID:          kci.ID,
				PeakCellID:  kci.PeakCellID,
				PeakDensity: kci.PeakDensity,
				CellIDs:     kci.CellIDs,
				Weight:      kci.Weight,
				Points:      kci.Points,
			}
			for _, p := range kci.SeedPoints {
				ci.SeedPoints = append(ci.SeedPoints, p.point())
			}
			snap.Clusters = append(snap.Clusters, ci)
		}
		e.pub.Store(&published{snap: snap, assign: &assignHolder{}})
	}

	// Guard against a corrupt-but-CRC-valid checkpoint leaving NaN
	// poison in the hot comparisons.
	if math.IsNaN(e.now) || math.IsNaN(e.tuner.tau) {
		return fmt.Errorf("core: checkpoint holds non-finite engine clock or tau")
	}

	e.publishStats()
	return nil
}
