package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/densitymountain/edmstream/internal/stream"
)

// TestConcurrentServingRace is the serving-layer race test: one
// goroutine ingests the stream while several goroutines hammer every
// reader-safe method (LastSnapshot, Assign, AssignBatch, Stats,
// Events). Run under -race (the CI race job does) it proves the
// lock-free publication protocol: readers never block ingestion and
// never observe torn state.
func TestConcurrentServingRace(t *testing.T) {
	pts := burstyStream(3, 12000, 4, 0.1)
	cfg := Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, EvolutionInterval: 0.25, SweepInterval: 0.2}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	probes := make([]stream.Point, 64)
	for i := range probes {
		probes[i] = pts[len(pts)-1-i]
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var queries, hits atomic.Int64

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var dst []int
			// Run at least minIters even if the writer finishes first
			// (the ingest loop can outrun reader scheduling), then stop
			// once the writer is done.
			const minIters = 512
			for i := 0; ; i++ {
				if i >= minIters {
					select {
					case <-done:
						return
					default:
					}
				}
				switch i % 4 {
				case 0:
					snap := e.LastSnapshot()
					for _, cl := range snap.Clusters {
						if len(cl.CellIDs) != len(cl.SeedPoints) {
							t.Error("torn snapshot: CellIDs and SeedPoints misaligned")
							return
						}
					}
					if _, ok := snap.Cluster(1); ok && snap.NumClusters() == 0 {
						t.Error("Cluster(1) found in an empty snapshot")
						return
					}
				case 1:
					if id, ok := e.Assign(probes[(r+i)%len(probes)]); ok {
						hits.Add(1)
						if id < 0 {
							t.Error("Assign returned ok with a negative cluster ID")
							return
						}
					}
					queries.Add(1)
				case 2:
					dst = e.AssignBatch(probes[:8], dst)
					if len(dst) != 8 {
						t.Error("AssignBatch returned wrong length")
						return
					}
					queries.Add(8)
				case 3:
					st := e.Stats()
					if st.Points < 0 || st.ActiveCells < 0 {
						t.Error("negative counters from Stats")
						return
					}
					_ = e.Events()
				}
			}
		}(r)
	}

	const batch = 128
	for i := 0; i < len(pts); i += batch {
		end := i + batch
		if end > len(pts) {
			end = len(pts)
		}
		if err := e.InsertBatch(pts[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if queries.Load() == 0 {
		t.Fatal("readers issued no queries")
	}
	if hits.Load() == 0 {
		t.Fatal("no probe matched a cluster (degenerate serving state)")
	}
	if got := e.Stats().Points; got != int64(len(pts)) {
		t.Fatalf("Stats().Points = %d after ingest, want %d", got, len(pts))
	}
}

// TestAssignZeroAlloc pins the acceptance criterion that steady-state
// queries never allocate: after the first Assign on a published
// snapshot has built the frozen index, further queries (hits and
// misses, single and batched) must be allocation-free.
func TestAssignZeroAlloc(t *testing.T) {
	pts := burstyStream(3, 4000, 4, 0.1)
	e, err := New(Config{Radius: 0.8, Tau: 2.5, InitPoints: 200, EvolutionInterval: 0.25, SweepInterval: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	e.Refresh()
	hit := pts[len(pts)-1]
	miss := stream.Point{Vector: []float64{1e6, 1e6}, Time: e.Now()}
	if _, ok := e.Assign(hit); !ok {
		t.Fatal("warm-up probe missed; pick a denser probe")
	}
	var dst []int
	dst = e.AssignBatch(pts[:16], dst)
	if allocs := testing.AllocsPerRun(200, func() {
		e.Assign(hit)
		e.Assign(miss)
		dst = e.AssignBatch(pts[:16], dst)
	}); allocs != 0 {
		t.Fatalf("Assign allocated %.1f times per run, want 0", allocs)
	}
}
