package core

import (
	"sort"

	"github.com/densitymountain/edmstream/internal/stream"
)

// ClusterInfo describes one cluster (one maximal strongly dependent
// subtree of the DP-Tree) in a snapshot.
type ClusterInfo struct {
	// ID is the stable cluster identifier assigned by the evolution
	// tracker.
	ID int
	// PeakCellID is the cell at the cluster's density peak (the root of
	// the MSDSubTree).
	PeakCellID int64
	// PeakDensity is the peak cell's timely density at snapshot time.
	PeakDensity float64
	// CellIDs are the member cells.
	CellIDs []int64
	// SeedPoints are the member cells' seed points (numeric vectors or
	// token sets, depending on the stream).
	SeedPoints []stream.Point
	// Weight is the summed timely density of the member cells.
	Weight float64
	// Points is the total number of points ever absorbed by the member
	// cells.
	Points int64
}

// Snapshot is an immutable view of the clustering at one point in
// time. Snapshots returned by LastSnapshot share their slices with the
// atomically published read-side state (and with other snapshots) and
// must be treated as read-only; Snapshot() returns an independent deep
// copy the caller may mutate.
type Snapshot struct {
	// Time is the stream time of the snapshot.
	Time float64
	// Tau is the cluster-separation threshold used for this snapshot.
	Tau float64
	// Clusters are the clusters ordered by ID.
	Clusters []ClusterInfo
	// OutlierCells is the number of inactive cells in the outlier
	// reservoir.
	OutlierCells int
	// ActiveCells is the number of cells in the DP-Tree.
	ActiveCells int
}

// NumClusters returns the number of clusters in the snapshot.
func (s Snapshot) NumClusters() int { return len(s.Clusters) }

// Cluster returns the cluster with the given ID, if present. Clusters
// are ordered by ID, so the lookup is a binary search.
func (s Snapshot) Cluster(id int) (ClusterInfo, bool) {
	i := sort.Search(len(s.Clusters), func(i int) bool { return s.Clusters[i].ID >= id })
	if i < len(s.Clusters) && s.Clusters[i].ID == id {
		return s.Clusters[i], true
	}
	return ClusterInfo{}, false
}

// clone returns an independent deep copy of the snapshot: fresh
// Clusters, CellIDs and SeedPoints backing throughout. Snapshot()
// hands out clones so callers may mutate the result freely without
// touching the shared views the published (LastSnapshot / Assign)
// read path works off.
func (s Snapshot) clone() Snapshot {
	out := s
	out.Clusters = make([]ClusterInfo, len(s.Clusters))
	for i, c := range s.Clusters {
		cc := c
		cc.CellIDs = append([]int64(nil), c.CellIDs...)
		cc.SeedPoints = make([]stream.Point, len(c.SeedPoints))
		for j, p := range c.SeedPoints {
			cc.SeedPoints[j] = p.Clone()
		}
		out.Clusters[i] = cc
	}
	return out
}

// MacroClusters converts the snapshot to the shared representation used
// by the evaluation harness.
func (s Snapshot) MacroClusters() []stream.MacroCluster {
	out := make([]stream.MacroCluster, 0, len(s.Clusters))
	for _, c := range s.Clusters {
		mc := stream.MacroCluster{ID: c.ID, Weight: c.Weight}
		for _, seed := range c.SeedPoints {
			if seed.Vector != nil {
				mc.Centers = append(mc.Centers, seed.Vector)
			}
		}
		out = append(out, mc)
	}
	return out
}

// sortClusterInfo orders clusters by ID. Member cells are already
// ordered by cell ID at construction time (refreshClustering), which
// keeps the CellIDs and SeedPoints slices index-aligned; sorting
// CellIDs here independently would break that correspondence.
func sortClusterInfo(cs []ClusterInfo) {
	sort.Slice(cs, func(a, b int) bool { return cs[a].ID < cs[b].ID })
}
