package core

import (
	"math"
	"sort"
)

// DefaultTauSelector implements the largest-gap heuristic used in place
// of the interactive decision-graph step (Sec. 5): density peaks stand
// out on the decision graph because their dependent distance δ is
// anomalously large, so the threshold is placed inside the widest
// relative gap of the sorted finite δ values. Cells whose density is in
// the lowest quartile are ignored (they are outlier candidates whose δ
// says nothing about cluster separation, mirroring footnote 5).
func DefaultTauSelector(graph []DecisionPoint) float64 {
	var rhos []float64
	for _, dp := range graph {
		rhos = append(rhos, dp.Rho)
	}
	if len(rhos) == 0 {
		return 0
	}
	sort.Float64s(rhos)
	rhoCut := rhos[len(rhos)/4]

	var deltas []float64
	for _, dp := range graph {
		if dp.Rho < rhoCut {
			continue
		}
		if math.IsInf(dp.Delta, 1) || math.IsNaN(dp.Delta) || dp.Delta <= 0 {
			continue
		}
		deltas = append(deltas, dp.Delta)
	}
	if len(deltas) == 0 {
		return 0
	}
	sort.Float64s(deltas)
	if len(deltas) == 1 {
		return deltas[0]
	}
	// Find the widest gap between consecutive sorted δ values and put τ
	// in its middle. A gap above the largest δ cannot exist, so peaks
	// (large δ) end up above τ and ordinary cells below.
	bestGap, bestTau := -1.0, deltas[len(deltas)-1]
	for i := 1; i < len(deltas); i++ {
		gap := deltas[i] - deltas[i-1]
		if gap > bestGap {
			bestGap = gap
			bestTau = (deltas[i] + deltas[i-1]) / 2
		}
	}
	return bestTau
}

// tauTuner implements the adaptive τ strategy of Sec. 5: it learns the
// balance parameter α from the initial τ⁰ (which encodes the user's
// granularity preference) and afterwards re-optimizes τ_t to minimize
// the objective F of Eq. 15 whenever the clustering is refreshed.
type tauTuner struct {
	alpha float64
	tau   float64
}

// objective evaluates the cluster-separation objective of Sec. 5 for a
// candidate τ over the finite dependent distances deltas:
//
//	F(τ) = α·(n·δ̄)/(Σ_{δ>τ} δ) + (1−α)·(Σ_{δ≤τ} δ)/(m·δ̄)
//	     = α·(δ̄ / δ̄_inter)     + (1−α)·(δ̄_intra / δ̄)
//
// where m = |{δ ≤ τ}|, n = |{δ > τ}| and δ̄ is the mean of all δ.
// Minimizing F therefore maximizes the average relative
// inter-dependent-distance and minimizes the average relative
// intra-dependent-distance, which is exactly the goal Sec. 5 states.
// (The paper's Eq. 15 prints the two ratios the other way up, which
// contradicts that stated goal and degenerates to "always pick the
// largest τ"; we implement the consistent form and record the deviation
// in DESIGN.md.) Degenerate splits with no intra or no inter distances
// evaluate to +Inf so they are never selected.
func tauObjective(alpha, tau float64, deltas []float64) float64 {
	if len(deltas) == 0 {
		return math.Inf(1)
	}
	var sumAll, sumIntra, sumInter float64
	var m, n int
	for _, d := range deltas {
		sumAll += d
		if d <= tau {
			sumIntra += d
			m++
		} else {
			sumInter += d
			n++
		}
	}
	if m == 0 || n == 0 || sumInter == 0 {
		return math.Inf(1)
	}
	mean := sumAll / float64(len(deltas))
	if mean == 0 {
		return math.Inf(1)
	}
	return alpha*float64(n)*mean/sumInter + (1-alpha)*sumIntra/(float64(m)*mean)
}

// candidateTaus returns the candidate thresholds considered when
// minimizing F: the midpoints between consecutive distinct sorted δ
// values (cutting anywhere else is equivalent to cutting at one of
// these).
func candidateTaus(deltas []float64) []float64 {
	if len(deltas) < 2 {
		return append([]float64(nil), deltas...)
	}
	sorted := append([]float64(nil), deltas...)
	sort.Float64s(sorted)
	var out []float64
	for i := 1; i < len(sorted); i++ {
		if sorted[i] > sorted[i-1] {
			out = append(out, (sorted[i]+sorted[i-1])/2)
		}
	}
	if len(out) == 0 {
		out = append(out, sorted[0])
	}
	return out
}

// fitAlpha finds the balance parameter α under which the user's initial
// choice τ⁰ is (as nearly as possible) the minimizer of F, per Sec. 5.
// It scans a grid of α values and picks the one whose optimal τ is
// closest to τ⁰.
func fitAlpha(tau0 float64, deltas []float64) float64 {
	if len(deltas) == 0 || tau0 <= 0 {
		return 0.5
	}
	cands := candidateTaus(deltas)
	bestAlpha, bestDiff := 0.5, math.Inf(1)
	for a := 0.02; a < 1.0; a += 0.02 {
		tauOpt, ok := minimizeTau(a, cands, deltas)
		if !ok {
			continue
		}
		diff := math.Abs(tauOpt - tau0)
		if diff < bestDiff {
			bestDiff = diff
			bestAlpha = a
		}
	}
	return bestAlpha
}

// minimizeTau returns the candidate τ minimizing F(α, ·). ok is false
// when every candidate is degenerate.
func minimizeTau(alpha float64, candidates, deltas []float64) (float64, bool) {
	bestTau, bestF := 0.0, math.Inf(1)
	for _, tau := range candidates {
		f := tauObjective(alpha, tau, deltas)
		if f < bestF {
			bestF = f
			bestTau = tau
		}
	}
	return bestTau, !math.IsInf(bestF, 1)
}

// initialize fixes α from the initial τ⁰ and the initial finite δ
// values (Sec. 5). When alphaOverride > 0 the override is used instead
// of fitting.
func (t *tauTuner) initialize(tau0, alphaOverride float64, deltas []float64) {
	t.tau = tau0
	if alphaOverride > 0 {
		t.alpha = alphaOverride
		return
	}
	t.alpha = fitAlpha(tau0, deltas)
}

// retune recomputes the optimal τ_t for the current δ distribution. It
// keeps the previous τ when the distribution is degenerate.
func (t *tauTuner) retune(deltas []float64) float64 {
	finite := deltas[:0:0]
	for _, d := range deltas {
		if !math.IsInf(d, 1) && !math.IsNaN(d) && d > 0 {
			finite = append(finite, d)
		}
	}
	if len(finite) < 2 {
		return t.tau
	}
	tau, ok := minimizeTau(t.alpha, candidateTaus(finite), finite)
	if ok {
		t.tau = tau
	}
	return t.tau
}
